"""Tests for elastic scale-out (repro.resilience.elastic).

Covers the acceptance contract of the elastic subsystem:

* deterministic BFS-affinity growth redistribution with full element
  coverage and stable survivor ids,
* online PE addition continuing bit-identically to a from-scratch run
  at the grown layout — on every backend, with block right-hand sides,
  and with ABFT checksums on,
* evict -> grow -> evict round trips,
* the autoscaling policy (typed config validation, probation
  readmission, deficit-gated growth),
* the contention-aware cost oracle (fit recovers a planted ``T_q``;
  the contended residual never exceeds the uniform one),
* scale-event telemetry and the ``repro-chaos --grow/--readmit`` CLI.
"""

import numpy as np
import pytest

from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.model.machine import CRAY_T3E, MACHINES, Machine
from repro.partition.base import Partition, partition_mesh
from repro.resilience import (
    GrowthMigration,
    PolicyConfigError,
    RecoveryPolicy,
    ScalePolicy,
    SuperstepSupervisor,
    growth_migration_plan,
    parse_grow_schedule,
    predicted_efficiency,
    run_chaos,
)
from repro.resilience.policy import HealthTracker, PEState
from repro.smvp.backends import backend_names
from repro.smvp.distribution import (
    DataDistribution,
    redistribute_after_addition,
)
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import CommSchedule
from repro.telemetry.drift import fit_machine_contended
from repro.telemetry.registry import MetricsRegistry, use_registry

BACKENDS = sorted(set(backend_names()))


@pytest.fixture(scope="module")
def demo_stiffness(demo_mesh, demo_materials):
    return assemble_stiffness(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_mass(demo_mesh, demo_materials):
    return assemble_lumped_mass(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_dt(demo_mesh, demo_materials):
    return stable_timestep(demo_mesh, demo_materials)


@pytest.fixture()
def problem(demo_mesh, demo_stiffness, demo_mass, demo_dt):
    force = np.zeros(3 * demo_mesh.num_nodes)
    force[: min(300, force.size)] = 1e9
    return demo_stiffness, demo_mass, demo_dt, (lambda t: force)


def make_supervised(mesh, materials, problem, pes=5, rhs=1, **kwargs):
    stiffness, mass, dt, force_at = problem
    smvp = DistributedSMVP(
        mesh, partition_mesh(mesh, pes), materials,
        **{
            k: kwargs.pop(k)
            for k in ("backend", "abft", "injector")
            if k in kwargs
        },
    )
    stepper = ExplicitTimeStepper(
        stiffness, mass, dt, smvp=smvp, rhs=rhs
    )
    supervisor = SuperstepSupervisor(stepper, **kwargs)
    return stepper, supervisor, force_at


def replay_from(rp, mesh, materials, problem, steps, rhs=1, **smvp_kwargs):
    """Fresh run from a resume point: the bit-identity reference."""
    stiffness, mass, dt, force_at = problem
    partition = Partition(
        rp.partition_parts.copy(), rp.num_parts, method="replay"
    )
    smvp = DistributedSMVP(
        mesh, partition, materials, pe_ids=rp.pe_ids, **smvp_kwargs
    )
    try:
        smvp.reset_superstep(rp.superstep)
        for pe in sorted(rp.quarantined):
            smvp.quarantine(pe)
        stepper = ExplicitTimeStepper(
            stiffness, mass, dt, smvp=smvp, rhs=rhs
        )
        stepper.set_state(rp.u, rp.u_prev, rp.step_index)
        for _ in range(steps - rp.step_index):
            stepper.step(force_at(stepper.time))
        return stepper.u.copy(), stepper.u_prev.copy()
    finally:
        smvp.close()


class TestScalePolicy:
    def test_defaults_valid(self):
        policy = ScalePolicy()
        assert policy.autoscale and policy.readmit_evicted

    @pytest.mark.parametrize(
        "bad",
        [
            {"grow_threshold": -0.1},
            {"shrink_utilization": 0.0},
            {"shrink_utilization": 1.0},
            {"shrink_patience": 0},
            {"probation_steps": 0},
            {"evaluation_interval": 0},
            {"cooldown_steps": -1},
            {"max_grows": -1},
        ],
    )
    def test_validation_raises_typed_error(self, bad):
        with pytest.raises(PolicyConfigError):
            ScalePolicy(**bad)
        # PolicyConfigError IS-A ValueError: legacy call sites hold.
        with pytest.raises(ValueError):
            ScalePolicy(**bad)

    def test_recovery_policy_raises_same_type(self):
        with pytest.raises(PolicyConfigError):
            RecoveryPolicy(quarantine_after=0)


class TestHealthTrackerElastic:
    def test_add_pe_extends_universe(self):
        tracker = HealthTracker(3, RecoveryPolicy())
        assert tracker.add_pe() == 3
        assert tracker.num_pes == 4
        assert tracker.states[3] is PEState.HEALTHY
        tracker.record_failure(3)  # in range now

    def test_readmit_clears_streak_keeps_history(self):
        tracker = HealthTracker(3, RecoveryPolicy(quarantine_after=1))
        tracker.record_failure(1)
        assert tracker.states[1] is PEState.QUARANTINED
        tracker.readmit(1)
        assert tracker.states[1] is PEState.HEALTHY
        assert tracker.consecutive_failures[1] == 0
        assert tracker.total_failures[1] == 1

    def test_readmit_requires_quarantine(self):
        tracker = HealthTracker(3, RecoveryPolicy())
        with pytest.raises(ValueError):
            tracker.readmit(0)


class TestAdditionRedistribution:
    def test_deterministic_and_covering(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        new1, red1 = redistribute_after_addition(demo_mesh, partition)
        new2, red2 = redistribute_after_addition(demo_mesh, partition)
        assert np.array_equal(new1.parts, new2.parts)
        assert red1 == red2
        assert new1.num_parts == 5
        # Every element still owned; the new PE got its target share.
        loads = np.bincount(new1.parts, minlength=5)
        assert loads.sum() == demo_mesh.num_elements
        assert loads[4] == red1.moved_elements == red1.target_size
        assert red1.target_size == demo_mesh.num_elements // 5
        assert red1.waves >= 1 and red1.affinity_flops > 0

    def test_survivor_ids_stable(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        new, red = redistribute_after_addition(demo_mesh, partition)
        # Elements not moved keep their owner under the same id.
        kept = new.parts != 4
        assert np.array_equal(new.parts[kept], partition.parts[kept])
        assert sum(red.donor_counts.values()) == red.moved_elements

    def test_donors_never_dip_below_floor(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        new, _ = redistribute_after_addition(demo_mesh, partition)
        floor = demo_mesh.num_elements // 5
        loads = np.bincount(new.parts, minlength=5)
        assert (loads[:4] >= floor).all()

    def test_new_pe_is_connected_wavefront(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        new, _ = redistribute_after_addition(demo_mesh, partition)
        # The peeled region shares nodes internally: its distribution
        # must be buildable and every node of PE 4 resident there.
        dist = DataDistribution(demo_mesh, new)
        assert dist.local_nodes(4).size > 0

    def test_target_size_validated(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        with pytest.raises(ValueError):
            redistribute_after_addition(
                demo_mesh, partition, target_size=0
            )
        with pytest.raises(ValueError):
            redistribute_after_addition(
                demo_mesh, partition, target_size=demo_mesh.num_elements
            )


class TestGrowthMigrationPlan:
    def test_prices_new_pe_state(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        old = DataDistribution(demo_mesh, partition)
        grown, _ = redistribute_after_addition(demo_mesh, partition)
        new = DataDistribution(demo_mesh, grown)
        plan = growth_migration_plan(old, new)
        assert isinstance(plan, GrowthMigration)
        assert plan.new_pe == 4
        assert plan.migrated_words == 6 * new.local_nodes(4).size
        assert 1 <= plan.migrated_blocks <= 4

    def test_layout_mismatch_rejected(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        dist = DataDistribution(demo_mesh, partition)
        with pytest.raises(ValueError):
            growth_migration_plan(dist, dist)


class TestReconfigureWith:
    def test_matches_fresh_executor_bitwise(
        self, demo_mesh, demo_materials
    ):
        partition = partition_mesh(demo_mesh, 4)
        x = np.linspace(-1.0, 1.0, 3 * demo_mesh.num_nodes)
        with DistributedSMVP(
            demo_mesh, partition, demo_materials
        ) as old:
            grown, red = old.reconfigure_with()
            try:
                y_grown = grown.multiply(x)
                assert grown.num_parts == 5
                assert np.array_equal(
                    grown.pe_ids, np.array([0, 1, 2, 3, 4])
                )
                with DistributedSMVP(
                    demo_mesh, grown.partition, demo_materials
                ) as fresh:
                    assert np.array_equal(y_grown, fresh.multiply(x))
            finally:
                grown.close()

    def test_explicit_physical_id(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 3)
        with DistributedSMVP(
            demo_mesh, partition, demo_materials
        ) as old:
            grown, _ = old.reconfigure_with(physical_id=9)
            try:
                assert int(grown.pe_ids[-1]) == 9
            finally:
                grown.close()


class TestSupervisedGrowth:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grow_bit_identical_every_backend(
        self, demo_mesh, demo_materials, problem, backend
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            backend=backend, grow_schedule={3: 1},
        )
        try:
            report = sup.run(8, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert report.final_num_pes == 6
        assert len(report.grows) == 1
        [rp] = report.resume_points
        u, u_prev = replay_from(
            rp, demo_mesh, demo_materials, problem, 8, backend=backend
        )
        assert np.array_equal(u, stepper.u)
        assert np.array_equal(u_prev, stepper.u_prev)

    def test_grow_block_rhs16(self, demo_mesh, demo_materials, problem):
        stiffness, mass, dt, force_at = problem
        r = 16
        stepper, sup, _ = make_supervised(
            demo_mesh, demo_materials, problem,
            rhs=r, grow_schedule={2: 1},
        )
        try:
            report = sup.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert stepper.u.shape == (3 * demo_mesh.num_nodes, r)
        [rp] = report.resume_points
        assert rp.u.shape[1] == r
        u, u_prev = replay_from(
            rp, demo_mesh, demo_materials, problem, 6, rhs=r
        )
        assert np.array_equal(u, stepper.u)
        assert np.array_equal(u_prev, stepper.u_prev)

    def test_grow_with_abft_on(self, demo_mesh, demo_materials, problem):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            abft=True, grow_schedule={3: 1},
        )
        try:
            report = sup.run(8, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert stepper.smvp.abft_enabled
        [rp] = report.resume_points
        u, _ = replay_from(
            rp, demo_mesh, demo_materials, problem, 8, abft=True
        )
        assert np.array_equal(u, stepper.u)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_evict_grow_evict_round_trip(
        self, demo_mesh, demo_materials, problem, backend
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            pes=6, backend=backend,
            kill_schedule={2: 1, 6: 3}, grow_schedule={4: 1},
        )
        try:
            report = sup.run(10, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert [e.superstep for e in report.evictions] == [2, 6]
        assert [e.superstep for e in report.grows] == [4]
        assert report.final_num_pes == 5
        # Fresh PE took physical id 6; id stability across the dance.
        assert 6 in stepper.smvp.pe_ids
        rp = report.resume_points[-1]
        u, u_prev = replay_from(
            rp, demo_mesh, demo_materials, problem, 10, backend=backend
        )
        assert np.array_equal(u, stepper.u)
        assert np.array_equal(u_prev, stepper.u_prev)

    def test_grow_budget_enforced(self, demo_mesh, demo_materials, problem):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            grow_schedule={1: 1, 2: 1},
            scale_policy=ScalePolicy(autoscale=False, max_grows=1),
        )
        try:
            with pytest.raises(ValueError, match="growth budget"):
                sup.run(4, force_at=force_at)
        finally:
            stepper.smvp.close()


class TestReadmission:
    def test_evicted_physical_pe_rejoins(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            pes=5, kill_schedule={1: 2}, grow_schedule={5: 1},
            scale_policy=ScalePolicy(
                autoscale=False, probation_steps=3
            ),
        )
        try:
            report = sup.run(8, force_at=force_at)
        finally:
            stepper.smvp.close()
        [grow] = report.grows
        assert grow.readmitted and grow.pe == 2
        assert 2 in stepper.smvp.pe_ids
        assert len(report.readmissions) == 1
        rp = report.resume_points[-1]
        u, _ = replay_from(rp, demo_mesh, demo_materials, problem, 8)
        assert np.array_equal(u, stepper.u)

    def test_fresh_hardware_inside_probation(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            pes=5, kill_schedule={1: 2}, grow_schedule={3: 1},
            scale_policy=ScalePolicy(
                autoscale=False, probation_steps=8
            ),
        )
        try:
            report = sup.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()
        [grow] = report.grows
        assert not grow.readmitted and grow.pe == 5  # max + 1

    def test_chaos_readmit_gate(self):
        from repro.resilience import KillSchedule

        report = run_chaos(
            instance="demo", pes=6, steps=10,
            kills=KillSchedule(((2, 1),)), seed=3,
            grows={8: 1}, readmit=True,
            scale_policy=ScalePolicy(
                autoscale=False, probation_steps=4
            ),
        )
        assert report.readmit_ok is True
        assert report.grow_applied is True
        assert report.passed


class TestAutoscale:
    def test_grows_back_after_eviction(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            pes=6, kill_schedule={1: 0},
            machine=CRAY_T3E,
            scale_policy=ScalePolicy(
                grow_threshold=0.0, cooldown_steps=1,
                probation_steps=2,
            ),
        )
        try:
            report = sup.run(8, force_at=force_at)
        finally:
            stepper.smvp.close()
        # One PE died; the oracle saw the deficit and grew back.
        assert len(report.grows) >= 1
        grow = report.grows[0]
        assert grow.predicted_efficiency_after is not None
        assert (
            grow.predicted_efficiency_after
            >= grow.predicted_efficiency_before
        )
        rp = report.resume_points[-1]
        u, _ = replay_from(rp, demo_mesh, demo_materials, problem, 8)
        assert np.array_equal(u, stepper.u)

    def test_no_growth_without_deficit(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, sup, force_at = make_supervised(
            demo_mesh, demo_materials, problem,
            machine=CRAY_T3E,
            scale_policy=ScalePolicy(grow_threshold=0.0),
        )
        try:
            report = sup.run(4, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert report.grows == []

    def test_autoscale_requires_machine(
        self, demo_mesh, demo_materials, problem
    ):
        with pytest.raises(ValueError, match="machine"):
            make_supervised(
                demo_mesh, demo_materials, problem,
                scale_policy=ScalePolicy(),
            )


class TestContentionOracle:
    def test_machine_tq_validated(self):
        with pytest.raises(ValueError):
            Machine(name="bad", tf=1e-9, tl=1e-6, tw=1e-8, tq=-1.0)
        assert all(m.tq is None for m in MACHINES.values())

    def test_predicted_efficiency_contention_costs(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 6)
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        uniform = Machine(name="u", tf=1e-9, tl=1e-6, tw=1e-8)
        contended = Machine(
            name="c", tf=1e-9, tl=1e-6, tw=1e-8, tq=1e-5
        )
        e_u = predicted_efficiency(flops, schedule, uniform)
        e_c = predicted_efficiency(flops, schedule, contended)
        assert 0 < e_c < e_u <= 1.0

    def _sweep(self, mesh, machine, pes_list, copies=3):
        from repro.telemetry.drift import modeled_breakdown

        sweep = []
        for p in pes_list:
            dist = DataDistribution(mesh, partition_mesh(mesh, p))
            schedule = CommSchedule(dist)
            flops = dist.local_counts["flops"]
            b = modeled_breakdown(flops, schedule, machine)
            sweep.append(([b] * copies, flops, schedule))
        return sweep

    def test_fit_recovers_planted_tq_exactly(self, demo_mesh):
        from types import SimpleNamespace

        tf, tl, tw, tq = 1e-9, 2e-6, 3e-8, 4e-7
        sweep = []
        for p in [2, 4, 8]:
            dist = DataDistribution(
                demo_mesh, partition_mesh(demo_mesh, p)
            )
            schedule = CommSchedule(dist)
            flops = dist.local_counts["flops"]
            # Exact aggregate model: Eq.(2) + the queue-search term.
            b = SimpleNamespace(
                t_comp=tf * float(flops.max()),
                t_comm=(
                    schedule.b_max * tl
                    + schedule.c_max * tw
                    + tq * schedule.q_max**2
                ),
            )
            sweep.append(([b, b], flops, schedule))
        fit = fit_machine_contended(sweep)
        assert fit.machine.tl == pytest.approx(tl, rel=1e-6)
        assert fit.machine.tw == pytest.approx(tw, rel=1e-6)
        assert fit.machine.tq == pytest.approx(tq, rel=1e-6)
        assert fit.contended_residual <= fit.uniform_residual
        # The uniform model cannot absorb the q**2 term: the planted
        # contention shows up as a real residual reduction.
        assert fit.residual_reduction > 0.5
        assert fit.uniform_machine.tq is None
        assert fit.samples == 6

    def test_fit_on_contended_per_pe_sweep(self, demo_mesh):
        planted = Machine(
            name="planted", tf=1e-9, tl=2e-6, tw=3e-8, tq=4e-7
        )
        fit = fit_machine_contended(
            self._sweep(demo_mesh, planted, [2, 4, 6, 8])
        )
        assert fit.contended_residual <= fit.uniform_residual
        assert fit.machine.tq is not None and fit.machine.tq >= 0

    def test_fit_contention_free_falls_back(self, demo_mesh):
        fit = fit_machine_contended(
            self._sweep(demo_mesh, CRAY_T3E, [2, 4, 8])
        )
        # Nested models: the contended fit can never be worse.
        assert fit.contended_residual <= fit.uniform_residual

    def test_fit_needs_data(self):
        with pytest.raises(ValueError):
            fit_machine_contended([])

    def test_simulator_matches_model_with_contention(self, demo_mesh):
        from repro.simulate.bsp import BspSimulator
        from repro.telemetry.drift import contended_t_comm

        machine = Machine(
            name="c", tf=1e-9, tl=2e-6, tw=3e-8, tq=4e-7
        )
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 6))
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        phases = BspSimulator(flops, schedule, machine).run("barrier")
        # Aggregate Eq.(2)+contention bounds the exact per-PE max.
        assert contended_t_comm(schedule, machine) >= phases.t_comm

    def test_contended_t_comm_requires_tq(self, demo_mesh):
        from repro.telemetry.drift import contended_t_comm

        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        schedule = CommSchedule(dist)
        with pytest.raises(ValueError):
            contended_t_comm(schedule, CRAY_T3E)


class TestScheduleContention:
    def test_incoming_per_pe_counts_senders(self, demo_mesh):
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 6))
        schedule = CommSchedule(dist)
        incoming = schedule.incoming_per_pe
        assert incoming.shape == (6,)
        assert schedule.q_max == incoming.max()
        # Word matrix is symmetric, so in-degree equals out-degree.
        assert np.array_equal(
            incoming, (schedule.word_matrix > 0).sum(axis=1)
        )
        assert schedule.q_max <= 5


class TestScaleTelemetry:
    def test_scale_events_recorded(
        self, demo_mesh, demo_materials, problem
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            stepper, sup, force_at = make_supervised(
                demo_mesh, demo_materials, problem,
                grow_schedule={2: 1},
            )
            try:
                sup.run(4, force_at=force_at)
            finally:
                stepper.smvp.close()
        counters = registry.snapshot()["counters"]
        assert counters["repro_scale_events_total"]["total"] == 1
        [series] = counters["repro_scale_events_total"]["series"]
        assert series["labels"]["kind"] == "grow"
        assert (
            counters["repro_scale_migrated_words_total"]["total"] > 0
        )
        gauges = registry.snapshot()["gauges"]
        [pes_series] = gauges["repro_scale_num_pes"]["series"]
        assert pes_series["value"] == 6
        [step_series] = gauges["repro_scale_last_superstep"]["series"]
        assert step_series["value"] == 2


class TestChaosGrowCli:
    def test_parse_grow_schedule(self):
        assert parse_grow_schedule("10") == {10: 1}
        assert parse_grow_schedule("10:2,30") == {10: 2, 30: 1}
        with pytest.raises(ValueError):
            parse_grow_schedule("")
        with pytest.raises(ValueError):
            parse_grow_schedule("x:1")
        with pytest.raises(ValueError):
            parse_grow_schedule("5:0")

    def test_cli_grow_smoke(self, capsys):
        from repro.cli import main_chaos

        rc = main_chaos(
            ["--smoke", "--kill", "2:1", "--grow", "5", "--json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"grow_applied": true' in out
        assert '"survivor_equivalent": true' in out

    def test_cli_readmit_requires_grow(self, capsys):
        from repro.cli import main_chaos

        with pytest.raises(SystemExit):
            main_chaos(["--smoke", "--readmit"])

    def test_cli_readmit_smoke(self, capsys):
        from repro.cli import main_chaos

        rc = main_chaos(
            [
                "--smoke", "--kill", "2:1", "--grow", "8",
                "--readmit", "--probation", "4",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "evicted PE readmitted: PASS" in out
