"""Shared fixtures.

Mesh builds are the expensive part of the suite, so the standard
instances are built once per session.  Tiny hand-built meshes are used
wherever exact values matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.material import ElementMaterials, materials_from_model
from repro.geometry import AABB
from repro.mesh.core import TetMesh
from repro.mesh.instances import get_instance
from repro.mesh.stuffing import stuff_octree
from repro.octree.linear import LinearOctree
from repro.velocity.basin import default_san_fernando_like_model
from repro.velocity.sizing import UniformSizingField


@pytest.fixture(scope="session")
def basin_model():
    return default_san_fernando_like_model()


@pytest.fixture(scope="session")
def demo_mesh():
    """The demo instance (~3.8k nodes), built once."""
    mesh, _ = get_instance("demo").build()
    return mesh


@pytest.fixture(scope="session")
def demo_materials(demo_mesh, basin_model):
    return materials_from_model(demo_mesh, basin_model)


@pytest.fixture(scope="session")
def sf10e_mesh():
    """The sf10e instance (~7k nodes), built once."""
    mesh, _ = get_instance("sf10e").build()
    return mesh


@pytest.fixture()
def single_tet_mesh():
    """The unit right tetrahedron (volume 1/6)."""
    points = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    tets = np.array([[0, 1, 2, 3]])
    return TetMesh(points, tets)


@pytest.fixture()
def two_tet_mesh():
    """Two tets sharing the triangular face (0, 1, 2)."""
    points = np.array(
        [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.3, 0.3, -1.0],
        ]
    )
    tets = np.array([[0, 1, 2, 3], [0, 2, 1, 4]])
    return TetMesh(points, tets)


@pytest.fixture()
def cube_mesh():
    """A conforming tet mesh of the unit cube (octree stuffing of one
    root cell: 8 corners + center, 12 tets of volume 1/12 each)."""
    domain = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
    tree = LinearOctree(domain, (1, 1, 1))
    mesh, _spacing = stuff_octree(tree)
    return mesh


@pytest.fixture()
def graded_cube_tree():
    """A small balanced octree over the unit cube with mixed levels."""
    domain = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))

    class CornerSizing(UniformSizingField):
        """Fine near the origin corner, coarse elsewhere."""

        def __init__(self):
            super().__init__(size=0.5)

        def h(self, points):
            pts = np.atleast_2d(np.asarray(points, dtype=float))
            near = np.linalg.norm(pts, axis=1) < 0.3
            return np.where(near, 0.08, 0.6)

        def h_min(self):
            return 0.08

    return LinearOctree.build(domain, CornerSizing(), base_shape=(1, 1, 1))


@pytest.fixture()
def homogeneous_materials():
    """Factory for uniform materials over any mesh."""

    def make(mesh: TetMesh) -> ElementMaterials:
        return ElementMaterials.homogeneous(mesh.num_elements)

    return make
