"""Tests for ABFT silent-data-corruption detection and healing.

Covers the acceptance contract of the SDC subsystem (DESIGN.md §11):

* the checksum checker detects and blames every injected flip kind
  (input vector, kernel output, persistent matrix corruption),
* inline recovery heals transients bit-exactly and scrubs matrix
  corruption, while sticky (bad-core) PEs escalate through the
  resilience ladder to eviction,
* rate-0 / ABFT-off paths stay bit-identical to the seed executor,
* the recovery-budget deadline raises a typed error,
* the timestepper growth guard and blamed-context error payloads,
* the BSP model's T_verify term and the trace round-trip,
* a hypothesis property: any single high-order bit-flip in any local
  array is detected, on every backend.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultConfig,
    FaultInjector,
    NumericalFaultError,
    RecoveryDeadlineError,
    SdcFaultError,
    block_checksum,
    check_finite,
    verify_block,
    verify_residual,
)
from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.partition.base import partition_mesh
from repro.resilience import RecoveryPolicy, SuperstepSupervisor, run_chaos
from repro.smvp import AbftChecker, SuperstepTrace, verify_flops_per_pe
from repro.smvp.backends import backend_names
from repro.smvp.executor import DistributedSMVP

PES = 4


@pytest.fixture(scope="module")
def demo_stiffness(demo_mesh, demo_materials):
    return assemble_stiffness(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_partition(demo_mesh):
    return partition_mesh(demo_mesh, PES)


@pytest.fixture(scope="module")
def executors(demo_mesh, demo_partition, demo_materials):
    """One ABFT-armed executor per backend, shared by the module."""
    built = {
        name: DistributedSMVP(
            demo_mesh,
            demo_partition,
            demo_materials,
            backend=name,
            abft=True,
        )
        for name in backend_names()
    }
    yield built
    for smvp in built.values():
        smvp.close()


def _rng_x(mesh, seed=0):
    return np.random.default_rng(seed).standard_normal(3 * mesh.num_nodes)


# ---------------------------------------------------------------------------
# Checker-level detection


def test_clean_compute_passes_and_rate0_is_bit_identical(
    demo_mesh, demo_partition, demo_materials, executors
):
    plain = DistributedSMVP(demo_mesh, demo_partition, demo_materials)
    x = _rng_x(demo_mesh)
    try:
        reference = plain.multiply(x)
    finally:
        plain.close()
    for name, smvp in executors.items():
        assert np.array_equal(smvp.multiply(x), reference), name
        assert smvp.sdc_stats.detected_sdc == 0, name


def test_checker_blames_flipped_output(executors, demo_mesh):
    smvp = executors["serial"]
    checker = AbftChecker(smvp.local_matrices)
    x = _rng_x(demo_mesh)
    x_local = x.reshape(-1, 3)[smvp.local_nodes[1]].ravel()
    y = smvp.backend.compute_one(1, x_local)
    assert checker.check_compute(1, x_local, y).ok
    word = int(np.argmax(np.abs(y)))
    y[word] *= -1.0  # sign flip: the classic high-order SDC
    check = checker.check_compute(1, x_local, y)
    assert not check.ok
    assert check.error > check.tol


def test_exchange_check_catches_post_sum_corruption(executors, demo_mesh):
    smvp = executors["serial"]
    checker = AbftChecker(smvp.local_matrices)
    x = _rng_x(demo_mesh)
    x_local = x.reshape(-1, 3)[smvp.local_nodes[0]].ravel()
    y = smvp.backend.compute_one(0, x_local)
    pre = checker.check_compute(0, x_local, y)
    assert pre.ok
    incoming = np.random.default_rng(7).standard_normal(8)
    y_post = y.copy()
    y_post[:8] += incoming
    good = checker.check_exchange(
        0,
        y_post,
        pre.checksum,
        float(incoming.sum()),
        float(np.abs(incoming).sum()),
        incoming.size,
        x_local,
    )
    assert good.ok
    y_post[3] *= 4.0
    bad = checker.check_exchange(
        0,
        y_post,
        pre.checksum,
        float(incoming.sum()),
        float(np.abs(incoming).sum()),
        incoming.size,
        x_local,
    )
    assert not bad.ok


# ---------------------------------------------------------------------------
# Executor-level heal-in-place, per flip kind


@pytest.mark.parametrize(
    "config_kw, kind",
    [
        (dict(flip_x_rate=1.0), "flip-x"),
        (dict(flip_y_rate=1.0), "flip-y"),
        (dict(flip_k_rate=1.0), "flip-k"),
    ],
)
def test_each_flip_kind_detected_and_healed_bit_exactly(
    demo_mesh, demo_partition, demo_materials, config_kw, kind
):
    plain = DistributedSMVP(demo_mesh, demo_partition, demo_materials)
    smvp = DistributedSMVP(
        demo_mesh,
        demo_partition,
        demo_materials,
        injector=FaultInjector(FaultConfig(seed=5, **config_kw)),
        abft=True,
    )
    x = _rng_x(demo_mesh, seed=2)
    try:
        reference = plain.multiply(x)
        healed = smvp.multiply(x)
    finally:
        plain.close()
        smvp.close()
    assert np.array_equal(healed, reference)
    stats = smvp.sdc_stats
    assert stats.injected_sdc == PES
    assert stats.detected_sdc >= stats.injected_sdc
    assert stats.recomputed_sdc >= stats.detected_sdc
    assert stats.escaped_sdc == 0
    assert stats.sdc_contained
    assert {e.kind for e in smvp.sdc_events} == {kind}
    if kind == "flip-k":
        assert stats.repaired_blocks == PES


def test_without_abft_flips_escape_and_are_counted(
    demo_mesh, demo_partition, demo_materials
):
    smvp = DistributedSMVP(
        demo_mesh,
        demo_partition,
        demo_materials,
        injector=FaultInjector(FaultConfig(seed=5, flip_y_rate=1.0)),
        abft=False,
    )
    try:
        smvp.multiply(_rng_x(demo_mesh))
    finally:
        smvp.close()
    assert smvp.sdc_stats.injected_sdc == PES
    assert smvp.sdc_stats.escaped_sdc == PES
    assert not smvp.sdc_stats.sdc_contained


def test_sticky_pe_exhausts_recovery_and_blames_itself(
    demo_mesh, demo_partition, demo_materials
):
    smvp = DistributedSMVP(
        demo_mesh,
        demo_partition,
        demo_materials,
        injector=FaultInjector(FaultConfig(seed=1, sticky_pes=(2,))),
        abft=True,
    )
    try:
        with pytest.raises(SdcFaultError) as exc_info:
            smvp.multiply(_rng_x(demo_mesh))
    finally:
        smvp.close()
    assert exc_info.value.pe == 2
    assert exc_info.value.phase == "compute"
    assert exc_info.value.step == 0


# ---------------------------------------------------------------------------
# End-to-end chaos gates


def test_chaos_flip_run_heals_bit_identically():
    report = run_chaos(
        instance="demo", pes=6, steps=8, flip_rate=0.2, seed=3
    )
    assert report.abft
    assert report.sdc_injected > 0
    assert report.sdc_all_detected
    assert report.sdc_blame_correct
    assert report.clean_equivalent
    assert report.clean_max_abs_diff == 0.0
    assert report.passed


def test_chaos_sticky_pe_is_evicted_with_survivor_equivalence():
    report = run_chaos(
        instance="demo", pes=6, steps=8, sticky=(2,), sticky_from=2, seed=1
    )
    assert report.sticky_evicted
    assert report.num_pes_final == 5
    assert report.survivor_equivalent
    assert report.sdc_all_detected
    assert report.passed


def test_recovery_budget_deadline_raises_typed_error(
    demo_mesh, demo_partition, demo_materials, demo_stiffness
):
    mass = assemble_lumped_mass(demo_mesh, demo_materials)
    dt = stable_timestep(demo_mesh, demo_materials)
    smvp = DistributedSMVP(
        demo_mesh,
        demo_partition,
        demo_materials,
        injector=FaultInjector(FaultConfig(seed=1, sticky_pes=(2,))),
        abft=True,
    )
    stepper = ExplicitTimeStepper(demo_stiffness, mass, dt, smvp=smvp)
    supervisor = SuperstepSupervisor(
        stepper,
        # Quarantine/evict far out of reach: the sticky PE keeps
        # failing, so the cumulative retry budget is what trips.
        policy=RecoveryPolicy(
            quarantine_after=50, evict_after=50, recovery_budget=3
        ),
    )
    force = np.zeros(3 * demo_mesh.num_nodes)
    force[:300] = 1e9
    try:
        with pytest.raises(RecoveryDeadlineError) as exc_info:
            supervisor.run(5, force_at=lambda t: force)
    finally:
        smvp.close()
    assert exc_info.value.budget == 3
    assert exc_info.value.retried > 3


# ---------------------------------------------------------------------------
# Guards, blame payloads, model and trace plumbing


def test_timestepper_growth_guard(
    demo_mesh, demo_materials, demo_stiffness
):
    mass = assemble_lumped_mass(demo_mesh, demo_materials)
    dt = stable_timestep(demo_mesh, demo_materials)
    force = np.zeros(3 * demo_mesh.num_nodes)
    force[:300] = 1e9
    loose = ExplicitTimeStepper(
        demo_stiffness, mass, dt, guard_growth=1e9
    )
    loose.run(4, force_at=lambda t: force)
    tight = ExplicitTimeStepper(
        demo_stiffness, mass, dt, guard_growth=1.0 + 1e-9
    )
    with pytest.raises(NumericalFaultError) as exc_info:
        tight.run(4, force_at=lambda t: force)
    assert exc_info.value.phase == "timestep"
    assert exc_info.value.step is not None
    with pytest.raises(ValueError):
        ExplicitTimeStepper(demo_stiffness, mass, dt, guard_growth=0.5)


def test_blamed_context_on_detection_helpers():
    bad = np.array([1.0, np.nan])
    with pytest.raises(NumericalFaultError) as exc_info:
        check_finite(bad, "y", pe=3, step=7, phase="compute")
    err = exc_info.value
    assert (err.pe, err.step, err.phase) == (3, 7, "compute")
    assert "PE 3" in err.blame() and "superstep 7" in err.blame()
    with pytest.raises(NumericalFaultError) as exc_info:
        verify_residual(
            np.ones(4), np.zeros(4), pe=1, step=2, phase="exchange"
        )
    assert exc_info.value.blame() == "PE 1, superstep 2, phase exchange"


def test_trace_t_verify_roundtrip_and_abft_timing(
    demo_mesh, demo_partition, demo_materials
):
    original = SuperstepTrace(
        t_comp=1.0,
        t_comm=0.5,
        t_smvp=1.6,
        step=1,
        kernel="csr",
        backend="serial",
        t_scatter=0.05,
        t_gather=0.05,
        words_sent=np.array([3, 4]),
        blocks_sent=np.array([1, 1]),
        t_verify=0.25,
    )
    trace = SuperstepTrace.from_dict(original.to_dict())
    assert trace.t_verify == 0.25
    # Legacy records without the field default to zero.
    legacy = original.to_dict()
    legacy.pop("t_verify")
    assert SuperstepTrace.from_dict(legacy).t_verify == 0.0


def test_bsp_simulator_charges_t_verify(demo_mesh, demo_partition):
    from repro.model.machine import CRAY_T3E
    from repro.simulate.bsp import BspSimulator
    from repro.smvp.distribution import DataDistribution
    from repro.smvp.schedule import CommSchedule

    dist = DataDistribution(demo_mesh, demo_partition)
    schedule = CommSchedule(dist)
    flops = dist.local_counts["flops"].astype(np.float64)
    verify = verify_flops_per_pe(dist, schedule)
    assert verify.shape == (PES,)
    assert (verify > 0).all()
    bare = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
    armed = BspSimulator(
        flops, schedule, CRAY_T3E, abft_flops_per_pe=verify
    ).run("barrier")
    assert bare.t_verify == 0.0
    assert armed.t_verify > 0.0
    assert armed.t_smvp > bare.t_smvp
    injector = FaultInjector(FaultConfig(seed=0, flip_y_rate=0.5))
    faulty = BspSimulator(
        flops,
        schedule,
        CRAY_T3E,
        injector=injector,
        abft_flops_per_pe=verify,
    ).run("barrier", step=0)
    assert faulty.faults is not None
    assert faulty.faults.injected_sdc > 0
    assert faulty.faults.detected_sdc == faulty.faults.injected_sdc
    assert faulty.faults.escaped_sdc == 0


# ---------------------------------------------------------------------------
# Property: any single high-order flip in any local array is detected


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    backend=st.sampled_from(sorted(backend_names())),
    kind=st.sampled_from(["x", "y", "k"]),
    pe=st.integers(min_value=0, max_value=PES - 1),
    site=st.integers(min_value=0, max_value=2**32 - 1),
    x_seed=st.integers(min_value=0, max_value=7),
)
def test_any_single_bit_flip_is_detected(
    executors, demo_mesh, backend, kind, pe, site, x_seed
):
    """One flip, drawn by the injector's own site model, in the local
    input, output, or matrix of any PE on any backend: the per-PE CRC
    or checksum check must fail."""
    smvp = executors[backend]
    checker = AbftChecker(smvp.local_matrices)
    injector = FaultInjector(FaultConfig(seed=site, flip_x_rate=1.0))
    x = _rng_x(demo_mesh, seed=x_seed)
    x_local = x.reshape(-1, 3)[smvp.local_nodes[pe]].ravel()
    if kind == "x":
        crc = block_checksum(x_local)
        injector.flip_sdc(x_local, pe, step=0)
        assert not verify_block(x_local, crc)
        return
    y = smvp.backend.compute_one(pe, x_local)
    if kind == "y":
        injector.flip_sdc(y, pe, step=0)
    else:
        matrix = smvp.local_matrices[pe]
        data = np.asarray(matrix.data).reshape(-1)
        flat_cols = smvp._flat_cols(pe)
        importance = np.abs(data) * np.abs(x_local[flat_cols])
        if float(importance.max()) <= 0.0:
            return  # a zero-effect flip is a bitwise no-op by design
        word, bit = injector.sdc_site(importance, pe, step=0)
        old = float(data[word])
        flipped = np.array([old])
        flipped.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(bit)
        from repro.smvp.abft import nnz_coords

        row, col = nnz_coords(matrix, word)
        y[row] += (float(flipped[0]) - old) * x_local[col]
    check = checker.check_compute(pe, x_local, y)
    assert not check.ok
