"""Tests for repro.mesh.stuffing (the conforming octree mesher)."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.mesh import topology
from repro.mesh.stuffing import (
    _TEMPLATES,
    _face_template,
    jitter_mesh,
    stuff_octree,
)
from repro.octree.linear import LinearOctree
from repro.velocity.sizing import UniformSizingField

UNIT = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


def assert_conforming(mesh, domain):
    """A stuffed mesh must exactly tile the domain.

    Checks: positive elements, exact volume, and that every face
    belonging to a single element lies on the domain boundary (interior
    faces always shared by exactly two elements = no T-vertices
    geometrically visible as cracks)."""
    mesh.validate()
    assert mesh.total_volume() == pytest.approx(domain.volume)
    surf = topology.surface_faces(mesh.tets)
    pts = mesh.points[surf]
    lo = np.asarray(domain.lo)
    hi = np.asarray(domain.hi)
    on_boundary = np.zeros(len(surf), dtype=bool)
    for axis in range(3):
        for value in (lo[axis], hi[axis]):
            on_boundary |= np.all(
                np.abs(pts[:, :, axis] - value) < 1e-9 * max(hi - lo), axis=1
            )
    assert on_boundary.all(), "surface face not on the domain boundary"


class TestFaceTemplates:
    def test_plain_face_two_triangles(self):
        assert len(_face_template(0, False)) == 2
        assert len(_face_template(0, True)) == 2

    def test_full_split_eight_triangles(self):
        # Center + all four midpoints: fan of 8.
        assert len(_face_template(0b11111, False)) == 8

    def test_single_midpoint_three_triangles(self):
        for bit in range(4):
            assert len(_face_template(1 << bit, False)) == 3

    def test_templates_cover_area(self):
        # Every template's triangles must tile the unit quad exactly.
        from repro.mesh.stuffing import _POS_UV

        for (pattern, anti), tris in sorted(_TEMPLATES.items()):
            area = 0.0
            for a, b, c in tris:
                pa, pb, pc = _POS_UV[a], _POS_UV[b], _POS_UV[c]
                area += abs(
                    (pb[0] - pa[0]) * (pc[1] - pa[1])
                    - (pb[1] - pa[1]) * (pc[0] - pa[0])
                ) / 2.0
            assert area == pytest.approx(4.0), (pattern, anti)  # 2x2 units

    def test_no_degenerate_triangles(self):
        for tris in _TEMPLATES.values():
            from repro.mesh.stuffing import _collinear

            for a, b, c in tris:
                assert not _collinear(a, b, c)


class TestStuffing:
    def test_single_cell(self, cube_mesh):
        # 8 corners + 1 center, 6 faces x 2 triangles = 12 tets.
        assert cube_mesh.num_nodes == 9
        assert cube_mesh.num_elements == 12
        assert_conforming(cube_mesh, UNIT)

    def test_uniform_two_levels(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        tree.refine(UniformSizingField(0.5))
        tree.balance()
        mesh, spacing = stuff_octree(tree)
        # 8 cells: 27 corners + 8 centers.
        assert mesh.num_nodes == 35
        assert len(spacing) == mesh.num_nodes
        assert_conforming(mesh, UNIT)

    def test_graded_tree_conforms(self, graded_cube_tree):
        mesh, _ = stuff_octree(graded_cube_tree)
        assert_conforming(mesh, UNIT)

    def test_forest_conforms(self):
        box = AABB((0.0, 0.0, 0.0), (2.0, 1.0, 1.0))
        tree = LinearOctree(box, (2, 1, 1))
        tree.refine(UniformSizingField(0.5))
        tree.balance()
        mesh, _ = stuff_octree(tree)
        assert_conforming(mesh, box)

    def test_spacing_reflects_leaf_sizes(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        sizes = {graded_cube_tree.cell_size(l) for l in graded_cube_tree.levels}
        assert set(np.unique(spacing)) <= sizes

    def test_empty_tree_rejected(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        tree.levels = {}
        with pytest.raises(ValueError):
            stuff_octree(tree)

    def test_deterministic(self, graded_cube_tree):
        m1, _ = stuff_octree(graded_cube_tree)
        m2, _ = stuff_octree(graded_cube_tree)
        assert np.array_equal(m1.points, m2.points)
        assert np.array_equal(m1.tets, m2.tets)


class TestJitterMesh:
    def test_volume_preserved_and_positive(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        jittered = jitter_mesh(mesh, spacing, amplitude=0.15, seed=1)
        jittered.validate()
        assert jittered.total_volume() == pytest.approx(1.0)

    def test_topology_unchanged(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        jittered = jitter_mesh(mesh, spacing, amplitude=0.15)
        assert np.array_equal(jittered.tets, mesh.tets)

    def test_interior_nodes_moved(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        jittered = jitter_mesh(mesh, spacing, amplitude=0.15, seed=0)
        assert not np.array_equal(jittered.points, mesh.points)

    def test_boundary_nodes_stay_on_boundary(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        jittered = jitter_mesh(mesh, spacing, amplitude=0.2, seed=2)
        for axis in range(3):
            for value in (0.0, 1.0):
                before = np.abs(mesh.points[:, axis] - value) < 1e-12
                assert np.all(
                    np.abs(jittered.points[before, axis] - value) < 1e-12
                )

    def test_zero_amplitude_identity(self, cube_mesh):
        spacing = np.ones(cube_mesh.num_nodes)
        assert jitter_mesh(cube_mesh, spacing, amplitude=0.0) is cube_mesh

    def test_validation(self, cube_mesh):
        with pytest.raises(ValueError):
            jitter_mesh(cube_mesh, np.ones(3), amplitude=0.1)
        with pytest.raises(ValueError):
            jitter_mesh(cube_mesh, np.ones(cube_mesh.num_nodes), amplitude=0.7)

    def test_deterministic(self, graded_cube_tree):
        mesh, spacing = stuff_octree(graded_cube_tree)
        a = jitter_mesh(mesh, spacing, amplitude=0.1, seed=9)
        b = jitter_mesh(mesh, spacing, amplitude=0.1, seed=9)
        assert np.array_equal(a.points, b.points)
