"""Tests for repro.mesh.delaunay and repro.mesh.generator."""

import numpy as np
import pytest

from repro.mesh.delaunay import delaunay_tetrahedralize
from repro.mesh.generator import METHODS, generate_mesh
from repro.velocity.basin import default_san_fernando_like_model
from repro.velocity.sizing import UniformSizingField


class TestDelaunay:
    def test_cube_corners_fill_cube(self):
        corners = np.array(
            [
                [x, y, z]
                for x in (0.0, 1.0)
                for y in (0.0, 1.0)
                for z in (0.0, 1.0)
            ]
        )
        rng = np.random.default_rng(0)
        interior = rng.random((20, 3)) * 0.8 + 0.1
        mesh = delaunay_tetrahedralize(np.vstack([corners, interior]))
        mesh.validate()
        assert mesh.total_volume() == pytest.approx(1.0)

    def test_orientation_positive(self):
        rng = np.random.default_rng(1)
        mesh = delaunay_tetrahedralize(rng.random((50, 3)))
        mesh.validate()  # checks positive orientation

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            delaunay_tetrahedralize(np.zeros((3, 3)))

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            delaunay_tetrahedralize(np.zeros((10, 2)))

    def test_no_unused_nodes(self):
        rng = np.random.default_rng(2)
        mesh = delaunay_tetrahedralize(rng.random((30, 3)))
        assert len(mesh.unused_nodes()) == 0


class TestGenerator:
    @pytest.fixture(scope="class")
    def model(self):
        return default_san_fernando_like_model()

    def test_stuffing_pipeline(self, model):
        mesh, report = generate_mesh(model, period=25.0, seed=0)
        mesh.validate()
        assert mesh.is_connected()
        assert report.method == "stuffing"
        assert report.num_nodes == mesh.num_nodes
        assert mesh.total_volume() == pytest.approx(model.domain.volume)

    def test_delaunay_pipeline(self, model):
        mesh, report = generate_mesh(model, period=25.0, method="delaunay")
        mesh.validate()
        assert report.method == "delaunay"
        assert mesh.total_volume() == pytest.approx(
            model.domain.volume, rel=1e-6
        )

    def test_methods_registry(self):
        assert set(METHODS) == {"stuffing", "delaunay"}

    def test_unknown_method_rejected(self, model):
        with pytest.raises(ValueError, match="method"):
            generate_mesh(model, period=25.0, method="magic")

    def test_determinism(self, model):
        m1, _ = generate_mesh(model, period=25.0, seed=4)
        m2, _ = generate_mesh(model, period=25.0, seed=4)
        assert np.array_equal(m1.points, m2.points)
        assert np.array_equal(m1.tets, m2.tets)

    def test_seed_changes_mesh(self, model):
        m1, _ = generate_mesh(model, period=25.0, seed=1)
        m2, _ = generate_mesh(model, period=25.0, seed=2)
        assert not (
            m1.num_nodes == m2.num_nodes
            and np.array_equal(m1.points, m2.points)
        )

    def test_shorter_period_more_nodes(self, model):
        coarse, _ = generate_mesh(model, period=25.0)
        fine, _ = generate_mesh(model, period=10.0, points_per_wavelength=1.3514)
        assert fine.num_nodes > coarse.num_nodes

    def test_sizing_override(self, model):
        mesh, _ = generate_mesh(
            model,
            period=25.0,
            sizing=UniformSizingField(5000.0),
            jitter=0.0,
            dither=False,
        )
        mesh.validate()
        # Uniform 5 km sizing over a 50x50x10 km box: 10x10x2 cells of
        # 5 km -> 11*11*3 corners + 200 centers.
        assert mesh.num_nodes == 11 * 11 * 3 + 200

    def test_report_accounting(self, model):
        _, report = generate_mesh(model, period=25.0)
        assert report.seconds_total == pytest.approx(
            report.seconds_octree + report.seconds_mesh
        )
        assert report.octree_leaves > 0
