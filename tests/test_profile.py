"""Tests for the critical-path profiler (DESIGN.md §14).

Covers the acceptance contract:

* the critical-path identity (``sum(buckets) == t_smvp`` and the path
  length matching it) holds on all four backends,
* ``profile=True`` never changes the numbers — outputs stay
  bit-identical to the unprofiled executor, on every backend and on
  the ABFT path,
* the overlapped backend reports nonzero overlap efficiency (sf10e
  here; the REPRO_LARGE-gated sf2e variant rides the ``large`` mark),
* ABFT verify/recovery windows land in their own buckets,
* trace JSON round-trips every field including ``pe_spans``, and
  future ``schema_version`` values are rejected with a clear error,
* folded stacks / snapshots / the noise-aware ``--regress`` gate,
* the superstep task DAG and the DriftMonitor's per-term residuals.
"""

import json
import re

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.model.machine import MACHINES
from repro.partition.base import partition_mesh
from repro.profile import (
    HOST,
    PeSpan,
    SpanRecorder,
    SuperstepSpans,
    analyze_superstep,
    build_report,
    build_task_dag,
    compare_snapshots,
    fit_wire,
    load_snapshot,
    render_folded,
    render_report,
    snapshot,
)
from repro.smvp.executor import DistributedSMVP
from repro.smvp.trace import TraceLog
from repro.telemetry import DriftMonitor

PES = 4

BACKENDS = ("serial", "threaded", "shared-memory", "overlap")


@pytest.fixture(scope="module")
def demo_partition(demo_mesh):
    return partition_mesh(demo_mesh, PES)


def _rng_x(mesh, seed=0):
    return np.random.default_rng(seed).standard_normal(3 * mesh.num_nodes)


def _profiled_log(mesh, partition, materials, backend, steps=2, **kw):
    log = TraceLog()
    smvp = DistributedSMVP(
        mesh,
        partition,
        materials,
        backend=backend,
        trace_sink=log,
        profile=True,
        **kw,
    )
    x = _rng_x(mesh)
    try:
        ys = [smvp.multiply(x) for _ in range(steps)]
    finally:
        smvp.close()
    return log, ys


class TestCriticalPathIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identity_and_bit_identical_output(
        self, demo_mesh, demo_partition, demo_materials, backend
    ):
        plain = DistributedSMVP(
            demo_mesh, demo_partition, demo_materials, backend=backend
        )
        x = _rng_x(demo_mesh)
        try:
            reference = plain.multiply(x)
        finally:
            plain.close()
        log, ys = _profiled_log(
            demo_mesh, demo_partition, demo_materials, backend
        )
        for y in ys:
            assert np.array_equal(y, reference)
        assert len(log.traces) == 2
        for trace in log.traces:
            assert trace.pe_spans is not None
            profile = analyze_superstep(trace)
            assert profile.identity_error <= 1e-9
            assert profile.critical_len == pytest.approx(trace.t_smvp)
            assert sum(profile.buckets.values()) == pytest.approx(
                trace.t_smvp
            )
            assert set(profile.pe_compute) == set(range(PES))
            assert all(v >= 0.0 for v in profile.buckets.values())

    def test_straggler_scores_center_on_median(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=1
        )
        profile = analyze_superstep(log.traces[0])
        scores = sorted(profile.straggler.values())
        assert all(s > 0.0 for s in scores)
        mid = scores[len(scores) // 2]
        assert mid == pytest.approx(1.0, rel=0.5)

    def test_profiler_off_leaves_traces_bare(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log = TraceLog()
        smvp = DistributedSMVP(
            demo_mesh,
            demo_partition,
            demo_materials,
            trace_sink=log,
        )
        try:
            smvp.multiply(_rng_x(demo_mesh))
        finally:
            smvp.close()
        assert log.traces[0].pe_spans is None
        with pytest.raises(ValueError, match="no pe_spans"):
            analyze_superstep(log.traces[0])


class TestOverlapEfficiency:
    def test_nonzero_on_sf10e(self, sf10e_mesh, basin_model):
        from repro.fem.material import materials_from_model

        materials = materials_from_model(sf10e_mesh, basin_model)
        partition = partition_mesh(sf10e_mesh, 8)
        log, _ = _profiled_log(
            sf10e_mesh, partition, materials, "overlap", steps=3
        )
        report = build_report(log)
        assert report.overlap_efficiency is not None
        assert report.overlap_efficiency > 0.0
        assert report.overlap_efficiency <= 1.0
        # Non-overlap backends carry no efficiency at all.
        for profile in report.profiles:
            assert profile.backend == "overlap"

    @pytest.mark.large
    def test_nonzero_on_sf2e(self):
        import os

        if not os.environ.get("REPRO_LARGE"):
            pytest.skip("needs REPRO_LARGE=1")
        from repro.fem.material import materials_from_model
        from repro.mesh.instances import get_instance
        from repro.velocity.basin import default_san_fernando_like_model

        mesh, _ = get_instance("sf2e").build()
        materials = materials_from_model(
            mesh, default_san_fernando_like_model()
        )
        partition = partition_mesh(mesh, 8)
        log, _ = _profiled_log(mesh, partition, materials, "overlap", steps=2)
        report = build_report(log)
        assert report.overlap_efficiency is not None
        assert report.overlap_efficiency > 0.0

    def test_none_off_the_overlapped_path(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=1
        )
        assert analyze_superstep(log.traces[0]).overlap_efficiency is None


class TestAbftPath:
    def test_verify_bucket_and_heal_spans(
        self, demo_mesh, demo_partition, demo_materials
    ):
        plain = DistributedSMVP(demo_mesh, demo_partition, demo_materials)
        x = _rng_x(demo_mesh, seed=2)
        try:
            reference = plain.multiply(x)
        finally:
            plain.close()
        log = TraceLog()
        smvp = DistributedSMVP(
            demo_mesh,
            demo_partition,
            demo_materials,
            injector=FaultInjector(FaultConfig(seed=5, flip_y_rate=1.0)),
            abft=True,
            trace_sink=log,
            profile=True,
        )
        try:
            healed = smvp.multiply(x)
        finally:
            smvp.close()
        assert np.array_equal(healed, reference)
        trace = log.traces[0]
        profile = analyze_superstep(trace)
        assert profile.identity_error <= 1e-9
        assert profile.buckets["verify"] > 0.0
        # Every PE's output was flipped, so every PE recomputed: the
        # heal time lands in the recovery bucket, not verify.
        assert profile.buckets["recovery"] > 0.0
        kinds = {s.kind for s in trace.pe_spans}
        assert "verify" in kinds
        assert "recovery" in kinds


class TestTraceRoundtrip:
    def test_roundtrip_every_field(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log = TraceLog()
        smvp = DistributedSMVP(
            demo_mesh,
            demo_partition,
            demo_materials,
            injector=FaultInjector(FaultConfig(seed=1, drop_rate=0.1)),
            trace_sink=log,
            profile=True,
        )
        try:
            smvp.multiply(
                np.random.default_rng(3).standard_normal(
                    (3 * demo_mesh.num_nodes, 2)
                )
            )
        finally:
            smvp.close()
        text = log.render_json()
        payload = json.loads(text)
        assert payload["schema_version"] == 2
        assert payload["version"] == 1  # legacy readers still accept it
        back = TraceLog.from_json(text)
        assert len(back.traces) == len(log.traces)
        for a, b in zip(log.traces, back.traces):
            assert a.step == b.step
            assert a.kernel == b.kernel
            assert a.backend == b.backend
            assert a.rhs == b.rhs == 2
            for f in ("t_scatter", "t_comp", "t_comm", "t_gather",
                      "t_smvp", "t_verify"):
                assert getattr(a, f) == getattr(b, f)
            assert np.array_equal(a.words_sent, b.words_sent)
            assert np.array_equal(a.blocks_sent, b.blocks_sent)
            assert (a.faults is None) == (b.faults is None)
            if a.faults is not None:
                for name in a.faults.__dataclass_fields__:
                    assert getattr(a.faults, name) == getattr(
                        b.faults, name
                    )
            assert a.pe_spans is not None and b.pe_spans is not None
            assert len(a.pe_spans) == len(b.pe_spans)
            for sa, sb in zip(a.pe_spans, b.pe_spans):
                assert sa == sb
        # Round-tripped spans profile identically.
        pa = analyze_superstep(log.traces[0])
        pb = analyze_superstep(back.traces[0])
        assert pa.buckets == pb.buckets

    def test_unprofiled_roundtrip_has_no_pe_spans(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log = TraceLog()
        smvp = DistributedSMVP(
            demo_mesh, demo_partition, demo_materials, trace_sink=log
        )
        try:
            smvp.multiply(_rng_x(demo_mesh))
        finally:
            smvp.close()
        record = json.loads(log.render_json())["supersteps"][0]
        assert "pe_spans" not in record
        assert TraceLog.from_json(log.render_json()).traces[0].pe_spans is None

    def test_future_schema_version_rejected(self):
        payload = json.dumps(
            {"version": 1, "schema_version": 3, "supersteps": []}
        )
        with pytest.raises(ValueError, match="unsupported trace log version"):
            TraceLog.from_json(payload)

    def test_legacy_version_1_accepted(self):
        payload = json.dumps({"version": 1, "supersteps": []})
        assert len(TraceLog.from_json(payload).traces) == 0


class TestSpans:
    def test_recorder_rebases_and_sorts(self):
        rec = SpanRecorder()
        rec.start()
        rec.add("compute", 1, 10.5, 10.7)
        rec.add("compute", 0, 10.2, 10.4)
        rec.add("wire", 0, 10.8, 10.9, words=7, dst=1)
        spans = list(rec.finish(10.0))
        assert [s.pe for s in spans] == [0, 1, 0]
        assert spans[0].t_start == pytest.approx(0.2)
        assert spans[2].words == 7 and spans[2].dst == 1

    def test_span_dict_roundtrip_omits_defaults(self):
        s = PeSpan("compute", 2, 0.0, 1.0)
        d = s.to_dict()
        assert "words" not in d and "dst" not in d
        assert PeSpan.from_dict(d) == s
        w = PeSpan("wire", 0, 0.0, 0.5, words=9, dst=3)
        assert PeSpan.from_dict(w.to_dict()) == w

    def test_host_windows_filters_host(self):
        spans = SuperstepSpans(
            (
                PeSpan("scatter", HOST, 0.0, 1.0),
                PeSpan("compute", 0, 1.0, 2.0),
                PeSpan("compute", HOST, 1.0, 2.0),
            )
        )
        assert [s.kind for s in spans.host_windows()] == [
            "scatter",
            "compute",
        ]


class TestWireFit:
    def test_empty(self):
        fit = fit_wire([])
        assert fit.messages == 0 and fit.latency_fraction == 1.0

    def test_uniform_sizes_collapse_to_latency(self):
        wires = [PeSpan("wire", 0, 0.0, 2e-6, words=100, dst=1)] * 3
        fit = fit_wire(wires)
        assert fit.seconds_per_word == 0.0
        assert fit.latency_per_msg == pytest.approx(2e-6)

    def test_recovers_linear_model(self):
        a, b = 1e-6, 2e-9
        wires = [
            PeSpan("wire", 0, 0.0, a + b * w, words=w, dst=1)
            for w in (100, 200, 400, 800)
        ]
        fit = fit_wire(wires)
        assert fit.latency_per_msg == pytest.approx(a, rel=1e-6)
        assert fit.seconds_per_word == pytest.approx(b, rel=1e-6)
        assert 0.0 < fit.latency_fraction < 1.0


class TestReports:
    def test_folded_stack_format(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "overlap", steps=1
        )
        folded = render_folded(log)
        lines = folded.strip().splitlines()
        assert lines
        for line in lines:
            assert re.fullmatch(r"[^ ]+ \d+", line), line
        assert any(line.startswith("smvp;") for line in lines)
        assert any(line.startswith("wire;") for line in lines)

    def test_report_renders_blame_table(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=2
        )
        report = build_report(log)
        text = render_report(report)
        assert "critical-path identity" in text
        assert "compute" in text and "bandwidth" in text
        assert report.steps == 2

    def test_snapshot_schema_rejected(self):
        with pytest.raises(ValueError, match="snapshot schema"):
            load_snapshot(json.dumps({"schema": "bogus"}))

    def _snap(self, total, buckets, steps):
        return {
            "schema": "repro-profile/1",
            "t_total": total,
            "buckets": dict(buckets),
            "per_step_t_smvp": steps,
        }

    def test_regress_passes_on_identical(self):
        old = self._snap(1.0, {"compute": 0.8, "latency": 0.2}, [0.5, 0.5])
        ok, lines = compare_snapshots(old, old)
        assert ok
        assert any("[ok]" in line for line in lines)

    def test_regress_fails_on_20pct_slowdown(self):
        old = self._snap(1.0, {"compute": 0.8, "latency": 0.2}, [0.5, 0.5])
        new = self._snap(
            1.25, {"compute": 1.0, "latency": 0.25}, [0.625, 0.625]
        )
        ok, lines = compare_snapshots(old, new)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_regress_ignores_microscopic_buckets(self):
        old = self._snap(
            1.0, {"compute": 0.99, "overhead": 0.001}, [0.5, 0.5]
        )
        new = self._snap(
            1.0, {"compute": 0.99, "overhead": 0.01}, [0.5, 0.5]
        )
        ok, _ = compare_snapshots(old, new)  # 10x jump in a <5% bucket
        assert ok

    def test_regress_widens_with_noise(self):
        # CV is huge, so a 15% slowdown stays inside the band.
        old = self._snap(1.0, {"compute": 1.0}, [0.2, 0.8])
        new = self._snap(1.15, {"compute": 1.15}, [0.2, 0.95])
        ok, lines = compare_snapshots(old, new)
        assert ok
        assert "noise-adjusted" in lines[0]

    def test_snapshot_roundtrips_report(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=2
        )
        report = build_report(log)
        snap = load_snapshot(json.dumps(snapshot(report, {"tag": "t"})))
        assert snap["meta"] == {"tag": "t"}
        assert snap["t_total"] == pytest.approx(report.t_total)
        assert len(snap["per_step_t_smvp"]) == 2


class TestTaskDag:
    def test_structure_and_longest_path(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=1
        )
        dag = build_task_dag(log.traces[0])
        assert "scatter" in dag.nodes and "gather" in dag.nodes
        for pe in range(PES):
            assert f"compute:{pe}" in dag.nodes
            assert f"compute:{pe}" in dag.edges["scatter"]
        msgs = [n for n in dag.nodes if n.startswith("msg:")]
        assert msgs
        path, length = dag.longest_path()
        assert path[0] == "scatter" and path[-1] == "gather"
        assert length <= log.traces[0].t_smvp + 1e-9
        assert length == pytest.approx(
            sum(dag.nodes[n] for n in path)
        )

    def test_overlapped_dag_chains_boundary_to_interior(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "overlap", steps=1
        )
        dag = build_task_dag(log.traces[0])
        for pe in range(PES):
            assert f"interior:{pe}" in dag.edges[f"boundary:{pe}"]


class TestDriftResiduals:
    def test_term_residuals_populated_from_spans(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log, _ = _profiled_log(
            demo_mesh, demo_partition, demo_materials, "serial", steps=2
        )
        smvp = DistributedSMVP(demo_mesh, demo_partition, demo_materials)
        try:
            flops = smvp.flops_per_pe()
            schedule = smvp.schedule
        finally:
            smvp.close()
        monitor = DriftMonitor(flops, schedule, MACHINES["t3e"])
        for trace in log.traces:
            record = monitor.observe(trace)
            assert record.term_residuals is not None
            assert set(record.term_residuals) == {
                "compute",
                "latency",
                "bandwidth",
            }
            for term in record.term_residuals.values():
                assert set(term) == {"measured", "modeled", "residual"}
                assert term["measured"] >= 0.0
            assert "term_residuals" in record.to_dict()
        table = monitor.report().render_table()
        assert "term residuals" in table
        assert "worst:" in table

    def test_bare_traces_skip_residuals(
        self, demo_mesh, demo_partition, demo_materials
    ):
        log = TraceLog()
        smvp = DistributedSMVP(
            demo_mesh, demo_partition, demo_materials, trace_sink=log
        )
        try:
            smvp.multiply(_rng_x(demo_mesh))
            flops = smvp.flops_per_pe()
            schedule = smvp.schedule
        finally:
            smvp.close()
        monitor = DriftMonitor(flops, schedule, MACHINES["t3e"])
        record = monitor.observe(log.traces[0])
        assert record.term_residuals is None
        assert "term_residuals" not in record.to_dict()
        assert "term residuals" not in monitor.report().render_table()


class TestModeledCriticalPath:
    def test_buckets_sum_and_match_model(self):
        from repro.simulate.bsp import modeled_critical_path
        from repro.smvp.schedule import CommSchedule

        class FakeSchedule:
            b_max = 10
            c_max = 500

        machine = MACHINES["t3e"]
        flops = np.array([1000.0, 2000.0, 1500.0])
        buckets = modeled_critical_path(flops, FakeSchedule(), machine)
        assert buckets["compute"] == pytest.approx(1500.0 * machine.tf)
        assert buckets["imbalance"] == pytest.approx(500.0 * machine.tf)
        assert buckets["latency"] == pytest.approx(10 * machine.tl)
        assert buckets["bandwidth"] == pytest.approx(500 * machine.tw)
        assert buckets["verify"] == 0.0 and buckets["recovery"] == 0.0
        assert buckets["total"] == pytest.approx(
            sum(v for k, v in buckets.items() if k != "total")
        )
        rhs2 = modeled_critical_path(flops, FakeSchedule(), machine, rhs=2)
        assert rhs2["compute"] == pytest.approx(2 * buckets["compute"])
        assert rhs2["latency"] == pytest.approx(buckets["latency"])
        assert rhs2["bandwidth"] == pytest.approx(2 * buckets["bandwidth"])
