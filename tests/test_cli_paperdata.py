"""Tests for repro.cli and repro.paperdata."""

import pytest

from repro import paperdata
from repro.cli import main_measure, main_quake, main_tables


class TestPaperData:
    def test_fig7_complete(self):
        # Every (application, subdomains) cell present.
        for app in paperdata.APPLICATIONS:
            for p in paperdata.SUBDOMAIN_COUNTS:
                assert (app, p) in paperdata.SMVP_PROPERTIES
                assert (app, p) in paperdata.BETA_BOUNDS

    def test_fig7_internal_consistency(self):
        # The published F/C_max column must match F and C_max (rounded).
        for props in paperdata.SMVP_PROPERTIES.values():
            assert props.f_over_c == round(props.F / props.C_max)

    def test_c_max_invariants(self):
        for props in paperdata.SMVP_PROPERTIES.values():
            assert props.C_max % 2 == 0
            assert props.C_max % 3 == 0

    def test_f_shrinks_with_p(self):
        for app in paperdata.APPLICATIONS:
            fs = [
                paperdata.SMVP_PROPERTIES[(app, p)].F
                for p in paperdata.SUBDOMAIN_COUNTS
            ]
            assert fs == sorted(fs, reverse=True)

    def test_betas_in_range(self):
        for beta in paperdata.BETA_BOUNDS.values():
            assert 1.0 <= beta <= 2.0

    def test_mesh_growth_factor(self):
        # Halving the period increases node count by ~4-13x (the paper's
        # "factor of nearly eight" with boundary effects).
        nodes = [paperdata.MESH_SIZES[a]["nodes"] for a in paperdata.APPLICATIONS]
        ratios = [b / a for a, b in zip(nodes, nodes[1:])]
        assert all(3 < r < 14 for r in ratios)

    def test_period_of(self):
        assert paperdata.period_of("sf10") == 10.0
        assert paperdata.period_of("sf2") == 2.0
        with pytest.raises(ValueError):
            paperdata.period_of("quake")


class TestCliTables:
    def test_single_table(self, capsys):
        assert main_tables(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_unknown_table_errors(self, capsys):
        with pytest.raises(SystemExit):
            main_tables(["nope"])


class TestCliQuake:
    def test_distributed_run(self, capsys):
        assert main_quake(["--instance", "demo", "--pes", "4", "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "distributed on 4 PEs" in out
        assert "finite=True" in out

    def test_sequential_run(self, capsys):
        assert (
            main_quake(["--instance", "demo", "--steps", "3", "--sequential"])
            == 0
        )
        out = capsys.readouterr().out
        assert "ran 3 steps" in out


class TestCliMesh:
    def test_report_and_export(self, capsys, tmp_path):
        from repro.cli import main_mesh

        out = tmp_path / "demo.npz"
        text = tmp_path / "demo.txt"
        rc = main_mesh(
            ["--instance", "demo", "--out", str(out), "--out-text", str(text)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "quality:" in printed
        assert out.exists() and text.exists()
        from repro.mesh.io import load_mesh

        mesh = load_mesh(out)
        assert mesh.num_nodes == 3805

    def test_gated_instance_errors(self, monkeypatch):
        from repro.cli import main_mesh

        monkeypatch.delenv("REPRO_HUGE", raising=False)
        with pytest.raises(SystemExit):
            main_mesh(["--instance", "sf1e"])


class TestCliMeasure:
    def test_subset(self, capsys):
        rc = main_measure(
            [
                "--instance",
                "demo",
                "--pes",
                "2",
                "--repetitions",
                "1",
                "--kernels",
                "smv0",
                "lmv",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "smv0" in out and "lmv" in out and "MFLOPS" in out

    def test_unknown_kernel_errors(self):
        with pytest.raises(SystemExit):
            main_measure(["--kernels", "bogus"])
