"""End-to-end integration tests asserting the paper's claims.

These run the full pipeline (ground model -> mesh -> partition -> SMVP
statistics -> performance model) on the sf10e instance and check the
*shape* conclusions of the paper — the things the reproduction exists
to demonstrate.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.mesh.instances import INSTANCES, get_instance
from repro.model import (
    CURRENT_100MFLOPS,
    FUTURE_200MFLOPS,
    ModelInputs,
    bisection_bandwidth_bytes,
    half_bandwidth_targets,
    required_tc,
    sustained_bandwidth_bytes,
)
from repro.model.lowlevel import MAXIMAL_BLOCKS, four_word_blocks
from repro.stats import smvp_statistics
from repro.tables.common import instance_stats


@pytest.fixture(scope="module")
def sf10e_stats_by_p(sf10e_mesh):
    return {
        p: smvp_statistics(sf10e_mesh, num_parts=p)
        for p in paperdata.SUBDOMAIN_COUNTS
    }


class TestFigure7Shape:
    """Our measured Figure 7 must track the paper's within a band."""

    @pytest.mark.parametrize("p", paperdata.SUBDOMAIN_COUNTS)
    def test_sf10e_tracks_paper(self, sf10e_stats_by_p, p):
        ours = sf10e_stats_by_p[p]
        paper = paperdata.SMVP_PROPERTIES[("sf10", p)]
        assert ours.F == pytest.approx(paper.F, rel=0.35)
        assert ours.c_max == pytest.approx(paper.C_max, rel=0.35)
        assert ours.b_max == pytest.approx(paper.B_max, rel=0.5)
        assert ours.f_over_c == pytest.approx(paper.f_over_c, rel=0.5)

    def test_avg_row_nonzeros_near_42(self, sf10e_mesh):
        nnz = 9 * (sf10e_mesh.num_nodes + 2 * sf10e_mesh.num_edges)
        per_row = nnz / (3 * sf10e_mesh.num_nodes)
        assert per_row == pytest.approx(paperdata.AVG_ROW_NONZEROS, rel=0.1)

    def test_surface_to_volume_scaling(self, sf10e_mesh):
        """Communication grows like n^{2/3}: comparing sf10e against the
        ~4.4x larger sf5e, the average per-PE communication volume grows
        much more slowly than the node count (sublinearly, near the 2/3
        power)."""
        sf5e_mesh, _ = get_instance("sf5e").build()
        small = smvp_statistics(sf10e_mesh, num_parts=16)
        big = smvp_statistics(sf5e_mesh, num_parts=16)
        node_ratio = sf5e_mesh.num_nodes / sf10e_mesh.num_nodes
        comm_ratio = float(big.c_per_pe.mean() / small.c_per_pe.mean())
        expected = node_ratio ** (2 / 3)
        assert comm_ratio < node_ratio  # strictly sublinear
        assert comm_ratio == pytest.approx(expected, rel=0.4)

    def test_small_messages_claim(self, sf10e_stats_by_p):
        """Block transfers are small even as blocks are maximal: M_avg
        falls fast with p (sf10 paper: 369 down to 36 words)."""
        m4 = sf10e_stats_by_p[4].m_avg
        m128 = sf10e_stats_by_p[128].m_avg
        assert m128 < m4 / 5
        assert m128 < 100  # tens of words

    def test_moderate_neighbor_counts(self, sf10e_stats_by_p):
        """The SMVP sits between nearest-neighbor and all-to-all: at
        p=128 each PE talks to a few dozen others at most, far fewer
        than p-1."""
        b = sf10e_stats_by_p[128].b_max
        assert 6 <= b <= 80
        assert b < 127


class TestSection4Claims:
    def test_bisection_bandwidth_modest(self, sf10e_stats_by_p):
        """Claim (1): bisection bandwidth is not an issue — on the order
        of a couple of link bandwidths, not an exotic requirement.

        The paper quotes ~700 MB/s worst case for sf2; sf10e is ~50x
        smaller, which *raises* the relative bisection demand (T_comm
        shrinks faster than V), so the ceiling here is a few GB/s — still
        a couple of links."""
        worst = max(
            bisection_bandwidth_bytes(
                ModelInputs.from_stats(stats), eff, machine
            )
            for stats in sf10e_stats_by_p.values()
            for eff in (0.5, 0.8, 0.9)
            for machine in (CURRENT_100MFLOPS, FUTURE_200MFLOPS)
        )
        assert worst < 4e9
        # At moderate PE counts (the regime the sf10 mesh reasonably
        # supports) it is firmly modest.
        moderate = max(
            bisection_bandwidth_bytes(
                ModelInputs.from_stats(sf10e_stats_by_p[p]), 0.9, FUTURE_200MFLOPS
            )
            for p in (4, 8, 16, 32)
        )
        assert moderate < 1.5e9

    def test_sustained_bandwidth_hundreds_of_mb(self, sf10e_stats_by_p):
        """Claim (3): ~hundreds of MB/s sustained per PE at 200 MFLOPS
        and 90% efficiency."""
        worst = max(
            sustained_bandwidth_bytes(
                ModelInputs.from_stats(stats), 0.9, FUTURE_200MFLOPS
            )
            for stats in sf10e_stats_by_p.values()
        )
        assert 100e6 < worst < 2e9

    def test_latency_is_the_hard_constraint(self, sf10e_stats_by_p):
        """Claim (2): even with infinite burst bandwidth, block latency
        must be microseconds (maximal blocks) or ~100 ns (cache-line
        blocks) — not milliseconds."""
        stats = sf10e_stats_by_p[128]
        inp = ModelInputs.from_stats(stats)
        tc = required_tc(inp, 0.9, FUTURE_200MFLOPS)
        max_latency = tc * inp.c_max / inp.b_max
        assert max_latency < 50e-6  # microseconds, not milliseconds
        four = half_bandwidth_targets(
            inp, 0.9, FUTURE_200MFLOPS, four_word_blocks()
        )
        assert four.half_tl < 1e-6  # sub-microsecond for cache lines

    def test_ratio_grows_slowly_with_problem_size(self):
        """F/C_max grows ~2x per 10x nodes (paper Section 4.1), not
        linearly — asserted on the paper's own published data."""
        for p in (32, 128):
            r10 = paperdata.SMVP_PROPERTIES[("sf10", p)].f_over_c
            r1 = paperdata.SMVP_PROPERTIES[("sf1", p)].f_over_c
            nodes_ratio = (
                paperdata.MESH_SIZES["sf1"]["nodes"]
                / paperdata.MESH_SIZES["sf10"]["nodes"]
            )
            # ~337x more nodes -> F/C grows ~nodes^(1/3) ~ 7x, far less
            # than the 337x a compute-bound scaling would give.
            growth = r1 / r10
            assert 3 < growth < 30
            assert growth < nodes_ratio / 10


class TestModelAgainstExecutor:
    def test_model_f_equals_executed_f(self, sf10e_mesh):
        """The structural flop model must equal 2*nnz of the actually
        assembled local matrices (done on demo scale in smvp tests; here
        via statistics against the distribution counts)."""
        stats = instance_stats(INSTANCES["sf10e"], 8)
        mesh, _ = get_instance("sf10e").build()
        from repro.partition import partition_mesh
        from repro.smvp import DataDistribution
        from repro.tables.common import DEFAULT_METHOD

        dist = DataDistribution(
            mesh, partition_mesh(mesh, 8, method=DEFAULT_METHOD)
        )
        assert stats.F == dist.local_counts["flops"].max()

    def test_beta_bound_tight_in_practice(self, sf10e_stats_by_p):
        """The paper's point in Figure 6: beta is near 1, so the model
        is a good one."""
        betas = [stats.beta for stats in sf10e_stats_by_p.values()]
        assert max(betas) < 1.3
        assert min(betas) >= 1.0
