"""Tests for the extension modules: absorbing boundaries, multi-basin
models, whole-application predictions, and ASCII charts."""

import numpy as np
import pytest

from repro.fem import (
    SpongeLayer,
    assemble_lumped_mass,
    assemble_stiffness,
    ExplicitTimeStepper,
    PointSource,
    RickerWavelet,
    stable_timestep,
)
from repro.geometry import AABB
from repro.model.application import predict_application
from repro.model.inputs import ModelInputs
from repro.model.machine import CRAY_T3D, CRAY_T3E
from repro.tables.plots import ascii_chart, chart_fig9, chart_fig10
from repro.tables.prediction import balanced_future_machine, compute_predictions, table_prediction
from repro.velocity import BasinModel, Bowl, MultiBasinModel


class TestSpongeLayer:
    DOMAIN = AABB((0.0, 0.0, -10_000.0), (50_000.0, 50_000.0, 0.0))

    def test_zero_in_interior(self):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=2.0)
        center = np.array([[25_000.0, 25_000.0, -5_000.0]])
        # Center is exactly `thickness` from the bottom -> alpha 0.
        assert sponge.node_alpha(center, self.DOMAIN)[0] == 0.0
        deep_interior = np.array([[25_000.0, 25_000.0, -4_000.0]])
        assert sponge.node_alpha(deep_interior, self.DOMAIN)[0] == 0.0

    def test_max_on_absorbing_faces(self):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=2.0)
        pts = np.array(
            [
                [0.0, 25_000.0, -5_000.0],  # x=lo side
                [25_000.0, 25_000.0, -10_000.0],  # bottom
            ]
        )
        assert np.allclose(sponge.node_alpha(pts, self.DOMAIN), 2.0)

    def test_free_surface_undamped(self):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=2.0)
        surface = np.array([[25_000.0, 25_000.0, 0.0]])
        assert sponge.node_alpha(surface, self.DOMAIN)[0] == 0.0

    def test_absorb_top_option(self):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=2.0, absorb_top=True)
        surface = np.array([[25_000.0, 25_000.0, 0.0]])
        assert sponge.node_alpha(surface, self.DOMAIN)[0] == 2.0

    def test_monotone_ramp(self):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=1.0)
        depths = np.linspace(0, 5_000.0, 20)
        pts = np.column_stack(
            [np.full(20, 25_000.0), np.full(20, 25_000.0), -10_000.0 + depths]
        )
        alphas = sponge.node_alpha(pts, self.DOMAIN)
        assert np.all(np.diff(alphas) <= 1e-12)  # decays away from bottom

    def test_dof_alpha_shape(self, demo_mesh, basin_model):
        sponge = SpongeLayer(thickness=5_000.0, max_alpha=1.0)
        alpha = sponge.dof_alpha(demo_mesh, basin_model.domain)
        assert alpha.shape == (3 * demo_mesh.num_nodes,)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpongeLayer(thickness=0.0, max_alpha=1.0)
        with pytest.raises(ValueError):
            SpongeLayer(thickness=1.0, max_alpha=-1.0)


class TestVectorDamping:
    def test_sponge_reduces_late_shaking(self, demo_mesh, demo_materials, basin_model):
        stiffness = assemble_stiffness(demo_mesh, demo_materials)
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        src = PointSource.at_point(
            demo_mesh,
            demo_mesh.bbox.center,
            RickerWavelet(frequency=0.05, amplitude=1e10),
        )
        sponge = SpongeLayer(thickness=10_000.0, max_alpha=0.5)
        alpha = sponge.dof_alpha(demo_mesh, basin_model.domain)

        def run(damping):
            stepper = ExplicitTimeStepper(stiffness, mass, dt, damping_alpha=damping)
            records, _ = stepper.run(
                120, force_at=lambda t: src.force(t, demo_mesh.num_nodes)
            )
            return records[-1].kinetic_proxy

        undamped = run(0.0)
        damped = run(alpha)
        assert damped < undamped

    def test_vector_damping_validation(self, demo_mesh, demo_materials):
        stiffness = assemble_stiffness(demo_mesh, demo_materials)
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        with pytest.raises(ValueError):
            ExplicitTimeStepper(stiffness, mass, 0.01, damping_alpha=np.ones(5))
        with pytest.raises(ValueError):
            ExplicitTimeStepper(stiffness, mass, 0.01, damping_alpha=-1.0)


class TestMultiBasinModel:
    def make(self):
        return MultiBasinModel(
            bowls=[
                Bowl(15_000.0, 15_000.0, 8_000.0, 6_000.0, 1_000.0),
                Bowl(35_000.0, 30_000.0, 10_000.0, 7_000.0, 1_500.0),
            ]
        )

    def test_deepest_bowl_wins(self):
        model = self.make()
        assert model.basement_depth(15_000.0, 15_000.0) == pytest.approx(1_000.0)
        assert model.basement_depth(35_000.0, 30_000.0) == pytest.approx(1_500.0)
        assert model.basement_depth(0.0, 45_000.0) == 0.0

    def test_sediment_in_both_bowls(self):
        model = self.make()
        pts = np.array(
            [[15_000.0, 15_000.0, -100.0], [35_000.0, 30_000.0, -100.0]]
        )
        assert model.in_sediment(pts).all()

    def test_min_vs(self):
        model = self.make()
        assert model.min_vs() == pytest.approx(model.sediment.vs(0.0))

    def test_meshable(self):
        from repro.mesh.generator import generate_mesh

        model = self.make()
        mesh, _ = generate_mesh(model, period=25.0, points_per_wavelength=1.1)
        mesh.validate()
        assert mesh.is_connected()

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiBasinModel(bowls=[])
        with pytest.raises(ValueError):
            MultiBasinModel(bowls=[Bowl(0, 0, 1_000, 1_000, 50_000.0)])


class TestApplicationPrediction:
    def test_t3e_on_sf2_128(self):
        pred = predict_application(ModelInputs.from_paper("sf2", 128), CRAY_T3E)
        # Latency-capped well below 0.9, consistent with the paper.
        assert 0.5 < pred.efficiency < 0.95
        assert pred.total_seconds == pytest.approx(6000 * pred.t_smvp)
        # Achieved rate below the T3E's 70 MFLOPS local rate.
        assert pred.sustained_mflops_per_pe < 71.5

    def test_balanced_net_hits_design_efficiency(self):
        machine = balanced_future_machine()
        pred = predict_application(ModelInputs.from_paper("sf2", 128), machine)
        assert pred.efficiency == pytest.approx(0.9, abs=1e-9)

    def test_larger_problems_more_efficient(self):
        effs = [
            predict_application(ModelInputs.from_paper(app, 128), CRAY_T3E).efficiency
            for app in ("sf10", "sf5", "sf2", "sf1")
        ]
        assert effs == sorted(effs)

    def test_machine_without_constants_rejected(self):
        with pytest.raises(ValueError):
            predict_application(ModelInputs.from_paper("sf2", 128), CRAY_T3D)

    def test_prediction_table(self):
        text = str(table_prediction())
        assert "Cray T3E" in text and "future+balanced-net" in text
        assert len(compute_predictions()) == 2 * 4 * 2


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"a": [(1, 1), (2, 4), (3, 9)], "b": [(1, 2), (3, 1)]},
            title="T",
            width=20,
            height=8,
        )
        assert chart.startswith("T")
        assert "o = a" in chart and "x = b" in chart

    def test_log_scales_drop_nonpositive(self):
        chart = ascii_chart(
            {"a": [(0.0, 1.0), (10.0, 100.0), (100.0, 1.0)]},
            title="T",
            log_x=True,
            log_y=True,
        )
        assert "o = a" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": []}, title="T")

    def test_figure_charts_render(self):
        assert "subdomains" in chart_fig9()
        assert "burst" in chart_fig10("maximal")
        assert "ns" in chart_fig10("4-word")
