"""Fixture: deterministic code the linter must accept without findings."""

import numpy as np

from repro.util.clock import now


def seeded_draws(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(8)


def ordered_iteration(parts):
    shared = {p for p in parts if p >= 0}
    return [2 * p for p in sorted(shared)]


def timed_benchmark():
    """Benchmark code may time itself — through the shim."""
    t0 = now()
    seeded_draws(0)
    return now() - t0


def sound_model(tf, tl, tw, c_max, b_max):
    return (b_max / c_max) * tl + tw, tf
