"""Fixture for the no-print rule.

The docstring mention of print() must not trigger anything.
"""


def leaky_helper(value):
    print("debug:", value)  # finding: bare print in library code
    return value * 2


def quiet_helper(value):
    return value * 2


def suppressed_helper(value):
    print(value)  # repro-lint: ignore[no-print]
    return value


class Reporter:
    def render(self, rows):
        # Method *named* render does not exempt the module.
        for row in rows:
            print(row)  # finding
        return len(rows)
