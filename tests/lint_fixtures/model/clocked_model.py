"""Fixture: model code reading clocks through the shim (still banned).

The ``model`` directory component makes the wall-clock rule treat this
file as pure model code, where simulated time is an output — even the
audited ``repro.util.clock`` shim is a violation here.
"""

from repro.util import clock
from repro.util.clock import now


def leaky_estimate(flops, tf):
    start = clock.now()  # wall-clock (shim call in model code)
    t_est = flops * tf
    return t_est, now() - start  # wall-clock (shim call in model code)
