"""Fixture: determinism violations, one cluster per rule.

Never imported — parsed by ``tests/test_repro_lint.py`` through the
lint engine.  Expected findings are asserted line by line there, so
edits here must be mirrored in the test.
"""

import random
import time
from datetime import datetime

import numpy as np


def unseeded_stdlib(items):
    pick = random.choice(items)  # unseeded-random
    random.shuffle(items)  # unseeded-random
    return pick, random.random()  # unseeded-random


def unseeded_numpy():
    np.random.seed(1234)  # numpy-legacy-random
    return np.random.rand(4)  # numpy-legacy-random


def entropy_rng():
    return np.random.default_rng()  # unseeded-default-rng


def wall_clock_reads():
    t0 = time.perf_counter()  # wall-clock
    stamp = datetime.now()  # wall-clock
    return time.time(), t0, stamp  # wall-clock


def set_order_accumulation(values):
    bucket = {v * 0.1 for v in values}
    total = sum(bucket)  # unordered-iteration
    for item in bucket:  # unordered-iteration
        total += item
    return total


def intentional_entropy():
    """Pragma-suppressed: must NOT appear in the findings."""
    return random.random()  # repro-lint: ignore[unseeded-random]
