"""Fixture: Eq. (1)/(2) dimensional mistakes the units lint must catch."""


def broken_total_cost(tl, bandwidth):
    """Adding a block latency (s) to a bandwidth (bytes/s)."""
    return tl + bandwidth  # unit-mismatch


def broken_budget(c_max, b_max):
    """Subtracting blocks from words."""
    return c_max - b_max  # unit-mismatch


def broken_timescale(tf, tf_ns):
    """Mixing seconds and nanoseconds without converting."""
    return tf + tf_ns  # unit-mismatch


def fine_combinations(tf, tl, tw, c_max, b_max, flops):
    """Dimensionally sound forms that must NOT be flagged."""
    t_comp = flops * tf
    t_comm = b_max * tl + c_max * tw
    return t_comp + t_comm, tl - tw
