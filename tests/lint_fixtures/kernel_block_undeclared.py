"""Fixture: apply_block overrides the ``kernel-registry`` rule audits.

A kernel that grows a native block product must say so — the engine
dispatches on the class-level ``supports_block`` flag, never on
``hasattr`` — so an override without the declaration is either dead
capability or an inherited flag that no longer describes the override.
"""


class SilentBlockKernel:
    """Flagged: block product with no supports_block declaration."""

    def apply_block(self, state, X):
        return state @ X


class DeclaredBlockKernel:
    """Clean: the flag and the override travel together."""

    supports_block = True

    def apply_block(self, state, X):
        return state @ X


class AnnotatedBlockKernel:
    """Clean: an annotated class-level declaration also counts."""

    supports_block: bool = False

    def apply_block(self, state, X):
        out = None
        for j in range(X.shape[1]):
            col = state @ X[:, j]
            out = col if out is None else out
        return out


class WaivedBlockKernel:
    """Clean: the pragma waives the declaration requirement."""

    def apply_block(self, state, X):  # repro-lint: ignore[kernel-registry]
        return state @ X
