"""Fixture: BSP ownership-discipline violations.

Deliberately violates the ownership rules; the expected findings (and
their line numbers) are asserted in tests/test_repro_lint.py.  The
annotated twins show the legal form of each pattern.
"""

from repro.analysis.ownership import exchange_phase, owns, reads_ghosts
from repro.smvp.exchange import run_exchange


def cross_pe_write(y_locals, send):
    y_locals[send.dst][0] += 1.0  # bsp-ownership (line 13)


def neighbour_write(y_locals, pe):
    y_locals[pe + 1][:] = 0.0  # bsp-ownership (line 17)


@owns("y_locals", pe="pe")
def owned_write(y_locals, pe, y):
    y_locals[pe] = y  # clean: the declared owned slot


@exchange_phase("y_locals")
def legal_exchange(y_locals, delivered):
    for send, payload in delivered:
        y_locals[send.dst][send.dof_dst] += payload  # clean


def loop_write(y_locals):
    for pe in range(len(y_locals)):
        y_locals[pe] = y_locals[pe] * 2.0  # clean: own-slot sweep


def ghost_peek(y_locals, pairs, transport):
    early = y_locals[0][:3]  # ghost-read (line 37)
    run_exchange(y_locals, pairs, transport, 0, len(y_locals))
    return early


@reads_ghosts("y_locals")
def legal_peek(y_locals, pairs, transport):
    early = y_locals[0][:3]  # clean: declared pre-exchange read
    run_exchange(y_locals, pairs, transport, 0, len(y_locals))
    return early


def corrupt_payload(send):
    send.payload[0] = 0.0  # exchange-buffer-mutation (line 50)


def zero_payload(send):
    send.payload.fill(0.0)  # exchange-buffer-mutation (line 54)


def unsorted_reduction(totals, per_pe):
    for _pe, value in per_pe.items():
        totals[0] += value  # bsp-reduction-order (line 59)
    return totals


def sorted_reduction(totals, per_pe):
    for _pe, value in sorted(per_pe.items()):
        totals[0] += value  # clean: deterministic order
    return totals
