"""Fixture for the no-bare-except rule.

The docstring's mention of `except:` must not trigger anything.
"""


def naked_handler(work):
    try:
        return work()
    except:  # finding: bare except
        return None


def silent_swallow(work):
    try:
        return work()
    except Exception:  # finding: broad + swallowed
        pass


def silent_ellipsis(work):
    try:
        return work()
    except BaseException:  # finding: broad + swallowed
        ...


def swallow_in_loop(items, work):
    out = []
    for item in items:
        try:
            out.append(work(item))
        except (ValueError, Exception):  # finding: tuple hides a broad catch
            continue
    return out


def observed_broad(work, log):
    # Broad but *observed* — the handler records and re-raises typed.
    try:
        return work()
    except Exception as exc:
        log.append(exc)
        raise RuntimeError("work failed") from exc


def narrow_swallow(work):
    # Narrow swallow is allowed: the author named what they expect.
    try:
        return work()
    except KeyError:
        pass


def suppressed_swallow(work):
    try:
        return work()
    except Exception:  # repro-lint: ignore[no-bare-except]
        pass
