"""Fixture: Kernel.prepare results mutated outside apply/prepare.

Deliberately violates ``prepare-purity``; expected findings are
asserted in tests/test_repro_lint.py.
"""


class CachedBackend:
    def setup(self, kernel, matrices):
        self.states = [kernel.prepare(m) for m in matrices]

    def poke(self, pe):
        self.states[pe].data[0] = 0.0  # prepare-purity (line 13)

    def scrub(self):
        self.states[0].sort_indices()  # prepare-purity (line 16)

    def rebuild(self, kernel, matrices):
        self.states = [kernel.prepare(m) for m in matrices]  # clean

    def apply(self, pe, x):
        self.states[pe].data[0] = 1.0  # clean: apply is exempt
        return x


def local_mutation(kernel, matrix):
    state = kernel.prepare(matrix)
    state.fill(0.0)  # prepare-purity (line 28)
    return state


def local_rebinding(kernel, matrix):
    state = kernel.prepare(matrix)
    state = None  # clean: rebinding, not mutation
    return state
