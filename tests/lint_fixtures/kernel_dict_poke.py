"""Fixture: direct kernel-dict pokes the ``kernel-registry`` rule flags.

Callers must resolve kernels through ``get_kernel(name)`` — dict
subscripts skip validation and pin callers to the one-shot calling
convention.
"""

from repro.smvp import kernels
from repro.smvp.kernels import KERNEL_REGISTRY, KERNELS


def one_shot_product(matrix, x):
    fn = KERNELS["csr"]
    return fn(matrix, x)


def registry_poke(matrix, x):
    kernel = KERNEL_REGISTRY["bsr3x3"]
    return kernel(matrix, x)


def attribute_poke(matrix, x):
    return kernels.KERNELS["python-csr"](matrix, x)


def sanctioned_lookup(name):
    """The registry API is the clean path — no finding here."""
    return kernels.get_kernel(name)
