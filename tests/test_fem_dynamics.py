"""Tests for repro.fem.source, repro.fem.timestepper, repro.fem.material,
repro.fem.memory."""

import numpy as np
import pytest

from repro import paperdata
from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.material import ElementMaterials, materials_from_model
from repro.fem.memory import memory_model, paper_rule_bytes
from repro.fem.source import PointSource, RickerWavelet
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep


class TestMaterials:
    def test_homogeneous_velocities(self):
        m = ElementMaterials.homogeneous(5, vs=1000.0, vp=1732.0, rho=2000.0)
        assert np.allclose(m.vs(), 1000.0)
        assert np.allclose(m.vp(), 1732.0, rtol=1e-3)

    def test_from_model_contrast(self, demo_mesh, basin_model):
        mats = materials_from_model(demo_mesh, basin_model)
        assert mats.num_elements == demo_mesh.num_elements
        assert mats.vs().min() < 1000 < mats.vs().max()

    def test_validation(self):
        with pytest.raises(ValueError):
            ElementMaterials(np.ones(2), np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            ElementMaterials(np.ones(2), -np.ones(2), np.ones(2))


class TestRickerWavelet:
    def test_peak_at_delay(self):
        w = RickerWavelet(frequency=2.0, amplitude=3.0)
        t = np.linspace(0, 2, 2001)
        values = w(t)
        assert t[np.argmax(values)] == pytest.approx(w.delay, abs=1e-3)
        assert values.max() == pytest.approx(3.0, rel=1e-4)

    def test_starts_near_zero(self):
        w = RickerWavelet(frequency=2.0)
        assert abs(w(0.0)) < 1e-3 * w.amplitude

    def test_zero_mean_integral(self):
        w = RickerWavelet(frequency=1.0)
        t = np.linspace(0, 10, 20001)
        assert np.trapezoid(w(t), t) == pytest.approx(0.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RickerWavelet(frequency=0.0)


class TestPointSource:
    def test_nearest_node(self, demo_mesh):
        target = demo_mesh.points[17]
        src = PointSource.at_point(demo_mesh, target, RickerWavelet(1.0))
        assert src.node == 17

    def test_force_vector(self, demo_mesh):
        w = RickerWavelet(frequency=1.0, amplitude=2.0)
        src = PointSource(node=3, direction=(0, 0, 2.0), wavelet=w)
        f = src.force(w.delay, demo_mesh.num_nodes)
        assert f.shape == (3 * demo_mesh.num_nodes,)
        assert f[3 * 3 + 2] == pytest.approx(2.0)
        assert np.count_nonzero(f) == 1

    def test_direction_normalized(self):
        src = PointSource(node=0, direction=(3.0, 0, 4.0), wavelet=RickerWavelet(1.0))
        assert np.linalg.norm(src.direction) == pytest.approx(1.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            PointSource(node=0, direction=(0, 0, 0), wavelet=RickerWavelet(1.0))


class TestStableTimestep:
    def test_positive_and_scales(self, demo_mesh):
        slow = ElementMaterials.homogeneous(demo_mesh.num_elements, vs=500.0, vp=900.0)
        fast = ElementMaterials.homogeneous(demo_mesh.num_elements, vs=1000.0, vp=1800.0)
        dt_slow = stable_timestep(demo_mesh, slow)
        dt_fast = stable_timestep(demo_mesh, fast)
        assert dt_slow > 0
        assert dt_slow == pytest.approx(2 * dt_fast)

    def test_safety_validated(self, demo_mesh):
        mats = ElementMaterials.homogeneous(demo_mesh.num_elements)
        with pytest.raises(ValueError):
            stable_timestep(demo_mesh, mats, safety=0.0)


class TestExplicitTimeStepper:
    @pytest.fixture(scope="class")
    def system(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        m = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        return demo_mesh, k, m, dt

    def test_zero_force_stays_at_rest(self, system):
        mesh, k, m, dt = system
        stepper = ExplicitTimeStepper(k, m, dt)
        records, _ = stepper.run(10)
        assert records[-1].max_displacement == 0.0

    def test_source_produces_bounded_motion(self, system):
        mesh, k, m, dt = system
        src = PointSource.at_point(
            mesh, mesh.bbox.center, RickerWavelet(frequency=0.05, amplitude=1e10)
        )
        stepper = ExplicitTimeStepper(k, m, dt, damping_alpha=0.05)
        records, seis = stepper.run(
            60,
            force_at=lambda t: src.force(t, mesh.num_nodes),
            record_nodes=np.array([0, src.node]),
        )
        peak = max(r.max_displacement for r in records)
        assert 0 < peak < 1e3  # moved, but numerically stable
        assert seis.shape == (60, 2, 3)
        # The source node moves more than a far corner node.
        assert np.abs(seis[:, 1]).max() > np.abs(seis[:, 0]).max()

    def test_energy_stays_finite_without_damping(self, system):
        mesh, k, m, dt = system
        src = PointSource.at_point(
            mesh, mesh.bbox.center, RickerWavelet(frequency=0.05, amplitude=1e10)
        )
        stepper = ExplicitTimeStepper(k, m, dt)
        records, _ = stepper.run(
            80, force_at=lambda t: src.force(t, mesh.num_nodes)
        )
        assert np.isfinite(records[-1].max_displacement)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_unstable_dt_blows_up(self, system):
        mesh, k, m, dt = system
        src = PointSource.at_point(
            mesh, mesh.bbox.center, RickerWavelet(frequency=0.05, amplitude=1e10)
        )
        stepper = ExplicitTimeStepper(k, m, dt * 20)
        records, _ = stepper.run(
            80, force_at=lambda t: src.force(t, mesh.num_nodes)
        )
        peaks = [r.max_displacement for r in records]
        assert (not np.isfinite(peaks[-1])) or peaks[-1] > 1e12

    def test_custom_smvp_hook_used(self, system):
        mesh, k, m, dt = system
        calls = []

        def spy(x):
            calls.append(1)
            return k @ x

        stepper = ExplicitTimeStepper(k, m, dt, smvp=spy)
        stepper.run(5)
        assert len(calls) == 5

    def test_validation(self, system):
        mesh, k, m, dt = system
        with pytest.raises(ValueError):
            ExplicitTimeStepper(k, m[:-3], dt)
        with pytest.raises(ValueError):
            ExplicitTimeStepper(k, m, 0.0)
        with pytest.raises(ValueError):
            ExplicitTimeStepper(k, np.zeros_like(m), dt)


class TestMemoryModel:
    def test_paper_rule_ballpark(self):
        # Apply the structural model to the paper's sf2 counts: it
        # should land in the same ballpark as the 1.2 KB/node rule.
        sizes = paperdata.MESH_SIZES["sf2"]
        mm = memory_model(sizes["nodes"], sizes["edges"], sizes["elements"])
        assert 0.5 * paperdata.MEMORY_BYTES_PER_NODE < mm.bytes_per_node
        assert mm.bytes_per_node < 1.5 * paperdata.MEMORY_BYTES_PER_NODE

    def test_sf2_total_memory_near_450mb(self):
        sizes = paperdata.MESH_SIZES["sf2"]
        mm = memory_model(sizes["nodes"], sizes["edges"], sizes["elements"])
        assert 300 < mm.mbytes < 600  # paper: ~450 MB

    def test_components_sum(self):
        mm = memory_model(100, 670, 550)
        assert mm.total_bytes == mm.matrix_bytes + mm.vector_bytes + mm.mesh_bytes

    def test_paper_rule_helper(self):
        assert paper_rule_bytes(1000) == pytest.approx(1.2 * 1024 * 1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_model(-1, 0)
