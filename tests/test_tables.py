"""Tests for repro.tables (render + every generator)."""

import pytest

from repro.tables.render import Table, format_cell
from repro.tables.report import TABLES, generate


class TestFormatCell:
    def test_ints_get_separators(self):
        assert format_cell(1234567) == "1,234,567"

    def test_floats_three_sig_figs(self):
        assert format_cell(0.123456) == "0.123"
        assert format_cell(3.14159) == "3.14"

    def test_zero_and_bool_and_str(self):
        assert format_cell(0.0) == "0"
        assert format_cell(True) == "True"
        assert format_cell("abc") == "abc"


class TestTable:
    def test_alignment_and_title(self):
        t = Table(title="T", headers=["name", "value"])
        t.add_row("alpha", 12)
        t.add_row("b", 3456)
        text = str(t)
        assert text.startswith("T\n=")
        lines = text.splitlines()
        # Layout: title, rule, header, separator, rows...
        assert "alpha" in lines[4]
        # Numbers right-aligned: the ones digits line up.
        assert lines[4].rstrip().endswith("12")
        assert lines[5].rstrip().endswith("3,456")

    def test_row_width_checked(self):
        t = Table(title="T", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_notes(self):
        t = Table(title="T", headers=["a"])
        t.add_note("hello")
        assert "note: hello" in str(t)


class TestGenerators:
    """Each table generator must run and mention its key content.

    These render real (small-instance) data, so they double as
    integration smoke tests for the whole pipeline.
    """

    @pytest.fixture(autouse=True, scope="class")
    def _warm_caches(self, demo_mesh, sf10e_mesh):
        # Session mesh fixtures warm the instance cache used by tables.
        return None

    def test_registry_complete(self):
        assert set(TABLES) == {
            "fig2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig9-chart",
            "fig10a",
            "fig10b",
            "fig10-chart",
            "fig11",
            "exflow",
            "memory",
            "tf",
            "validation",
            "prediction",
            "reliability",
        }

    def test_fig2(self):
        text = generate(["fig2"])
        assert "sf10e" in text and "7,294" in text

    def test_fig6(self):
        text = generate(["fig6"])
        assert "beta" in text
        assert "1.0" in text

    def test_fig7(self):
        text = generate(["fig7"])
        assert "C_max" in text and "838,224" in text

    def test_fig8(self):
        text = generate(["fig8"])
        assert "bisection" in text

    def test_fig9(self):
        text = generate(["fig9"])
        assert "279" in text  # the ~300 MB/s headline cell

    def test_fig10(self):
        text = generate(["fig10a", "fig10b"])
        assert "maximal blocks" in text and "4-word blocks" in text
        assert "infeasible" in text

    def test_fig11(self):
        text = generate(["fig11"])
        assert "half-bandwidth" in text

    def test_exflow(self):
        text = generate(["exflow"])
        assert "EXFLOW" in text and "155" in text

    def test_memory(self):
        text = generate(["memory"])
        assert "450" in text  # paper's sf2 memory example

    def test_validation_table(self):
        text = generate(["validation"])
        assert "True" in text and "beta" in text

    def test_unknown_table(self):
        with pytest.raises(ValueError):
            generate(["fig99"])

    def test_generate_all_smoke(self):
        # Includes the tf measurement (a real timing run); just check it
        # produces every section.
        text = generate()
        for title in ("Figure 2", "Figure 7", "Figure 11", "Section 3.1"):
            assert title in text
