"""Tests for repro.velocity (profiles, basin, sizing)."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.velocity import (
    BasinModel,
    LayeredProfile,
    LinearGradientProfile,
    PowerLawSedimentProfile,
    UniformSizingField,
    WavelengthSizingField,
    default_san_fernando_like_model,
)


class TestProfiles:
    def test_linear_gradient_monotone_and_clamped(self):
        p = LinearGradientProfile(vs_surface=2500, gradient_per_m=0.15, vs_max=4000)
        depths = np.array([0, 1000, 5000, 50_000])
        vs = p.vs(depths)
        assert vs[0] == 2500
        assert np.all(np.diff(vs) >= 0)
        assert vs[-1] == 4000

    def test_power_law_shape(self):
        p = PowerLawSedimentProfile(vs_surface=300, ref_depth=50, exponent=0.45, vs_max=1200)
        assert p.vs(0.0) == pytest.approx(300)
        assert p.vs(50.0) == pytest.approx(300 * 2**0.45)
        assert p.vs(1e9) == 1200

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            LinearGradientProfile().vs(np.array([-5.0]))

    def test_vp_poisson_solid(self):
        p = LinearGradientProfile()
        assert p.vp(0.0) == pytest.approx(p.vs(0.0) * np.sqrt(3))

    def test_density_physical_range(self):
        for profile in (LinearGradientProfile(), PowerLawSedimentProfile()):
            rho = profile.rho(np.array([0.0, 100.0, 5000.0]))
            assert np.all(rho >= 1400) and np.all(rho <= 3000)

    def test_layered_lookup(self):
        p = LayeredProfile(layers=[(0.0, 400.0), (100.0, 800.0), (1000.0, 2000.0)])
        assert list(p.vs(np.array([0, 50, 100, 500, 2000]))) == [
            400,
            400,
            800,
            800,
            2000,
        ]

    def test_layered_rejects_unsorted(self):
        with pytest.raises(ValueError):
            LayeredProfile(layers=[(100.0, 1.0), (0.0, 2.0)])

    def test_layered_rejects_missing_surface(self):
        with pytest.raises(ValueError):
            LayeredProfile(layers=[(10.0, 1.0)])


class TestBasinModel:
    def test_basement_depth_peak_and_edge(self, basin_model):
        peak = basin_model.basement_depth(
            basin_model.center_x, basin_model.center_y
        )
        assert peak == pytest.approx(basin_model.depth_max)
        outside = basin_model.basement_depth(0.0, 0.0)
        assert outside == 0.0

    def test_sediment_is_slower_than_rock(self, basin_model):
        sediment_pt = np.array(
            [[basin_model.center_x, basin_model.center_y, -100.0]]
        )
        rock_pt = np.array([[1000.0, 1000.0, -100.0]])
        assert basin_model.vs(sediment_pt)[0] < basin_model.vs(rock_pt)[0] / 3

    def test_below_basement_is_rock(self, basin_model):
        deep = np.array(
            [[basin_model.center_x, basin_model.center_y, -5000.0]]
        )
        assert not basin_model.in_sediment(deep)[0]
        assert basin_model.vs(deep)[0] > 2000

    def test_lame_parameters_consistent(self, basin_model):
        pts = np.array([[25_000.0, 22_000.0, -50.0], [1000.0, 1000.0, -50.0]])
        lam, mu = basin_model.lame_parameters(pts)
        rho = basin_model.rho(pts)
        vs = basin_model.vs(pts)
        vp = basin_model.vp(pts)
        assert np.allclose(mu, rho * vs**2)
        assert np.allclose(lam, rho * (vp**2 - 2 * vs**2))

    def test_min_vs_is_soft_sediment(self, basin_model):
        assert basin_model.min_vs() == pytest.approx(
            basin_model.sediment.vs(0.0)
        )

    def test_rejects_basin_deeper_than_domain(self):
        with pytest.raises(ValueError):
            BasinModel(
                domain=AABB((0, 0, -1000.0), (50_000.0, 50_000.0, 0.0)),
                depth_max=1800.0,
            )

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            BasinModel(semi_x=-1.0)


class TestSizingFields:
    def test_uniform(self):
        f = UniformSizingField(100.0)
        assert np.all(f.h(np.zeros((5, 3))) == 100.0)
        assert f.h_min() == 100.0

    def test_uniform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            UniformSizingField(0.0)

    def test_wavelength_rule(self, basin_model):
        f = WavelengthSizingField(basin_model, period=10.0, points_per_wavelength=10.0)
        pt = np.array([[1000.0, 1000.0, -100.0]])  # rock
        expected = basin_model.vs(pt)[0] * 10.0 / 10.0
        assert f.h(pt)[0] == pytest.approx(min(expected, f.ceiling))

    def test_sediment_finer_than_rock(self, basin_model):
        f = WavelengthSizingField(basin_model, period=2.0)
        sediment = np.array([[basin_model.center_x, basin_model.center_y, -100.0]])
        rock = np.array([[1000.0, 1000.0, -100.0]])
        assert f.h(sediment)[0] < f.h(rock)[0]

    def test_clamping(self, basin_model):
        f = WavelengthSizingField(
            basin_model, period=100.0, floor=25.0, ceiling=5000.0
        )
        rock = np.array([[1000.0, 1000.0, -100.0]])
        assert f.h(rock)[0] == 5000.0

    def test_h_min_bound(self, basin_model):
        f = WavelengthSizingField(basin_model, period=2.0)
        samples = basin_model.domain.sample_grid((20, 20, 8))
        assert f.h(samples).min() >= f.h_min() - 1e-9

    def test_halving_period_halves_h(self, basin_model):
        f1 = WavelengthSizingField(basin_model, period=4.0, floor=1.0, ceiling=1e9)
        f2 = WavelengthSizingField(basin_model, period=2.0, floor=1.0, ceiling=1e9)
        pts = np.array([[12_000.0, 9_000.0, -3000.0]])
        assert f1.h(pts)[0] == pytest.approx(2 * f2.h(pts)[0])

    def test_parameter_validation(self, basin_model):
        with pytest.raises(ValueError):
            WavelengthSizingField(basin_model, period=-1.0)
        with pytest.raises(ValueError):
            WavelengthSizingField(basin_model, period=1.0, points_per_wavelength=0)
        with pytest.raises(ValueError):
            WavelengthSizingField(basin_model, period=1.0, floor=10.0, ceiling=5.0)
