"""Tests for repro.mesh.io, repro.mesh.instances, repro.mesh.quality."""

import numpy as np
import pytest

from repro.mesh.instances import (
    INSTANCES,
    clear_mesh_cache,
    get_instance,
    instance_names,
)
from repro.mesh.io import (
    load_mesh,
    load_mesh_text,
    save_mesh,
    save_mesh_text,
)
from repro.mesh.quality import quality_report


class TestBinaryIO:
    def test_roundtrip(self, two_tet_mesh, tmp_path):
        path = tmp_path / "mesh.npz"
        save_mesh(two_tet_mesh, path)
        loaded = load_mesh(path)
        assert np.array_equal(loaded.points, two_tet_mesh.points)
        assert np.array_equal(loaded.tets, two_tet_mesh.tets)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError):
            load_mesh(path)

    def test_atomic_write_leaves_no_tmp(self, two_tet_mesh, tmp_path):
        path = tmp_path / "mesh.npz"
        save_mesh(two_tet_mesh, path)
        assert list(tmp_path.iterdir()) == [path]


class TestTextIO:
    def test_roundtrip_exact(self, two_tet_mesh, tmp_path):
        path = tmp_path / "mesh.txt"
        save_mesh_text(two_tet_mesh, path)
        loaded = load_mesh_text(path)
        # repr() round-trips doubles exactly.
        assert np.array_equal(loaded.points, two_tet_mesh.points)
        assert np.array_equal(loaded.tets, two_tet_mesh.tets)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not-a-mesh\n")
        with pytest.raises(ValueError, match="magic"):
            load_mesh_text(path)

    def test_truncated_file(self, two_tet_mesh, tmp_path):
        path = tmp_path / "mesh.txt"
        save_mesh_text(two_tet_mesh, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]))
        with pytest.raises(ValueError):
            load_mesh_text(path)


class TestInstances:
    def test_registry_names(self):
        assert instance_names() == ("demo", "sf10e", "sf5e", "sf2e", "sf1e")
        assert set(INSTANCES) == set(instance_names())

    def test_get_instance_error_lists_options(self):
        with pytest.raises(KeyError, match="sf10e"):
            get_instance("nope")

    def test_gating(self, monkeypatch):
        inst = INSTANCES["sf2e"]
        monkeypatch.delenv("REPRO_LARGE", raising=False)
        assert not inst.is_enabled()
        with pytest.raises(RuntimeError, match="REPRO_LARGE"):
            inst.build()
        monkeypatch.setenv("REPRO_LARGE", "1")
        assert inst.is_enabled()

    def test_enabled_only_filter(self, monkeypatch):
        monkeypatch.delenv("REPRO_LARGE", raising=False)
        monkeypatch.delenv("REPRO_HUGE", raising=False)
        assert instance_names(enabled_only=True) == ("demo", "sf10e", "sf5e")

    def test_memory_cache_returns_same_object(self):
        a, _ = get_instance("demo").build()
        b, _ = get_instance("demo").build()
        assert a is b

    def test_disk_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MESH_CACHE", str(tmp_path))
        clear_mesh_cache()
        try:
            mesh1, report1 = get_instance("demo").build()
            assert report1 is not None  # fresh build
            assert (tmp_path / "demo-seed0.npz").exists()
            clear_mesh_cache()
            mesh2, report2 = get_instance("demo").build()
            assert report2 is None  # disk hit
            assert np.array_equal(mesh1.points, mesh2.points)
        finally:
            clear_mesh_cache()

    def test_paper_mesh_sizes(self):
        assert INSTANCES["sf10e"].paper_mesh_sizes["nodes"] == 7_294
        assert INSTANCES["demo"].paper_mesh_sizes is None

    def test_calibration_close_to_paper(self, sf10e_mesh):
        paper = INSTANCES["sf10e"].paper_mesh_sizes
        assert abs(sf10e_mesh.num_nodes - paper["nodes"]) / paper["nodes"] < 0.15
        assert (
            abs(sf10e_mesh.num_elements - paper["elements"]) / paper["elements"]
            < 0.25
        )


class TestQualityReport:
    def test_demo_quality(self, demo_mesh):
        qr = quality_report(demo_mesh)
        assert qr.num_nodes == demo_mesh.num_nodes
        assert 0 < qr.min_quality <= qr.mean_quality <= 1
        assert qr.p05_quality > 0.1  # no dominating sliver population
        assert 10 < qr.mean_degree < 20  # unstructured-3D-mesh degree
        assert qr.total_volume == pytest.approx(demo_mesh.total_volume())

    def test_str_contains_key_numbers(self, single_tet_mesh):
        text = str(quality_report(single_tet_mesh))
        assert "nodes=4" in text and "elements=1" in text
