"""Tests for the superstep sanitizer (REPRO_SAN=1) and the race fixtures.

The guarantees under test:

* a clean engine run reports zero findings and is bit-identical to the
  unsanitized path on every backend;
* every seeded race mode in :mod:`repro.smvp.racy` is detected with
  exact ``(pe, step, phase, dof)`` blame (``verify_detection`` finds
  nothing missed);
* with the sanitizer off the executor takes the historical path
  (``sanitizer is None``) and produces the same bits;
* eviction atomicity: a distribution swapped under a live sanitizer is
  flagged (``stale-ownership-map``), while the supported path —
  ``reconfigure_without`` — rebinds the map and carries the report;
* the ``repro-san`` CLI exits 0 clean, 1 on findings, and 4 when an
  injected race goes undetected.
"""

import json

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    SanFinding,
    SanitizerError,
    SuperstepSanitizer,
    TrackedArray,
    _AccessLog,
    sanitizer_enabled,
)
from repro.cli import main_san
from repro.partition.base import partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.racy import (
    RACE_MODES,
    InjectedRace,
    make_racy,
    verify_detection,
)

BACKENDS = ("serial", "threaded", "shared-memory")


@pytest.fixture(scope="module")
def partition4(demo_mesh):
    return partition_mesh(demo_mesh, 4, seed=2)


@pytest.fixture(scope="module")
def partition8(demo_mesh):
    return partition_mesh(demo_mesh, 8, seed=2)


@pytest.fixture(scope="module")
def x_global(demo_mesh):
    return np.random.default_rng(11).standard_normal(3 * demo_mesh.num_nodes)


@pytest.fixture(scope="module")
def reference(demo_mesh, partition4, demo_materials, x_global):
    """The unsanitized serial result — the bit-identity anchor."""
    with DistributedSMVP(demo_mesh, partition4, demo_materials) as ds:
        assert ds.sanitizer is None
        return ds.multiply(x_global)


class TestTrackedArray:
    def test_wrap_is_bit_identical(self):
        base = np.arange(12, dtype=np.float64)
        view = TrackedArray.wrap(base, _AccessLog(), pe=0)
        assert np.array_equal(np.asarray(view), base)
        assert np.shares_memory(view, base)

    def test_records_reads_and_writes_with_dof_precision(self):
        log = _AccessLog()
        view = TrackedArray.wrap(np.zeros(10), log, pe=3)
        _ = view[2:5]
        view[np.array([7, 9])] = 1.0
        kinds = [(pe, kind, list(dofs)) for pe, kind, _, dofs in log.records]
        assert kinds == [(3, "r", [2, 3, 4]), (3, "w", [7, 9])]

    def test_phase_stamped_from_shared_log(self):
        log = _AccessLog()
        view = TrackedArray.wrap(np.zeros(4), log, pe=0)
        _ = view[0]
        log.phase = "gather"
        _ = view[1]
        assert [phase for _, _, phase, _ in log.records] == [
            "compute",
            "gather",
        ]

    def test_derived_views_are_inert(self):
        log = _AccessLog()
        view = TrackedArray.wrap(np.zeros(8), log, pe=0)
        sliced = view[1:4]  # records the parent read...
        n = len(log.records)
        _ = sliced[0]  # ...but the child records nothing
        _ = (view * 2.0)[0]  # ufunc results are inert too
        assert len(log.records) == n

    def test_writes_pass_through_to_base(self):
        base = np.zeros(5)
        view = TrackedArray.wrap(base, _AccessLog(), pe=0)
        view[2] = 7.0
        assert base[2] == 7.0


class TestCleanRuns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_findings_and_bit_identity(
        self, demo_mesh, partition4, demo_materials, x_global, backend, reference
    ):
        with DistributedSMVP(
            demo_mesh,
            partition4,
            demo_materials,
            backend=backend,
            sanitizer=True,
        ) as ds:
            y = ds.multiply(x_global)
            san = ds.sanitizer
        assert san.findings == []
        assert san.steps_checked == 1
        assert np.array_equal(y, reference)

    def test_accesses_are_tracked(
        self, demo_mesh, partition4, demo_materials, x_global
    ):
        with DistributedSMVP(
            demo_mesh, partition4, demo_materials, sanitizer=True
        ) as ds:
            ds.multiply(x_global)
            stats = ds.sanitizer.summary()
        assert stats["reads_tracked"] > 0
        assert stats["writes_tracked"] > 0
        assert stats["by_kind"] == {}

    def test_multi_step_run_stays_clean(
        self, demo_mesh, partition4, demo_materials, x_global
    ):
        with DistributedSMVP(
            demo_mesh, partition4, demo_materials, sanitizer=True
        ) as ds:
            x = x_global
            for _ in range(3):
                y = ds.multiply(x)
                x = y / np.linalg.norm(y)
            assert ds.sanitizer.steps_checked == 3
            assert ds.sanitizer.findings == []


class TestEnvGating:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAN", raising=False)
        assert not sanitizer_enabled()
        monkeypatch.setenv("REPRO_SAN", "1")
        assert sanitizer_enabled()
        monkeypatch.setenv("REPRO_SAN", "0")
        assert not sanitizer_enabled()

    def test_env_builds_sanitizer(
        self, monkeypatch, demo_mesh, partition4, demo_materials
    ):
        monkeypatch.setenv("REPRO_SAN", "1")
        with DistributedSMVP(demo_mesh, partition4, demo_materials) as ds:
            assert ds.sanitizer is not None

    def test_param_overrides_env(
        self, monkeypatch, demo_mesh, partition4, demo_materials
    ):
        monkeypatch.setenv("REPRO_SAN", "1")
        with DistributedSMVP(
            demo_mesh, partition4, demo_materials, sanitizer=False
        ) as ds:
            assert ds.sanitizer is None

    def test_off_is_the_historical_path(
        self, monkeypatch, demo_mesh, partition4, demo_materials, x_global, reference
    ):
        monkeypatch.delenv("REPRO_SAN", raising=False)
        with DistributedSMVP(demo_mesh, partition4, demo_materials) as ds:
            assert ds.sanitizer is None
            assert np.array_equal(ds.multiply(x_global), reference)


class TestRaceDetection:
    @pytest.mark.parametrize("mode", sorted(RACE_MODES))
    def test_every_injected_race_is_blamed_exactly(
        self, demo_mesh, partition8, demo_materials, x_global, mode
    ):
        smvp = make_racy(
            demo_mesh, partition8, demo_materials, mode, seed=3, strict=False
        )
        try:
            x = x_global
            for _ in range(3):
                y = smvp.multiply(x)
                x = y / np.linalg.norm(y)
        finally:
            smvp.close()
        injected = smvp.injected
        findings = smvp.sanitizer.findings
        assert injected, "fixture recorded no ground truth"
        assert findings, "sanitizer saw nothing"
        assert verify_detection(injected, findings) == []
        kind, phase = RACE_MODES[mode]
        assert any(
            f.kind == kind and f.phase == phase for f in findings
        )

    def test_strict_mode_raises_at_step_end(
        self, demo_mesh, partition8, demo_materials, x_global
    ):
        smvp = make_racy(
            demo_mesh,
            partition8,
            demo_materials,
            "input-mutation",
            seed=3,
            strict=True,
        )
        try:
            with pytest.raises(SanitizerError) as err:
                smvp.multiply(x_global)
        finally:
            smvp.close()
        assert any(f.kind == "input-mutation" for f in err.value.findings)

    def test_verify_detection_reports_misses(self):
        race = InjectedRace("input-mutation", 0, 2, "compute", (5,))
        assert verify_detection([race], []) == [race]
        wrong_pe = SanFinding(
            "input-mutation", 3, 0, "compute", (5,), "detail"
        )
        assert verify_detection([race], [wrong_pe]) == [race]
        exact = SanFinding(
            "input-mutation", 2, 0, "compute", (4, 5, 6), "detail"
        )
        assert verify_detection([race], [exact]) == []

    def test_finding_format_carries_exact_blame(self):
        f = SanFinding("ghost-read", 1, 4, "gather", (9, 12), "stale dofs")
        text = f.format()
        assert "step 4" in text
        assert "gather" in text
        assert "pe 1" in text
        assert "ghost-read" in text
        assert "9,12" in text


class TestEvictionAtomicity:
    def test_swapped_distribution_is_flagged(
        self, demo_mesh, partition4, partition8, demo_materials, x_global
    ):
        with DistributedSMVP(
            demo_mesh, partition4, demo_materials, sanitizer=True
        ) as ds:
            ds.sanitizer.strict = False
            swapped = DataDistribution(demo_mesh, partition8)
            assert swapped.ownership_hash != ds.distribution.ownership_hash
            ds.distribution = swapped
            ds.multiply(x_global)
            kinds = {f.kind for f in ds.sanitizer.findings}
        assert "stale-ownership-map" in kinds

    def test_reconfigure_rebinds_and_carries_report(
        self, demo_mesh, partition4, demo_materials, x_global
    ):
        ds = DistributedSMVP(
            demo_mesh, partition4, demo_materials, sanitizer=True
        )
        try:
            ds.multiply(x_global)
            old_san = ds.sanitizer
            new, _redist = ds.reconfigure_without(3)
        finally:
            ds.close()
        try:
            assert new.sanitizer is not None
            assert new.sanitizer is not old_san
            # Bound to the *new* map: hashes agree, so no stale-map noise.
            assert (
                new.sanitizer.ownership_hash
                == new.distribution.ownership_hash
            )
            y = new.multiply(np.asarray(x_global))
            assert new.sanitizer.findings == []
            # adopt() carried the run-level tallies across the eviction.
            assert new.sanitizer.steps_checked == 2
            assert np.all(np.isfinite(y))
        finally:
            new.close()


class TestSanCli:
    def test_clean_run_exits_zero(self, capsys):
        rc = main_san(
            ["--instance", "demo", "--pes", "4", "--steps", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s) over 2 superstep(s)" in out

    def test_racy_run_exits_one_and_detects_all(self, capsys):
        rc = main_san(
            [
                "--instance",
                "demo",
                "--pes",
                "8",
                "--steps",
                "2",
                "--racy",
                "skip-exchange",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale-ghost" in out
        assert "detected 4/4 injected race(s)" in out

    def test_json_report(self, capsys):
        rc = main_san(
            [
                "--instance",
                "demo",
                "--pes",
                "8",
                "--steps",
                "1",
                "--racy",
                "ghost-gather",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert report["summary"]["findings"] >= 1
        assert report["missed"] == []
        kinds = {f["kind"] for f in report["findings"]}
        assert "ghost-read" in kinds

    def test_usage_error_exits_two(self, capsys):
        with pytest.raises(SystemExit) as err:
            main_san(["--racy", "not-a-mode"])
        capsys.readouterr()
        assert err.value.code == 2


class TestSanitizerUnit:
    def _mini(self, strict=True):
        return SuperstepSanitizer(
            num_parts=2,
            local_sizes=[6, 6],
            owned_dofs=[np.arange(6), np.arange(3, 6)],
            expected_sends={(0, 1): np.arange(3), (1, 0): np.arange(3, 6)},
            ownership_hash=0xBEEF,
            strict=strict,
        )

    class _Dist:
        def __init__(self, h):
            self.ownership_hash = h

    def test_duplicate_delivery_is_flagged(self):
        san = self._mini(strict=False)
        san.begin_step(0, self._Dist(0xBEEF))

        class Send:
            def __init__(self, src, dst, dofs):
                self.src, self.dst, self.dof_dst = src, dst, dofs

        ab = Send(0, 1, np.arange(3))
        ba = Send(1, 0, np.arange(3, 6))
        san.check_exchange([(ab, None), (ab, None), (ba, None)])
        san.end_step()
        kinds = [f.kind for f in san.findings]
        assert kinds == ["duplicate-delivery"]
        assert san.findings[0].pe == 1

    def test_strict_raises_only_on_new_findings(self):
        san = self._mini(strict=True)
        san.begin_step(0, self._Dist(0xBEEF))
        san.check_exchange([])  # both scheduled sends missing
        with pytest.raises(SanitizerError):
            san.end_step()
        assert {f.kind for f in san.findings} == {"stale-ghost"}

    def test_render_report_tail(self):
        san = self._mini(strict=False)
        text = san.render_report()
        assert "0 finding(s) over 0 superstep(s)" in text
