"""Tests for the opt-in runtime contracts (``REPRO_CONTRACTS=1``).

The contracts mirror the static schedule checker at the points where
real data flows: distribution construction, executor setup, and the BSP
simulator.  They must be inert when the environment variable is unset
and reject corrupted structures when it is.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.contracts import (
    ContractViolation,
    check_csr_contract,
    check_partition_cover_contract,
    check_schedule_contract,
    contracts_enabled,
)
from repro.partition.base import Partition, partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import CommSchedule, Message


@pytest.fixture
def enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")


@pytest.fixture
def disabled(monkeypatch):
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)


class _StubSchedule:
    def __init__(self, num_parts, messages):
        self.num_parts = num_parts
        self.messages = messages


class TestEnablement:
    def test_flag_reflects_environment(self, enabled):
        assert contracts_enabled()

    def test_flag_off_by_default(self, disabled):
        assert not contracts_enabled()

    def test_disabled_contracts_ignore_garbage(self, disabled):
        """With the flag unset every contract is a no-op, even on junk."""
        check_schedule_contract(_StubSchedule(2, [(0, 1, 5)]))
        check_csr_contract(object(), context="junk")
        check_partition_cover_contract(object(), object())


class TestCleanPipelinePasses:
    def test_distributed_smvp_constructs_under_contracts(
        self, enabled, demo_mesh, demo_materials
    ):
        partition = partition_mesh(demo_mesh, 4, method="rcb")
        smvp = DistributedSMVP(demo_mesh, partition, demo_materials)
        x = np.ones(3 * demo_mesh.num_nodes)
        y = smvp.multiply(x)
        assert np.all(np.isfinite(y))

    def test_two_tet_instance(
        self, enabled, two_tet_mesh, homogeneous_materials
    ):
        partition = partition_mesh(two_tet_mesh, 2, method="rcb")
        smvp = DistributedSMVP(
            two_tet_mesh, partition, homogeneous_materials(two_tet_mesh)
        )
        x = np.ones(3 * two_tet_mesh.num_nodes)
        assert np.all(np.isfinite(smvp.multiply(x)))

    def test_real_schedule_passes_contract(self, enabled, demo_mesh):
        partition = partition_mesh(demo_mesh, 4, method="rcb")
        dist = DataDistribution(demo_mesh, partition)
        check_schedule_contract(CommSchedule(dist), dist)


class TestContractsReject:
    def test_asymmetric_schedule_raises(self, enabled):
        stub = _StubSchedule(2, [Message(src=0, dst=1, nodes=2)])
        with pytest.raises(ContractViolation, match="asymmetry"):
            check_schedule_contract(stub)

    def test_tampered_schedule_vs_distribution_raises(
        self, enabled, demo_mesh
    ):
        partition = partition_mesh(demo_mesh, 4, method="rcb")
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        msgs = list(schedule.messages)[:-2]
        with pytest.raises(ContractViolation, match="coverage"):
            check_schedule_contract(_StubSchedule(4, msgs), dist)

    def test_bad_csr_indptr_raises(self, enabled):
        good = sp.csr_matrix(np.eye(4))
        check_csr_contract(good, context="identity")
        bad = sp.csr_matrix(np.eye(4))
        bad.indptr = np.array([0, 3, 2, 4, 4], dtype=bad.indptr.dtype)
        with pytest.raises(ContractViolation, match="non-decreasing"):
            check_csr_contract(bad, context="identity-corrupt")

    def test_truncated_indptr_raises(self, enabled):
        bad = sp.csr_matrix(np.eye(4))
        bad.indptr = np.array([0, 1, 1, 2, 3], dtype=bad.indptr.dtype)
        with pytest.raises(ContractViolation, match="stored"):
            check_csr_contract(bad, context="identity-truncated")

    def test_nonfinite_csr_data_raises(self, enabled):
        mat = sp.csr_matrix(np.eye(3))
        mat.data[0] = np.nan
        with pytest.raises(ContractViolation, match="NaN"):
            check_csr_contract(mat, context="nan-matrix")

    def test_out_of_range_partition_raises(self, enabled, demo_mesh):
        # Partition's own validation refuses out-of-range indices, so a
        # stub stands in for a corrupted object reaching the contract.
        class _BadPartition:
            num_parts = 4
            parts = np.zeros(demo_mesh.num_elements, dtype=np.int64)

        _BadPartition.parts[0] = 7
        with pytest.raises(ContractViolation, match="outside"):
            check_partition_cover_contract(_BadPartition, demo_mesh)

    def test_empty_pe_raises(self, enabled, demo_mesh):
        parts = np.zeros(demo_mesh.num_elements, dtype=np.int64)
        partition = Partition(parts=parts, num_parts=4)
        with pytest.raises(ContractViolation, match="own no elements"):
            check_partition_cover_contract(partition, demo_mesh)
