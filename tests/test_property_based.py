"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic heart of the reproduction: the β bound, the
Equation (1)/(2) identities, octree encoding and balance, jitter
safety, and partition/schedule invariants under randomized inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.geometry import AABB, tet_quality_radius_ratio, tet_volumes
from repro.model.highlevel import efficiency_from_tc, required_tc
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import (
    MAXIMAL_BLOCKS,
    half_bandwidth_targets,
    latency_for_tradeoff,
    tc_from_blocks,
)
from repro.model.machine import Machine
from repro.octree.linear import LinearOctree, decode_cells, encode_cells
from repro.octree.points import jitter_points
from repro.stats.beta import beta_bound
from repro.tables.render import format_cell
from repro.velocity.sizing import UniformSizingField

# ---------------------------------------------------------------------------
# Strategies

pe_counts = st.integers(min_value=2, max_value=40)


@st.composite
def words_and_blocks(draw):
    n = draw(pe_counts)
    c = draw(
        hnp.arrays(
            np.int64, n, elements=st.integers(min_value=1, max_value=10_000)
        )
    )
    b = draw(
        hnp.arrays(np.int64, n, elements=st.integers(min_value=1, max_value=200))
    )
    return c, b


@st.composite
def model_inputs(draw):
    return ModelInputs(
        label="hyp",
        num_parts=draw(st.integers(2, 128)),
        F=draw(st.integers(1_000, 10**9)),
        c_max=draw(st.integers(6, 10**6)),
        b_max=draw(st.integers(2, 1000)),
    )


efficiencies = st.floats(min_value=0.01, max_value=0.99)
machines = st.floats(min_value=1.0, max_value=10_000.0).map(
    lambda mflops: Machine.from_mflops("hyp", mflops)
)


# ---------------------------------------------------------------------------
# Beta bound


class TestBetaProperties:
    @given(words_and_blocks())
    @settings(max_examples=60)
    def test_beta_in_unit_band(self, cb):
        c, b = cb
        beta = beta_bound(c, b)
        assert 1.0 <= beta <= 2.0 + 1e-9

    @given(words_and_blocks())
    @settings(max_examples=60)
    def test_beta_is_a_true_bound_on_the_model(self, cb):
        """B_max*tl + C_max*tw never exceeds beta * max_i(B_i tl + C_i tw)."""
        c, b = cb
        beta = beta_bound(c, b)
        rng = np.random.default_rng(0)
        for tl, tw in ((1e-6, 1e-9), (1e-9, 1e-6), (5e-6, 5e-8)):
            modeled = b.max() * tl + c.max() * tw
            actual = (b * tl + c * tw).max()
            assert modeled <= beta * actual * (1 + 1e-12)
            assert modeled >= actual * (1 - 1e-12)

    @given(words_and_blocks())
    @settings(max_examples=40)
    def test_beta_one_iff_attained_together(self, cb):
        c, b = cb
        i_c = int(np.argmax(c))
        if b[i_c] == b.max():
            assert beta_bound(c, b) == pytest.approx(1.0)

    @given(words_and_blocks(), st.integers(min_value=2, max_value=7))
    @settings(max_examples=40)
    def test_beta_scale_invariant(self, cb, k):
        c, b = cb
        assert beta_bound(c * k, b) == pytest.approx(beta_bound(c, b))
        assert beta_bound(c, b * k) == pytest.approx(beta_bound(c, b))


# ---------------------------------------------------------------------------
# Model equations


class TestModelProperties:
    @given(model_inputs(), efficiencies, machines)
    @settings(max_examples=80)
    def test_equation_one_roundtrip(self, inputs, eff, machine):
        tc = required_tc(inputs, eff, machine)
        assert tc > 0
        assert efficiency_from_tc(inputs, tc, machine) == pytest.approx(
            eff, rel=1e-9
        )

    @given(model_inputs(), efficiencies, machines, st.floats(0.0, 0.9))
    @settings(max_examples=80)
    def test_equation_two_tradeoff_consistency(self, inputs, eff, machine, frac):
        tc = required_tc(inputs, eff, machine)
        tw = frac * tc
        tl = latency_for_tradeoff(inputs, eff, machine, tw)
        assert tl >= 0
        assert tc_from_blocks(inputs, tl, tw) == pytest.approx(tc, rel=1e-9)

    @given(model_inputs(), efficiencies, machines)
    @settings(max_examples=80)
    def test_half_bandwidth_halves(self, inputs, eff, machine):
        h = half_bandwidth_targets(inputs, eff, machine, MAXIMAL_BLOCKS)
        t_comm = inputs.c_max * h.tc
        assert inputs.c_max * h.half_tw == pytest.approx(t_comm / 2)
        assert inputs.b_max * h.half_tl == pytest.approx(t_comm / 2)
        # And the pair satisfies Equation (2) exactly.
        assert tc_from_blocks(inputs, h.half_tl, h.half_tw) == pytest.approx(
            h.tc
        )


# ---------------------------------------------------------------------------
# Octree


class TestOctreeProperties:
    @given(
        hnp.arrays(
            np.int64,
            st.integers(1, 50).map(lambda n: (n, 3)),
            elements=st.integers(0, 2**21 - 1),
        )
    )
    @settings(max_examples=50)
    def test_encode_decode_roundtrip(self, coords):
        assert np.array_equal(decode_cells(encode_cells(coords)), coords)

    @given(
        st.floats(min_value=0.05, max_value=1.5),
        st.booleans(),
        st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_refined_tree_balanced_and_volume_preserving(
        self, h, dither, seed
    ):
        domain = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        tree = LinearOctree.build(
            domain,
            UniformSizingField(h),
            base_shape=(1, 1, 1),
            max_level=5,
            dither=dither,
            dither_seed=seed,
        )
        assert tree.is_balanced()
        _, sizes = tree.leaf_centers_and_sizes()
        assert np.sum(sizes**3) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Jitter


class TestJitterProperties:
    @given(
        st.integers(1, 60),
        st.floats(min_value=0.0, max_value=0.49),
        st.integers(0, 10),
    )
    @settings(max_examples=40)
    def test_jitter_bounded_and_inside(self, n, amplitude, seed):
        rng = np.random.default_rng(42)
        domain = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        pts = rng.random((n, 3))
        spc = rng.uniform(0.01, 0.2, size=n)
        out = jitter_points(pts, spc, domain, amplitude=amplitude, seed=seed)
        assert np.all(np.abs(out - pts) <= (amplitude * spc)[:, None] + 1e-12)
        assert domain.contains(out).all()


# ---------------------------------------------------------------------------
# Geometry


class TestGeometryProperties:
    @given(
        hnp.arrays(
            np.float64,
            (4, 3),
            elements=st.floats(min_value=-100, max_value=100, width=64),
        )
    )
    @settings(max_examples=80)
    def test_quality_bounded_volume_nonnegative(self, corners):
        tets = np.array([[0, 1, 2, 3]])
        vol = tet_volumes(corners, tets)[0]
        q = tet_quality_radius_ratio(corners, tets)[0]
        assert vol >= 0
        assert 0.0 <= q <= 1.0

    @given(
        hnp.arrays(
            np.float64,
            (4, 3),
            elements=st.floats(min_value=-10, max_value=10, width=64),
        ),
        hnp.arrays(
            np.float64,
            (3,),
            elements=st.floats(min_value=-50, max_value=50, width=64),
        ),
    )
    @settings(max_examples=60)
    def test_volume_translation_invariant(self, corners, shift):
        tets = np.array([[0, 1, 2, 3]])
        v1 = tet_volumes(corners, tets)[0]
        v2 = tet_volumes(corners + shift, tets)[0]
        assert v2 == pytest.approx(v1, rel=1e-6, abs=1e-6)


# ---------------------------------------------------------------------------
# Rendering


class TestRenderProperties:
    @given(st.integers(min_value=-(10**12), max_value=10**12))
    @settings(max_examples=40)
    def test_int_format_roundtrip(self, value):
        assert int(format_cell(value).replace(",", "")) == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=40)
    def test_float_format_never_crashes(self, value):
        assert isinstance(format_cell(value), str)
