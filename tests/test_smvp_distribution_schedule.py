"""Tests for repro.smvp.distribution and repro.smvp.schedule."""

import numpy as np
import pytest

from repro.partition.base import Partition, partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import (
    BYTES_PER_WORD,
    WORDS_PER_NODE,
    CommSchedule,
    Message,
)


@pytest.fixture()
def two_tet_dist(two_tet_mesh):
    return DataDistribution(two_tet_mesh, Partition(np.array([0, 1]), 2))


@pytest.fixture(scope="module")
def demo_dist(demo_mesh):
    return DataDistribution(demo_mesh, partition_mesh(demo_mesh, 8, seed=0))


class TestDistribution:
    def test_mismatch_rejected(self, two_tet_mesh):
        with pytest.raises(ValueError):
            DataDistribution(two_tet_mesh, Partition(np.zeros(5, dtype=int), 1))

    def test_two_tet_residency(self, two_tet_dist):
        # Face nodes 0, 1, 2 reside on both PEs.
        assert list(two_tet_dist.shared_nodes) == [0, 1, 2]
        assert list(two_tet_dist.node_residency) == [2, 2, 2, 1, 1]

    def test_local_nodes_sorted_and_complete(self, two_tet_dist):
        assert list(two_tet_dist.local_nodes(0)) == [0, 1, 2, 3]
        assert list(two_tet_dist.local_nodes(1)) == [0, 1, 2, 4]

    def test_global_to_local_roundtrip(self, two_tet_dist):
        nodes = np.array([0, 2, 4])
        local = two_tet_dist.global_to_local(1, nodes)
        assert np.array_equal(two_tet_dist.local_nodes(1)[local], nodes)

    def test_global_to_local_rejects_foreign(self, two_tet_dist):
        with pytest.raises(ValueError):
            two_tet_dist.global_to_local(0, np.array([4]))

    def test_local_counts_two_tets(self, two_tet_dist):
        counts = two_tet_dist.local_counts
        assert list(counts["nodes"]) == [4, 4]
        assert list(counts["edges"]) == [6, 6]
        assert list(counts["elements"]) == [1, 1]
        assert list(counts["nonzeros"]) == [9 * (4 + 12)] * 2
        assert list(counts["flops"]) == [2 * 9 * 16] * 2

    def test_pair_shared_counts(self, two_tet_dist):
        mat = two_tet_dist.pair_shared_counts
        assert mat[0, 1] == 3
        assert mat[0, 0] == 4  # diagonal = resident node count

    def test_pair_shared_nodes(self, two_tet_dist):
        pairs = two_tet_dist.pair_shared_nodes
        assert list(pairs) == [(0, 1)]
        assert list(pairs[(0, 1)]) == [0, 1, 2]

    def test_every_node_resides_somewhere(self, demo_dist):
        assert demo_dist.node_residency.min() >= 1

    def test_union_of_local_nodes_is_all(self, demo_dist):
        union = np.unique(
            np.concatenate(
                [demo_dist.local_nodes(p) for p in range(demo_dist.num_parts)]
            )
        )
        assert len(union) == demo_dist.mesh.num_nodes

    def test_flops_vs_global_lower_bound(self, demo_dist):
        # Sum of local flops >= global flops (shared blocks replicated).
        mesh = demo_dist.mesh
        global_flops = 2 * 9 * (mesh.num_nodes + 2 * mesh.num_edges)
        assert demo_dist.local_counts["flops"].sum() >= global_flops


class TestMessage:
    def test_words_and_bytes(self):
        msg = Message(src=0, dst=1, nodes=5)
        assert msg.words == 5 * WORDS_PER_NODE
        assert msg.bytes == msg.words * BYTES_PER_WORD


class TestSchedule:
    def test_two_tet_schedule(self, two_tet_dist):
        sched = CommSchedule(two_tet_dist)
        assert sched.total_blocks == 2  # one each way
        assert sched.c_max == 2 * 3 * WORDS_PER_NODE  # 3 nodes, both dirs
        assert sched.b_max == 2
        assert sched.m_avg == pytest.approx(9.0)
        assert list(sched.neighbors_of(0)) == [1]

    def test_word_matrix_symmetric_zero_diagonal(self, demo_dist):
        mat = CommSchedule(demo_dist).word_matrix
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)

    def test_paper_invariants(self, demo_dist):
        # C_i even (matched messages) and divisible by 3 (3 dof).
        sched = CommSchedule(demo_dist)
        assert np.all(sched.words_per_pe % 6 == 0)
        assert np.all(sched.blocks_per_pe % 2 == 0)

    def test_totals_consistent(self, demo_dist):
        sched = CommSchedule(demo_dist)
        assert sched.total_words == sched.words_per_pe.sum() // 2
        assert sched.total_blocks == sched.blocks_per_pe.sum() // 2
        assert sched.m_avg == pytest.approx(
            sched.total_words / sched.total_blocks
        )

    def test_words_match_shared_counts(self, demo_dist):
        # word_matrix[i, j] = 3 * shared(i, j).
        sched = CommSchedule(demo_dist)
        pair_counts = demo_dist.pair_shared_counts
        for (a, b), nodes in demo_dist.pair_shared_nodes.items():
            assert sched.word_matrix[a, b] == 3 * len(nodes)
            assert pair_counts[a, b] == len(nodes)

    def test_bisection_words(self, demo_dist):
        sched = CommSchedule(demo_dist)
        mat = sched.word_matrix
        p = demo_dist.num_parts
        expected = mat[: p // 2, p // 2 :].sum() + mat[p // 2 :, : p // 2].sum()
        assert sched.bisection_words() == expected
        # Trivial boundaries.
        assert sched.bisection_words(0) == 0
        assert sched.bisection_words(p) == 0
        with pytest.raises(ValueError):
            sched.bisection_words(p + 1)

    def test_bisection_less_than_total(self, demo_dist):
        sched = CommSchedule(demo_dist)
        assert sched.bisection_words() <= 2 * sched.total_words
        # With bisection-ordered parts, the bisection should carry a
        # strict subset of all traffic.
        assert sched.bisection_words() < sched.word_matrix.sum()


class TestBoundaryFlops:
    def test_exact_against_assembled_rows(self, demo_mesh):
        """boundary_flops must equal 2x the nnz of the shared-node rows
        of the actually assembled local matrices."""
        from repro.fem.assembly import assemble_subdomain_stiffness
        from repro.fem.material import ElementMaterials

        partition = partition_mesh(demo_mesh, 6, seed=0)
        dist = DataDistribution(demo_mesh, partition)
        materials = ElementMaterials.homogeneous(demo_mesh.num_elements)
        shared_mask = dist.node_residency >= 2
        for part in range(6):
            nodes = dist.local_nodes(part)
            local_k = assemble_subdomain_stiffness(
                demo_mesh, materials, dist.local_elements(part), nodes
            )
            shared_local = np.flatnonzero(shared_mask[nodes])
            dof = (3 * shared_local[:, None] + np.arange(3)).ravel()
            row_nnz = np.diff(local_k.indptr)
            assert 2 * int(row_nnz[dof].sum()) == dist.boundary_flops[part]

    def test_bounded_by_total_flops(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 16)
        dist = DataDistribution(demo_mesh, partition)
        assert np.all(dist.boundary_flops <= dist.local_counts["flops"])
        assert np.all(dist.boundary_flops > 0)

    def test_single_part_no_boundary(self, demo_mesh):
        from repro.partition.base import Partition

        part = Partition(np.zeros(demo_mesh.num_elements, dtype=np.int32), 1)
        dist = DataDistribution(demo_mesh, part)
        assert dist.boundary_flops[0] == 0


class TestScheduleDelta:
    """ScheduleDelta must report both directions of a reconfiguration:
    communicating pairs removed AND added, plus the contention depth."""

    @pytest.fixture(scope="class")
    def demo_schedules(self, demo_mesh):
        from repro.smvp.distribution import (
            redistribute_after_addition,
            redistribute_after_eviction,
        )

        partition = partition_mesh(demo_mesh, 6, seed=0)
        before = CommSchedule(DataDistribution(demo_mesh, partition))
        grown, _ = redistribute_after_addition(demo_mesh, partition)
        after_grow = CommSchedule(DataDistribution(demo_mesh, grown))
        shrunk, red = redistribute_after_eviction(demo_mesh, partition, 2)
        after_evict = CommSchedule(DataDistribution(demo_mesh, shrunk))
        return before, after_grow, after_evict, red

    def test_identity_delta_reports_no_pair_churn(self, demo_schedules):
        from repro.smvp.schedule import schedule_delta

        before, *_ = demo_schedules
        delta = schedule_delta(before, before)
        assert delta.pairs_removed == 0
        assert delta.pairs_added == 0
        assert delta.q_max_before == delta.q_max_after == before.q_max

    def test_growth_adds_new_pe_pairs(self, demo_schedules):
        from repro.smvp.schedule import schedule_delta

        before, after_grow, *_ = demo_schedules
        delta = schedule_delta(before, after_grow)
        # Ids are stable under growth: the new PE's links are pure
        # additions, and any removed pair means a donor boundary the
        # peel dissolved.
        new_pe = after_grow.num_parts - 1
        new_pe_pairs = sum(
            1
            for a, b in after_grow.distribution.pair_shared_nodes
            if new_pe in (a, b)
        )
        assert delta.pairs_added >= new_pe_pairs >= 1
        assert delta.num_parts_after == delta.num_parts_before + 1
        assert delta.q_max_after >= 1

    def test_eviction_removes_dead_pe_pairs(self, demo_schedules):
        from repro.smvp.schedule import schedule_delta

        before, _, after_evict, red = demo_schedules
        delta = schedule_delta(
            before, after_evict, id_map=red.survivor_map
        )
        dead_pe_pairs = sum(
            1
            for a, b in before.distribution.pair_shared_nodes
            if 2 in (a, b)
        )
        # Every dead-PE link is gone (plus any dissolved by regrowth).
        assert delta.pairs_removed >= dead_pe_pairs >= 1
        assert delta.num_parts_after == delta.num_parts_before - 1

    def test_incoming_per_pe_matches_word_matrix(self, demo_dist):
        schedule = CommSchedule(demo_dist)
        expected = (schedule.word_matrix > 0).sum(axis=0)
        assert np.array_equal(schedule.incoming_per_pe, expected)
        assert schedule.q_max == int(expected.max())
