"""Tests for repro.stats (properties, beta, exflow)."""

import numpy as np
import pytest

from repro import paperdata
from repro.partition.base import Partition, partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.stats import beta_bound, exflow_style_stats, smvp_statistics


class TestBetaBound:
    def test_one_when_same_pe_attains_both(self):
        assert beta_bound([10, 5, 3], [4, 2, 1]) == 1.0

    def test_greater_than_one_when_split(self):
        # PE0 has most words, PE1 most blocks.
        beta = beta_bound([10, 6], [2, 4])
        assert 1.0 < beta <= 2.0

    def test_formula_by_hand(self):
        c = np.array([10.0, 6.0])
        b = np.array([2.0, 4.0])
        c_max, b_max = 10.0, 4.0
        terms = [
            max(
                c_max * (b_max - b[i]) / (c[i] * b_max),
                b_max * (c_max - c[i]) / (b[i] * c_max),
            )
            for i in range(2)
        ]
        assert beta_bound(c, b) == pytest.approx(1.0 + min(terms))

    def test_never_exceeds_two(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = rng.integers(2, 20)
            c = rng.integers(1, 1000, size=n).astype(float)
            b = rng.integers(1, 100, size=n).astype(float)
            beta = beta_bound(c, b)
            assert 1.0 <= beta <= 2.0 + 1e-12

    def test_silent_pes_ignored(self):
        assert beta_bound([10, 0, 5], [2, 0, 4]) == beta_bound([10, 5], [2, 4])

    def test_all_silent(self):
        assert beta_bound([0, 0], [0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            beta_bound([1, 2], [1])


class TestSmvpStatistics:
    def test_two_tet_exact(self, two_tet_mesh):
        part = Partition(np.array([0, 1]), 2)
        stats = smvp_statistics(two_tet_mesh, partition=part)
        assert stats.F == 2 * 9 * (4 + 2 * 6)
        assert stats.c_max == 18  # 3 shared nodes x 3 words x 2 dirs
        assert stats.b_max == 2
        assert stats.beta == 1.0
        assert stats.f_over_c == pytest.approx(stats.F / 18)

    def test_partition_on_demand(self, demo_mesh):
        stats = smvp_statistics(demo_mesh, num_parts=8, method="rcb")
        assert stats.num_parts == 8
        assert stats.partition_method == "rcb"

    def test_requires_partition_or_count(self, demo_mesh):
        with pytest.raises(ValueError):
            smvp_statistics(demo_mesh)

    def test_paper_invariants(self, demo_mesh):
        stats = smvp_statistics(demo_mesh, num_parts=16)
        assert stats.c_max % 6 == 0
        assert stats.b_max % 2 == 0
        assert 1.0 <= stats.beta <= 2.0
        assert stats.bisection_words <= 2 * stats.total_words

    def test_more_pes_less_flops_per_pe(self, demo_mesh):
        f4 = smvp_statistics(demo_mesh, num_parts=4).F
        f16 = smvp_statistics(demo_mesh, num_parts=16).F
        assert f16 < f4 / 2

    def test_f_over_c_falls_with_p(self, demo_mesh):
        ratios = [
            smvp_statistics(demo_mesh, num_parts=p).f_over_c
            for p in (4, 16, 64)
        ]
        assert ratios[0] > ratios[1] > ratios[2]

    def test_str(self, demo_mesh):
        s = str(smvp_statistics(demo_mesh, num_parts=4))
        assert "C_max=" in s and "beta=" in s


class TestExflowStats:
    def test_paper_row_recovered_from_paper_fig7(self):
        # The published Quake comparison row must follow from the
        # published Figure 7 sf2/128 row via our formulas.
        props = paperdata.SMVP_PROPERTIES[("sf2", 128)]
        mflops = props.F / 1e6
        kb_per_mflop = 8 * props.C_max / 1024 / mflops
        msgs_per_mflop = props.B_max / mflops
        avg_kb = 8 * props.M_avg / 1024
        paper = paperdata.EXFLOW_COMPARISON["quake_sf2_128"]
        assert kb_per_mflop == pytest.approx(
            paper["comm_kbytes_per_mflop"], rel=0.03
        )
        assert msgs_per_mflop == pytest.approx(
            paper["messages_per_mflop"], rel=0.01
        )
        assert avg_kb == pytest.approx(paper["avg_message_kbytes"], rel=0.01)

    def test_measured_pipeline(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 8)
        dist = DataDistribution(demo_mesh, partition)
        stats = smvp_statistics(demo_mesh, partition=partition)
        ex = exflow_style_stats(stats, dist)
        assert ex.num_parts == 8
        assert ex.mbytes_per_pe > 0
        assert ex.comm_kbytes_per_mflop > 0
        assert ex.avg_message_kbytes == pytest.approx(
            8 * stats.m_avg / 1024
        )
