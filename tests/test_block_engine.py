"""Tests for the multi-RHS (block) superstep engine.

The block refactor's contract (DESIGN.md §13):

* per-column bit-identity — an n×r block multiply equals r independent
  vector multiplies, bit for bit, on every backend including overlap;
* the r=1 vector path is untouched (golden vectors stay valid);
* the interior/boundary split partitions each PE's local nodes on
  shared-node residency;
* the timestepper advances r scenario columns exactly as r separate
  runs would, and seismograms grow a trailing rhs axis;
* the BSP model, Eq.(2), and the drift monitor scale the volume/flop
  terms r-fold while the latency term stays fixed;
* ABFT detects any single corrupted column and heals block supersteps
  bit-exactly; the sanitizer blames seeded races exactly at r > 1;
* ``measure_tf``/``run_kernel``/the CLIs validate ``rhs >= 1``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main_measure, main_quake, main_trace
from repro.faults import FaultConfig, FaultInjector
from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.model.machine import CRAY_T3E
from repro.partition.base import partition_mesh
from repro.simulate import BspSimulator
from repro.smvp import AbftChecker
from repro.smvp.backends import backend_names, make_backend
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.kernels import get_kernel, measure_tf
from repro.smvp.racy import RACE_MODES, make_racy, verify_detection
from repro.smvp.schedule import CommSchedule
from repro.smvp.spark98 import run_kernel
from repro.telemetry.drift import DriftMonitor, eq2_t_comm, modeled_breakdown

PES = 4
R = 5


@pytest.fixture(scope="module")
def partition(demo_mesh):
    return partition_mesh(demo_mesh, PES, seed=2)


@pytest.fixture(scope="module")
def partition8(demo_mesh):
    return partition_mesh(demo_mesh, 8, seed=2)


@pytest.fixture(scope="module")
def x_block(demo_mesh):
    return np.random.default_rng(17).standard_normal(
        (3 * demo_mesh.num_nodes, R)
    )


@pytest.fixture(scope="module")
def column_reference(demo_mesh, partition, demo_materials, x_block):
    """r independent vector multiplies — the bit-identity anchor."""
    with DistributedSMVP(demo_mesh, partition, demo_materials) as ds:
        return [ds.multiply(x_block[:, j].copy()) for j in range(R)]


# ---------------------------------------------------------------------------
# Distribution: the interior/boundary split


class TestInteriorBoundarySplit:
    def test_split_partitions_local_positions(self, demo_mesh, partition):
        """Boundary/interior are positions into local_nodes(pe) and
        together cover every local node exactly once."""
        dist = DataDistribution(demo_mesh, partition)
        for pe in range(PES):
            local = dist.local_nodes(pe)
            boundary = dist.boundary_local_nodes[pe]
            interior = dist.interior_local_nodes[pe]
            assert np.intersect1d(boundary, interior).size == 0
            assert np.array_equal(
                np.sort(np.concatenate([boundary, interior])),
                np.arange(local.size),
            )

    def test_boundary_is_exactly_residency_ge_2(self, demo_mesh, partition):
        dist = DataDistribution(demo_mesh, partition)
        for pe in range(PES):
            local = dist.local_nodes(pe)
            residency = dist.node_residency[local]
            assert np.all(residency[dist.boundary_local_nodes[pe]] >= 2)
            assert np.all(residency[dist.interior_local_nodes[pe]] == 1)

    def test_every_pe_has_both_kinds_on_demo(self, demo_mesh, partition):
        dist = DataDistribution(demo_mesh, partition)
        for pe in range(PES):
            assert dist.boundary_local_nodes[pe].size > 0
            assert dist.interior_local_nodes[pe].size > 0


# ---------------------------------------------------------------------------
# Executor: per-column bit-identity on every backend


class TestBlockMultiply:
    @pytest.mark.parametrize("backend", sorted(set(backend_names())))
    def test_block_equals_columns_bitwise(
        self,
        demo_mesh,
        partition,
        demo_materials,
        x_block,
        column_reference,
        backend,
    ):
        with DistributedSMVP(
            demo_mesh, partition, demo_materials, backend=backend
        ) as ds:
            y = ds.multiply(x_block)
        assert y.shape == x_block.shape
        for j in range(R):
            assert np.array_equal(y[:, j], column_reference[j]), (backend, j)

    @pytest.mark.parametrize("backend", sorted(set(backend_names())))
    def test_vector_path_unchanged(
        self,
        demo_mesh,
        partition,
        demo_materials,
        x_block,
        column_reference,
        backend,
    ):
        with DistributedSMVP(
            demo_mesh, partition, demo_materials, backend=backend
        ) as ds:
            y = ds.multiply(x_block[:, 0].copy())
        assert y.ndim == 1
        assert np.array_equal(y, column_reference[0])

    def test_single_column_block_matches_vector(
        self, demo_mesh, partition, demo_materials, x_block, column_reference
    ):
        with DistributedSMVP(demo_mesh, partition, demo_materials) as ds:
            y = ds.multiply(x_block[:, :1].copy())
        assert y.shape == (x_block.shape[0], 1)
        assert np.array_equal(y[:, 0], column_reference[0])

    def test_overlap_rejects_non_row_split_kernel(
        self, demo_mesh, partition, demo_materials
    ):
        assert not get_kernel("symmetric-upper").supports_row_split
        with pytest.raises(ValueError, match="row split"):
            DistributedSMVP(
                demo_mesh,
                partition,
                demo_materials,
                kernel="symmetric-upper",
                backend="overlap",
            )

    def test_trace_records_block_width(
        self, demo_mesh, partition, demo_materials, x_block
    ):
        traces = []
        with DistributedSMVP(
            demo_mesh, partition, demo_materials, trace_sink=traces.append
        ) as ds:
            ds.multiply(x_block[:, 0].copy())
            ds.multiply(x_block)
        vec, blk = traces
        assert vec.rhs == 1
        assert blk.rhs == R
        # r words ship per shared dof in the same block count.
        assert np.array_equal(
            np.asarray(blk.words_sent), R * np.asarray(vec.words_sent)
        )
        assert np.array_equal(
            np.asarray(blk.blocks_sent), np.asarray(vec.blocks_sent)
        )

    def test_overlap_trace_records_block_width(
        self, demo_mesh, partition, demo_materials, x_block
    ):
        traces = []
        with DistributedSMVP(
            demo_mesh,
            partition,
            demo_materials,
            backend="overlap",
            trace_sink=traces.append,
        ) as ds:
            ds.multiply(x_block)
        assert traces[0].rhs == R
        assert traces[0].backend == "overlap"


# ---------------------------------------------------------------------------
# Backend protocol


class TestBackendBlockProtocol:
    def test_kernels_declare_block_support(self):
        for name in ("csr", "bsr3x3"):
            k = get_kernel(name)
            assert k.supports_block
            assert k.supports_row_split
        assert not get_kernel("symmetric-upper").supports_row_split

    def test_apply_block_fallback_matches_columns(self, two_tet_mesh):
        from repro.fem.material import ElementMaterials

        k = assemble_stiffness(
            two_tet_mesh, ElementMaterials.homogeneous(2)
        )
        kern = get_kernel("symmetric-upper")
        state = kern.prepare(k)
        X = np.random.default_rng(0).standard_normal((k.shape[1], 3))
        Y = kern.apply_block(state, X)
        for j in range(3):
            assert np.array_equal(Y[:, j], kern.apply(state, X[:, j]))

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ValueError):
            make_backend("warp-drive")


# ---------------------------------------------------------------------------
# Timestepper: r scenarios in lockstep


class TestBlockTimestepper:
    @pytest.fixture(scope="class")
    def operators(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        m = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        return k, m, dt

    def test_block_trajectory_matches_independent_runs(self, operators):
        k, m, dt = operators
        n = k.shape[0]
        rng = np.random.default_rng(3)
        u0 = rng.standard_normal((n, 3)) * 1e-3
        block = ExplicitTimeStepper(k, m, dt, damping_alpha=0.02, rhs=3)
        block.set_state(u0, u0, 0)
        for _ in range(5):
            block.step()
        for j in range(3):
            solo = ExplicitTimeStepper(k, m, dt, damping_alpha=0.02)
            solo.set_state(u0[:, j], u0[:, j], 0)
            for _ in range(5):
                solo.step()
            assert np.array_equal(block.u[:, j], solo.u), j

    def test_seismograms_gain_rhs_axis(self, operators):
        k, m, dt = operators
        stepper = ExplicitTimeStepper(k, m, dt, rhs=2)
        nodes = np.array([0, 5])
        records, seis = stepper.run(
            4,
            force_at=lambda t: np.full(k.shape[0], 1e-6),
            record_nodes=nodes,
        )
        assert len(records) == 4
        assert seis.shape == (4, 2, 3, 2)
        # A broadcast force drives every column identically.
        assert np.array_equal(seis[..., 0], seis[..., 1])

    def test_rhs_validation(self, operators):
        k, m, dt = operators
        with pytest.raises(ValueError, match="rhs"):
            ExplicitTimeStepper(k, m, dt, rhs=0)


# ---------------------------------------------------------------------------
# Model: Eq.(2) with the r-aware volume term


class TestBlockModel:
    @pytest.fixture(scope="class")
    def schedule(self, demo_mesh, partition):
        return CommSchedule(DataDistribution(demo_mesh, partition))

    @pytest.fixture(scope="class")
    def flops(self, demo_mesh, partition):
        return DataDistribution(demo_mesh, partition).local_counts["flops"]

    def test_rhs1_is_bit_identical(self, flops, schedule):
        base = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        one = BspSimulator(flops, schedule, CRAY_T3E, rhs=1).run("barrier")
        assert one.t_comp == base.t_comp
        assert one.t_comm == base.t_comm
        assert one.t_smvp == base.t_smvp

    def test_volume_scales_latency_does_not(self, flops, schedule):
        r = 16
        base = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        blk = BspSimulator(flops, schedule, CRAY_T3E, rhs=r).run("barrier")
        assert blk.t_comp == pytest.approx(r * base.t_comp)
        # Latency amortizes: r columns cost less than r supersteps.
        assert blk.t_smvp < r * base.t_smvp
        assert blk.t_comm < r * base.t_comm

    def test_eq2_volume_term(self, schedule):
        m = CRAY_T3E
        base = eq2_t_comm(schedule, m)
        assert eq2_t_comm(schedule, m, rhs=1) == base
        assert eq2_t_comm(schedule, m, rhs=8) == pytest.approx(
            schedule.b_max * m.tl + schedule.c_max * m.tw * 8
        )
        with pytest.raises(ValueError, match="rhs"):
            eq2_t_comm(schedule, m, rhs=0)

    def test_simulator_rejects_bad_rhs(self, flops, schedule):
        with pytest.raises(ValueError, match="rhs"):
            BspSimulator(flops, schedule, CRAY_T3E, rhs=0)


# ---------------------------------------------------------------------------
# Telemetry: drift predictions track r


class TestBlockDrift:
    def test_breakdown_scales_with_rhs(self, demo_mesh, partition):
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        base = modeled_breakdown(flops, schedule, CRAY_T3E)
        blk = modeled_breakdown(flops, schedule, CRAY_T3E, rhs=4)
        assert blk.t_comp == pytest.approx(4 * base.t_comp)
        assert base.t_comm < blk.t_comm < 4 * base.t_comm
        with pytest.raises(ValueError, match="rhs"):
            modeled_breakdown(flops, schedule, CRAY_T3E, rhs=0)

    def test_monitor_words_scheduled(self, demo_mesh, partition):
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        mon1 = DriftMonitor(flops, schedule, CRAY_T3E)
        mon4 = DriftMonitor(flops, schedule, CRAY_T3E, rhs=4)
        assert mon4.words_scheduled == 4 * mon1.words_scheduled
        with pytest.raises(ValueError, match="rhs"):
            DriftMonitor(flops, schedule, CRAY_T3E, rhs=0)


# ---------------------------------------------------------------------------
# Measurement layers


class TestBlockMeasurement:
    def test_measure_tf_block(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        m = measure_tf(k, repetitions=1, warmup=0, rhs=4)
        assert m.tf_ns > 0
        assert m.seconds_per_product > 0
        with pytest.raises(ValueError, match="rhs"):
            measure_tf(k, rhs=0)

    def test_run_kernel_block_flops(self):
        base = run_kernel("smv0", instance="demo", repetitions=1)
        blk = run_kernel("smv0", instance="demo", repetitions=1, rhs=4)
        assert blk.rhs == 4
        assert blk.flops == 4 * base.flops
        with pytest.raises(ValueError, match="rhs"):
            run_kernel("smv0", instance="demo", rhs=0)


# ---------------------------------------------------------------------------
# CLI surface


class TestCliRhs:
    @pytest.mark.parametrize(
        "main, extra",
        [
            (main_quake, ["--instance", "demo", "--steps", "1"]),
            (main_measure, []),
            (main_trace, ["--instance", "demo", "--steps", "1"]),
        ],
    )
    def test_rhs_below_one_rejected(self, main, extra, capsys):
        with pytest.raises(SystemExit) as exc:
            main(extra + ["--rhs", "0"])
        assert exc.value.code == 2
        assert "--rhs must be >= 1" in capsys.readouterr().err

    def test_quake_runs_block(self, capsys, tmp_path):
        rc = main_quake(
            [
                "--instance",
                "demo",
                "--pes",
                "4",
                "--steps",
                "2",
                "--rhs",
                "2",
            ]
        )
        assert rc == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# ABFT on block supersteps


class TestBlockAbft:
    def test_block_flips_detected_and_healed_bit_exactly(
        self, demo_mesh, partition, demo_materials, x_block, column_reference
    ):
        with DistributedSMVP(
            demo_mesh,
            partition,
            demo_materials,
            injector=FaultInjector(FaultConfig(seed=5, flip_y_rate=1.0)),
            abft=True,
        ) as smvp:
            healed = smvp.multiply(x_block)
            stats = smvp.sdc_stats
        for j in range(R):
            assert np.array_equal(healed[:, j], column_reference[j]), j
        assert stats.injected_sdc == PES
        assert stats.detected_sdc >= stats.injected_sdc
        assert stats.escaped_sdc == 0
        assert stats.sdc_contained

    @given(
        pe=st.integers(min_value=0, max_value=PES - 1),
        col=st.integers(min_value=0, max_value=R - 1),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_single_column_flip_is_detected(
        self, demo_mesh, partition, demo_materials, x_block, pe, col, seed
    ):
        """A sign flip of any column's dominant word fails the check."""
        with DistributedSMVP(demo_mesh, partition, demo_materials) as smvp:
            checker = AbftChecker(smvp.local_matrices)
            nodes = smvp.local_nodes[pe]
            X_local = x_block.reshape(-1, 3, R)[nodes].reshape(-1, R)
            Y = smvp.backend.compute_one_block(pe, X_local)
            assert checker.check_compute(pe, X_local, Y).ok
            row = int(
                np.random.default_rng(seed).integers(0, Y.shape[0])
            )
            if Y[row, col] == 0.0:
                row = int(np.argmax(np.abs(Y[:, col])))
            Y[row, col] *= -1.0
            check = checker.check_compute(pe, X_local, Y)
        assert not check.ok


# ---------------------------------------------------------------------------
# Sanitizer on block supersteps


class TestBlockSanitizer:
    @pytest.fixture(scope="class")
    def x8_block(self, demo_mesh):
        return np.random.default_rng(23).standard_normal(
            (3 * demo_mesh.num_nodes, 3)
        )

    def test_clean_block_run_zero_findings(
        self, demo_mesh, partition8, demo_materials, x8_block
    ):
        with DistributedSMVP(
            demo_mesh, partition8, demo_materials
        ) as plain:
            reference = plain.multiply(x8_block)
        with DistributedSMVP(
            demo_mesh, partition8, demo_materials, sanitizer=True
        ) as ds:
            y = ds.multiply(x8_block)
            assert ds.sanitizer.findings == []
        assert np.array_equal(y, reference)

    @pytest.mark.parametrize("mode", sorted(RACE_MODES))
    def test_block_races_blamed_exactly(
        self, demo_mesh, partition8, demo_materials, x8_block, mode
    ):
        smvp = make_racy(
            demo_mesh, partition8, demo_materials, mode, seed=3, strict=False
        )
        try:
            X = x8_block
            for _ in range(3):
                Y = smvp.multiply(X)
                X = Y / np.linalg.norm(Y, axis=0)
        finally:
            smvp.close()
        assert smvp.injected, "fixture recorded no ground truth"
        assert smvp.sanitizer.findings, "sanitizer saw nothing"
        assert verify_detection(smvp.injected, smvp.sanitizer.findings) == []
        kind, phase = RACE_MODES[mode]
        assert any(
            f.kind == kind and f.phase == phase
            for f in smvp.sanitizer.findings
        )
