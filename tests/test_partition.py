"""Tests for repro.partition (base, all methods, metrics)."""

import numpy as np
import pytest

from repro.partition import (
    PARTITIONERS,
    Partition,
    partition_mesh,
    partition_metrics,
    recursive_bisection,
    register_all,
)
from repro.partition.base import Partitioner
from repro.partition.geometric import (
    conformal_map_to_center,
    stereographic_lift,
    weiszfeld_median,
)
from repro.partition.inertial import principal_axis
from repro.partition.spectral import fiedler_vector, graph_laplacian

register_all()
ALL_METHODS = sorted(PARTITIONERS)


class TestPartitionType:
    def test_basic(self):
        p = Partition(np.array([0, 1, 0, 1]), 2, method="x")
        assert p.num_elements == 4
        assert list(p.part_sizes()) == [2, 2]
        assert list(p.elements_of(1)) == [1, 3]
        assert p.imbalance() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(np.array([0, 2]), 2)
        with pytest.raises(ValueError):
            Partition(np.array([-1]), 2)
        with pytest.raises(ValueError):
            Partition(np.zeros((2, 2), dtype=int), 2)

    def test_elements_of_range_checked(self):
        p = Partition(np.array([0]), 1)
        with pytest.raises(ValueError):
            p.elements_of(1)

    def test_imbalance(self):
        p = Partition(np.array([0, 0, 0, 1]), 2)
        assert p.imbalance() == pytest.approx(1.5)


class TestRecursiveBisection:
    def test_part_numbering_is_bisection_order(self, demo_mesh):
        # With a coordinate split, parts [0, p/2) must all lie on one
        # side of the first cut.
        part = partition_mesh(demo_mesh, 8, method="rcb")
        centroids = demo_mesh.element_centroids
        left = centroids[part.parts < 4]
        right = centroids[part.parts >= 4]
        # The first cut is along some axis; verify separation on the
        # axis with the largest gap between group means.
        gaps = np.abs(left.mean(axis=0) - right.mean(axis=0))
        axis = int(np.argmax(gaps))
        assert left[:, axis].max() <= right[:, axis].min() + 1e-9

    def test_non_power_of_two(self, demo_mesh):
        part = partition_mesh(demo_mesh, 6, method="rcb")
        sizes = part.part_sizes()
        assert sizes.sum() == demo_mesh.num_elements
        assert sizes.max() - sizes.min() <= 2

    def test_bad_bisect_detected(self, demo_mesh):
        def cheat(mesh, ids, rng, target_left):
            mask = np.zeros(len(ids), dtype=bool)
            mask[: max(target_left - 1, 0)] = True  # wrong count
            return mask

        with pytest.raises(ValueError, match="expected"):
            recursive_bisection(demo_mesh, 4, cheat)

    def test_single_part(self, demo_mesh):
        part = partition_mesh(demo_mesh, 1, method="rcb")
        assert np.all(part.parts == 0)


class TestAllMethods:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_valid_balanced_partition(self, demo_mesh, method):
        p = 8
        part = partition_mesh(demo_mesh, p, method=method, seed=0)
        assert part.num_parts == p
        assert part.num_elements == demo_mesh.num_elements
        sizes = part.part_sizes()
        assert sizes.min() > 0
        assert part.imbalance() < 1.01

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_deterministic_given_seed(self, demo_mesh, method):
        a = partition_mesh(demo_mesh, 4, method=method, seed=3)
        b = partition_mesh(demo_mesh, 4, method=method, seed=3)
        assert np.array_equal(a.parts, b.parts)

    def test_unknown_method(self, demo_mesh):
        with pytest.raises(ValueError, match="unknown method"):
            partition_mesh(demo_mesh, 4, method="metis")

    def test_locality_methods_beat_random(self, demo_mesh):
        random_shared = partition_metrics(
            demo_mesh, partition_mesh(demo_mesh, 16, method="random")
        ).shared_nodes
        for method in ("rcb", "inertial", "geometric", "spectral", "growing"):
            shared = partition_metrics(
                demo_mesh, partition_mesh(demo_mesh, 16, method=method)
            ).shared_nodes
            assert shared < 0.7 * random_shared, method


class TestGeometricInternals:
    def test_stereographic_on_sphere(self):
        rng = np.random.default_rng(0)
        pts = rng.standard_normal((100, 3))
        lifted = stereographic_lift(pts)
        assert np.allclose(np.linalg.norm(lifted, axis=1), 1.0)

    def test_weiszfeld_median_of_symmetric_cloud(self):
        rng = np.random.default_rng(1)
        pts = rng.standard_normal((500, 4))
        pts = np.vstack([pts, -pts])  # symmetric about the origin
        med = weiszfeld_median(pts)
        assert np.linalg.norm(med) < 0.05

    def test_conformal_map_centers_points(self):
        rng = np.random.default_rng(2)
        # Cluster of sphere points near one pole: centerpoint far from
        # origin; after the map, the median should move toward origin.
        raw = rng.standard_normal((400, 4)) * 0.2 + np.array([0, 0, 0, 1.0])
        sphere = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        center = weiszfeld_median(sphere)
        mapped = conformal_map_to_center(sphere, center)
        assert np.allclose(np.linalg.norm(mapped, axis=1), 1.0, atol=1e-9)
        new_center = weiszfeld_median(mapped)
        assert np.linalg.norm(new_center) < np.linalg.norm(center)


class TestInertialInternals:
    def test_principal_axis_of_elongated_cloud(self):
        rng = np.random.default_rng(3)
        pts = rng.standard_normal((300, 3)) * np.array([10.0, 1.0, 1.0])
        axis = principal_axis(pts)
        assert abs(axis[0]) > 0.99

    def test_degenerate_fallback(self):
        assert np.array_equal(principal_axis(np.zeros((5, 3))), [1, 0, 0])
        assert np.array_equal(principal_axis(np.zeros((1, 3))), [1, 0, 0])


class TestSpectralInternals:
    def test_laplacian_rows_sum_to_zero(self, demo_mesh):
        from repro.mesh.topology import element_adjacency

        lap = graph_laplacian(element_adjacency(demo_mesh.tets).tocsr())
        rowsum = np.abs(lap @ np.ones(lap.shape[0])).max()
        assert rowsum < 1e-9

    def test_fiedler_separates_a_path_graph(self):
        import scipy.sparse as sp

        n = 50
        rows = np.arange(n - 1)
        adj = sp.csr_matrix(
            (np.ones(n - 1), (rows, rows + 1)), shape=(n, n)
        )
        adj = adj + adj.T
        vec = fiedler_vector(adj.tocsr(), np.random.default_rng(0))
        # The Fiedler vector of a path is monotone: sorting by it splits
        # the path into two contiguous halves.
        order = np.argsort(vec)
        first_half = set(order[: n // 2].tolist())
        assert first_half in ({*range(n // 2)}, {*range(n // 2, n)})

    def test_fiedler_separates_components(self):
        import scipy.sparse as sp

        # Two disjoint triangles.
        rows = np.array([0, 1, 2, 3, 4, 5])
        cols = np.array([1, 2, 0, 4, 5, 3])
        adj = sp.csr_matrix((np.ones(6), (rows, cols)), shape=(6, 6))
        adj = ((adj + adj.T) > 0).astype(np.int8)
        vec = fiedler_vector(adj.tocsr(), np.random.default_rng(1))
        signs = np.sign(vec - np.median(vec))
        assert len(set(signs[:3])) == 1 and len(set(signs[3:])) == 1


class TestMetrics:
    def test_two_tet_split(self, two_tet_mesh):
        part = Partition(np.array([0, 1]), 2, method="manual")
        m = partition_metrics(two_tet_mesh, part)
        assert m.shared_nodes == 3  # the shared face
        assert m.cut_faces == 1
        assert m.replication == pytest.approx(8 / 5)
        assert m.max_node_parts == 2

    def test_single_part_no_sharing(self, two_tet_mesh):
        part = Partition(np.zeros(2, dtype=int), 1)
        m = partition_metrics(two_tet_mesh, part)
        assert m.shared_nodes == 0
        assert m.cut_faces == 0
        assert m.replication == 1.0

    def test_mismatched_partition_rejected(self, two_tet_mesh):
        with pytest.raises(ValueError):
            partition_metrics(two_tet_mesh, Partition(np.zeros(3, dtype=int), 1))

    def test_str(self, two_tet_mesh):
        m = partition_metrics(two_tet_mesh, Partition(np.array([0, 1]), 2))
        assert "shared=3" in str(m)
