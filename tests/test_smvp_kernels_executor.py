"""Tests for repro.smvp.kernels, repro.smvp.executor, repro.smvp.spark98."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness
from repro.partition.base import partition_mesh
from repro.smvp.backends import backend_names
from repro.smvp.executor import DistributedSMVP
from repro.smvp.kernels import KERNELS, get_kernel, measure_tf
from repro.smvp.spark98 import SUITE, run_kernel, run_suite


@pytest.fixture(scope="module")
def demo_stiffness(demo_mesh, demo_materials):
    return assemble_stiffness(demo_mesh, demo_materials)


class TestKernels:
    @pytest.fixture(scope="class")
    def small_matrix(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((30, 30))
        dense[np.abs(dense) < 1.0] = 0.0
        dense = dense + dense.T
        return sp.csr_matrix(dense)

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_agree_with_dense(self, small_matrix, name):
        x = np.random.default_rng(1).standard_normal(30)
        expected = small_matrix.toarray() @ x
        got = KERNELS[name](small_matrix, x)  # repro-lint: ignore[kernel-registry]
        assert np.allclose(got, expected)

    def test_bsr_kernel_on_real_stiffness(self, demo_stiffness):
        x = np.random.default_rng(2).standard_normal(demo_stiffness.shape[1])
        bsr = sp.bsr_matrix(demo_stiffness, blocksize=(3, 3))
        got = KERNELS["bsr3x3"](bsr, x)  # repro-lint: ignore[kernel-registry]
        assert np.allclose(got, demo_stiffness @ x)

    def test_measure_tf(self, demo_stiffness):
        m = measure_tf(demo_stiffness, "csr", repetitions=2)
        assert m.flops_per_product == 2 * demo_stiffness.nnz
        assert m.tf_ns > 0
        assert m.mflops > 0

    def test_measure_tf_unknown_kernel(self, demo_stiffness):
        with pytest.raises(ValueError):
            measure_tf(demo_stiffness, "avx512")


class TestDistributedSMVP:
    @pytest.mark.parametrize("method", ["rcb", "geometric", "random"])
    @pytest.mark.parametrize("p", [2, 7, 16])
    def test_matches_global_product(
        self, demo_mesh, demo_materials, demo_stiffness, method, p
    ):
        partition = partition_mesh(demo_mesh, p, method=method, seed=1)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        assert ds.verify_against_global(demo_stiffness) < 1e-12

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_every_kernel_matches_global_product(
        self, demo_mesh, demo_materials, demo_stiffness, kernel
    ):
        partition = partition_mesh(demo_mesh, 6, seed=2)
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, kernel=kernel
        )
        assert ds.verify_against_global(demo_stiffness) < 1e-12

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_every_kernel_multiply_agrees(
        self, demo_mesh, demo_materials, demo_stiffness, kernel, backend
    ):
        partition = partition_mesh(demo_mesh, 6, seed=2)
        if backend == "overlap" and not get_kernel(kernel).supports_row_split:
            # The overlap backend needs row-sliced products; kernels
            # whose state derives from the full matrix are rejected at
            # setup (covered in test_block_engine).
            with pytest.raises(ValueError, match="row split"):
                DistributedSMVP(
                    demo_mesh,
                    partition,
                    demo_materials,
                    kernel=kernel,
                    backend=backend,
                )
            return
        with DistributedSMVP(
            demo_mesh, partition, demo_materials, kernel=kernel, backend=backend
        ) as ds:
            x = np.random.default_rng(7).standard_normal(
                3 * demo_mesh.num_nodes
            )
            assert np.allclose(ds.multiply(x), demo_stiffness @ x, rtol=1e-10)

    def test_unknown_kernel(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 4)
        with pytest.raises(ValueError):
            DistributedSMVP(demo_mesh, partition, demo_materials, kernel="x")

    def test_traffic_matches_schedule(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 8)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        x = np.random.default_rng(0).standard_normal(3 * demo_mesh.num_nodes)
        y_locals = ds.compute_phase(ds.scatter(x))
        _, record = ds.communication_phase(y_locals)
        mat = ds.schedule.word_matrix
        assert np.array_equal(record.words_sent, mat.sum(axis=1))
        assert np.array_equal(record.blocks_sent, (mat > 0).sum(axis=1))

    def test_flops_match_structural_model(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 8)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        assert np.array_equal(
            ds.flops_per_pe(), ds.distribution.local_counts["flops"]
        )

    def test_scatter_shape_checked(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 4)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        with pytest.raises(ValueError):
            ds.scatter(np.zeros(7))

    def test_shared_values_agree_across_pes(self, demo_mesh, demo_materials):
        # After the exchange, every PE holds the same summed y for a
        # shared node — the replicated-storage invariant.
        partition = partition_mesh(demo_mesh, 8)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        x = np.random.default_rng(5).standard_normal(3 * demo_mesh.num_nodes)
        y_locals = ds.compute_phase(ds.scatter(x))
        y_locals, _ = ds.communication_phase(y_locals)
        for (a, b), nodes in ds.distribution.pair_shared_nodes.items():
            ia = ds.distribution.global_to_local(a, nodes)
            ib = ds.distribution.global_to_local(b, nodes)
            va = y_locals[a].reshape(-1, 3)[ia]
            vb = y_locals[b].reshape(-1, 3)[ib]
            assert np.allclose(va, vb, rtol=1e-10, atol=1e-6)

    def test_time_stepping_with_distributed_smvp(
        self, demo_mesh, demo_materials, demo_stiffness
    ):
        from repro.fem.assembly import assemble_lumped_mass
        from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep

        partition = partition_mesh(demo_mesh, 4)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        seq = ExplicitTimeStepper(demo_stiffness, mass, dt)
        dist = ExplicitTimeStepper(demo_stiffness, mass, dt, smvp=ds)
        force = np.zeros(3 * demo_mesh.num_nodes)
        force[123] = 1e9
        for _ in range(5):
            seq.step(force)
            dist.step(force)
        assert np.allclose(seq.u, dist.u, rtol=1e-10, atol=1e-12)


class TestSpark98Suite:
    def test_suite_names(self):
        assert SUITE == ("smv0", "smv1", "smv2", "rmv", "lmv", "mmv")

    @pytest.mark.parametrize("kernel", ["smv0", "smv1", "lmv", "mmv"])
    def test_run_kernel(self, kernel):
        run = run_kernel(kernel, instance="demo", num_parts=4, repetitions=1)
        assert run.flops > 0
        assert run.seconds_per_smvp > 0
        assert run.tf_ns > 0

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            run_kernel("smv9", instance="demo")

    def test_run_suite_subset(self):
        results = run_suite(
            instance="demo", num_parts=2, repetitions=1, kernels=("smv0",)
        )
        assert set(results) == {"smv0"}

    def test_sequential_vs_partitioned_flop_accounting(self):
        seq = run_kernel("smv0", instance="demo", repetitions=1)
        par = run_kernel("lmv", instance="demo", num_parts=8, repetitions=1)
        # Replication means the partitioned kernel performs more flops.
        assert par.flops > seq.flops
