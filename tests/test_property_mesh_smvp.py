"""Property-based tests over the mesher and SMVP distribution.

The stuffing mesher's conformity proof lives in code review; these
tests attack it with randomized graded sizing fields.  The distribution
invariants are checked under arbitrary (valid) element partitions, not
just the ones our partitioners produce.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB
from repro.mesh import topology
from repro.mesh.stuffing import jitter_mesh, stuff_octree
from repro.octree.linear import LinearOctree
from repro.partition.base import Partition
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.stats.beta import beta_bound
from repro.velocity.sizing import SizingField

UNIT = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


class BumpSizing(SizingField):
    """Random sizing field: fine Gaussian bumps on a coarse background."""

    def __init__(self, centers, widths, fine, coarse):
        self.centers = np.asarray(centers, dtype=float)
        self.widths = np.asarray(widths, dtype=float)
        self.fine = float(fine)
        self.coarse = float(coarse)

    def h(self, points):
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        out = np.full(pts.shape[0], self.coarse)
        for center, width in zip(self.centers, self.widths):
            d2 = ((pts - center) ** 2).sum(axis=1)
            bump = self.fine + (self.coarse - self.fine) * (
                1 - np.exp(-d2 / (2 * width**2))
            )
            out = np.minimum(out, bump)
        return out

    def h_min(self):
        return self.fine


@st.composite
def bump_fields(draw):
    k = draw(st.integers(1, 3))
    centers = [
        [draw(st.floats(0.1, 0.9)) for _ in range(3)] for _ in range(k)
    ]
    widths = [draw(st.floats(0.05, 0.3)) for _ in range(k)]
    fine = draw(st.floats(0.06, 0.15))
    return BumpSizing(centers, widths, fine=fine, coarse=0.7)


class TestStuffingUnderRandomGrading:
    @given(bump_fields(), st.booleans(), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_always_conforming(self, sizing, dither, seed):
        tree = LinearOctree.build(
            UNIT,
            sizing,
            base_shape=(1, 1, 1),
            max_level=4,
            dither=dither,
            dither_seed=seed,
        )
        mesh, spacing = stuff_octree(tree)
        mesh.validate()
        assert mesh.total_volume() == pytest.approx(1.0)
        # Every single-owner face lies on the domain boundary.
        surf = topology.surface_faces(mesh.tets)
        pts = mesh.points[surf]
        on_boundary = np.zeros(len(surf), dtype=bool)
        for axis in range(3):
            for value in (0.0, 1.0):
                on_boundary |= np.all(
                    np.abs(pts[:, :, axis] - value) < 1e-9, axis=1
                )
        assert on_boundary.all()
        # Jitter preserves all of it.
        jittered = jitter_mesh(mesh, spacing, amplitude=0.12, seed=seed)
        jittered.validate()
        assert jittered.total_volume() == pytest.approx(1.0)

    @given(bump_fields())
    @settings(max_examples=10, deadline=None)
    def test_connected_and_degree_bounded(self, sizing):
        tree = LinearOctree.build(
            UNIT, sizing, base_shape=(1, 1, 1), max_level=4
        )
        mesh, _ = stuff_octree(tree)
        assert mesh.is_connected()
        # Balanced-octree stuffing has bounded node degree.
        assert mesh.node_degrees.max() <= 40


@st.composite
def random_partitions(draw, num_elements: int):
    p = draw(st.integers(2, 12))
    # Guarantee every part non-empty by seeding one element per part.
    assignment = draw(
        st.lists(
            st.integers(0, p - 1),
            min_size=num_elements,
            max_size=num_elements,
        )
    )
    parts = np.array(assignment, dtype=np.int32)
    parts[:p] = np.arange(p)
    return Partition(parts, p, method="hyp")


class TestDistributionUnderRandomPartitions:
    @pytest.fixture(scope="class")
    def small_mesh(self):
        from repro.velocity.sizing import UniformSizingField

        tree = LinearOctree(UNIT, (2, 2, 2))
        tree.refine(UniformSizingField(0.25))
        tree.balance()
        mesh, _ = stuff_octree(tree)
        return mesh

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_schedule_invariants(self, small_mesh, data):
        partition = data.draw(random_partitions(small_mesh.num_elements))
        dist = DataDistribution(small_mesh, partition)
        sched = CommSchedule(dist)
        # Residency: every node somewhere, every element exactly one PE.
        assert dist.node_residency.min() >= 1
        # Word matrix symmetric, zero diagonal, multiples of 3.
        mat = sched.word_matrix
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)
        assert np.all(mat % 3 == 0)
        # Per-PE totals even and divisible by 3.
        assert np.all(sched.words_per_pe % 6 == 0)
        # Totals.
        assert sched.total_words == sched.words_per_pe.sum() // 2
        # Beta in band.
        beta = beta_bound(sched.words_per_pe, sched.blocks_per_pe)
        assert 1.0 <= beta <= 2.0 + 1e-9
        # Flops: local sums at least the global requirement.
        flops = dist.local_counts["flops"]
        global_flops = 2 * 9 * (
            small_mesh.num_nodes + 2 * small_mesh.num_edges
        )
        assert flops.sum() >= global_flops
