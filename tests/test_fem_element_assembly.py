"""Tests for repro.fem.element and repro.fem.assembly.

The load-bearing physics checks: element stiffness matrices must be
symmetric, positive semidefinite, and annihilate rigid-body motion
(translations and infinitesimal rotations); the assembled global matrix
inherits all three, has the paper's block sparsity (one 3x3 block per
node pair connected by an edge, plus diagonal blocks), and equals the
sum of its subdomain pieces.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import (
    assemble_lumped_mass,
    assemble_stiffness,
    assemble_subdomain_stiffness,
)
from repro.fem.element import (
    element_lumped_mass,
    element_stiffness,
    shape_gradients,
)
from repro.fem.material import ElementMaterials, materials_from_model
from repro.mesh.core import TetMesh
from repro.partition.base import partition_mesh
from repro.smvp.distribution import DataDistribution


def rigid_body_modes(points: np.ndarray) -> np.ndarray:
    """Six rigid-body displacement fields over the given nodes, each of
    length 3n: three translations and three infinitesimal rotations."""
    n = len(points)
    modes = []
    for axis in range(3):
        t = np.zeros((n, 3))
        t[:, axis] = 1.0
        modes.append(t.ravel())
    center = points.mean(axis=0)
    rel = points - center
    for axis in range(3):
        omega = np.zeros(3)
        omega[axis] = 1.0
        modes.append(np.cross(omega, rel).ravel())
    return np.array(modes)


class TestShapeGradients:
    def test_gradients_sum_to_zero(self, single_tet_mesh):
        grads, vols = shape_gradients(single_tet_mesh)
        assert np.allclose(grads.sum(axis=1), 0.0)
        assert vols[0] == pytest.approx(1 / 6)

    def test_linear_field_reproduced(self, single_tet_mesh):
        # grad of N_a dotted with nodal values of a linear field f(x) =
        # g . x must give back g.
        g = np.array([2.0, -1.0, 0.5])
        nodal = single_tet_mesh.points @ g
        grads, _ = shape_gradients(single_tet_mesh)
        recovered = np.einsum("a,ai->i", nodal, grads[0])
        assert np.allclose(recovered, g)

    def test_degenerate_rejected(self):
        pts = np.zeros((4, 3))
        pts[1] = [1, 0, 0]
        pts[2] = [2, 0, 0]
        pts[3] = [3, 0, 0]
        mesh = TetMesh(pts, np.array([[0, 1, 2, 3]]))
        with pytest.raises(ValueError, match="degenerate"):
            shape_gradients(mesh)


class TestElementStiffness:
    @pytest.fixture()
    def ke(self, single_tet_mesh):
        mats = ElementMaterials.homogeneous(1)
        return element_stiffness(single_tet_mesh, mats)[0]

    def test_shape(self, ke):
        assert ke.shape == (12, 12)

    def test_symmetric(self, ke):
        assert np.allclose(ke, ke.T, rtol=1e-12, atol=1e-6)

    def test_positive_semidefinite(self, ke):
        eigs = np.linalg.eigvalsh(ke)
        assert eigs.min() >= -1e-6 * abs(eigs.max())

    def test_exactly_six_zero_modes(self, ke):
        eigs = np.linalg.eigvalsh(ke)
        scale = abs(eigs.max())
        assert np.sum(np.abs(eigs) < 1e-9 * scale) == 6

    def test_annihilates_rigid_body_motion(self, single_tet_mesh, ke):
        modes = rigid_body_modes(single_tet_mesh.points)
        scale = np.abs(ke).max()
        for mode in modes:
            assert np.abs(ke @ mode).max() < 1e-9 * scale

    def test_uniform_compression_positive_energy(self, single_tet_mesh, ke):
        u = (single_tet_mesh.points * -0.01).ravel()  # uniform contraction
        energy = u @ ke @ u
        assert energy > 0

    def test_scales_with_stiffness(self, single_tet_mesh):
        soft = ElementMaterials(np.array([1e9]), np.array([1e9]), np.array([2000.0]))
        hard = ElementMaterials(np.array([2e9]), np.array([2e9]), np.array([2000.0]))
        k_soft = element_stiffness(single_tet_mesh, soft)[0]
        k_hard = element_stiffness(single_tet_mesh, hard)[0]
        assert np.allclose(k_hard, 2 * k_soft)


class TestElementMass:
    def test_quarter_mass_per_corner(self, single_tet_mesh):
        mats = ElementMaterials.homogeneous(1, rho=2400.0)
        masses = element_lumped_mass(single_tet_mesh, mats)
        expected = 2400.0 * (1 / 6) / 4
        assert np.allclose(masses, expected)


class TestGlobalAssembly:
    def test_sparsity_pattern(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        expected_nnz = 9 * (demo_mesh.num_nodes + 2 * demo_mesh.num_edges)
        assert k.nnz == expected_nnz

    def test_symmetry(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        diff = abs(k - k.T).max()
        assert diff < 1e-9 * abs(k).max()

    def test_rigid_body_annihilated_globally(self, demo_mesh, demo_materials):
        k = assemble_stiffness(demo_mesh, demo_materials)
        modes = rigid_body_modes(demo_mesh.points)
        scale = np.abs(k.data).max() * 1e-3
        for mode in modes:
            assert np.abs(k @ mode).max() < 1e-6 * scale

    def test_bsr_equals_csr(self, demo_mesh, demo_materials):
        csr = assemble_stiffness(demo_mesh, demo_materials, fmt="csr")
        bsr = assemble_stiffness(demo_mesh, demo_materials, fmt="bsr")
        assert sp.isspmatrix_bsr(bsr)
        assert bsr.blocksize == (3, 3)
        assert abs(bsr - csr).max() == 0.0

    def test_chunking_invariant(self, demo_mesh, demo_materials):
        whole = assemble_stiffness(demo_mesh, demo_materials)
        chunked = assemble_stiffness(
            demo_mesh, demo_materials, chunk_size=1000
        )
        assert abs(whole - chunked).max() < 1e-9 * abs(whole).max()

    def test_materials_length_checked(self, demo_mesh):
        with pytest.raises(ValueError):
            assemble_stiffness(demo_mesh, ElementMaterials.homogeneous(3))

    def test_bad_fmt(self, demo_mesh, demo_materials):
        with pytest.raises(ValueError):
            assemble_stiffness(demo_mesh, demo_materials, fmt="coo")


class TestLumpedMass:
    def test_total_mass_conserved(self, demo_mesh, demo_materials):
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        vols = demo_mesh.volumes()
        expected = 3 * float((demo_materials.rho * vols).sum())
        assert mass.sum() == pytest.approx(expected)

    def test_strictly_positive(self, demo_mesh, demo_materials):
        assert assemble_lumped_mass(demo_mesh, demo_materials).min() > 0


class TestSubdomainAssembly:
    def test_subdomains_sum_to_global(self, demo_mesh, demo_materials):
        k_global = assemble_stiffness(demo_mesh, demo_materials)
        partition = partition_mesh(demo_mesh, 4)
        dist = DataDistribution(demo_mesh, partition)
        total = sp.csr_matrix(k_global.shape)
        for part in range(4):
            nodes = dist.local_nodes(part)
            local = assemble_subdomain_stiffness(
                demo_mesh,
                demo_materials,
                dist.local_elements(part),
                nodes,
            )
            # Lift local to global dof numbering.
            dof = (3 * nodes[:, None] + np.arange(3)).ravel()
            lift = sp.csr_matrix(
                (
                    np.ones(len(dof)),
                    (dof, np.arange(len(dof))),
                ),
                shape=(k_global.shape[0], len(dof)),
            )
            total = total + lift @ local @ lift.T
        assert abs(total - k_global).max() < 1e-9 * abs(k_global).max()

    def test_foreign_node_rejected(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 4)
        dist = DataDistribution(demo_mesh, partition)
        wrong_nodes = dist.local_nodes(0)[:-5]  # drop some resident nodes
        with pytest.raises(ValueError, match="local_nodes"):
            assemble_subdomain_stiffness(
                demo_mesh, demo_materials, dist.local_elements(0), wrong_nodes
            )
