"""Tests for repro.model (machine, inputs, Equations 1-2, requirements).

The most important tests here pin the paper's own headline numbers: the
model must recover them from the published Figure 7 data.
"""

import numpy as np
import pytest

from repro import paperdata
from repro.model import (
    CRAY_T3D,
    CRAY_T3E,
    CURRENT_100MFLOPS,
    FUTURE_200MFLOPS,
    MACHINES,
    MAXIMAL_BLOCKS,
    Machine,
    ModelInputs,
    bisection_bandwidth_bytes,
    efficiency_from_tc,
    four_word_blocks,
    half_bandwidth_targets,
    latency_for_tradeoff,
    required_tc,
    smvp_time,
    sustained_bandwidth_bytes,
    tc_from_blocks,
    tradeoff_curve,
)
from repro.model.lowlevel import BlockMode, fixed_blocks
from repro.model.requirements import (
    bisection_requirement_rows,
    pe_bandwidth_requirement_rows,
)


class TestMachine:
    def test_presets(self):
        assert CURRENT_100MFLOPS.mflops == pytest.approx(100.0)
        assert FUTURE_200MFLOPS.tf == pytest.approx(5e-9)
        assert CRAY_T3D.tf == pytest.approx(30e-9)
        assert CRAY_T3E.tl == pytest.approx(22e-6)
        assert CRAY_T3E.tw == pytest.approx(55e-9)
        assert set(MACHINES) == {"current", "future", "t3d", "t3e"}

    def test_burst_bandwidth(self):
        assert CRAY_T3E.burst_bandwidth_bytes == pytest.approx(8 / 55e-9)
        assert CRAY_T3D.burst_bandwidth_bytes is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine("bad", tf=0.0)
        with pytest.raises(ValueError):
            Machine.from_mflops("bad", -5)


class TestModelInputs:
    def test_from_paper(self):
        inp = ModelInputs.from_paper("sf2", 128)
        assert inp.F == 838_224
        assert inp.c_max == 16_260
        assert inp.b_max == 50
        assert inp.f_over_c == pytest.approx(838_224 / 16_260)

    def test_from_stats(self, demo_mesh):
        from repro.stats import smvp_statistics

        stats = smvp_statistics(demo_mesh, num_parts=4)
        inp = ModelInputs.from_stats(stats, label="demo/4")
        assert inp.F == stats.F
        assert inp.bisection_words == stats.bisection_words

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelInputs("x", 4, F=0, c_max=1, b_max=1)


class TestEquationOne:
    def test_paper_300mb_claim(self):
        inp = ModelInputs.from_paper("sf2", 128)
        bw = sustained_bandwidth_bytes(inp, 0.9, FUTURE_200MFLOPS)
        assert bw == pytest.approx(279e6, rel=0.01)  # "about 300 MB/s"

    def test_paper_120mb_claim(self):
        worst = max(
            sustained_bandwidth_bytes(
                ModelInputs.from_paper("sf2", p), 0.9, CURRENT_100MFLOPS
            )
            for p in paperdata.SUBDOMAIN_COUNTS
        )
        assert worst == pytest.approx(140e6, rel=0.01)  # "about 120 MB/s"

    def test_efficiency_roundtrip(self):
        inp = ModelInputs.from_paper("sf5", 32)
        for eff in (0.3, 0.5, 0.9, 0.99):
            tc = required_tc(inp, eff, CRAY_T3E)
            assert efficiency_from_tc(inp, tc, CRAY_T3E) == pytest.approx(eff)

    def test_monotonic_in_efficiency(self):
        inp = ModelInputs.from_paper("sf2", 32)
        tcs = [required_tc(inp, e, CRAY_T3E) for e in (0.5, 0.7, 0.9)]
        assert tcs[0] > tcs[1] > tcs[2]  # higher E -> less time per word

    def test_faster_machine_needs_more_bandwidth(self):
        inp = ModelInputs.from_paper("sf2", 64)
        slow = sustained_bandwidth_bytes(inp, 0.8, CURRENT_100MFLOPS)
        fast = sustained_bandwidth_bytes(inp, 0.8, FUTURE_200MFLOPS)
        assert fast == pytest.approx(2 * slow)

    def test_smvp_time_decomposition(self):
        inp = ModelInputs.from_paper("sf10", 4)
        tc = 100e-9
        total = smvp_time(inp, tc, CRAY_T3D)
        assert total == pytest.approx(inp.F * 30e-9 + inp.c_max * tc)

    def test_efficiency_bounds_validated(self):
        inp = ModelInputs.from_paper("sf10", 4)
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                required_tc(inp, bad, CRAY_T3D)


class TestEquationTwo:
    def test_forward_formula(self):
        inp = ModelInputs.from_paper("sf2", 128)
        tc = tc_from_blocks(inp, tl=22e-6, tw=55e-9)
        expected = (50 / 16_260) * 22e-6 + 55e-9
        assert tc == pytest.approx(expected)

    def test_four_word_mode(self):
        inp = ModelInputs.from_paper("sf2", 128)
        mode = four_word_blocks()
        assert mode.b_max(inp) == pytest.approx(16_260 / 4)

    def test_blocks_per_neighbor_multiplier(self):
        inp = ModelInputs.from_paper("sf2", 128)
        mode = BlockMode(name="3x", blocks_per_neighbor=3)
        assert mode.b_max(inp) == 150

    def test_paper_100ns_claim(self):
        # 4-word blocks, infinite burst bandwidth, E=0.9: ~100 ns.
        inp = ModelInputs.from_paper("sf2", 128)
        tl = latency_for_tradeoff(
            inp, 0.9, FUTURE_200MFLOPS, 0.0, four_word_blocks()
        )
        assert tl == pytest.approx(115e-9, rel=0.02)

    def test_maximal_blocks_latency_microseconds(self):
        inp = ModelInputs.from_paper("sf2", 128)
        tl = latency_for_tradeoff(inp, 0.9, FUTURE_200MFLOPS, 0.0)
        assert tl == pytest.approx(9.3e-6, rel=0.02)

    def test_three_blocks_per_neighbor_reproduces_prose(self):
        # The documented explanation of the prose/equation discrepancy.
        inp = ModelInputs.from_paper("sf2", 128)
        mode = BlockMode(name="3x", blocks_per_neighbor=3)
        tl = latency_for_tradeoff(inp, 0.9, FUTURE_200MFLOPS, 0.0, mode)
        assert tl == pytest.approx(3.1e-6, rel=0.02)  # paper says ~3 us

    def test_infeasible_burst_bandwidth_negative(self):
        inp = ModelInputs.from_paper("sf2", 128)
        tc = required_tc(inp, 0.9, FUTURE_200MFLOPS)
        assert latency_for_tradeoff(inp, 0.9, FUTURE_200MFLOPS, 2 * tc) < 0

    def test_tradeoff_curve_monotone(self):
        inp = ModelInputs.from_paper("sf2", 128)
        curve = tradeoff_curve(inp, 0.8, FUTURE_200MFLOPS)
        bws = [bw for bw, _ in curve]
        tls = [tl for _, tl in curve]
        assert bws == sorted(bws)
        assert tls == sorted(tls)  # more burst bandwidth -> more latency slack
        assert all(tl >= 0 for tl in tls)

    def test_tc_consistency(self):
        # Plugging the tradeoff's (tl, tw) back into Equation (2) must
        # give exactly the required T_c.
        inp = ModelInputs.from_paper("sf2", 64)
        tc = required_tc(inp, 0.8, FUTURE_200MFLOPS)
        tw = tc / 3
        tl = latency_for_tradeoff(inp, 0.8, FUTURE_200MFLOPS, tw)
        assert tc_from_blocks(inp, tl, tw) == pytest.approx(tc)

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            fixed_blocks(0)
        with pytest.raises(ValueError):
            BlockMode(name="bad", blocks_per_neighbor=0)


class TestHalfBandwidth:
    def test_paper_600mb_and_70ns(self):
        inp = ModelInputs.from_paper("sf2", 128)
        hard = half_bandwidth_targets(inp, 0.9, FUTURE_200MFLOPS)
        assert hard.burst_bandwidth_bytes == pytest.approx(559e6, rel=0.01)
        hard4 = half_bandwidth_targets(
            inp, 0.9, FUTURE_200MFLOPS, four_word_blocks()
        )
        assert hard4.half_tl == pytest.approx(57e-9, rel=0.02)  # "~70 ns"

    def test_paper_easiest_case(self):
        inp = ModelInputs.from_paper("sf2", 4)
        easy = half_bandwidth_targets(inp, 0.5, CURRENT_100MFLOPS)
        assert easy.burst_bandwidth_bytes == pytest.approx(3.6e6, rel=0.02)

    def test_halves_actually_halve(self):
        inp = ModelInputs.from_paper("sf2", 32)
        h = half_bandwidth_targets(inp, 0.8, CURRENT_100MFLOPS)
        t_comm = inp.c_max * h.tc
        assert inp.c_max * h.half_tw == pytest.approx(t_comm / 2)
        assert inp.b_max * h.half_tl == pytest.approx(t_comm / 2)


class TestRequirements:
    def test_bisection_needs_volume(self):
        inp = ModelInputs.from_paper("sf2", 128)  # no bisection volume
        with pytest.raises(ValueError):
            bisection_bandwidth_bytes(inp, 0.9, FUTURE_200MFLOPS)

    def test_bisection_modest_for_measured(self, demo_mesh):
        from repro.stats import smvp_statistics

        stats = smvp_statistics(demo_mesh, num_parts=16)
        inp = ModelInputs.from_stats(stats)
        bw = bisection_bandwidth_bytes(inp, 0.9, FUTURE_200MFLOPS)
        # The paper's claim: well under a GB/s even in the worst case.
        assert bw < 1.5e9

    def test_row_sweeps_shapes(self):
        inputs = [
            ModelInputs.from_paper("sf2", p) for p in paperdata.SUBDOMAIN_COUNTS
        ]
        rows = pe_bandwidth_requirement_rows(inputs)
        assert len(rows) == 6 * 3 * 2  # p x E x machines
        assert all(r.mbytes_per_second > 0 for r in rows)

    def test_bisection_rows(self, demo_mesh):
        from repro.stats import smvp_statistics

        inputs = [
            ModelInputs.from_stats(smvp_statistics(demo_mesh, num_parts=p))
            for p in (4, 8)
        ]
        rows = bisection_requirement_rows(inputs)
        assert len(rows) == 2 * 3 * 2
