"""Tests for repro.simulate (BSP simulator and model validation)."""

import numpy as np
import pytest

from repro.model.machine import CRAY_T3D, CRAY_T3E, Machine
from repro.partition.base import Partition, partition_mesh
from repro.simulate import BspSimulator, validate_model
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule


@pytest.fixture(scope="module")
def demo_setup(demo_mesh):
    partition = partition_mesh(demo_mesh, 16, seed=0)
    dist = DataDistribution(demo_mesh, partition)
    schedule = CommSchedule(dist)
    flops = dist.local_counts["flops"]
    return flops, schedule


@pytest.fixture()
def two_tet_setup(two_tet_mesh):
    dist = DataDistribution(two_tet_mesh, Partition(np.array([0, 1]), 2))
    schedule = CommSchedule(dist)
    return dist.local_counts["flops"], schedule


class TestBarrierMode:
    def test_exact_formula_two_tets(self, two_tet_setup):
        flops, schedule = two_tet_setup
        machine = CRAY_T3E
        sim = BspSimulator(flops, schedule, machine)
        times = sim.run("barrier")
        assert times.t_comp == pytest.approx(flops.max() * machine.tf)
        expected_comm = 2 * machine.tl + 18 * machine.tw
        assert times.t_comm == pytest.approx(expected_comm)
        assert times.t_smvp == pytest.approx(times.t_comp + times.t_comm)

    def test_efficiency_definition(self, demo_setup):
        flops, schedule = demo_setup
        times = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        assert times.efficiency == pytest.approx(times.t_comp / times.t_smvp)
        assert 0 < times.efficiency < 1

    def test_machine_without_comm_constants_rejected(self, demo_setup):
        flops, schedule = demo_setup
        with pytest.raises(ValueError):
            BspSimulator(flops, schedule, CRAY_T3D)

    def test_flops_length_checked(self, demo_setup):
        _, schedule = demo_setup
        with pytest.raises(ValueError):
            BspSimulator(np.ones(3), schedule, CRAY_T3E)


class TestSkewedMode:
    def test_bounds(self, demo_setup):
        flops, schedule = demo_setup
        sim = BspSimulator(flops, schedule, CRAY_T3E)
        barrier = sim.run("barrier")
        skewed = sim.run("skewed")
        # Lower bound: some PE must compute and then do all its traffic.
        lower = (
            flops * CRAY_T3E.tf
            + schedule.blocks_per_pe * CRAY_T3E.tl
            + schedule.words_per_pe * CRAY_T3E.tw
        ).max()
        assert skewed.t_smvp >= lower - 1e-15
        # Pairwise interface blocking can cost, but not more than the
        # total serialized traffic.
        total_comm = (
            schedule.blocks_per_pe * CRAY_T3E.tl
            + schedule.words_per_pe * CRAY_T3E.tw
        ).sum()
        assert skewed.t_smvp <= barrier.t_comp + total_comm

    def test_no_messages_means_compute_only(self, two_tet_mesh):
        dist = DataDistribution(two_tet_mesh, Partition(np.zeros(2, dtype=int), 1))
        schedule = CommSchedule(dist)
        flops = dist.local_counts["flops"]
        times = BspSimulator(flops, schedule, CRAY_T3E).run("skewed")
        assert times.t_comm == 0.0

    def test_two_pes_exact(self, two_tet_setup):
        flops, schedule = two_tet_setup
        machine = CRAY_T3E
        times = BspSimulator(flops, schedule, machine).run("skewed")
        # Both PEs have equal flops; the two 9-word transfers serialize
        # on the shared pair of interfaces.
        ready = flops.max() * machine.tf
        expected = ready + 2 * (machine.tl + 9 * machine.tw)
        assert times.t_smvp == pytest.approx(expected)


class TestOverlapMode:
    def test_needs_boundary_flops(self, demo_setup):
        flops, schedule = demo_setup
        sim = BspSimulator(flops, schedule, CRAY_T3E)
        with pytest.raises(ValueError):
            sim.run("overlap")

    def test_full_overlap_hides_comm(self, demo_setup):
        flops, schedule = demo_setup
        # Zero boundary flops and tiny comm: total = compute time.
        fast = Machine("fast-net", tf=CRAY_T3E.tf, tl=1e-12, tw=1e-15)
        sim = BspSimulator(
            flops, schedule, fast, boundary_flops_per_pe=np.zeros_like(flops)
        )
        times = sim.run("overlap")
        assert times.t_smvp == pytest.approx(times.t_comp, rel=1e-6)

    def test_overlap_never_slower_than_barrier(self, demo_setup):
        flops, schedule = demo_setup
        boundary = (0.3 * flops).astype(float)
        sim = BspSimulator(
            flops, schedule, CRAY_T3E, boundary_flops_per_pe=boundary
        )
        barrier = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        overlap = sim.run("overlap")
        assert overlap.t_smvp <= barrier.t_smvp + 1e-15

    def test_boundary_flops_validated(self, demo_setup):
        flops, schedule = demo_setup
        sim = BspSimulator(
            flops, schedule, CRAY_T3E, boundary_flops_per_pe=flops * 2
        )
        with pytest.raises(ValueError):
            sim.run("overlap")

    def test_unknown_mode(self, demo_setup):
        flops, schedule = demo_setup
        with pytest.raises(ValueError):
            BspSimulator(flops, schedule, CRAY_T3E).run("warp")


class TestModelValidation:
    @pytest.mark.parametrize("p", [4, 8, 16, 32, 64])
    def test_holds_across_pe_counts(self, demo_mesh, p):
        partition = partition_mesh(demo_mesh, p, seed=0)
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        v = validate_model(dist.local_counts["flops"], schedule, CRAY_T3E)
        assert v.model_holds
        assert 1.0 - 1e-12 <= v.ratio <= v.beta + 1e-9

    @pytest.mark.parametrize("method", ["rcb", "geometric", "random"])
    def test_holds_across_partitioners(self, demo_mesh, method):
        partition = partition_mesh(demo_mesh, 16, method=method, seed=1)
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        v = validate_model(dist.local_counts["flops"], schedule, CRAY_T3E)
        assert v.model_holds

    def test_holds_across_machines(self, demo_setup):
        flops, schedule = demo_setup
        for tl, tw in ((1e-6, 1e-9), (100e-6, 1e-9), (1e-9, 1e-6)):
            machine = Machine("m", tf=10e-9, tl=tl, tw=tw)
            v = validate_model(flops, schedule, machine)
            assert v.model_holds, (tl, tw)
