"""Tests for the ``repro-lint`` static-analysis subsystem.

Covers the acceptance criteria: the purpose-built fixture files under
``tests/lint_fixtures/`` trigger at least six distinct rules at the
expected locations, pragmas suppress, the final source tree lints
clean, and the CLI exit codes / ``--json`` schema behave.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    lint_paths,
    pragma_report,
    render_json,
    render_pragma_report,
    render_text,
)
from repro.analysis.core import _ensure_rules_loaded
from repro.cli import main_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"
REPO = Path(__file__).parent.parent

# Parametrizing over the catalog needs it populated at collection time.
_ensure_rules_loaded()

#: Rules that lint Python source (everything but the JSON schedule rule).
PY_RULES = sorted(set(ALL_RULES) - {"schedule-invariant"})


@pytest.fixture(scope="module")
def fixture_findings():
    return lint_paths([str(FIXTURES)])


def rules_hit(findings, path_fragment=None):
    return {
        f.rule
        for f in findings
        if path_fragment is None or path_fragment in f.path
    }


class TestFixtureDetection:
    def test_at_least_six_distinct_rules(self, fixture_findings):
        assert len(rules_hit(fixture_findings)) >= 6

    def test_determinism_rules_fire_where_expected(self, fixture_findings):
        det = [f for f in fixture_findings if "det_violations" in f.path]
        by_rule = {}
        for f in det:
            by_rule.setdefault(f.rule, []).append(f.line)
        assert sorted(by_rule["unseeded-random"]) == [16, 17, 18]
        assert sorted(by_rule["numpy-legacy-random"]) == [22, 23]
        assert by_rule["unseeded-default-rng"] == [27]
        assert sorted(by_rule["wall-clock"]) == [31, 32, 33]
        assert sorted(by_rule["unordered-iteration"]) == [38, 39]

    def test_pragma_suppresses(self, fixture_findings):
        # The `intentional_entropy` body (line 46) carries a pragma.
        det = [f for f in fixture_findings if "det_violations" in f.path]
        assert all(f.line < 42 for f in det)

    def test_units_rule(self, fixture_findings):
        units = [f for f in fixture_findings if "units_violations" in f.path]
        assert {f.rule for f in units} == {"unit-mismatch"}
        assert sorted(f.line for f in units) == [6, 11, 16]
        messages = " ".join(f.message for f in units)
        assert "seconds and bytes/second" in messages
        assert "words and blocks" in messages
        assert "seconds and nanoseconds" in messages

    def test_clock_shim_banned_in_model_code(self, fixture_findings):
        model = [f for f in fixture_findings if "clocked_model" in f.path]
        assert {f.rule for f in model} == {"wall-clock"}
        assert len(model) == 2
        assert all("clock-free" in f.message for f in model)

    def test_kernel_dict_pokes_flagged(self, fixture_findings):
        pokes = [f for f in fixture_findings if "kernel_dict_poke" in f.path]
        assert {f.rule for f in pokes} == {"kernel-registry"}
        assert sorted(f.line for f in pokes) == [13, 18, 23]
        messages = " ".join(f.message for f in pokes)
        assert "get_kernel" in messages
        assert "KERNELS" in messages and "KERNEL_REGISTRY" in messages

    def test_kernel_module_itself_exempt(self):
        kernels_py = SRC / "repro" / "smvp" / "kernels.py"
        assert lint_paths([str(kernels_py)], rules=["kernel-registry"]) == []

    def test_undeclared_block_kernel_flagged(self, fixture_findings):
        """An apply_block override needs a class-level supports_block."""
        hits = [
            f
            for f in fixture_findings
            if "kernel_block_undeclared" in f.path
        ]
        assert {f.rule for f in hits} == {"kernel-registry"}
        # Only SilentBlockKernel fires: plain and annotated declarations
        # both count, and the pragma'd override is waived.
        assert [f.line for f in hits] == [13]
        assert "supports_block" in hits[0].message
        assert "SilentBlockKernel" in hits[0].message

    def test_no_print_rule(self, fixture_findings):
        hits = [f for f in fixture_findings if "no_print" in f.path]
        assert {f.rule for f in hits} == {"no-print"}
        # Line 17 carries a pragma; the docstring mention is invisible.
        assert sorted(f.line for f in hits) == [8, 25]
        assert all("print() in library code" in f.message for f in hits)

    def test_no_print_exempts_presentation_layers(self):
        cli_py = SRC / "repro" / "cli.py"
        tables_dir = SRC / "repro" / "tables"
        assert lint_paths([str(cli_py)], rules=["no-print"]) == []
        assert lint_paths([str(tables_dir)], rules=["no-print"]) == []

    def test_no_bare_except_rule(self, fixture_findings):
        hits = [
            f for f in fixture_findings if "swallowed_exceptions" in f.path
        ]
        assert {f.rule for f in hits} == {"no-bare-except"}
        # Bare except, two silent broads, one tuple-hidden broad; the
        # observed/narrow/pragma'd handlers stay clean.
        assert sorted(f.line for f in hits) == [10, 17, 24, 33]
        messages = " ".join(f.message for f in hits)
        assert "bare `except:`" in messages
        assert "silently swallows" in messages

    def test_no_bare_except_exempts_cli_and_observed_handlers(self):
        cli_py = SRC / "repro" / "cli.py"
        assert lint_paths([str(cli_py)], rules=["no-bare-except"]) == []
        # Broad handlers that re-raise typed errors (checkpoint loader)
        # are not swallows and must stay clean.
        recovery_py = SRC / "repro" / "faults" / "recovery.py"
        assert (
            lint_paths([str(recovery_py)], rules=["no-bare-except"]) == []
        )

    def test_bad_schedule_rejected(self, fixture_findings):
        bad = [f for f in fixture_findings if "bad_schedule" in f.path]
        assert bad and {f.rule for f in bad} == {"schedule-invariant"}
        kinds = {f.message.split(":", 1)[0] for f in bad}
        assert {"asymmetry", "deadlock", "parity", "coverage"} <= kinds
        assert any("0->1->2->0" in f.message for f in bad)

    def test_clean_fixtures_produce_nothing(self, fixture_findings):
        for clean in ("clean_module", "good_schedule"):
            assert not [f for f in fixture_findings if clean in f.path]

    def test_ownership_rules_fire_where_expected(self, fixture_findings):
        own = [
            f for f in fixture_findings if "ownership_violations" in f.path
        ]
        by_rule = {}
        for f in own:
            by_rule.setdefault(f.rule, []).append(f.line)
        assert sorted(by_rule.pop("bsp-ownership")) == [13, 17]
        assert by_rule.pop("ghost-read") == [37]
        assert sorted(by_rule.pop("exchange-buffer-mutation")) == [50, 54]
        assert by_rule.pop("bsp-reduction-order") == [59]
        # The annotated twins (@owns / @exchange_phase / @reads_ghosts,
        # range loops, sorted reductions) must all stay clean.
        assert by_rule == {}

    def test_prepare_purity_fires_where_expected(self, fixture_findings):
        hits = [f for f in fixture_findings if "prepare_impure" in f.path]
        assert {f.rule for f in hits} == {"prepare-purity"}
        assert sorted(f.line for f in hits) == [13, 16, 28]
        assert all("apply/prepare" in f.message for f in hits)

    def test_engine_modules_carry_annotations(self):
        # The vocabulary is adopted, not just defined: the exchange
        # module declares its phase, the executor its owned writes.
        exchange_py = (SRC / "repro" / "smvp" / "exchange.py").read_text()
        executor_py = (SRC / "repro" / "smvp" / "executor.py").read_text()
        assert "@exchange_phase(" in exchange_py
        assert "@reads_ghosts(" in exchange_py
        assert "@owns(" in executor_py


class TestSourceTreeClean:
    def test_repro_lint_src_exits_zero(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], render_text(findings)

    def test_full_tree_lints_clean(self):
        """Satellite guarantee: tests/benchmarks/examples lint clean too."""
        paths = [
            str(REPO / name)
            for name in ("src", "tests", "benchmarks", "examples")
        ]
        findings = lint_paths(paths)
        assert findings == [], render_text(findings)

    def test_fixture_dir_pruned_from_tree_walks(self):
        """Walking tests/ skips lint_fixtures; naming it lints it."""
        tree = lint_paths([str(FIXTURES.parent)])
        assert not [f for f in tree if "lint_fixtures" in f.path]
        assert lint_paths([str(FIXTURES)])


class TestEngine:
    def test_rule_catalog_is_complete(self):
        expected = {
            "unseeded-random",
            "numpy-legacy-random",
            "unseeded-default-rng",
            "wall-clock",
            "unordered-iteration",
            "unit-mismatch",
            "schedule-invariant",
            "kernel-registry",
            "no-print",
            "no-bare-except",
            "prepare-purity",
            "bsp-ownership",
            "ghost-read",
            "exchange-buffer-mutation",
            "bsp-reduction-order",
        }
        assert expected <= set(ALL_RULES)

    def test_every_rule_has_fixture_coverage(self, fixture_findings):
        """Every registered rule fires somewhere under lint_fixtures/ —
        a rule nothing exercises is a rule nothing proves."""
        fired = {f.rule for f in fixture_findings}
        assert fired == set(ALL_RULES)

    @pytest.mark.parametrize("rule", sorted(ALL_RULES))
    def test_rules_filter_isolates_each_rule(self, rule):
        only = lint_paths([str(FIXTURES)], rules=[rule])
        assert only, f"--rules {rule} found nothing in the fixtures"
        assert {f.rule for f in only} == {rule}

    @pytest.mark.parametrize("rule", PY_RULES)
    def test_pragma_suppresses_each_rule(
        self, rule, fixture_findings, tmp_path
    ):
        """Appending `# repro-lint: ignore[rule]` to every finding line
        silences exactly that rule — checked for the whole catalog."""
        hits = [f for f in fixture_findings if f.rule == rule]
        source = Path(hits[0].path)
        lines = source.read_text().splitlines()
        target_lines = {
            f.line for f in hits if Path(f.path) == source
        }
        for line_no in sorted(target_lines):
            lines[line_no - 1] += f"  # repro-lint: ignore[{rule}]"
        copy = tmp_path / source.name
        copy.write_text("\n".join(lines) + "\n")
        # The relocation alone must not hide the findings...
        control = tmp_path / f"control_{source.name}"
        control.write_text(source.read_text())
        assert lint_paths([str(control)], rules=[rule])
        # ...the pragma must.
        assert lint_paths([str(copy)], rules=[rule]) == []

    def test_rule_filter(self):
        only_units = lint_paths([str(FIXTURES)], rules=["unit-mismatch"])
        assert only_units
        assert {f.rule for f in only_units} == {"unit-mismatch"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rules"):
            lint_paths([str(FIXTURES)], rules=["no-such-rule"])

    def test_missing_path_rejected(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([str(FIXTURES / "does_not_exist")])

    def test_findings_sorted_and_stable(self, fixture_findings):
        keys = [(f.path, f.line, f.col, f.rule) for f in fixture_findings]
        assert keys == sorted(keys)
        assert fixture_findings == lint_paths([str(FIXTURES)])

    def test_render_json_schema(self, fixture_findings):
        payload = json.loads(render_json(fixture_findings))
        assert payload["version"] == 1
        assert payload["count"] == len(fixture_findings)
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}


class TestPragmaReport:
    def test_counts_named_bare_and_skip(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import random\n"
            "x = random.random()  # repro-lint: ignore[unseeded-random]\n"
            "y = random.random()  # repro-lint: ignore\n"
        )
        (tmp_path / "b.py").write_text(
            "# repro-lint: skip-file\n"
            "import random\n"
            "z = random.random()\n"
        )
        report = pragma_report([str(tmp_path)])
        assert report["total"] == 2
        assert report["by_rule"] == {"*": 1, "unseeded-random": 1}
        assert report["by_file"] == {str(tmp_path / "a.py"): 2}
        assert report["skip_files"] == [str(tmp_path / "b.py")]

    def test_render(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "pass  # repro-lint: ignore[no-print]\n"
        )
        text = render_pragma_report(pragma_report([str(tmp_path)]))
        assert "pragma budget: 1 suppression(s)" in text
        assert "rule no-print: 1" in text

    def test_cli_pragma_report_flag(self, capsys):
        assert main_lint([str(SRC), "--pragma-report"]) == 0
        out = capsys.readouterr().out
        assert "pragma budget:" in out
        assert "repro-lint: clean" in out

    def test_cli_pragma_budget_gate(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text(
            "pass  # repro-lint: ignore\n"
            "pass  # repro-lint: ignore\n"
        )
        assert main_lint([str(tmp_path), "--pragma-budget", "2"]) == 0
        capsys.readouterr()
        assert main_lint([str(tmp_path), "--pragma-budget", "1"]) == 1
        out = capsys.readouterr().out
        assert "pragma budget exceeded: 2 > 1" in out


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        assert main_lint([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "finding(s)" in out

    def test_exit_zero_on_clean_tree(self, capsys):
        assert main_lint([str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_mode(self, capsys):
        assert main_lint([str(FIXTURES), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] > 0
        assert all("rule" in f for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert main_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "schedule-invariant" in out
        assert "unit-mismatch" in out

    def test_usage_error_exit_two(self):
        with pytest.raises(SystemExit) as exc:
            main_lint([str(FIXTURES), "--rules", "no-such-rule"])
        assert exc.value.code == 2
