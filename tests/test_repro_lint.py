"""Tests for the ``repro-lint`` static-analysis subsystem.

Covers the acceptance criteria: the purpose-built fixture files under
``tests/lint_fixtures/`` trigger at least six distinct rules at the
expected locations, pragmas suppress, the final source tree lints
clean, and the CLI exit codes / ``--json`` schema behave.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, lint_paths, render_json, render_text
from repro.cli import main_lint

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(__file__).parent.parent / "src"


@pytest.fixture(scope="module")
def fixture_findings():
    return lint_paths([str(FIXTURES)])


def rules_hit(findings, path_fragment=None):
    return {
        f.rule
        for f in findings
        if path_fragment is None or path_fragment in f.path
    }


class TestFixtureDetection:
    def test_at_least_six_distinct_rules(self, fixture_findings):
        assert len(rules_hit(fixture_findings)) >= 6

    def test_determinism_rules_fire_where_expected(self, fixture_findings):
        det = [f for f in fixture_findings if "det_violations" in f.path]
        by_rule = {}
        for f in det:
            by_rule.setdefault(f.rule, []).append(f.line)
        assert sorted(by_rule["unseeded-random"]) == [16, 17, 18]
        assert sorted(by_rule["numpy-legacy-random"]) == [22, 23]
        assert by_rule["unseeded-default-rng"] == [27]
        assert sorted(by_rule["wall-clock"]) == [31, 32, 33]
        assert sorted(by_rule["unordered-iteration"]) == [38, 39]

    def test_pragma_suppresses(self, fixture_findings):
        # The `intentional_entropy` body (line 46) carries a pragma.
        det = [f for f in fixture_findings if "det_violations" in f.path]
        assert all(f.line < 42 for f in det)

    def test_units_rule(self, fixture_findings):
        units = [f for f in fixture_findings if "units_violations" in f.path]
        assert {f.rule for f in units} == {"unit-mismatch"}
        assert sorted(f.line for f in units) == [6, 11, 16]
        messages = " ".join(f.message for f in units)
        assert "seconds and bytes/second" in messages
        assert "words and blocks" in messages
        assert "seconds and nanoseconds" in messages

    def test_clock_shim_banned_in_model_code(self, fixture_findings):
        model = [f for f in fixture_findings if "clocked_model" in f.path]
        assert {f.rule for f in model} == {"wall-clock"}
        assert len(model) == 2
        assert all("clock-free" in f.message for f in model)

    def test_kernel_dict_pokes_flagged(self, fixture_findings):
        pokes = [f for f in fixture_findings if "kernel_dict_poke" in f.path]
        assert {f.rule for f in pokes} == {"kernel-registry"}
        assert sorted(f.line for f in pokes) == [13, 18, 23]
        messages = " ".join(f.message for f in pokes)
        assert "get_kernel" in messages
        assert "KERNELS" in messages and "KERNEL_REGISTRY" in messages

    def test_kernel_module_itself_exempt(self):
        kernels_py = SRC / "repro" / "smvp" / "kernels.py"
        assert lint_paths([str(kernels_py)], rules=["kernel-registry"]) == []

    def test_no_print_rule(self, fixture_findings):
        hits = [f for f in fixture_findings if "no_print" in f.path]
        assert {f.rule for f in hits} == {"no-print"}
        # Line 17 carries a pragma; the docstring mention is invisible.
        assert sorted(f.line for f in hits) == [8, 25]
        assert all("print() in library code" in f.message for f in hits)

    def test_no_print_exempts_presentation_layers(self):
        cli_py = SRC / "repro" / "cli.py"
        tables_dir = SRC / "repro" / "tables"
        assert lint_paths([str(cli_py)], rules=["no-print"]) == []
        assert lint_paths([str(tables_dir)], rules=["no-print"]) == []

    def test_no_bare_except_rule(self, fixture_findings):
        hits = [
            f for f in fixture_findings if "swallowed_exceptions" in f.path
        ]
        assert {f.rule for f in hits} == {"no-bare-except"}
        # Bare except, two silent broads, one tuple-hidden broad; the
        # observed/narrow/pragma'd handlers stay clean.
        assert sorted(f.line for f in hits) == [10, 17, 24, 33]
        messages = " ".join(f.message for f in hits)
        assert "bare `except:`" in messages
        assert "silently swallows" in messages

    def test_no_bare_except_exempts_cli_and_observed_handlers(self):
        cli_py = SRC / "repro" / "cli.py"
        assert lint_paths([str(cli_py)], rules=["no-bare-except"]) == []
        # Broad handlers that re-raise typed errors (checkpoint loader)
        # are not swallows and must stay clean.
        recovery_py = SRC / "repro" / "faults" / "recovery.py"
        assert (
            lint_paths([str(recovery_py)], rules=["no-bare-except"]) == []
        )

    def test_bad_schedule_rejected(self, fixture_findings):
        bad = [f for f in fixture_findings if "bad_schedule" in f.path]
        assert bad and {f.rule for f in bad} == {"schedule-invariant"}
        kinds = {f.message.split(":", 1)[0] for f in bad}
        assert {"asymmetry", "deadlock", "parity", "coverage"} <= kinds
        assert any("0->1->2->0" in f.message for f in bad)

    def test_clean_fixtures_produce_nothing(self, fixture_findings):
        for clean in ("clean_module", "good_schedule"):
            assert not [f for f in fixture_findings if clean in f.path]


class TestSourceTreeClean:
    def test_repro_lint_src_exits_zero(self):
        findings = lint_paths([str(SRC)])
        assert findings == [], render_text(findings)


class TestEngine:
    def test_rule_catalog_is_complete(self):
        expected = {
            "unseeded-random",
            "numpy-legacy-random",
            "unseeded-default-rng",
            "wall-clock",
            "unordered-iteration",
            "unit-mismatch",
            "schedule-invariant",
            "kernel-registry",
            "no-print",
        }
        assert expected <= set(ALL_RULES)

    def test_rule_filter(self):
        only_units = lint_paths([str(FIXTURES)], rules=["unit-mismatch"])
        assert only_units
        assert {f.rule for f in only_units} == {"unit-mismatch"}

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rules"):
            lint_paths([str(FIXTURES)], rules=["no-such-rule"])

    def test_missing_path_rejected(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([str(FIXTURES / "does_not_exist")])

    def test_findings_sorted_and_stable(self, fixture_findings):
        keys = [(f.path, f.line, f.col, f.rule) for f in fixture_findings]
        assert keys == sorted(keys)
        assert fixture_findings == lint_paths([str(FIXTURES)])

    def test_render_json_schema(self, fixture_findings):
        payload = json.loads(render_json(fixture_findings))
        assert payload["version"] == 1
        assert payload["count"] == len(fixture_findings)
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}


class TestCli:
    def test_exit_one_on_findings(self, capsys):
        assert main_lint([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "finding(s)" in out

    def test_exit_zero_on_clean_tree(self, capsys):
        assert main_lint([str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_mode(self, capsys):
        assert main_lint([str(FIXTURES), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] > 0
        assert all("rule" in f for f in payload["findings"])

    def test_list_rules(self, capsys):
        assert main_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "schedule-invariant" in out
        assert "unit-mismatch" in out

    def test_usage_error_exit_two(self):
        with pytest.raises(SystemExit) as exc:
            main_lint([str(FIXTURES), "--rules", "no-such-rule"])
        assert exc.value.code == 2
