"""Additional coverage for corners not exercised elsewhere."""

import numpy as np
import pytest

from repro.model.application import predict_application
from repro.model.inputs import ModelInputs
from repro.model.machine import CRAY_T3E
from repro.smvp.spark98 import run_kernel
from repro.tables.common import clear_caches, gate_note, instance_stats
from repro.mesh.instances import INSTANCES


class TestSpark98Remaining:
    def test_smv2_symmetric_kernel(self):
        run = run_kernel("smv2", instance="demo", repetitions=1)
        assert run.kernel == "smv2"
        assert run.num_parts == 1
        assert run.tf_ns > 0

    def test_rmv_python_reference(self):
        run = run_kernel("rmv", instance="demo", repetitions=1)
        # Pure Python is orders of magnitude slower than scipy.
        scipy_run = run_kernel("smv0", instance="demo", repetitions=1)
        assert run.tf_ns > 10 * scipy_run.tf_ns

    def test_mmv_slower_than_lmv(self):
        # The exchange phase costs something even in-process.
        lmv = run_kernel("lmv", instance="demo", num_parts=8, repetitions=2)
        mmv = run_kernel("mmv", instance="demo", num_parts=8, repetitions=2)
        assert mmv.seconds_per_smvp >= lmv.seconds_per_smvp * 0.9


class TestApplicationPredictionExtras:
    def test_custom_step_count(self):
        inputs = ModelInputs.from_paper("sf5", 64)
        short = predict_application(inputs, CRAY_T3E, num_steps=100)
        full = predict_application(inputs, CRAY_T3E)
        assert full.total_seconds == pytest.approx(60 * short.total_seconds)
        assert short.t_smvp == full.t_smvp

    def test_mflops_consistent_with_efficiency(self):
        inputs = ModelInputs.from_paper("sf1", 128)
        pred = predict_application(inputs, CRAY_T3E)
        peak_local = 1e-6 / CRAY_T3E.tf
        assert pred.sustained_mflops_per_pe == pytest.approx(
            pred.efficiency * peak_local, rel=1e-9
        )


class TestTablesCommon:
    def test_stats_cache_hit_is_same_object(self):
        clear_caches()
        inst = INSTANCES["demo"]
        a = instance_stats(inst, 4)
        b = instance_stats(inst, 4)
        assert a is b
        clear_caches()

    def test_gate_note(self, monkeypatch):
        monkeypatch.delenv("REPRO_LARGE", raising=False)
        note = gate_note(INSTANCES["sf2e"])
        assert "REPRO_LARGE" in note
        assert gate_note(INSTANCES["demo"]) is None


class TestDistributedRoundTrip:
    def test_scatter_gather_identity_on_compute_free_vector(self, demo_mesh, demo_materials):
        """Scattering x and gathering (without compute/exchange) must
        reproduce x — the replication bookkeeping is lossless."""
        from repro.partition import partition_mesh
        from repro.smvp import DistributedSMVP

        partition = partition_mesh(demo_mesh, 8)
        ds = DistributedSMVP(demo_mesh, partition, demo_materials)
        x = np.random.default_rng(0).standard_normal(3 * demo_mesh.num_nodes)
        assert np.array_equal(ds.gather(ds.scatter(x)), x)
