"""Property tests for the BSP exchange-schedule invariants.

The paper's model rests on the exchange being a symmetric pairwise
bulk-synchronous schedule.  These tests sweep every registered
partitioner across mesh instances and PE counts and assert the checker
finds nothing — then hand the checker deliberately broken schedules
(asymmetric, deadlocking, under-covering) and assert it rejects each
one for the right reason.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.schedule_check import (
    check_coverage,
    check_messages,
    check_parity,
    check_rounds,
    check_schedule,
)
from repro.partition import PARTITIONERS, register_all
from repro.partition.base import partition_mesh
from repro.partition.refine import smooth_partition
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule

register_all()


def build_schedule(mesh, num_parts, method, seed=0, smooth=False):
    partition = partition_mesh(mesh, num_parts, method=method, seed=seed)
    if smooth:
        partition = smooth_partition(mesh, partition)
    dist = DataDistribution(mesh, partition)
    return dist, CommSchedule(dist)


class TestRealSchedulesAreValid:
    """Every partitioner x instance x p yields an invariant-clean schedule."""

    @pytest.mark.parametrize("method", sorted(PARTITIONERS))
    @pytest.mark.parametrize("num_parts", [2, 5, 8])
    def test_demo_all_partitioners(self, demo_mesh, method, num_parts):
        dist, schedule = build_schedule(demo_mesh, num_parts, method)
        report = check_schedule(schedule, dist)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("method", ["rcb", "inertial"])
    def test_sf10e_instance(self, sf10e_mesh, method):
        dist, schedule = build_schedule(sf10e_mesh, 16, method)
        report = check_schedule(schedule, dist)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seed_sweep_with_smoothing(self, demo_mesh, seed):
        """Refined (smoothed) partitions keep every invariant too."""
        dist, schedule = build_schedule(
            demo_mesh, 8, "rcb", seed=seed, smooth=True
        )
        report = check_schedule(schedule, dist)
        assert report.ok, report.summary()

    def test_word_matrix_symmetry_and_parity(self, demo_mesh):
        dist, schedule = build_schedule(demo_mesh, 8, "rcb")
        mat = schedule.word_matrix
        assert np.array_equal(mat, mat.T)
        assert np.all(schedule.words_per_pe % 2 == 0)
        assert np.all(schedule.words_per_pe % 3 == 0)

    def test_rounds_are_matchings_covering_all_pairs(self, demo_mesh):
        dist, schedule = build_schedule(demo_mesh, 8, "geometric")
        rounds = schedule.exchange_rounds()
        seen = set()
        for rnd in rounds:
            pes = [pe for pair in rnd for pe in pair]
            assert len(pes) == len(set(pes)), "PE doubly busy in a round"
            seen.update(rnd)
        assert seen == set(dist.pair_shared_nodes)

    def test_rounds_deterministic(self, demo_mesh):
        _, schedule_a = build_schedule(demo_mesh, 8, "rcb")
        _, schedule_b = build_schedule(demo_mesh, 8, "rcb")
        assert schedule_a.exchange_rounds() == schedule_b.exchange_rounds()


class _StubSchedule:
    """A minimal schedule stand-in for feeding doctored message lists."""

    def __init__(self, num_parts, messages):
        self.num_parts = num_parts
        self.messages = messages


class TestCheckerRejectsBrokenSchedules:
    def test_asymmetric_message_set(self):
        violations = check_messages([(0, 1, 6), (1, 0, 6), (2, 0, 3)], 3)
        assert any(v.kind == "asymmetry" for v in violations)

    def test_unequal_exchange(self):
        violations = check_messages([(0, 1, 6), (1, 0, 9)], 2)
        assert any(
            v.kind == "asymmetry" and "unequal" in v.message
            for v in violations
        )

    def test_self_message_and_range(self):
        violations = check_messages([(0, 0, 3), (0, 5, 3)], 2)
        kinds = [v.kind for v in violations]
        assert kinds.count("malformed") == 2

    def test_parity_catches_odd_and_non_triple(self):
        # C_i sums sends and receives, so an unmatched 5-word send
        # leaves C_0 = C_1 = 5, odd.
        violations = check_parity([(0, 1, 5)], 2)
        assert any("odd" in v.message for v in violations)
        violations = check_parity([(0, 1, 4), (1, 0, 4)], 2)
        assert any("multiple of 3" in v.message for v in violations)

    def test_deadlock_ring_rejected(self):
        """The classic 0->1->2->0 blocking-sendrecv hang."""
        violations = check_rounds([[(0, 1), (1, 2), (2, 0)]], 3)
        assert any(v.kind == "deadlock" for v in violations)
        assert sum(v.kind == "asymmetry" for v in violations) == 3

    def test_conflicting_round_rejected(self):
        """One PE in two exchanges in the same round is not a matching."""
        sends = [(0, 1), (1, 0), (1, 2), (2, 1)]
        violations = check_rounds([sends], 3)
        assert any(v.kind == "conflict" for v in violations)

    def test_valid_rounds_accepted(self):
        rounds = [[(0, 1), (1, 0)], [(0, 2), (2, 0)], [(1, 2), (2, 1)]]
        messages = [
            (0, 1, 6),
            (1, 0, 6),
            (0, 2, 3),
            (2, 0, 3),
            (1, 2, 3),
            (2, 1, 3),
        ]
        assert check_rounds(rounds, 3, messages=messages) == []

    def test_round_message_cross_check(self):
        rounds = [[(0, 1), (1, 0)]]
        messages = [(0, 1, 3), (1, 0, 3), (1, 2, 3), (2, 1, 3)]
        violations = check_rounds(rounds, 3, messages=messages)
        assert any(
            v.kind == "coverage" and "(1, 2)" in v.message
            for v in violations
        )

    def test_dropped_message_breaks_coverage(self, demo_mesh):
        dist, schedule = build_schedule(demo_mesh, 4, "rcb")
        truncated = _StubSchedule(4, schedule.messages[:-1])
        violations = check_coverage(truncated, dist)
        assert any(v.kind == "coverage" for v in violations)

    def test_tampered_word_count_breaks_coverage(self, demo_mesh):
        from repro.smvp.schedule import Message

        dist, schedule = build_schedule(demo_mesh, 4, "rcb")
        msgs = list(schedule.messages)
        msgs[0] = Message(
            src=msgs[0].src, dst=msgs[0].dst, nodes=msgs[0].nodes + 1
        )
        violations = check_coverage(_StubSchedule(4, msgs), dist)
        assert any(
            v.kind == "coverage" and "require" in v.message
            for v in violations
        )

    def test_phantom_pair_breaks_coverage(self, demo_mesh):
        """A message between PEs sharing no nodes is flagged."""
        from repro.smvp.schedule import Message

        dist, schedule = build_schedule(demo_mesh, 8, "rcb")
        pairs = set(dist.pair_shared_nodes)
        phantom = next(
            (a, b)
            for a in range(8)
            for b in range(a + 1, 8)
            if (a, b) not in pairs
        )
        msgs = list(schedule.messages) + [
            Message(src=phantom[0], dst=phantom[1], nodes=1),
            Message(src=phantom[1], dst=phantom[0], nodes=1),
        ]
        violations = check_coverage(_StubSchedule(8, msgs), dist)
        assert any(
            v.kind == "coverage" and "share no nodes" in v.message
            for v in violations
        )


class TestHypothesisSchedules:
    """Randomized symmetric schedules pass; random mutations fail."""

    @staticmethod
    def _symmetric_messages(pair_nodes):
        msgs = []
        for (a, b), nodes in pair_nodes.items():
            msgs.append((a, b, 3 * nodes))
            msgs.append((b, a, 3 * nodes))
        return msgs

    @given(
        num_parts=st.integers(2, 12),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_symmetric_pairwise_schedule_passes(self, num_parts, data):
        pairs = [
            (a, b)
            for a in range(num_parts)
            for b in range(a + 1, num_parts)
        ]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), unique=True, min_size=1)
        )
        pair_nodes = {
            pair: data.draw(st.integers(1, 50), label=f"nodes{pair}")
            for pair in chosen
        }
        msgs = self._symmetric_messages(pair_nodes)
        assert check_messages(msgs, num_parts) == []
        assert check_parity(msgs, num_parts) == []

    @given(num_parts=st.integers(3, 12), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_dropping_any_direction_fails(self, num_parts, data):
        pairs = [
            (a, b)
            for a in range(num_parts)
            for b in range(a + 1, num_parts)
        ]
        chosen = data.draw(
            st.lists(st.sampled_from(pairs), unique=True, min_size=1)
        )
        pair_nodes = {pair: 2 for pair in chosen}
        msgs = self._symmetric_messages(pair_nodes)
        victim = data.draw(st.integers(0, len(msgs) - 1))
        del msgs[victim]
        assert any(
            v.kind == "asymmetry" for v in check_messages(msgs, num_parts)
        )
