"""CLI surface tests: ``repro-metrics`` and the telemetry flags.

Also covers the UX guarantee that an unknown backend/kernel name fed to
``repro-quake`` / ``repro-measure`` exits non-zero with the registered
names in the message instead of dumping a traceback.
"""

import json

import pytest

from repro.cli import main_measure, main_metrics, main_quake, main_trace
from repro.telemetry.registry import get_registry, set_registry


@pytest.fixture(autouse=True)
def _no_registry_leaks():
    assert get_registry() is None
    yield
    set_registry(None)


QUICK = ["--instance", "demo", "--pes", "4", "--steps", "2"]


class TestUnknownNames:
    def test_quake_unknown_kernel_exits_two_with_options(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main_quake(["--kernel", "nope"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown kernel 'nope'" in err
        assert "csr" in err  # registered names are listed

    def test_quake_unknown_backend_exits_two_with_options(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main_quake(["--backend", "gpu"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown backend 'gpu'" in err
        assert "serial" in err

    def test_measure_unknown_kernel_exits_two_with_suite(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main_measure(["--kernels", "warp9"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown kernels" in err
        assert "smv0" in err and "mmv" in err


class TestMetricsSnapshot:
    def test_prints_prometheus_by_default(self, capsys):
        assert main_metrics(["snapshot"] + QUICK) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_smvp_supersteps_total counter" in out
        assert "repro_exchange_words_total" in out
        assert "repro_smvp_t_smvp_seconds_bucket" in out

    def test_json_out_file(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert main_metrics(["snapshot", "--out", str(out)] + QUICK) == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        supersteps = payload["counters"]["repro_smvp_supersteps_total"]
        assert supersteps["total"] == 2
        assert payload["spans"]  # stage spans were recorded


class TestMetricsTimeline:
    def test_emits_schema_valid_chrome_trace(self, tmp_path):
        out = tmp_path / "timeline.json"
        assert main_metrics(["timeline", "--out", str(out)] + QUICK) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("M", "X", "C")
            if event["ph"] == "X":
                assert "name" in event and event["dur"] >= 0
        # Both the superstep phases and the upstream stage spans appear.
        names = {e.get("name") for e in events if e["ph"] == "X"}
        assert {"compute", "exchange"} <= names
        assert any(n.startswith("partition.") for n in sorted(names))

    def test_from_trace_conversion(self, tmp_path, capsys):
        assert main_trace(QUICK + ["--json"]) == 0
        report = capsys.readouterr().out
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(report)
        out = tmp_path / "timeline.json"
        assert (
            main_metrics(
                ["timeline", "--from-trace", str(trace_path),
                 "--out", str(out)]
            )
            == 0
        )
        doc = json.loads(out.read_text())
        steps = {
            e["args"]["step"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and "step" in e.get("args", {})
        }
        assert steps == {0, 1}


class TestMetricsDrift:
    def test_simulator_drift_is_zero(self, capsys):
        rc = main_metrics(
            ["drift", "--source", "simulate", "--max-drift", "1e-9"]
            + QUICK
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[ok]" in out
        assert "comp=0.00%" in out and "comm=0.00%" in out

    def test_faulty_run_fails_tight_threshold(self, capsys):
        rc = main_metrics(
            ["drift", "--source", "simulate", "--fault-rate", "0.2",
             "--seed", "3", "--max-drift", "1e-6", "--steps", "5"]
            + QUICK[:4]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "DRIFT FAILURE" in err

    def test_json_report(self, capsys):
        rc = main_metrics(
            ["drift", "--source", "simulate", "--json"] + QUICK
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["machine"] == "Cray T3E"
        assert payload["beta_violated"] is False
        assert len(payload["supersteps"]) == 2


class TestFlagExtensions:
    def test_quake_writes_metrics_and_timeline(self, tmp_path, capsys):
        metrics = tmp_path / "m.prom"
        timeline = tmp_path / "t.json"
        rc = main_quake(
            QUICK
            + ["--metrics-out", str(metrics), "--timeline-out",
               str(timeline)]
        )
        assert rc == 0
        assert "repro_smvp_supersteps_total" in metrics.read_text()
        json.loads(timeline.read_text())  # valid JSON document
        assert get_registry() is None  # previous registry restored

    def test_trace_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        rc = main_trace(QUICK + ["--metrics-out", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "repro_exchange_rounds_total" in payload["counters"]
