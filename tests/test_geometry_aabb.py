"""Tests for repro.geometry.aabb."""

import numpy as np
import pytest

from repro.geometry import AABB


class TestConstruction:
    def test_basic(self):
        box = AABB((0, 0, 0), (1, 2, 3))
        assert box.lo == (0.0, 0.0, 0.0)
        assert box.hi == (1.0, 2.0, 3.0)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            AABB((0, 0, 0), (1, -1, 1))

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            AABB((0, 0), (1, 1))

    def test_from_points(self):
        pts = np.array([[1, 2, 3], [-1, 5, 0], [0, 0, 9]])
        box = AABB.from_points(pts)
        assert box.lo == (-1.0, 0.0, 0.0)
        assert box.hi == (1.0, 5.0, 9.0)

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            AABB.from_points(np.empty((0, 3)))

    def test_degenerate_box_allowed(self):
        box = AABB((1, 1, 1), (1, 1, 1))
        assert box.volume == 0.0

    def test_hashable(self):
        assert len({AABB((0, 0, 0), (1, 1, 1)), AABB((0, 0, 0), (1, 1, 1))}) == 1


class TestMeasures:
    def test_size_center_volume(self):
        box = AABB((0, 0, 0), (2, 4, 6))
        assert np.allclose(box.size, [2, 4, 6])
        assert np.allclose(box.center, [1, 2, 3])
        assert box.volume == 48.0
        assert box.longest_edge == 6.0


class TestContainment:
    def test_contains_inside_and_boundary(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        pts = np.array([[0.5, 0.5, 0.5], [0, 0, 0], [1, 1, 1], [1.1, 0, 0]])
        assert list(box.contains(pts)) == [True, True, True, False]

    def test_contains_tolerance(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        pt = np.array([[1.0 + 1e-9, 0.5, 0.5]])
        assert not box.contains(pt)[0]
        assert box.contains(pt, tol=1e-6)[0]


class TestSetOperations:
    def test_intersects_and_intersection(self):
        a = AABB((0, 0, 0), (2, 2, 2))
        b = AABB((1, 1, 1), (3, 3, 3))
        assert a.intersects(b)
        inter = a.intersection(b)
        assert inter.lo == (1.0, 1.0, 1.0)
        assert inter.hi == (2.0, 2.0, 2.0)

    def test_disjoint(self):
        a = AABB((0, 0, 0), (1, 1, 1))
        b = AABB((2, 2, 2), (3, 3, 3))
        assert not a.intersects(b)
        with pytest.raises(ValueError):
            a.intersection(b)

    def test_touching_boxes_intersect(self):
        a = AABB((0, 0, 0), (1, 1, 1))
        b = AABB((1, 0, 0), (2, 1, 1))
        assert a.intersects(b)
        assert a.intersection(b).volume == 0.0

    def test_union(self):
        a = AABB((0, 0, 0), (1, 1, 1))
        b = AABB((2, -1, 0), (3, 0.5, 2))
        u = a.union(b)
        assert u.lo == (0.0, -1.0, 0.0)
        assert u.hi == (3.0, 1.0, 2.0)

    def test_expanded(self):
        box = AABB((0, 0, 0), (1, 1, 1)).expanded(0.5)
        assert box.lo == (-0.5, -0.5, -0.5)
        assert box.hi == (1.5, 1.5, 1.5)


class TestOctants:
    def test_octants_tile_the_box(self):
        box = AABB((0, 0, 0), (2, 2, 2))
        total = sum(box.octant(i).volume for i in range(8))
        assert total == pytest.approx(box.volume)

    def test_octant_bit_convention(self):
        box = AABB((0, 0, 0), (2, 2, 2))
        assert box.octant(0).hi == (1.0, 1.0, 1.0)
        assert box.octant(1).lo == (1.0, 0.0, 0.0)  # bit 0 = x
        assert box.octant(2).lo == (0.0, 1.0, 0.0)  # bit 1 = y
        assert box.octant(4).lo == (0.0, 0.0, 1.0)  # bit 2 = z

    def test_octant_range_checked(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError):
            box.octant(8)


class TestCornersAndGrid:
    def test_corners(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert len(np.unique(corners, axis=0)) == 8
        assert box.contains(corners).all()

    def test_sample_grid_counts(self):
        box = AABB((0, 0, 0), (1, 1, 1))
        grid = box.sample_grid((3, 2, 1))
        assert grid.shape == (6, 3)
        # Axis with count 1 samples the midplane.
        assert np.allclose(grid[:, 2], 0.5)

    def test_sample_grid_rejects_zero(self):
        with pytest.raises(ValueError):
            AABB((0, 0, 0), (1, 1, 1)).sample_grid((0, 2, 2))
