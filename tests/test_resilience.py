"""Tests for the self-healing execution layer (repro.resilience).

Covers the acceptance contract of the resilience subsystem:

* escalation policy and per-PE health bookkeeping,
* deterministic post-eviction redistribution with full element
  coverage and survivor-stable renumbering,
* online eviction continuing bit-consistently on P-1 PEs — including
  the max-C_i PE, two sequential evictions, an eviction during the
  very first superstep, and runs under ``REPRO_CONTRACTS=1``,
* shadow-splice recovery and the checkpoint rollback fallback,
* the supervised no-fault path staying bit-identical to an
  unsupervised run,
* quarantine escalation under transient link faults,
* the chaos harness and ``repro-chaos`` CLI.
"""

import numpy as np
import pytest

from repro.faults import (
    CheckpointManager,
    FaultConfig,
    FaultInjector,
    PermanentFailureError,
)
from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.partition.base import Partition, partition_mesh
from repro.resilience import (
    Escalation,
    HealthTracker,
    KillSchedule,
    PEState,
    RecoveryPolicy,
    ShadowStore,
    SuperstepSupervisor,
    migration_plan,
    run_chaos,
    splice_state,
)
from repro.smvp.distribution import (
    DataDistribution,
    redistribute_after_eviction,
)
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import schedule_delta
from repro.telemetry.registry import MetricsRegistry, use_registry


@pytest.fixture(scope="module")
def demo_stiffness(demo_mesh, demo_materials):
    return assemble_stiffness(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_mass(demo_mesh, demo_materials):
    return assemble_lumped_mass(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_dt(demo_mesh, demo_materials):
    return stable_timestep(demo_mesh, demo_materials)


@pytest.fixture()
def problem(demo_mesh, demo_stiffness, demo_mass, demo_dt):
    force = np.zeros(3 * demo_mesh.num_nodes)
    force[: min(300, force.size)] = 1e9
    return demo_stiffness, demo_mass, demo_dt, (lambda t: force)


def make_supervised(
    mesh, materials, problem, pes=6, kills=None, policy=None, **kwargs
):
    stiffness, mass, dt, force_at = problem
    smvp = DistributedSMVP(
        mesh, partition_mesh(mesh, pes), materials
    )
    stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
    supervisor = SuperstepSupervisor(
        stepper, policy=policy, kill_schedule=kills, **kwargs
    )
    return stepper, supervisor, force_at


class TestRecoveryPolicy:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(quarantine_after=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(quarantine_after=3, evict_after=2)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_evictions=-1)

    def test_escalation_ladder(self):
        tracker = HealthTracker(4, RecoveryPolicy(2, 3))
        assert tracker.record_failure(1) is Escalation.RETRY
        assert tracker.states[1] is PEState.SUSPECT
        assert tracker.record_failure(1) is Escalation.QUARANTINE
        assert tracker.states[1] is PEState.QUARANTINED
        assert tracker.record_failure(1) is Escalation.EVICT

    def test_success_clears_streak_but_not_quarantine(self):
        tracker = HealthTracker(4, RecoveryPolicy(2, 3))
        tracker.record_failure(1)
        tracker.record_success(1)
        assert tracker.states[1] is PEState.HEALTHY
        assert tracker.consecutive_failures[1] == 0
        tracker.record_failure(2)
        tracker.record_failure(2)  # quarantined
        tracker.record_success(2)
        assert tracker.states[2] is PEState.QUARANTINED  # sticky
        assert tracker.total_failures[2] == 2

    def test_blame_is_deterministic_and_sticky(self):
        tracker = HealthTracker(4, RecoveryPolicy(2, 4))
        assert tracker.blame(2, 3) == 2  # tie: lower id
        tracker.record_failure(3)
        assert tracker.blame(2, 3) == 3  # worse streak wins

    def test_evicted_pe_rejected(self):
        tracker = HealthTracker(4, RecoveryPolicy())
        tracker.mark_evicted(2)
        assert tracker.evicted() == [2]
        with pytest.raises(ValueError):
            tracker.record_failure(2)


class TestRedistribution:
    def test_covers_and_compacts(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 6, seed=1)
        new, stats = redistribute_after_eviction(demo_mesh, partition, 2)
        assert new.num_parts == 5
        assert np.all(new.parts >= 0) and np.all(new.parts < 5)
        # Survivors keep every element they owned, renumbered stably.
        for old, renum in stats.survivor_map.items():
            old_elems = partition.elements_of(old)
            assert set(old_elems) <= set(new.elements_of(renum))
        assert stats.orphan_elements == len(partition.elements_of(2))
        assert stats.dead_pe == 2
        assert stats.affinity_flops > 0 and stats.waves >= 1

    def test_deterministic(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 6, seed=1)
        a, _ = redistribute_after_eviction(demo_mesh, partition, 3)
        b, _ = redistribute_after_eviction(demo_mesh, partition, 3)
        assert np.array_equal(a.parts, b.parts)

    def test_rejects_bad_inputs(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 6, seed=1)
        with pytest.raises(ValueError):
            redistribute_after_eviction(demo_mesh, partition, 6)
        single = Partition(
            np.zeros(demo_mesh.num_elements, dtype=np.int32), 1
        )
        with pytest.raises(ValueError, match="last surviving"):
            redistribute_after_eviction(demo_mesh, single, 0)

    def test_migration_plan_prices_new_residency(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 6, seed=1)
        old = DataDistribution(demo_mesh, partition)
        new_part, stats = redistribute_after_eviction(
            demo_mesh, partition, 2
        )
        new = DataDistribution(demo_mesh, new_part)
        plan = migration_plan(old, new, 2, stats.survivor_map)
        assert plan.migrated_words > 0
        assert 1 <= plan.migrated_blocks <= 5
        assert plan.shadow_words == 6 * len(old.exclusive_nodes[2])
        assert plan.migrated_words % 6 == 0  # whole nodes, u + u_prev


class TestShadowStore:
    def test_initial_capture_covers_step_zero(self, demo_mesh):
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        store = ShadowStore(dist)
        n3 = 3 * demo_mesh.num_nodes
        store.capture(np.zeros(n3), np.zeros(n3), 0)
        assert store.segment(2, 0) is not None
        assert store.segment(2, 1) is None  # stale is reported missing

    def test_words_per_capture_counts_exclusive_only(self, demo_mesh):
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        store = ShadowStore(dist)
        exclusive = sum(len(e) for e in dist.exclusive_nodes)
        assert store.words_per_capture == 2 * 3 * exclusive
        assert store.buddy_of(3) == 0

    def test_splice_refuses_coverage_holes(self, demo_mesh):
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        store = ShadowStore(dist)
        n3 = 3 * demo_mesh.num_nodes
        store.capture(np.ones(n3), np.ones(n3), 5)
        seg = store.segment(1, 5)
        # Truncated shadow: simulate a buddy that lost half its copy.
        seg.dofs = seg.dofs[: len(seg.dofs) // 2]
        seg.u = seg.u[: len(seg.dofs)]
        seg.u_prev = seg.u_prev[: len(seg.dofs)]
        with pytest.raises(PermanentFailureError):
            splice_state(dist, 1, np.ones(n3), np.ones(n3), seg)


class TestOnlineEviction:
    def fresh_reference(
        self, mesh, materials, problem, resume_point, total_steps
    ):
        """Final state of a fresh P-1 run launched from a ResumePoint."""
        stiffness, mass, dt, force_at = problem
        rp = resume_point
        smvp = DistributedSMVP(
            mesh,
            Partition(rp.partition_parts.copy(), rp.num_parts, "resume"),
            materials,
        )
        try:
            smvp.reset_superstep(rp.superstep)
            stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
            stepper.set_state(rp.u, rp.u_prev, rp.step_index)
            stepper.run(total_steps - rp.step_index, force_at=force_at)
            return stepper.u.copy(), stepper.u_prev.copy()
        finally:
            smvp.close()

    def test_eviction_matches_fresh_survivor_run(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, supervisor, force_at = make_supervised(
            demo_mesh, demo_materials, problem, kills={5: 2}
        )
        try:
            report = supervisor.run(12, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert report.final_num_pes == 5
        [event] = report.evictions
        assert event.recovery_source == "shadow"
        assert event.superstep == 5
        u_ref, u_prev_ref = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 12
        )
        assert np.array_equal(stepper.u, u_ref)
        assert np.array_equal(stepper.u_prev, u_prev_ref)

    def test_evicting_the_max_ci_pe_recomputes_bounds(
        self, demo_mesh, demo_materials, problem
    ):
        stiffness, mass, dt, force_at = problem
        smvp = DistributedSMVP(
            demo_mesh, partition_mesh(demo_mesh, 6), demo_materials
        )
        hot = int(np.argmax(smvp.schedule.words_per_pe))  # the max-C_i PE
        old_schedule = smvp.schedule
        stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
        supervisor = SuperstepSupervisor(stepper, kill_schedule={4: hot})
        try:
            report = supervisor.run(10, force_at=force_at)
        finally:
            stepper.smvp.close()
        [event] = report.evictions
        assert event.dead_pe == hot
        # The delta is recomputed from the *new* schedule, whose C_max
        # no longer belongs to the dead PE's row set.
        identity = schedule_delta(old_schedule, old_schedule)
        assert event.delta.num_parts_after == 5
        assert event.delta.c_max_after > 0
        assert event.delta.b_max_after > 0
        assert event.delta.beta_after >= 1.0
        assert event.delta.c_max_before == identity.c_max_before
        u_ref, _ = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 10
        )
        assert np.array_equal(stepper.u, u_ref)

    def test_two_sequential_evictions(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, supervisor, force_at = make_supervised(
            demo_mesh, demo_materials, problem, kills={3: 1, 8: 4}
        )
        try:
            report = supervisor.run(12, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert report.final_num_pes == 4
        assert [e.dead_pe for e in report.evictions] == [1, 4]
        assert report.evictions[0].num_pes_after == 5
        assert report.evictions[1].num_pes_before == 5
        u_ref, _ = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 12
        )
        assert np.array_equal(stepper.u, u_ref)

    def test_eviction_during_first_superstep(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, supervisor, force_at = make_supervised(
            demo_mesh, demo_materials, problem, kills={0: 3}
        )
        try:
            report = supervisor.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()
        [event] = report.evictions
        assert event.superstep == 0
        assert event.recovery_source == "shadow"  # construction capture
        u_ref, _ = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 6
        )
        assert np.array_equal(stepper.u, u_ref)

    def test_eviction_with_contracts_enabled(
        self, demo_mesh, demo_materials, problem, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        stepper, supervisor, force_at = make_supervised(
            demo_mesh, demo_materials, problem, kills={2: 0}
        )
        try:
            report = supervisor.run(5, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert report.final_num_pes == 5
        u_ref, _ = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 5
        )
        assert np.array_equal(stepper.u, u_ref)

    def test_checkpoint_fallback_rolls_back_and_recomputes(
        self, demo_mesh, demo_materials, problem, tmp_path
    ):
        manager = CheckpointManager(tmp_path, interval=4)
        stepper, supervisor, force_at = make_supervised(
            demo_mesh,
            demo_materials,
            problem,
            kills={10: 2},
            policy=RecoveryPolicy(prefer_shadow=False),
            checkpoints=manager,
        )
        try:
            report = supervisor.run(14, force_at=force_at)
        finally:
            stepper.smvp.close()
        [event] = report.evictions
        assert event.recovery_source == "checkpoint"
        assert event.recomputed_supersteps == 2  # step 10 back to 8
        u_ref, _ = self.fresh_reference(
            demo_mesh, demo_materials, problem, report.resume_points[-1], 14
        )
        assert np.array_equal(stepper.u, u_ref)

    def test_no_shadow_no_checkpoint_is_a_typed_loss(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, supervisor, force_at = make_supervised(
            demo_mesh,
            demo_materials,
            problem,
            kills={3: 2},
            policy=RecoveryPolicy(prefer_shadow=False),
        )
        try:
            with pytest.raises(PermanentFailureError, match="no checkpoint"):
                supervisor.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()

    def test_eviction_budget_enforced(
        self, demo_mesh, demo_materials, problem
    ):
        stepper, supervisor, force_at = make_supervised(
            demo_mesh,
            demo_materials,
            problem,
            kills={1: 0, 2: 1},
            policy=RecoveryPolicy(max_evictions=1),
        )
        try:
            with pytest.raises(PermanentFailureError, match="budget"):
                supervisor.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()

    def test_telemetry_counts_evictions(
        self, demo_mesh, demo_materials, problem
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            stepper, supervisor, force_at = make_supervised(
                demo_mesh, demo_materials, problem, kills={2: 1}
            )
            try:
                supervisor.run(5, force_at=force_at)
            finally:
                stepper.smvp.close()
        counters = registry.snapshot()["counters"]
        assert counters["repro_pe_evictions_total"]["total"] == 1
        assert counters["repro_eviction_migrated_words_total"]["total"] > 0
        [series] = counters["repro_pe_evictions_total"]["series"]
        assert series["labels"]["dead_pe"] == "1"
        assert series["labels"]["source"] == "shadow"


class TestSupervisedNoFaultPath:
    def test_supervised_equals_plain_run(
        self, demo_mesh, demo_materials, problem
    ):
        stiffness, mass, dt, force_at = problem
        partition = partition_mesh(demo_mesh, 6)
        plain_smvp = DistributedSMVP(
            demo_mesh, partition, demo_materials
        )
        plain = ExplicitTimeStepper(stiffness, mass, dt, smvp=plain_smvp)
        try:
            plain.run(8, force_at=force_at)
        finally:
            plain_smvp.close()

        sup_smvp = DistributedSMVP(demo_mesh, partition, demo_materials)
        supervised = ExplicitTimeStepper(
            stiffness, mass, dt, smvp=sup_smvp
        )
        supervisor = SuperstepSupervisor(supervised)
        try:
            report = supervisor.run(8, force_at=force_at)
        finally:
            supervised.smvp.close()
        assert np.array_equal(supervised.u, plain.u)
        assert np.array_equal(supervised.u_prev, plain.u_prev)
        assert report.evictions == []
        assert report.retried_supersteps == 0

    def test_supervisor_requires_distributed_smvp(
        self, demo_stiffness, demo_mass, demo_dt
    ):
        stepper = ExplicitTimeStepper(demo_stiffness, demo_mass, demo_dt)
        with pytest.raises(ValueError, match="DistributedSMVP"):
            SuperstepSupervisor(stepper)


class TestQuarantineEscalation:
    def test_link_faults_retry_then_quarantine(
        self, demo_mesh, demo_materials, problem
    ):
        stiffness, mass, dt, force_at = problem
        injector = FaultInjector(
            FaultConfig(seed=3, drop_rate=0.35, max_retries=1)
        )
        smvp = DistributedSMVP(
            demo_mesh,
            partition_mesh(demo_mesh, 6),
            demo_materials,
            injector=injector,
        )
        stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
        supervisor = SuperstepSupervisor(
            stepper, policy=RecoveryPolicy(quarantine_after=2, evict_after=9)
        )
        try:
            report = supervisor.run(10, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert stepper.step_index == 10  # the run survived
        assert report.retried_supersteps > 0
        assert report.quarantined  # at least one PE circuit-broken
        assert stepper.smvp.quarantined  # applied to the transport

    def test_link_fault_streak_escalates_to_eviction(
        self, demo_mesh, demo_materials, problem
    ):
        stiffness, mass, dt, force_at = problem
        injector = FaultInjector(
            FaultConfig(seed=3, drop_rate=0.45, max_retries=1)
        )
        smvp = DistributedSMVP(
            demo_mesh,
            partition_mesh(demo_mesh, 6),
            demo_materials,
            injector=injector,
        )
        stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
        supervisor = SuperstepSupervisor(
            stepper,
            policy=RecoveryPolicy(quarantine_after=3, evict_after=3),
        )
        try:
            report = supervisor.run(6, force_at=force_at)
        finally:
            stepper.smvp.close()
        assert stepper.step_index == 6
        assert report.evicted  # the streak crossed evict_after
        assert report.final_num_pes < 6


class TestKillSchedule:
    def test_parse_and_render(self):
        ks = KillSchedule.parse("12:3, 4:1")
        assert ks.kills == ((4, 1), (12, 3))
        assert str(ks) == "4:1,12:3"
        assert ks.as_mapping() == {4: [1], 12: [3]}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            KillSchedule.parse("12-3")
        with pytest.raises(ValueError):
            KillSchedule.parse("")
        with pytest.raises(ValueError, match="once"):
            KillSchedule(((1, 2), (3, 2)))

    def test_random_is_seeded(self):
        a = KillSchedule.random(7, 8, 40, count=3)
        assert a == KillSchedule.random(7, 8, 40, count=3)
        assert a != KillSchedule.random(8, 8, 40, count=3)
        pes = {pe for _, pe in a.kills}
        assert len(pes) == 3 and all(0 <= pe < 8 for pe in sorted(pes))

    def test_random_keeps_a_survivor(self):
        with pytest.raises(ValueError):
            KillSchedule.random(0, 4, 10, count=4)


class TestChaosHarness:
    def test_run_chaos_proves_survivor_equivalence(self):
        report = run_chaos(
            instance="demo",
            pes=6,
            steps=10,
            kills=KillSchedule.parse("4:2"),
        )
        assert report.survivor_equivalent is True
        assert report.survivor_max_abs_diff == 0.0
        assert report.num_pes_final == 5
        [event] = report.evictions
        assert event.cost is not None and event.cost.t_total > 0
        assert event.migrated_words > 0

    def test_cli_smoke(self, capsys):
        from repro.cli import main_chaos

        assert main_chaos(["--smoke", "--kill", "3:1"]) == 0
        out = capsys.readouterr().out
        assert "survivor equivalence: PASS" in out
        assert "evictions: 1" in out
        assert "migrated" in out

    def test_cli_json(self, capsys):
        import json

        from repro.cli import main_chaos

        assert main_chaos(["--smoke", "--kill", "3:1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["survivor_equivalent"] is True
        assert payload["evictions"][0]["dead_pe"] == 1
        assert payload["evictions"][0]["migrated_words"] > 0
        assert payload["evictions"][0]["cost_seconds"] > 0

    def test_cli_rejects_out_of_range_kill(self):
        from repro.cli import main_chaos

        with pytest.raises(SystemExit):
            main_chaos(["--smoke", "--kill", "3:17"])
