"""Tests for repro.mesh.topology."""

import numpy as np
import pytest

from repro.mesh import topology


class TestUniqueEdges:
    def test_single_tet(self):
        edges = topology.unique_edges(np.array([[0, 1, 2, 3]]))
        assert len(edges) == 6
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_duplicates_collapsed(self):
        tets = np.array([[0, 1, 2, 3], [0, 1, 2, 4]])
        edges = topology.unique_edges(tets)
        assert len(edges) == 9

    def test_empty(self):
        assert topology.unique_edges(np.empty((0, 4), dtype=int)).shape == (0, 2)

    def test_index_order_irrelevant(self):
        a = topology.unique_edges(np.array([[3, 2, 1, 0]]))
        b = topology.unique_edges(np.array([[0, 1, 2, 3]]))
        assert np.array_equal(a, b)


class TestIncidence:
    def test_element_node_incidence(self):
        tets = np.array([[0, 1, 2, 3], [2, 3, 4, 5]])
        inc = topology.element_node_incidence(tets, 6)
        assert inc.shape == (2, 6)
        assert inc.sum() == 8
        assert inc[0, 0] == 1 and inc[1, 0] == 0

    def test_node_adjacency_counts(self):
        edges = np.array([[0, 1], [1, 2]])
        adj = topology.node_adjacency(3, edges)
        assert adj[0, 1] == 1 and adj[1, 0] == 1
        assert adj[0, 2] == 0

    def test_node_adjacency_empty(self):
        adj = topology.node_adjacency(3, np.empty((0, 2), dtype=int))
        assert adj.nnz == 0


class TestElementAdjacency:
    def test_two_tets_sharing_face(self, two_tet_mesh):
        adj = topology.element_adjacency(two_tet_mesh.tets)
        assert adj[0, 1] == 1 and adj[1, 0] == 1

    def test_tets_sharing_only_edge_not_adjacent(self):
        # Two tets sharing edge (0, 1) but no face.
        tets = np.array([[0, 1, 2, 3], [0, 1, 4, 5]])
        adj = topology.element_adjacency(tets)
        assert adj.nnz == 0

    def test_empty(self):
        assert topology.element_adjacency(np.empty((0, 4), dtype=int)).shape == (0, 0)

    def test_mesh_adjacency_degree_bounded_by_four(self, demo_mesh):
        adj = demo_mesh.element_adjacency()
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        assert degrees.max() <= 4
        assert degrees.min() >= 1


class TestSurfaceFaces:
    def test_counts(self, two_tet_mesh):
        faces = topology.surface_faces(two_tet_mesh.tets)
        assert len(faces) == 6
        # The shared face (0,1,2) must not be in the boundary.
        assert not any(set(f) == {0, 1, 2} for f in faces)

    def test_euler_like_consistency(self, demo_mesh):
        # Every face appears once (boundary) or twice (interior):
        # 4 * elements = boundary + 2 * interior.
        boundary = len(topology.surface_faces(demo_mesh.tets))
        adj = topology.element_adjacency(demo_mesh.tets)
        interior = adj.nnz // 2
        assert 4 * demo_mesh.num_elements == boundary + 2 * interior


class TestHelpers:
    def test_nodes_of_elements(self):
        tets = np.array([[0, 1, 2, 3], [2, 3, 4, 5]])
        assert list(topology.nodes_of_elements(tets, [1])) == [2, 3, 4, 5]
        assert list(topology.nodes_of_elements(tets, [0, 1])) == [0, 1, 2, 3, 4, 5]

    def test_is_connected_trivial(self):
        assert topology.is_connected(1, np.empty((0, 2), dtype=int))
        assert not topology.is_connected(2, np.empty((0, 2), dtype=int))
