"""Tests for repro.geometry.predicates."""

import numpy as np
import pytest

from repro.geometry import orient3d, points_in_aabb, points_in_tets


class TestOrient3d:
    def test_sign_convention(self):
        a, b, c = [0, 0, 0], [1, 0, 0], [0, 1, 0]
        above = orient3d(a, b, c, [0, 0, 1])
        below = orient3d(a, b, c, [0, 0, -1])
        assert above > 0 > below

    def test_coplanar_is_zero(self):
        a, b, c = [0, 0, 0], [1, 0, 0], [0, 1, 0]
        assert orient3d(a, b, c, [0.3, 0.4, 0.0]) == pytest.approx(0.0)

    def test_vectorized(self):
        a, b, c = [0, 0, 0], [1, 0, 0], [0, 1, 0]
        d = np.array([[0, 0, 1], [0, 0, -1], [0.5, 0.5, 0]])
        signs = np.sign(orient3d(a, b, c, d))
        assert list(signs) == [1, -1, 0]


class TestPointsInAabb:
    def test_basic(self):
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5]])
        mask = points_in_aabb(pts, (0, 0, 0), (1, 1, 1))
        assert list(mask) == [True, False]


class TestPointsInTets:
    def setup_method(self):
        self.corners = np.array(
            [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )

    def _run(self, query):
        query = np.atleast_2d(np.asarray(query, dtype=float))
        tc = np.repeat(self.corners[None, :, :], len(query), axis=0)
        return points_in_tets(query, tc)

    def test_centroid_inside(self):
        assert self._run([[0.25, 0.25, 0.25]])[0]

    def test_corner_inside(self):
        assert self._run([[0.0, 0.0, 0.0]])[0]

    def test_outside(self):
        assert not self._run([[1.0, 1.0, 1.0]])[0]

    def test_just_outside_face(self):
        assert not self._run([[0.4, 0.4, 0.4]])[0]  # beyond x+y+z=1

    def test_degenerate_tet_reports_outside(self):
        flat = self.corners.copy()
        flat[3] = [0.5, 0.5, 0.0]
        tc = flat[None, :, :]
        assert not points_in_tets(np.array([[0.3, 0.3, 0.0]]), tc)[0]

    def test_batch_against_barycentric_oracle(self):
        rng = np.random.default_rng(3)
        query = rng.uniform(-0.2, 1.2, size=(200, 3))
        tc = np.repeat(self.corners[None, :, :], len(query), axis=0)
        got = points_in_tets(query, tc, tol=1e-12)
        expected = (
            np.all(query >= -1e-12, axis=1)
            & (query.sum(axis=1) <= 1 + 1e-12)
        )
        assert np.array_equal(got, expected)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            points_in_tets(np.zeros((2, 3)), np.zeros((2, 3, 3)))
