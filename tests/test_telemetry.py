"""Tests for the telemetry subsystem (registry, export, timeline, drift).

Covers the acceptance criteria: the Chrome-trace export is schema-valid
(`ph`/`ts`/`pid`/`tid` on every event), the drift monitor reproduces
Equations (1)/(2) exactly on the BSP simulator, and — with no registry
installed — the instrumented paths are bit-identical and read zero
clocks.
"""

import json

import numpy as np
import pytest

from repro.model.machine import MACHINES
from repro.partition.base import partition_mesh
from repro.simulate.bsp import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import CommSchedule
from repro.smvp.trace import PhaseBreakdown, SuperstepTrace, TraceLog
from repro.telemetry import (
    DriftError,
    DriftMonitor,
    DriftThresholds,
    MetricsRegistry,
    chrome_trace,
    eq2_t_comm,
    fit_machine,
    modeled_breakdown,
    render_chrome_trace,
    render_prometheus,
    render_snapshot_json,
    use_registry,
    validate_trace_events,
    write_metrics,
)
from repro.telemetry.registry import (
    count,
    get_registry,
    observe,
    record_fault_stats,
    set_gauge,
    set_registry,
    stage_span,
)


@pytest.fixture(autouse=True)
def _no_registry_leaks():
    """Every test starts and ends with no installed registry."""
    assert get_registry() is None
    yield
    set_registry(None)


def make_trace(step=0, scale=1.0, pes=2, words=100, blocks=4):
    return SuperstepTrace(
        t_comp=3e-3 * scale,
        t_comm=1e-3 * scale,
        t_smvp=4.5e-3 * scale,
        step=step,
        kernel="csr",
        backend="serial",
        t_scatter=2.5e-4 * scale,
        t_gather=2.5e-4 * scale,
        words_sent=np.full(pes, words, dtype=np.int64),
        blocks_sent=np.full(pes, blocks, dtype=np.int64),
    )


class TestRegistry:
    def test_counter_labels_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc(backend="serial")
        c.inc(2, backend="serial")
        c.inc(5, backend="threaded")
        assert c.value(backend="serial") == 3
        assert c.value(backend="threaded") == 5
        assert c.value(backend="missing") == 0
        assert c.total == 8

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")

    def test_gauge_overwrites(self):
        g = MetricsRegistry().gauge("repro_level")
        g.set(3.0, pe=0)
        g.set(7.0, pe=0)
        assert g.value(pe=0) == 7.0

    def test_histogram_bucket_placement(self):
        h = MetricsRegistry().histogram("repro_t", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 2.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(3.05)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("repro_t", buckets=(1.0, 0.5))

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("repro_a_total", "a").inc(3, kind="x")
            reg.gauge("repro_b", "b").set(1.5)
            reg.histogram("repro_c", buckets=(1.0,)).observe(0.5)
            reg.add_span("stage", 1.0, 2.0, track="t")
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()
        snap = MetricsRegistry().snapshot()
        assert snap["version"] == 1
        assert set(snap) == {
            "version", "counters", "gauges", "histograms", "spans",
        }

    def test_helpers_are_noops_without_registry(self):
        count("repro_never_total", 5)
        set_gauge("repro_never", 1.0)
        observe("repro_never_hist", 0.1)
        with stage_span("never"):
            pass
        record_fault_stats(None, "nowhere")
        assert get_registry() is None

    def test_use_registry_scopes_installation(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
            count("repro_scoped_total")
        assert get_registry() is None
        assert reg.counter("repro_scoped_total").total == 1

    def test_span_requires_explicit_clock(self):
        reads = []

        def fake_clock():
            reads.append(None)
            return float(len(reads))

        silent = MetricsRegistry()  # no clock attached
        with silent.span("quiet"):
            pass
        assert silent.spans == [] and reads == []

        timed = MetricsRegistry(clock=fake_clock)
        with timed.span("loud", track="work"):
            pass
        assert len(timed.spans) == 1
        span = timed.spans[0]
        assert (span.name, span.track) == ("loud", "work")
        assert span.duration == 1.0
        assert len(reads) == 2

    def test_registry_module_never_imports_time(self):
        import repro.telemetry.registry as registry_module

        source = open(registry_module.__file__).read()
        tree_imports = [
            line for line in source.splitlines()
            if line.startswith(("import ", "from "))
        ]
        assert not any("time" in line for line in tree_imports)

    def test_record_fault_stats_folds_nonzero_fields(self):
        from repro.faults.detection import FaultStats

        reg = MetricsRegistry()
        with use_registry(reg):
            record_fault_stats(
                FaultStats(injected_drops=2, retransmits=2), "exchange"
            )
        events = reg.counter("repro_fault_events_total")
        assert events.value(kind="injected_drops", component="exchange") == 2
        assert events.value(kind="retransmits", component="exchange") == 2
        # Zero-valued fields produce no series at all.
        assert events.value(kind="injected_corruptions", component="exchange") == 0
        assert events.total == 4


class TestExport:
    @pytest.fixture()
    def populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "runs").inc(2, mode="barrier")
        reg.gauge("repro_beta", "bound").set(1.25)
        h = reg.histogram("repro_t_seconds", buckets=(0.1, 1.0), help_text="t")
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_prometheus_exposition(self, populated):
        text = render_prometheus(populated)
        assert "# HELP repro_runs_total runs" in text
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{mode="barrier"} 2' in text
        assert "repro_beta 1.25" in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_t_seconds_count 2" in text

    def test_snapshot_json_round_trips(self, populated):
        payload = json.loads(render_snapshot_json(populated))
        assert payload == populated.snapshot()

    def test_write_metrics_dispatches_on_extension(self, populated, tmp_path):
        json_path = write_metrics(populated, tmp_path / "m.json")
        prom_path = write_metrics(populated, tmp_path / "m.prom")
        assert json.loads(json_path.read_text())["version"] == 1
        assert "# TYPE repro_runs_total" in prom_path.read_text()


class TestTimeline:
    def test_chrome_trace_schema(self):
        log = TraceLog()
        log(make_trace(step=0))
        log(make_trace(step=1, scale=2.0))
        doc = chrome_trace(log)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "ts", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0
        phs = {e["ph"] for e in events}
        assert phs == {"M", "X", "C"}

    def test_timestamps_synthesized_from_durations(self):
        log = TraceLog()
        log(make_trace(step=0))
        log(make_trace(step=1))
        events = chrome_trace(log)["traceEvents"]
        compute = [
            e for e in events if e["ph"] == "X" and e["name"] == "compute"
            and e["tid"] == 1
        ]
        assert len(compute) == 2
        # Step 1's compute starts one full t_smvp (4.5ms) after step 0's.
        assert compute[1]["ts"] - compute[0]["ts"] == pytest.approx(4500.0)

    def test_per_pe_tracks_carry_traffic(self):
        log = TraceLog()
        log(make_trace(pes=3, words=7, blocks=2))
        events = chrome_trace(log)["traceEvents"]
        pe_events = [e for e in events if e["tid"] >= 100 and e["ph"] == "X"]
        assert len(pe_events) == 3
        assert all(e["args"]["words"] == 7 for e in pe_events)
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert {"phase:compute", "phase:exchange", "PE 0", "PE 2"} <= names

    def test_registry_spans_become_stage_tracks(self):
        reg = MetricsRegistry()
        reg.add_span("mesh.octree", 10.0, 10.5, track="mesh")
        reg.add_span("partition.rcb", 10.5, 10.6, track="partition")
        events = chrome_trace(registry=reg)["traceEvents"]
        stage = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in stage} == {"mesh.octree", "partition.rcb"}
        # Rebased to the earliest span; distinct tracks get distinct tids.
        assert min(e["ts"] for e in stage) == 0.0
        assert len({e["tid"] for e in stage}) == 2

    def test_render_is_byte_stable(self):
        log = TraceLog()
        log(make_trace())
        assert render_chrome_trace(log) == render_chrome_trace(log)

    def test_validator_rejects_malformed_events(self):
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_trace_events([{"ph": "X", "ts": 0, "pid": 0}])
        with pytest.raises(ValueError, match="needs name and dur"):
            validate_trace_events(
                [{"ph": "X", "ts": 0, "pid": 0, "tid": 0}]
            )
        with pytest.raises(ValueError, match="negative dur"):
            validate_trace_events(
                [{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0,
                  "dur": -1}]
            )
        with pytest.raises(ValueError, match="negative ts"):
            validate_trace_events(
                [{"name": "x", "ph": "M", "ts": -5, "pid": 0, "tid": 0}]
            )


class TestTraceLogRoundTrip:
    def test_json_round_trip_is_lossless(self):
        log = TraceLog()
        log(make_trace(step=0))
        log(make_trace(step=1, scale=0.5, pes=4))
        text = log.render_json()
        rebuilt = TraceLog.from_json(text)
        assert rebuilt.render_json() == text
        assert len(rebuilt) == 2
        assert np.array_equal(
            rebuilt.traces[1].words_sent, log.traces[1].words_sent
        )

    def test_round_trip_preserves_fault_stats(self):
        from repro.faults.detection import FaultStats

        trace = SuperstepTrace(
            t_comp=1e-3, t_comm=1e-3, t_smvp=2e-3, step=0,
            kernel="csr", backend="serial", t_scatter=0.0, t_gather=0.0,
            words_sent=np.array([10, 30]), blocks_sent=np.array([1, 2]),
            faults=FaultStats(injected_drops=1, detected_missing=1,
                              retransmits=1, words_retransmitted=10),
        )
        log = TraceLog()
        log(trace)
        rebuilt = TraceLog.from_json(log.render_json())
        assert rebuilt.traces[0].faults == trace.faults
        assert rebuilt.summary() == log.summary()

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported trace log version"):
            TraceLog.from_json(json.dumps({"version": 2, "supersteps": []}))


class TestEfficiencyEdgeCases:
    def test_normal_ratio(self):
        assert PhaseBreakdown(3.0, 1.0, 4.0).efficiency == 0.75

    def test_zero_t_smvp_reports_full_efficiency(self):
        assert PhaseBreakdown(0.0, 0.0, 0.0).efficiency == 1.0

    def test_negative_t_smvp_reports_full_efficiency(self):
        # Clock skew can make a measured total slightly negative; the
        # ratio must not flip sign or divide by a negative total.
        assert PhaseBreakdown(1.0, 1.0, -1e-9).efficiency == 1.0

    def test_retransmit_traffic_is_accounted(self):
        from repro.faults.detection import FaultStats

        clean = make_trace(pes=2, words=50)
        faulty = SuperstepTrace(
            t_comp=1e-3, t_comm=2e-3, t_smvp=3e-3, step=1,
            kernel="csr", backend="serial", t_scatter=0.0, t_gather=0.0,
            words_sent=np.array([60, 50]),  # 10 retransmitted words on PE 0
            blocks_sent=np.array([5, 4]),
            faults=FaultStats(injected_drops=1, detected_missing=1,
                              retransmits=1, words_retransmitted=10),
        )
        assert faulty.total_words == clean.total_words + 10
        log = TraceLog()
        log(clean)
        log(faulty)
        summary = log.summary()
        assert summary["words_total"] == 210
        assert summary["faults"]["words_retransmitted"] == 10


class TestDrift:
    @pytest.fixture(scope="class")
    def workload(self, demo_mesh):
        partition = partition_mesh(demo_mesh, 4)
        dist = DataDistribution(demo_mesh, partition)
        schedule = CommSchedule(dist)
        return dist.local_counts["flops"], schedule

    def test_simulator_matches_model_exactly(self, workload):
        flops, schedule = workload
        machine = MACHINES["t3e"]
        simulator = BspSimulator(flops, schedule, machine)
        monitor = DriftMonitor(flops, schedule, machine)
        for step in range(3):
            monitor.observe(simulator.run("barrier", step=step), step=step)
        report = monitor.report()
        assert report.max_abs_comp_drift == 0.0
        assert report.max_abs_comm_drift == 0.0
        assert report.max_abs_efficiency_delta == 0.0
        assert not report.beta_violated
        assert report.ok
        report.check()  # must not raise

    def test_eq2_is_pessimistic_but_beta_bounded(self, workload):
        flops, schedule = workload
        machine = MACHINES["t3e"]
        exact = modeled_breakdown(flops, schedule, machine).t_comm
        eq2 = eq2_t_comm(schedule, machine)
        assert eq2 >= exact
        monitor = DriftMonitor(flops, schedule, machine)
        assert eq2 <= monitor.beta * exact * (1 + 1e-9)

    def test_drift_violation_fails_check(self, workload):
        flops, schedule = workload
        machine = MACHINES["t3e"]
        monitor = DriftMonitor(
            flops, schedule, machine,
            thresholds=DriftThresholds(max_comp_drift=0.10),
        )
        modeled = monitor.modeled
        inflated = PhaseBreakdown(
            t_comp=modeled.t_comp * 1.5,
            t_comm=modeled.t_comm,
            t_smvp=modeled.t_comp * 1.5 + modeled.t_comm,
        )
        monitor.observe(inflated, step=0)
        report = monitor.report()
        assert not report.ok
        assert any("T_comp drift" in v for v in report.violations())
        with pytest.raises(DriftError, match="T_comp drift"):
            report.check()

    def test_monitor_is_a_trace_sink(self, workload):
        flops, schedule = workload
        monitor = DriftMonitor(flops, schedule, MACHINES["t3e"])
        monitor(make_trace(step=7))
        assert monitor.records[0].step == 7
        assert monitor.records[0].words_measured == 200

    def test_observations_counted_on_registry(self, workload):
        flops, schedule = workload
        reg = MetricsRegistry()
        with use_registry(reg):
            monitor = DriftMonitor(flops, schedule, MACHINES["t3e"])
            monitor.observe(monitor.modeled, step=0)
        assert reg.counter("repro_drift_observations_total").total == 1

    def test_fit_machine_self_consistency(self, workload):
        flops, schedule = workload
        machine = MACHINES["t3e"]
        modeled = modeled_breakdown(flops, schedule, machine)
        fitted = fit_machine([modeled] * 3, flops, schedule)
        refit = modeled_breakdown(flops, schedule, fitted)
        assert refit.t_comp == pytest.approx(modeled.t_comp, rel=1e-12)
        assert refit.t_comm == pytest.approx(modeled.t_comm, rel=1e-12)

    def test_fit_machine_needs_data(self, workload):
        flops, schedule = workload
        with pytest.raises(ValueError, match="at least one"):
            fit_machine([], flops, schedule)

    def test_faulty_simulation_shows_positive_comm_drift(self, workload):
        from repro.faults import FaultConfig, FaultInjector

        flops, schedule = workload
        machine = MACHINES["t3e"]
        injector = FaultInjector(
            FaultConfig(seed=3, drop_rate=0.2, bitflip_rate=0.2)
        )
        simulator = BspSimulator(
            flops, schedule, machine, injector=injector
        )
        monitor = DriftMonitor(flops, schedule, machine)
        drifted = False
        for step in range(5):
            record = monitor.observe(
                simulator.run("barrier", step=step), step=step
            )
            drifted = drifted or record.comm_drift > 0
        assert drifted  # retransmit penalties stretch T_comm past the model


class TestZeroOverheadContract:
    """With no registry, instrumentation must be invisible and clock-free."""

    @pytest.fixture(scope="class")
    def small_setup(self, demo_mesh, demo_materials):
        partition = partition_mesh(demo_mesh, 4)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(3 * demo_mesh.num_nodes)
        return partition, x

    def test_multiply_reads_zero_clocks_without_sink(
        self, demo_mesh, demo_materials, small_setup, monkeypatch
    ):
        import repro.smvp.executor as executor_module

        calls = []
        real_now = executor_module.now

        def counting_now():
            calls.append(None)
            return real_now()

        with DistributedSMVP(
            demo_mesh, small_setup[0], demo_materials
        ) as smvp:
            monkeypatch.setattr(executor_module, "now", counting_now)
            smvp.multiply(small_setup[1])
            assert calls == []
            # Sanity: the traced path *does* read the clock.
            smvp.trace_sink = TraceLog()
            smvp.multiply(small_setup[1])
            assert len(calls) == 5

    def test_registry_presence_is_bit_invisible(
        self, demo_mesh, demo_materials, small_setup
    ):
        partition, x = small_setup
        with DistributedSMVP(demo_mesh, partition, demo_materials) as smvp:
            baseline = smvp.multiply(x)
        with use_registry(MetricsRegistry()):
            with DistributedSMVP(
                demo_mesh, partition, demo_materials
            ) as smvp:
                instrumented = smvp.multiply(x)
        assert np.array_equal(baseline, instrumented)

    def test_executor_populates_registry_when_installed(
        self, demo_mesh, demo_materials, small_setup
    ):
        partition, x = small_setup
        reg = MetricsRegistry()
        with use_registry(reg):
            with DistributedSMVP(
                demo_mesh, partition, demo_materials
            ) as smvp:
                smvp.multiply(x)
        assert reg.counter("repro_smvp_setups_total").total == 1
        assert reg.counter("repro_smvp_supersteps_total").value(
            kernel="csr", backend="serial"
        ) == 1
        assert reg.counter("repro_backend_compute_phases_total").value(
            backend="serial"
        ) == 1
        assert reg.counter("repro_exchange_rounds_total").total == 1
        words = reg.counter("repro_exchange_words_total")
        assert words.total == sum(
            v for _, v in words.series()
        ) > 0
        assert reg.gauge("repro_smvp_num_pes").value() == 4


class TestRegistryEdgeCases:
    def test_histogram_exact_bucket_upper_bound(self):
        # Prometheus `le` semantics: a value equal to a bound counts
        # inside that bound's bucket, not the next one.
        h = MetricsRegistry().histogram("repro_t", buckets=(0.1, 1.0))
        h.observe(0.1)
        h.observe(1.0)
        assert h.counts == [1, 1, 0]
        assert h.cumulative_counts() == [1, 2, 2]

    def test_empty_registry_exports(self):
        reg = MetricsRegistry()
        assert render_prometheus(reg).strip() == ""
        snap = json.loads(render_snapshot_json(reg))
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []
        # An empty registry also exports an empty (but valid) timeline.
        doc = chrome_trace(registry=reg)
        assert doc["traceEvents"] == []

    def test_use_registry_is_reentrant(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        with use_registry(outer):
            count("repro_reentrant_total")
            with use_registry(inner):
                assert get_registry() is inner
                count("repro_reentrant_total")
            # The outer registry is restored, not cleared.
            assert get_registry() is outer
            count("repro_reentrant_total")
        assert get_registry() is None
        assert outer.counter("repro_reentrant_total").total == 2
        assert inner.counter("repro_reentrant_total").total == 1

    def test_use_registry_restores_on_exception(self):
        outer = MetricsRegistry()
        with use_registry(outer):
            with pytest.raises(RuntimeError):
                with use_registry(MetricsRegistry()):
                    raise RuntimeError("boom")
            assert get_registry() is outer


class TestProfiledTimeline:
    @pytest.fixture(scope="class")
    def profiled_overlap_log(self, demo_mesh, demo_materials):
        from repro.smvp.trace import TraceLog as _TraceLog

        partition = partition_mesh(demo_mesh, 4)
        log = _TraceLog()
        smvp = DistributedSMVP(
            demo_mesh,
            partition,
            demo_materials,
            backend="overlap",
            trace_sink=log,
            profile=True,
        )
        x = np.random.default_rng(0).standard_normal(
            3 * demo_mesh.num_nodes
        )
        try:
            smvp.multiply(x)
        finally:
            smvp.close()
        return log

    def test_wire_thread_is_a_distinct_track(self, profiled_overlap_log):
        from repro.telemetry.timeline import PE_TID_BASE, WIRE_TID

        doc = chrome_trace(log=profiled_overlap_log)
        events = doc["traceEvents"]
        wire = [
            e
            for e in events
            if e.get("ph") == "X" and e["tid"] == WIRE_TID
        ]
        assert wire
        for e in wire:
            assert e["name"].startswith("msg:")
            assert e["args"]["words"] > 0
            assert e["args"]["src"] != e["args"]["dst"]
        names = [
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        ]
        assert "wire" in names
        # Per-PE tracks carry the actual compute spans.
        pe_kinds = {
            e["name"]
            for e in events
            if e.get("ph") == "X" and e["tid"] >= PE_TID_BASE
        }
        assert {"boundary", "interior"} <= pe_kinds

    def test_validator_accepts_profiled_export(self, profiled_overlap_log):
        validate_trace_events(
            chrome_trace(log=profiled_overlap_log)["traceEvents"]
        )

    def test_validator_rejects_overlapping_spans_in_a_track(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "pid": 0, "tid": 7,
             "dur": 10.0},
            {"name": "b", "ph": "X", "ts": 5.0, "pid": 0, "tid": 7,
             "dur": 10.0},
        ]
        with pytest.raises(ValueError, match="overlapping spans"):
            validate_trace_events(events)
        # Different tracks may overlap freely.
        events[1]["tid"] = 8
        validate_trace_events(events)
        # Shared boundaries within a track are fine.
        events[1]["tid"] = 7
        events[1]["ts"] = 10.0
        validate_trace_events(events)

    def test_legacy_unprofiled_export_still_validates(self):
        log = TraceLog()
        log(make_trace(step=0))
        log(make_trace(step=1))
        validate_trace_events(chrome_trace(log=log)["traceEvents"])
