"""Tests for repro.mesh.core (TetMesh)."""

import numpy as np
import pytest

from repro.mesh.core import TetMesh


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            TetMesh(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]))
        with pytest.raises(ValueError):
            TetMesh(np.zeros((4, 3)), np.array([[0, 1, 2]]))

    def test_copy_semantics(self, single_tet_mesh):
        pts = single_tet_mesh.points.copy()
        mesh = TetMesh(pts, single_tet_mesh.tets, copy=True)
        pts[0, 0] = 99.0
        assert mesh.points[0, 0] == 0.0

    def test_counts(self, single_tet_mesh):
        assert single_tet_mesh.num_nodes == 4
        assert single_tet_mesh.num_elements == 1
        assert single_tet_mesh.num_edges == 6

    def test_repr(self, single_tet_mesh):
        assert "nodes=4" in repr(single_tet_mesh)


class TestTopology:
    def test_two_tets_share_face(self, two_tet_mesh):
        # 5 nodes, 2 elements, edges: 6 + 6 - 3 shared = 9.
        assert two_tet_mesh.num_edges == 9
        degrees = two_tet_mesh.node_degrees
        # Nodes 0,1,2 (shared face) have degree 4; apexes 3,4 degree 3.
        assert list(degrees) == [4, 4, 4, 3, 3]

    def test_edges_sorted_unique(self, two_tet_mesh):
        edges = two_tet_mesh.edges
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 1000 + edges[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_adjacency_symmetric(self, two_tet_mesh):
        adj = two_tet_mesh.node_adjacency()
        assert (adj != adj.T).nnz == 0
        assert adj.diagonal().sum() == 0

    def test_surface_faces_single_tet(self, single_tet_mesh):
        assert len(single_tet_mesh.surface_faces()) == 4

    def test_surface_faces_two_tets(self, two_tet_mesh):
        # 8 faces total, 1 interior pair -> 6 boundary faces.
        assert len(two_tet_mesh.surface_faces()) == 6

    def test_volume(self, single_tet_mesh):
        assert single_tet_mesh.total_volume() == pytest.approx(1 / 6)

    def test_bbox(self, single_tet_mesh):
        assert single_tet_mesh.bbox.lo == (0.0, 0.0, 0.0)
        assert single_tet_mesh.bbox.hi == (1.0, 1.0, 1.0)

    def test_connectivity(self, two_tet_mesh):
        assert two_tet_mesh.is_connected()
        disconnected = TetMesh(
            np.vstack([two_tet_mesh.points, two_tet_mesh.points + 10.0]),
            np.vstack([two_tet_mesh.tets, two_tet_mesh.tets + 5]),
        )
        assert not disconnected.is_connected()


class TestValidate:
    def test_valid_mesh_passes(self, two_tet_mesh):
        two_tet_mesh.validate()

    def test_out_of_range_index(self):
        mesh = TetMesh(np.eye(4, 3), np.array([[0, 1, 2, 7]]))
        with pytest.raises(ValueError, match="out-of-range"):
            mesh.validate()

    def test_repeated_node(self, single_tet_mesh):
        mesh = TetMesh(single_tet_mesh.points, np.array([[0, 1, 2, 2]]))
        with pytest.raises(ValueError, match="repeated"):
            mesh.validate()

    def test_inverted_element(self, single_tet_mesh):
        mesh = TetMesh(single_tet_mesh.points, np.array([[0, 2, 1, 3]]))
        with pytest.raises(ValueError, match="degenerate or inverted"):
            mesh.validate()
        mesh.validate(require_positive=False)

    def test_non_finite_points(self, single_tet_mesh):
        pts = single_tet_mesh.points.copy()
        pts[0, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            TetMesh(pts, single_tet_mesh.tets).validate(require_positive=False)


class TestDerivedMeshes:
    def test_unused_nodes_and_compacted(self, single_tet_mesh):
        pts = np.vstack([single_tet_mesh.points, [[9.0, 9.0, 9.0]]])
        mesh = TetMesh(pts, single_tet_mesh.tets)
        assert list(mesh.unused_nodes()) == [4]
        compact = mesh.compacted()
        assert compact.num_nodes == 4
        assert compact.total_volume() == pytest.approx(1 / 6)

    def test_subset(self, two_tet_mesh):
        sub = two_tet_mesh.subset(np.array([True, False]))
        assert sub.num_elements == 1
        assert sub.num_nodes == 4
        sub.validate()

    def test_subset_by_indices(self, two_tet_mesh):
        sub = two_tet_mesh.subset(np.array([1]))
        assert sub.num_elements == 1
        # The second tet is positively oriented too.
        sub.validate()

    def test_demo_instance_is_sane(self, demo_mesh):
        demo_mesh.validate()
        assert demo_mesh.is_connected()
        assert len(demo_mesh.unused_nodes()) == 0
