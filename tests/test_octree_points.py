"""Tests for repro.octree.points (graded point extraction + jitter)."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.octree import LinearOctree, graded_points, jitter_points

UNIT = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


class TestJitterPoints:
    def test_deterministic(self):
        pts = np.random.default_rng(0).random((50, 3)) * 0.8 + 0.1
        spc = np.full(50, 0.05)
        a = jitter_points(pts, spc, UNIT, seed=3)
        b = jitter_points(pts, spc, UNIT, seed=3)
        assert np.array_equal(a, b)

    def test_bounded_displacement(self):
        pts = np.random.default_rng(1).random((100, 3)) * 0.8 + 0.1
        spc = np.full(100, 0.1)
        out = jitter_points(pts, spc, UNIT, amplitude=0.2)
        assert np.abs(out - pts).max() <= 0.2 * 0.1 + 1e-12

    def test_boundary_points_stay_on_their_faces(self):
        pts = np.array(
            [
                [0.0, 0.5, 0.5],  # x=0 face
                [0.5, 1.0, 0.5],  # y=1 face
                [0.0, 0.0, 0.5],  # x=0 and y=0 edge
                [0.0, 0.0, 0.0],  # corner
            ]
        )
        spc = np.full(4, 0.2)
        out = jitter_points(pts, spc, UNIT, amplitude=0.3, seed=2)
        assert out[0, 0] == 0.0
        assert out[1, 1] == 1.0
        assert out[2, 0] == 0.0 and out[2, 1] == 0.0
        assert np.array_equal(out[3], pts[3])
        # Tangential movement did happen somewhere.
        assert not np.array_equal(out[:2], pts[:2])

    def test_clamped_to_domain(self):
        pts = np.random.default_rng(2).random((200, 3))
        spc = np.full(200, 0.5)
        out = jitter_points(pts, spc, UNIT, amplitude=0.49)
        assert UNIT.contains(out).all()

    def test_zero_amplitude_identity(self):
        pts = np.random.default_rng(3).random((10, 3))
        out = jitter_points(pts, np.full(10, 0.1), UNIT, amplitude=0.0)
        assert np.array_equal(out, pts)

    def test_validation(self):
        pts = np.zeros((3, 3))
        with pytest.raises(ValueError):
            jitter_points(pts, np.zeros(2), UNIT)
        with pytest.raises(ValueError):
            jitter_points(pts, np.zeros(3), UNIT, amplitude=0.6)


class TestGradedPoints:
    def test_counts_and_domain(self, graded_cube_tree):
        pts, spacing = graded_points(graded_cube_tree)
        assert len(pts) == len(spacing)
        assert graded_cube_tree.domain.contains(pts).all()

    def test_spacing_tracks_grading(self, graded_cube_tree):
        pts, spacing = graded_points(graded_cube_tree, amplitude=0.0)
        near = np.linalg.norm(pts, axis=1) < 0.2
        far = np.linalg.norm(pts - 1.0, axis=1) < 0.2
        if near.any() and far.any():
            assert spacing[near].mean() < spacing[far].mean()

    def test_hull_is_exact_box(self, graded_cube_tree):
        pts, _ = graded_points(graded_cube_tree, seed=1)
        assert pts.min(axis=0) == pytest.approx([0, 0, 0])
        assert pts.max(axis=0) == pytest.approx([1, 1, 1])
