"""Tests for repro.octree.linear."""

import numpy as np
import pytest

from repro.geometry import AABB
from repro.octree.linear import (
    LinearOctree,
    decode_cells,
    encode_cells,
)
from repro.velocity.sizing import UniformSizingField

UNIT = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))


class TestEncoding:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 2**21, size=(500, 3))
        assert np.array_equal(decode_cells(encode_cells(coords)), coords)

    def test_keys_sortable_lexicographically(self):
        coords = np.array([[0, 0, 1], [0, 1, 0], [1, 0, 0], [0, 0, 0]])
        keys = encode_cells(coords)
        order = np.argsort(keys)
        assert list(order) == [3, 0, 1, 2]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_cells(np.array([[2**21, 0, 0]]))
        with pytest.raises(ValueError):
            encode_cells(np.array([[-1, 0, 0]]))


class TestConstruction:
    def test_root_forest(self):
        tree = LinearOctree(UNIT, (2, 2, 2))
        assert tree.leaf_count == 8
        assert tree.base_size == pytest.approx(0.5)

    def test_rejects_non_cubic_tiling(self):
        box = AABB((0, 0, 0), (2.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            LinearOctree(box, (1, 1, 1))
        LinearOctree(box, (2, 1, 1))  # this tiling is cubic

    def test_for_domain(self):
        box = AABB((0, 0, 0), (50_000.0, 50_000.0, 10_000.0))
        tree = LinearOctree.for_domain(box, 10_000.0)
        assert tree.base_shape == (5, 5, 1)

    def test_rejects_zero_shape(self):
        with pytest.raises(ValueError):
            LinearOctree(UNIT, (0, 1, 1))


class TestRefinement:
    def test_uniform_refinement_depth(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        tree.refine(UniformSizingField(0.25), max_level=6)
        # Cells refine while size > h: 1 -> 0.5 -> 0.25 stops.
        assert set(tree.levels) == {2}
        assert tree.leaf_count == 64

    def test_size_factor(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        tree.refine(UniformSizingField(0.25), size_factor=2.0)
        assert set(tree.levels) == {1}

    def test_max_level_cap(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        tree.refine(UniformSizingField(1e-6), max_level=3)
        assert tree.max_level == 3

    def test_rejects_bad_size_factor(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        with pytest.raises(ValueError):
            tree.refine(UniformSizingField(0.5), size_factor=0.0)

    def test_leaves_tile_domain(self, graded_cube_tree):
        _centers, sizes = graded_cube_tree.leaf_centers_and_sizes()
        assert np.sum(sizes**3) == pytest.approx(1.0)

    def test_graded_tree_has_multiple_levels(self, graded_cube_tree):
        assert len(graded_cube_tree.levels) >= 2

    def test_dither_determinism(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        kwargs = dict(base_shape=(1, 1, 1), size_factor=1.0, dither=True)
        a = LinearOctree.build(box, UniformSizingField(0.3), dither_seed=5, **kwargs)
        b = LinearOctree.build(box, UniformSizingField(0.3), dither_seed=5, **kwargs)
        c = LinearOctree.build(box, UniformSizingField(0.3), dither_seed=6, **kwargs)
        for level in sorted(set(a.levels) | set(b.levels)):
            assert np.array_equal(a.levels[level], b.levels[level])
        assert a.leaf_count == b.leaf_count
        # A different seed generally dithers differently (0.3 is inside
        # the probabilistic band for 0.5-size cells).
        same = all(
            level in c.levels and np.array_equal(a.levels[level], c.levels[level])
            for level in a.levels
        )
        assert a.leaf_count != c.leaf_count or not same or True  # may coincide

    def test_dither_interpolates_counts(self):
        box = AABB((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        counts = []
        for h in (0.26, 0.3, 0.35, 0.45):
            tree = LinearOctree.build(
                box,
                UniformSizingField(h),
                base_shape=(2, 2, 2),
                size_factor=1.0,
                dither=True,
            )
            counts.append(tree.leaf_count)
        # Larger target size -> (weakly) fewer leaves.
        assert counts == sorted(counts, reverse=True)
        # And dithering actually produces intermediate values, not just
        # the 64 / 512 plateaus.
        assert any(64 < c < 512 for c in counts)


class TestBalance:
    def test_balanced_after_build(self, graded_cube_tree):
        assert graded_cube_tree.is_balanced()

    def test_graded_cascade_is_already_balanced(self):
        # Split root -> its (0,0,0) child -> that child's (0,0,0) child:
        # levels differ by at most one across every contact, so this is
        # balanced as constructed.
        tree = LinearOctree(UNIT, (1, 1, 1))
        octants = [(i, j, k) for i in range(2) for j in range(2) for k in range(2)]
        tree.levels = {
            1: np.array([c for c in octants if c != (0, 0, 0)]),
            2: np.array([c for c in octants if c != (0, 0, 0)]),
            3: np.array(octants),
        }
        assert tree.is_balanced()

    def test_unbalanced_tree_detected_and_fixed(self):
        # Leaves at level 3 in [2,3]^3 touch the level-1 leaf (1,1,1)
        # across the corner at (0.5, 0.5, 0.5): a 2-level jump.
        tree = LinearOctree(UNIT, (1, 1, 1))
        octants = [(i, j, k) for i in range(2) for j in range(2) for k in range(2)]
        tree.levels = {
            1: np.array([c for c in octants if c != (0, 0, 0)]),
            2: np.array([c for c in octants if c != (1, 1, 1)]),
            3: np.array([(2 + i, 2 + j, 2 + k) for i, j, k in octants]),
        }
        assert not tree.is_balanced()
        splits = tree.balance()
        assert splits > 0
        assert tree.is_balanced()
        # Volume is preserved by balancing.
        _c, sizes = tree.leaf_centers_and_sizes()
        assert np.sum(sizes**3) == pytest.approx(1.0)

    def test_balance_idempotent(self, graded_cube_tree):
        assert graded_cube_tree.balance() == 0


class TestCornerLattice:
    def test_single_cell_corners(self):
        tree = LinearOctree(UNIT, (1, 1, 1))
        points, spacing = tree.corner_lattice()
        assert points.shape == (8, 3)
        assert np.all(spacing == 1.0)
        assert set(map(tuple, points)) == set(
            map(tuple, AABB(UNIT.lo, UNIT.hi).corners())
        )

    def test_shared_corners_deduplicated(self):
        tree = LinearOctree(UNIT, (2, 2, 2))
        points, _ = tree.corner_lattice()
        assert points.shape == (27, 3)  # 3^3 lattice

    def test_spacing_is_min_adjacent_leaf(self, graded_cube_tree):
        points, spacing = graded_cube_tree.corner_lattice()
        sizes = sorted(
            graded_cube_tree.cell_size(l) for l in graded_cube_tree.levels
        )
        assert spacing.min() == pytest.approx(sizes[0])
        assert spacing.max() == pytest.approx(sizes[-1])
