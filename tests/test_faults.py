"""Tests for repro.faults and its hooks across the pipeline.

Covers the acceptance contract of the fault subsystem:

* determinism of the seeded injector,
* bit-identical behaviour with injection disabled (simulator timings
  and executor results),
* detection + recovery of injected block faults (checksums, retransmit)
  with the distributed product still matching the global one,
* checkpoint/restart reproducing an uninterrupted run,
* graceful mesh-cache degradation and the typed MeshIOError,
* T_l/T_w validation naming the machine preset,
* the reliability sweep table and CLI.
"""

import numpy as np
import pytest

from repro.faults import (
    BlockFault,
    CheckpointError,
    CheckpointManager,
    ExchangeFaultError,
    FaultConfig,
    FaultInjector,
    FaultStats,
    NumericalFaultError,
    block_checksum,
    retransmit_penalty,
    verify_block,
    verify_residual,
)
from repro.fem.assembly import assemble_lumped_mass, assemble_stiffness
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.mesh.instances import clear_mesh_cache, get_instance
from repro.mesh.io import MeshIOError, load_mesh, save_mesh
from repro.model.machine import CRAY_T3D, CRAY_T3E, Machine
from repro.partition.base import partition_mesh
from repro.simulate.bsp import BspSimulator
from repro.smvp.distribution import DataDistribution
from repro.smvp.executor import DistributedSMVP
from repro.smvp.schedule import CommSchedule


@pytest.fixture(scope="module")
def demo_stiffness(demo_mesh, demo_materials):
    return assemble_stiffness(demo_mesh, demo_materials)


@pytest.fixture(scope="module")
def demo_sim_setup(demo_mesh):
    partition = partition_mesh(demo_mesh, 16, seed=0)
    dist = DataDistribution(demo_mesh, partition)
    return dist.local_counts["flops"].astype(float), CommSchedule(dist)


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled
        assert not FaultConfig.disabled().enabled

    def test_uniform_enables(self):
        cfg = FaultConfig.uniform(0.05, seed=3)
        assert cfg.enabled
        assert cfg.drop_rate == 0.05
        assert cfg.bitflip_rate == 0.025

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=0.6, bitflip_rate=0.5)
        with pytest.raises(ValueError):
            FaultConfig(max_retries=0)
        with pytest.raises(ValueError):
            FaultConfig(backoff_factor=0.5)

    def test_with_seed(self):
        cfg = FaultConfig.uniform(0.1, seed=1).with_seed(2)
        assert cfg.seed == 2
        assert cfg.drop_rate == 0.1


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(FaultConfig(seed=5, drop_rate=0.3, bitflip_rate=0.2))
        b = FaultInjector(FaultConfig(seed=5, drop_rate=0.3, bitflip_rate=0.2))
        decisions_a = [a.block_fault(0, 1, s, k) for s in range(20) for k in range(3)]
        decisions_b = [b.block_fault(0, 1, s, k) for s in range(20) for k in range(3)]
        assert decisions_a == decisions_b

    def test_order_independent(self):
        inj = FaultInjector(FaultConfig(seed=5, drop_rate=0.3))
        forward = [inj.block_fault(0, 1, s) for s in range(10)]
        backward = [inj.block_fault(0, 1, s) for s in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        mix = dict(drop_rate=0.3, bitflip_rate=0.3, duplicate_rate=0.3)
        a = FaultInjector(FaultConfig(seed=1, **mix))
        b = FaultInjector(FaultConfig(seed=2, **mix))
        da = [a.block_fault(0, 1, s) for s in range(50)]
        db = [b.block_fault(0, 1, s) for s in range(50)]
        assert da != db

    def test_zero_rates_never_fault(self):
        inj = FaultInjector(FaultConfig())
        assert not inj.enabled
        assert all(
            inj.block_fault(0, 1, s) is BlockFault.NONE for s in range(10)
        )
        assert inj.straggler_factor(3, 7) == 1.0
        assert not inj.pe_failed(3, 7)

    def test_straggler_factor_at_least_one(self):
        inj = FaultInjector(
            FaultConfig(seed=0, straggler_rate=1.0, straggler_mean_slowdown=2.0)
        )
        factors = [inj.straggler_factor(pe, 0) for pe in range(50)]
        assert all(f > 1.0 for f in factors)
        # Exponential tail: the mean extra should be near 2.
        assert 0.5 < np.mean(factors) - 1.0 < 8.0

    def test_corrupt_flips_exactly_one_bit(self):
        inj = FaultInjector(FaultConfig(seed=0, bitflip_rate=1.0))
        payload = np.random.default_rng(0).standard_normal(12)
        original = payload.copy()
        word, bit = inj.corrupt(payload, 2, 3, step=1, attempt=0)
        assert 0 <= word < 12 and 0 <= bit < 64
        changed = payload.view(np.uint64) ^ original.view(np.uint64)
        assert np.count_nonzero(changed) == 1
        assert changed[word] == np.uint64(1) << np.uint64(bit)

    def test_transmission_outcome_matches_block_faults(self):
        inj = FaultInjector(FaultConfig(seed=9, drop_rate=0.4, bitflip_rate=0.2))
        out = inj.transmission_outcome(1, 2, step=4)
        assert out.attempts == out.failures + 1 if out.delivered else True
        replay_faults = [
            inj.block_fault(1, 2, 4, k) for k in range(out.attempts)
        ]
        assert sum(f is BlockFault.DROP for f in replay_faults) == out.drops
        assert (
            sum(f is BlockFault.BITFLIP for f in replay_faults)
            == out.corruptions
        )


class TestChecksums:
    def test_roundtrip(self):
        payload = np.arange(9, dtype=np.float64)
        assert verify_block(payload, block_checksum(payload))

    def test_detects_single_bitflip(self):
        payload = np.arange(9, dtype=np.float64)
        crc = block_checksum(payload)
        payload.view(np.uint64)[4] ^= np.uint64(1) << np.uint64(17)
        assert not verify_block(payload, crc)

    def test_verify_residual(self):
        y = np.ones(5)
        assert verify_residual(y, y) == 0.0
        with pytest.raises(NumericalFaultError):
            verify_residual(y + 1e-3, y, tol=1e-9)
        with pytest.raises(NumericalFaultError):
            verify_residual(np.full(5, np.nan), y)


class TestRetransmitPenalty:
    def test_no_failures_no_penalty(self):
        assert retransmit_penalty(1.0, 0) == 0.0

    def test_exponential_backoff(self):
        base, tf_, bf = 1.0, 4.0, 2.0
        # failures=2: stalls 4 + 8, wire 2 * base.
        assert retransmit_penalty(base, 2, tf_, bf) == pytest.approx(14.0)

    def test_constant_backoff(self):
        assert retransmit_penalty(1.0, 3, 4.0, 1.0) == pytest.approx(15.0)


class TestBspSimulatorFaults:
    def test_disabled_injector_bit_identical(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        plain = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        gated = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(FaultConfig.disabled()),
        ).run("barrier")
        assert gated.t_comp == plain.t_comp
        assert gated.t_comm == plain.t_comm
        assert gated.t_smvp == plain.t_smvp
        assert np.array_equal(gated.per_pe_comm, plain.per_pe_comm)
        assert gated.faults is None

    def test_faults_deterministic(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        make = lambda: BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(FaultConfig.uniform(0.05, seed=11)),
        ).run("barrier", step=2)
        a, b = make(), make()
        assert a.t_smvp == b.t_smvp
        assert a.faults.retransmits == b.faults.retransmits

    def test_drops_extend_the_stall(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        plain = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        faulty = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(FaultConfig(seed=1, drop_rate=0.2)),
        ).run("barrier")
        assert faulty.faults.retransmits > 0
        assert faulty.t_comm > plain.t_comm
        assert faulty.t_comp == plain.t_comp  # drops don't slow compute

    def test_stragglers_extend_the_barrier(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        plain = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        faulty = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(
                FaultConfig(
                    seed=1, straggler_rate=0.5, straggler_mean_slowdown=1.0
                )
            ),
        ).run("barrier")
        assert faulty.faults.straggler_events > 0
        assert faulty.t_comp > plain.t_comp
        assert faulty.t_comm == pytest.approx(plain.t_comm, rel=1e-12)

    def test_pe_failures_add_restart_penalty(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        plain = BspSimulator(flops, schedule, CRAY_T3E).run("barrier")
        faulty = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(
                FaultConfig(seed=4, pe_failure_rate=0.9, pe_restart_penalty=1.0)
            ),
        ).run("barrier")
        assert faulty.faults.pe_failures > 0
        assert faulty.t_comp > plain.t_comp + 1.0 - 1e-12

    def test_step_varies_the_fault_history(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        sim = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(FaultConfig.uniform(0.05, seed=7)),
        )
        times = [sim.run("barrier", step=s).t_smvp for s in range(6)]
        assert len(set(times)) > 1

    def test_faults_only_in_barrier_mode(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        sim = BspSimulator(
            flops,
            schedule,
            CRAY_T3E,
            injector=FaultInjector(FaultConfig(seed=0, drop_rate=0.1)),
        )
        with pytest.raises(ValueError, match="barrier"):
            sim.run("skewed")


class TestExecutorFaults:
    @pytest.fixture(scope="class")
    def partition(self, demo_mesh):
        return partition_mesh(demo_mesh, 8)

    def test_zero_rate_bit_identical(
        self, demo_mesh, demo_materials, partition
    ):
        clean = DistributedSMVP(demo_mesh, partition, demo_materials)
        gated = DistributedSMVP(
            demo_mesh,
            partition,
            demo_materials,
            injector=FaultInjector(FaultConfig.disabled()),
        )
        x = np.random.default_rng(0).standard_normal(3 * demo_mesh.num_nodes)
        assert np.array_equal(clean.multiply(x), gated.multiply(x))

    def test_faults_recovered_and_product_exact(
        self, demo_mesh, demo_materials, demo_stiffness, partition
    ):
        injector = FaultInjector(
            FaultConfig(
                seed=7, drop_rate=0.15, bitflip_rate=0.1, duplicate_rate=0.1
            )
        )
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, injector=injector
        )
        x = np.random.default_rng(1).standard_normal(3 * demo_mesh.num_nodes)
        y_locals = ds.compute_phase(ds.scatter(x))
        y_locals, record = ds.communication_phase(y_locals, step=0)
        stats = record.faults
        assert stats.any_injected
        assert stats.injected_drops > 0
        assert stats.detected_missing == stats.injected_drops
        assert stats.detected_corrupt == stats.injected_corruptions
        assert stats.duplicates_ignored == stats.injected_duplicates
        assert stats.fully_recovered()
        # Recovery means the result is *bit-identical* to fault-free.
        clean = DistributedSMVP(demo_mesh, partition, demo_materials)
        y_ref = clean.compute_phase(clean.scatter(x))
        y_ref, _ = clean.communication_phase(y_ref)
        for got, want in zip(y_locals, y_ref):
            assert np.array_equal(got, want)
        assert ds.verify_against_global(demo_stiffness) < 1e-12

    def test_traffic_includes_retransmits(
        self, demo_mesh, demo_materials, partition
    ):
        injector = FaultInjector(FaultConfig(seed=3, drop_rate=0.3))
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, injector=injector
        )
        x = np.random.default_rng(2).standard_normal(3 * demo_mesh.num_nodes)
        y_locals = ds.compute_phase(ds.scatter(x))
        _, record = ds.communication_phase(y_locals, step=0)
        mat = ds.schedule.word_matrix
        assert record.faults.retransmits > 0
        assert record.words_sent.sum() > mat.sum()
        assert record.words_sent.sum() == (
            mat.sum() + record.faults.words_retransmitted
        )

    def test_superstep_counter_advances_fault_history(
        self, demo_mesh, demo_materials, partition
    ):
        injector = FaultInjector(FaultConfig(seed=5, drop_rate=0.2))
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, injector=injector
        )
        x = np.random.default_rng(3).standard_normal(3 * demo_mesh.num_nodes)
        drops = []
        for _ in range(4):
            y_locals = ds.compute_phase(ds.scatter(x))
            _, record = ds.communication_phase(y_locals)
            drops.append(record.faults.injected_drops)
        assert len(set(drops)) > 1  # histories differ across supersteps
        ds.reset_superstep()
        y_locals = ds.compute_phase(ds.scatter(x))
        _, record = ds.communication_phase(y_locals)
        assert record.faults.injected_drops == drops[0]

    def test_retry_budget_exhaustion_raises(
        self, demo_mesh, demo_materials, partition
    ):
        injector = FaultInjector(
            FaultConfig(seed=0, drop_rate=1.0, max_retries=2)
        )
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, injector=injector
        )
        x = np.zeros(3 * demo_mesh.num_nodes)
        y_locals = ds.compute_phase(ds.scatter(x))
        with pytest.raises(ExchangeFaultError, match="attempts"):
            ds.communication_phase(y_locals, step=0)

    def test_time_stepping_under_faults_matches_sequential(
        self, demo_mesh, demo_materials, demo_stiffness, partition
    ):
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        injector = FaultInjector(
            FaultConfig(seed=2, drop_rate=0.1, bitflip_rate=0.05)
        )
        ds = DistributedSMVP(
            demo_mesh, partition, demo_materials, injector=injector
        )
        seq = ExplicitTimeStepper(demo_stiffness, mass, dt)
        dist = ExplicitTimeStepper(demo_stiffness, mass, dt, smvp=ds)
        force = np.zeros(3 * demo_mesh.num_nodes)
        force[123] = 1e9
        for _ in range(5):
            seq.step(force)
            dist.step(force)
        assert np.allclose(seq.u, dist.u, rtol=1e-10, atol=1e-12)


class TestCheckpointRestart:
    @pytest.fixture()
    def problem(self, demo_mesh, demo_materials, demo_stiffness):
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        force = np.zeros(3 * demo_mesh.num_nodes)
        force[30] = 1e9
        return demo_stiffness, mass, dt, (lambda t: force)

    def test_resume_reproduces_uninterrupted_run(self, problem, tmp_path):
        stiffness, mass, dt, force_at = problem
        ref = ExplicitTimeStepper(stiffness, mass, dt, damping_alpha=0.02)
        ref.run(20, force_at=force_at)

        manager = CheckpointManager(tmp_path, interval=5, keep=3)
        killed = ExplicitTimeStepper(stiffness, mass, dt, damping_alpha=0.02)
        killed.run(12, force_at=force_at, checkpoint=manager)  # "crash"

        ck = manager.latest()
        assert ck is not None and ck.step_index == 10
        resumed = ExplicitTimeStepper(stiffness, mass, dt, damping_alpha=0.02)
        ck.restore(resumed)
        resumed.run(20 - ck.step_index, force_at=force_at)
        assert resumed.step_index == ref.step_index
        assert np.allclose(resumed.u, ref.u, rtol=1e-12, atol=0.0)
        assert np.allclose(resumed.u_prev, ref.u_prev, rtol=1e-12, atol=0.0)

    def test_corrupt_checkpoint_skipped(self, problem, tmp_path):
        stiffness, mass, dt, force_at = problem
        manager = CheckpointManager(tmp_path, interval=5, keep=0)
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(10, force_at=force_at, checkpoint=manager)
        assert manager.steps() == [5, 10]
        (tmp_path / "ckpt-000000010.npz").write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            manager.load(10)
        latest = manager.latest()
        assert latest is not None and latest.step_index == 5

    def test_crc_detects_tampering(self, problem, tmp_path):
        stiffness, mass, dt, force_at = problem
        manager = CheckpointManager(tmp_path, interval=5)
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(5, force_at=force_at, checkpoint=manager)
        path = tmp_path / "ckpt-000000005.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip bits inside the container
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            manager.load(5)

    def test_mismatched_problem_rejected(self, problem, tmp_path):
        stiffness, mass, dt, force_at = problem
        manager = CheckpointManager(tmp_path, interval=1)
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(1, force_at=force_at, checkpoint=manager)
        ck = manager.latest()
        other = ExplicitTimeStepper(stiffness, mass, dt * 2.0)
        with pytest.raises(CheckpointError, match="dt"):
            ck.restore(other)

    def test_prune_keeps_most_recent(self, problem, tmp_path):
        stiffness, mass, dt, force_at = problem
        manager = CheckpointManager(tmp_path, interval=2, keep=2)
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(10, force_at=force_at, checkpoint=manager)
        assert manager.steps() == [8, 10]

    def test_nan_guard(self, problem):
        stiffness, mass, dt, _ = problem
        guarded = ExplicitTimeStepper(stiffness, mass, dt, check_finite=True)
        guarded.u[:] = np.nan
        with pytest.raises(NumericalFaultError, match="non-finite"):
            guarded.step()
        unguarded = ExplicitTimeStepper(stiffness, mass, dt)
        unguarded.u[:] = np.nan
        unguarded.step()  # silently propagates — the guard is opt-in


class TestMeshIOFaults:
    def test_truncated_npz_raises_typed_error(self, single_tet_mesh, tmp_path):
        path = tmp_path / "mesh.npz"
        save_mesh(single_tet_mesh, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(MeshIOError):
            load_mesh(path)

    def test_garbage_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "mesh.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(MeshIOError):
            load_mesh(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mesh(tmp_path / "absent.npz")

    def test_meshioerror_is_a_valueerror(self):
        assert issubclass(MeshIOError, ValueError)

    def test_crc_catches_payload_tampering(self, single_tet_mesh, tmp_path):
        import zipfile

        path = tmp_path / "mesh.npz"
        save_mesh(single_tet_mesh, path)
        # Rewrite one member with altered bytes, keeping the zip valid.
        with np.load(path) as data:
            points = data["points"].copy()
            tets = data["tets"].copy()
            crc = data["crc"]
        points[0, 0] += 1.0  # silent corruption
        with zipfile.ZipFile(path, "w") as zf:
            import io

            for name, arr in (("points", points), ("tets", tets), ("crc", crc)):
                buf = io.BytesIO()
                np.save(buf, arr)
                zf.writestr(f"{name}.npy", buf.getvalue())
        with pytest.raises(MeshIOError, match="CRC"):
            load_mesh(path)

    def test_instance_cache_rebuilds_on_corruption(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MESH_CACHE", str(tmp_path))
        clear_mesh_cache()
        inst = get_instance("demo")
        mesh_a, _ = inst.build()
        cache_file = tmp_path / "demo-seed0.npz"
        assert cache_file.exists()
        cache_file.write_bytes(b"rotten bits")
        clear_mesh_cache()
        with pytest.warns(RuntimeWarning, match="rebuild"):
            mesh_b, _ = inst.build()
        assert mesh_b.num_nodes == mesh_a.num_nodes
        # The rebuild refreshed the on-disk cache with a loadable file.
        assert load_mesh(cache_file).num_nodes == mesh_a.num_nodes
        clear_mesh_cache()


class TestMachineValidation:
    def test_simulator_names_the_preset(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        with pytest.raises(ValueError, match="Cray T3D"):
            BspSimulator(flops, schedule, CRAY_T3D)

    def test_message_names_the_missing_constants(self):
        machine = Machine("half-specified", tf=10e-9, tl=1e-6)
        with pytest.raises(ValueError, match="T_w"):
            machine.require_comm()
        assert not machine.has_comm_constants
        CRAY_T3E.require_comm()  # fully specified: no raise

    def test_prediction_uses_the_same_check(self):
        from repro.model.application import predict_application
        from repro.model.inputs import ModelInputs

        inputs = ModelInputs.from_paper("sf2", 64)
        with pytest.raises(ValueError, match="t3e"):
            predict_application(inputs, CRAY_T3D)


class TestReliabilityTable:
    def test_sweep_table_smoke(self):
        from repro.tables.reliability import table_reliability

        text = str(
            table_reliability(
                instances=("demo",),
                num_parts=4,
                rates=(0.0, 0.05),
                num_steps=3,
            )
        )
        assert "rate" in text and "slowdown" in text
        assert "demo" in text

    def test_recovery_table_smoke(self):
        from repro.tables.reliability import table_fault_recovery

        text = str(
            table_fault_recovery(
                instance="demo", num_parts=4, rate=0.1, num_exchanges=2
            )
        )
        assert "detected by checksum" in text
        assert "True" in text

    def test_cli_smoke(self, capsys):
        from repro.cli import main_faults

        assert main_faults(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Reliability" in out and "Fault recovery" in out

    def test_cli_rejects_machine_without_comm_constants(self, capsys):
        from repro.cli import main_faults

        with pytest.raises(SystemExit):
            main_faults(["--smoke", "--machine", "t3d"])


class TestBackoffJitter:
    def test_deterministic_and_bounded(self):
        inj = FaultInjector(
            FaultConfig(seed=5, drop_rate=0.1, backoff_jitter=0.2)
        )
        draws = [
            inj.backoff_jitter(0, 1, step=3, attempt=k) for k in range(8)
        ]
        again = [
            inj.backoff_jitter(0, 1, step=3, attempt=k) for k in range(8)
        ]
        assert draws == again
        assert all(0.8 <= j <= 1.2 for j in draws)
        assert len(set(draws)) > 1  # actually jittered, not constant

    def test_keyed_on_link_step_attempt(self):
        inj = FaultInjector(
            FaultConfig(seed=5, drop_rate=0.1, backoff_jitter=0.2)
        )
        base = inj.backoff_jitter(0, 1, step=3, attempt=0)
        assert inj.backoff_jitter(1, 0, step=3, attempt=0) != base
        assert inj.backoff_jitter(0, 1, step=4, attempt=0) != base
        assert inj.backoff_jitter(0, 1, step=3, attempt=1) != base

    def test_zero_amplitude_is_exactly_one(self):
        inj = FaultInjector(FaultConfig(seed=5, drop_rate=0.1))
        assert FaultConfig().backoff_jitter == 0.1  # documented default
        inj_off = FaultInjector(
            FaultConfig(seed=5, drop_rate=0.1, backoff_jitter=0.0)
        )
        assert inj_off.backoff_jitter(0, 1) == 1.0
        assert isinstance(inj.backoff_jitter(0, 1), float)

    def test_amplitude_validated(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            FaultConfig(backoff_jitter=1.0)
        with pytest.raises(ValueError, match="backoff_jitter"):
            FaultConfig(backoff_jitter=-0.1)

    def test_penalty_with_jitters(self):
        # Unit jitters reproduce the closed form exactly.
        plain = retransmit_penalty(1.0, 3, 4.0, 2.0)
        assert retransmit_penalty(
            1.0, 3, 4.0, 2.0, jitters=[1.0, 1.0, 1.0]
        ) == pytest.approx(plain)
        # Scaled jitters scale only the stalls, not the wire time.
        jittered = retransmit_penalty(1.0, 2, 4.0, 2.0, jitters=[0.9, 1.1])
        stalls = 4.0 * 0.9 + 8.0 * 1.1
        assert jittered == pytest.approx(stalls + 2.0)

    def test_penalty_jitter_length_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            retransmit_penalty(1.0, 3, jitters=[1.0])

    def test_simulator_jitter_keeps_determinism(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        cfg = FaultConfig(seed=9, drop_rate=0.2, backoff_jitter=0.25)
        times = [
            BspSimulator(
                flops,
                schedule,
                CRAY_T3E,
                injector=FaultInjector(cfg),
            ).run("barrier", step=2).t_smvp
            for _ in range(2)
        ]
        assert times[0] == times[1]

    def test_simulator_jitter_changes_stalls(self, demo_sim_setup):
        flops, schedule = demo_sim_setup
        base = FaultConfig(seed=9, drop_rate=0.2, backoff_jitter=0.0)
        jit = FaultConfig(seed=9, drop_rate=0.2, backoff_jitter=0.25)
        t_base = BspSimulator(
            flops, schedule, CRAY_T3E, injector=FaultInjector(base)
        ).run("barrier", step=2).t_smvp
        t_jit = BspSimulator(
            flops, schedule, CRAY_T3E, injector=FaultInjector(jit)
        ).run("barrier", step=2).t_smvp
        # Same injected faults (jitter uses its own stream), different
        # stall durations.
        assert t_base != t_jit
        assert t_jit == pytest.approx(t_base, rel=0.5)


class TestCheckpointDistributionHeader:
    @pytest.fixture()
    def problem(self, demo_mesh, demo_materials, demo_stiffness):
        mass = assemble_lumped_mass(demo_mesh, demo_materials)
        dt = stable_timestep(demo_mesh, demo_materials)
        force = np.zeros(3 * demo_mesh.num_nodes)
        force[30] = 1e9
        return demo_stiffness, mass, dt, (lambda t: force)

    def test_header_roundtrip(self, problem, demo_mesh, tmp_path):
        stiffness, mass, dt, force_at = problem
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 6))
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(4, force_at=force_at)
        manager = CheckpointManager(tmp_path, interval=1)
        manager.save(stepper, distribution=dist)
        ck = manager.latest()
        assert ck.num_pes == 6
        assert ck.ownership_hash == dist.ownership_hash
        assert ck.matches(dist)
        resumed = ExplicitTimeStepper(stiffness, mass, dt)
        ck.restore(resumed, distribution=dist)
        assert np.array_equal(resumed.u, stepper.u)

    def test_mismatched_distribution_rejected(
        self, problem, demo_mesh, tmp_path
    ):
        from repro.faults import CheckpointCompatibilityError

        stiffness, mass, dt, force_at = problem
        dist6 = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 6))
        dist4 = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(2, force_at=force_at)
        manager = CheckpointManager(tmp_path, interval=1)
        manager.save(stepper, distribution=dist6)
        ck = manager.latest()
        assert not ck.matches(dist4)
        fresh = ExplicitTimeStepper(stiffness, mass, dt)
        with pytest.raises(CheckpointCompatibilityError, match="6 PEs"):
            ck.restore(fresh, distribution=dist4)
        # The compatibility error is still a CheckpointError.
        with pytest.raises(CheckpointError):
            ck.restore(fresh, distribution=dist4)

    def test_headerless_checkpoint_matches_anything(
        self, problem, demo_mesh, tmp_path
    ):
        stiffness, mass, dt, force_at = problem
        stepper = ExplicitTimeStepper(stiffness, mass, dt)
        stepper.run(2, force_at=force_at)
        manager = CheckpointManager(tmp_path, interval=1)
        manager.save(stepper)  # no distribution: sequential run
        ck = manager.latest()
        assert ck.num_pes is None
        dist = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        assert ck.matches(dist)
        fresh = ExplicitTimeStepper(stiffness, mass, dt)
        ck.restore(fresh, distribution=dist)  # nothing to contradict

    def test_ownership_hash_distinguishes_layouts(self, demo_mesh):
        d6a = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 6))
        d6b = DataDistribution(
            demo_mesh, partition_mesh(demo_mesh, 6, method="random", seed=3)
        )
        d4 = DataDistribution(demo_mesh, partition_mesh(demo_mesh, 4))
        assert d6a.ownership_hash == DataDistribution(
            demo_mesh, partition_mesh(demo_mesh, 6)
        ).ownership_hash
        assert d6a.ownership_hash != d6b.ownership_hash
        assert d6a.ownership_hash != d4.ownership_hash


class TestQuarantinedTransport:
    def test_quarantined_blocks_bypass_injection(
        self, demo_mesh, demo_materials, demo_stiffness
    ):
        # A rate that *would* fail PE 0's links without quarantine.
        cfg = FaultConfig(seed=11, drop_rate=0.9, max_retries=1)
        clean = DistributedSMVP(demo_mesh, partition_mesh(demo_mesh, 4), demo_materials)
        faulty = DistributedSMVP(
            demo_mesh,
            partition_mesh(demo_mesh, 4),
            demo_materials,
            injector=FaultInjector(cfg),
        )
        for pe in range(4):
            faulty.quarantine(pe)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3 * demo_mesh.num_nodes)
        try:
            y_clean = clean.multiply(x)
            y_faulty = faulty.multiply(x)
        finally:
            clean.close()
            faulty.close()
        # All links quarantined: every block takes the verified path,
        # bit-identical to the clean transport.
        assert np.array_equal(y_clean, y_faulty)

    def test_quarantine_counted_in_stats(
        self, demo_mesh, demo_materials
    ):
        cfg = FaultConfig(seed=11, drop_rate=0.05)
        smvp = DistributedSMVP(
            demo_mesh,
            partition_mesh(demo_mesh, 4),
            demo_materials,
            injector=FaultInjector(cfg),
        )
        smvp.quarantine(1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(3 * demo_mesh.num_nodes)
        try:
            x_locals = smvp.scatter(x)
            y_locals = smvp.compute_phase(x_locals)
            _, record = smvp.communication_phase(y_locals)
        finally:
            smvp.close()
        assert record.faults.quarantined_blocks > 0

    def test_quarantine_validates_pe(self, demo_mesh, demo_materials):
        smvp = DistributedSMVP(
            demo_mesh, partition_mesh(demo_mesh, 4), demo_materials
        )
        try:
            with pytest.raises(ValueError):
                smvp.quarantine(4)
            smvp.quarantine(2)
            assert smvp.quarantined == frozenset({2})
            smvp.unquarantine(2)
            assert smvp.quarantined == frozenset()
        finally:
            smvp.close()
