"""Tests for repro.partition.refine (boundary smoothing)."""

import numpy as np
import pytest

from repro.partition import (
    Partition,
    partition_mesh,
    partition_metrics,
    smooth_partition,
)


class TestSmoothPartition:
    def test_reduces_or_preserves_shared_nodes(self, demo_mesh):
        for method in ("rcb", "random"):
            part = partition_mesh(demo_mesh, 8, method=method, seed=0)
            before = partition_metrics(demo_mesh, part).shared_nodes
            refined = smooth_partition(demo_mesh, part)
            after = partition_metrics(demo_mesh, refined).shared_nodes
            assert after <= before, method

    def test_strictly_improves_rcb_at_scale(self, sf10e_mesh):
        # RCB leaves jagged staircase boundaries in the graded basin of
        # the larger instance; smoothing must find strictly improving
        # moves there (on tiny meshes with planar cuts there may be no
        # single-move gain, which the other tests cover).
        part = partition_mesh(sf10e_mesh, 32, method="rcb", seed=0)
        before = partition_metrics(sf10e_mesh, part).shared_nodes
        refined = smooth_partition(sf10e_mesh, part, max_passes=2)
        after = partition_metrics(sf10e_mesh, refined).shared_nodes
        assert after < before

    def test_balance_respected(self, demo_mesh):
        part = partition_mesh(demo_mesh, 8, method="rcb")
        refined = smooth_partition(demo_mesh, part, balance_tolerance=1.03)
        assert refined.imbalance() <= 1.03 + 1e-9

    def test_partition_validity_preserved(self, demo_mesh):
        part = partition_mesh(demo_mesh, 8)
        refined = smooth_partition(demo_mesh, part)
        assert refined.num_parts == 8
        assert refined.num_elements == demo_mesh.num_elements
        assert refined.part_sizes().min() > 0
        assert refined.method.endswith("+smooth")

    def test_original_unmodified(self, demo_mesh):
        part = partition_mesh(demo_mesh, 8)
        snapshot = part.parts.copy()
        smooth_partition(demo_mesh, part)
        assert np.array_equal(part.parts, snapshot)

    def test_single_part_noop(self, demo_mesh):
        part = partition_mesh(demo_mesh, 1)
        assert smooth_partition(demo_mesh, part) is part

    def test_two_tet_case(self, two_tet_mesh):
        # With one element per part and sizes of 1, no moves possible.
        part = Partition(np.array([0, 1]), 2)
        refined = smooth_partition(two_tet_mesh, part)
        assert sorted(refined.parts.tolist()) == [0, 1]

    def test_validation(self, two_tet_mesh, demo_mesh):
        part = partition_mesh(demo_mesh, 4)
        with pytest.raises(ValueError):
            smooth_partition(two_tet_mesh, part)
        with pytest.raises(ValueError):
            smooth_partition(demo_mesh, part, balance_tolerance=0.9)

    def test_deterministic(self, demo_mesh):
        part = partition_mesh(demo_mesh, 8)
        a = smooth_partition(demo_mesh, part)
        b = smooth_partition(demo_mesh, part)
        assert np.array_equal(a.parts, b.parts)
