"""Tests for repro.geometry.tetra."""

import numpy as np
import pytest

from repro.geometry import (
    tet_aspect_ratios,
    tet_centroids,
    tet_circumradii,
    tet_edge_lengths,
    tet_inradii,
    tet_longest_edges,
    tet_quality_radius_ratio,
    tet_shortest_edges,
    tet_signed_volumes,
    tet_volumes,
)

UNIT_RIGHT = np.array(
    [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
)
TET = np.array([[0, 1, 2, 3]])


def regular_tet_points(edge: float = 1.0) -> np.ndarray:
    """Corners of a regular tetrahedron with the given edge length."""
    pts = np.array(
        [[1, 1, 1], [1, -1, -1], [-1, 1, -1], [-1, -1, 1]], dtype=float
    )
    return pts * (edge / np.sqrt(8.0))


class TestVolumes:
    def test_unit_right_tet_volume(self):
        assert tet_volumes(UNIT_RIGHT, TET)[0] == pytest.approx(1 / 6)

    def test_signed_volume_flips_with_orientation(self):
        flipped = np.array([[0, 2, 1, 3]])
        v1 = tet_signed_volumes(UNIT_RIGHT, TET)[0]
        v2 = tet_signed_volumes(UNIT_RIGHT, flipped)[0]
        assert v1 == pytest.approx(-v2)
        assert v1 > 0

    def test_translation_invariance(self):
        shifted = UNIT_RIGHT + np.array([10.0, -5.0, 3.0])
        assert tet_volumes(shifted, TET)[0] == pytest.approx(1 / 6)

    def test_scaling(self):
        assert tet_volumes(2 * UNIT_RIGHT, TET)[0] == pytest.approx(8 / 6)

    def test_degenerate_volume_zero(self):
        flat = UNIT_RIGHT.copy()
        flat[3] = [0.5, 0.5, 0.0]  # coplanar with the base
        assert tet_volumes(flat, TET)[0] == pytest.approx(0.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            tet_volumes(UNIT_RIGHT, np.array([[0, 1, 2]]))


class TestEdgesAndCentroid:
    def test_edge_lengths_unit_right(self):
        lengths = tet_edge_lengths(UNIT_RIGHT, TET)[0]
        assert sorted(np.round(lengths, 6)) == pytest.approx(
            [1.0, 1.0, 1.0, np.sqrt(2), np.sqrt(2), np.sqrt(2)]
        )
        assert tet_longest_edges(UNIT_RIGHT, TET)[0] == pytest.approx(np.sqrt(2))
        assert tet_shortest_edges(UNIT_RIGHT, TET)[0] == pytest.approx(1.0)

    def test_centroid(self):
        c = tet_centroids(UNIT_RIGHT, TET)[0]
        assert np.allclose(c, [0.25, 0.25, 0.25])


class TestRadii:
    def test_regular_tet_radii(self):
        pts = regular_tet_points(1.0)
        tets = np.array([[0, 1, 2, 3]])
        # Known values: R = sqrt(3/8) * a, r = a / sqrt(24).
        assert tet_circumradii(pts, tets)[0] == pytest.approx(np.sqrt(3 / 8))
        assert tet_inradii(pts, tets)[0] == pytest.approx(1 / np.sqrt(24))

    def test_regular_tet_quality_is_one(self):
        pts = regular_tet_points(2.5)
        assert tet_quality_radius_ratio(pts, np.array([[0, 1, 2, 3]]))[
            0
        ] == pytest.approx(1.0)

    def test_sliver_quality_near_zero(self):
        sliver = UNIT_RIGHT.copy()
        sliver[3] = [0.5, 0.5, 1e-6]
        q = tet_quality_radius_ratio(sliver, TET)[0]
        assert 0 <= q < 0.01

    def test_degenerate_circumradius_inf(self):
        flat = UNIT_RIGHT.copy()
        flat[3] = [0.5, 0.5, 0.0]
        assert np.isinf(tet_circumradii(flat, TET)[0])

    def test_quality_in_unit_interval_random(self):
        rng = np.random.default_rng(7)
        pts = rng.standard_normal((40, 3))
        tets = rng.integers(0, 40, size=(100, 4))
        ok = np.array([len(set(t)) == 4 for t in tets])
        q = tet_quality_radius_ratio(pts, tets[ok])
        assert np.all(q >= 0) and np.all(q <= 1)


class TestAspect:
    def test_regular_tet_aspect(self):
        pts = regular_tet_points(1.0)
        ar = tet_aspect_ratios(pts, np.array([[0, 1, 2, 3]]))[0]
        assert ar == pytest.approx(np.sqrt(24), rel=1e-6)

    def test_degenerate_aspect_inf(self):
        flat = UNIT_RIGHT.copy()
        flat[3] = [0.5, 0.5, 0.0]
        assert np.isinf(tet_aspect_ratios(flat, TET)[0])
