"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires bdist_wheel support; on offline machines
without `wheel`, use `python setup.py develop` instead.
"""
from setuptools import setup

setup()
