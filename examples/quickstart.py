"""Quickstart: the full pipeline in one page.

Builds a Quake-style mesh, partitions it, runs the distributed SMVP,
verifies it against the sequential product, and asks the paper's
question: what does this application demand from the network?

Run:  python examples/quickstart.py
"""

from repro import (
    CURRENT_100MFLOPS,
    FUTURE_200MFLOPS,
    DistributedSMVP,
    ModelInputs,
    get_instance,
    half_bandwidth_targets,
    partition_mesh,
    smvp_statistics,
    sustained_bandwidth_bytes,
)
from repro.fem import assemble_stiffness, materials_from_model


def main() -> None:
    # 1. Build the synthetic San Fernando instance for 10-second waves.
    instance = get_instance("sf10e")
    mesh, report = instance.build()
    print(f"mesh: {mesh}")
    if report is not None:
        print(
            f"  built in {report.seconds_total:.1f}s "
            f"({report.octree_leaves} octree leaves, method={report.method})"
        )

    # 2. Partition the elements across 64 PEs (paper Section 2.2).
    partition = partition_mesh(mesh, 64, method="geometric")
    print(f"partition: {partition.num_parts} PEs, imbalance "
          f"{partition.imbalance():.3f}")

    # 3. Execute the distributed SMVP and verify it bit-for-bit-ish
    #    against the sequential sparse product (paper Section 2.3).
    #    Backends are swappable: "serial" (the reference), "threaded",
    #    or "shared-memory" — all bit-identical, pick with backend=.
    materials = materials_from_model(mesh, instance.model())
    stiffness = assemble_stiffness(mesh, materials)
    with DistributedSMVP(
        mesh, partition, materials, backend="threaded"
    ) as smvp:
        error = smvp.verify_against_global(stiffness)
        print(
            f"distributed SMVP ({smvp.backend_name} backend) max relative "
            f"error vs sequential: {error:.2e}"
        )

    # 4. The application statistics of the paper's Figure 7.
    stats = smvp_statistics(mesh, partition=partition)
    print(f"stats: {stats}")

    # 5. What must the network sustain? (Equation 1 / Figure 9.)
    inputs = ModelInputs.from_stats(stats, label="sf10e/64")
    for machine in (CURRENT_100MFLOPS, FUTURE_200MFLOPS):
        bw = sustained_bandwidth_bytes(inputs, 0.9, machine)
        print(
            f"  {machine.name}: needs {bw / 1e6:.0f} MB/s sustained per PE "
            "for 90% efficiency"
        )

    # 6. And the balanced latency/bandwidth design point (Figure 11).
    target = half_bandwidth_targets(inputs, 0.9, FUTURE_200MFLOPS)
    print(
        f"  half-bandwidth target: {target.burst_bandwidth_bytes / 1e6:.0f} "
        f"MB/s burst with {target.half_tl * 1e6:.1f} us block latency"
    )


if __name__ == "__main__":
    main()
