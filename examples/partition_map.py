"""Visualize the mesh grading and a partition as ASCII maps.

Two map-view (bird's eye) renderings of a horizontal slice through the
model:

1. element-size map — shows the wavelength grading: small elements
   (fine characters) concentrate in the soft sediment basin;
2. subdomain map — one character per PE, showing how the geometric
   partitioner carves the domain (and how subdomains shrink over the
   basin, where elements are dense).

Run:  python examples/partition_map.py [--pes 16] [--depth 500]
"""

import argparse
import string

import numpy as np
from scipy.spatial import cKDTree

from repro import get_instance, partition_mesh
from repro.geometry import tet_longest_edges


def slice_grid(model, depth: float, cols: int, rows: int) -> np.ndarray:
    xs = np.linspace(model.domain.lo[0], model.domain.hi[0], cols)
    ys = np.linspace(model.domain.lo[1], model.domain.hi[1], rows)
    gx, gy = np.meshgrid(xs, ys)
    pts = np.column_stack(
        [gx.ravel(), gy.ravel(), np.full(gx.size, -abs(depth))]
    )
    return pts


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--instance", default="sf10e")
    parser.add_argument("--pes", type=int, default=16)
    parser.add_argument("--depth", type=float, default=500.0)
    parser.add_argument("--cols", type=int, default=72)
    parser.add_argument("--rows", type=int, default=30)
    args = parser.parse_args()

    inst = get_instance(args.instance)
    mesh, _ = inst.build()
    model = inst.model()
    print(f"{args.instance}: {mesh}; slice at {args.depth:.0f} m depth\n")

    centroids = mesh.element_centroids
    tree = cKDTree(centroids)
    pts = slice_grid(model, args.depth, args.cols, args.rows)
    _, nearest = tree.query(pts)

    # --- map 1: element size ------------------------------------------
    sizes = tet_longest_edges(mesh.points, mesh.tets)
    size_chars = " .:-=+*#%@"  # big ... small
    log_sizes = np.log(sizes[nearest])
    lo, hi = log_sizes.min(), log_sizes.max()
    level = ((hi - log_sizes) / max(hi - lo, 1e-12) * (len(size_chars) - 1)).astype(int)
    print("element size (darker = finer = softer soil):")
    for r in range(args.rows - 1, -1, -1):
        row = level[r * args.cols : (r + 1) * args.cols]
        print("".join(size_chars[v] for v in row))

    # --- map 2: subdomains --------------------------------------------
    partition = partition_mesh(mesh, args.pes, method="geometric")
    chars = string.digits + string.ascii_uppercase + string.ascii_lowercase
    owner = partition.parts[nearest]
    print(f"\nsubdomains ({args.pes} PEs, geometric bisection):")
    for r in range(args.rows - 1, -1, -1):
        row = owner[r * args.cols : (r + 1) * args.cols]
        print("".join(chars[v % len(chars)] for v in row))

    sizes_per_part = partition.part_sizes()
    print(
        f"\nelements per PE: min {sizes_per_part.min()}, "
        f"max {sizes_per_part.max()} (imbalance "
        f"{partition.imbalance():.3f})"
    )


if __name__ == "__main__":
    main()
