"""Network design study: the paper's Section 4 workflow as a tool.

Given an application instance (measured or the paper's published sf2)
and a machine generation, this example walks the designer's questions:

1. How much sustained per-PE bandwidth does each efficiency target
   demand?  (Equation 1 / Figure 9)
2. For the chosen efficiency, what (burst bandwidth, block latency)
   pairs satisfy it — and where is the balanced half-bandwidth point?
   (Equation 2 / Figures 10-11)
3. Would a real machine (Cray T3E constants) meet the target?  Checked
   analytically *and* by executing the phase structure on the BSP
   simulator.

Run:  python examples/network_design.py [--source paper|measured]
"""

import argparse

from repro import (
    CRAY_T3E,
    FUTURE_200MFLOPS,
    ModelInputs,
    get_instance,
    partition_mesh,
    smvp_statistics,
)
from repro.model import (
    half_bandwidth_targets,
    required_tc,
    sustained_bandwidth_bytes,
    tc_from_blocks,
)
from repro.model.highlevel import efficiency_from_tc
from repro.model.lowlevel import MAXIMAL_BLOCKS, four_word_blocks, tradeoff_curve
from repro.simulate import BspSimulator
from repro.smvp import CommSchedule, DataDistribution


def get_inputs(source: str, pes: int):
    """Either the paper's published sf2 row or our measured sf10e."""
    if source == "paper":
        return ModelInputs.from_paper("sf2", pes), None
    inst = get_instance("sf10e")
    mesh, _ = inst.build()
    partition = partition_mesh(mesh, pes, method="geometric")
    stats = smvp_statistics(mesh, partition=partition)
    dist = DataDistribution(mesh, partition)
    return ModelInputs.from_stats(stats, label=f"sf10e/{pes}"), (stats, dist)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--source", choices=("paper", "measured"), default="paper")
    parser.add_argument("--pes", type=int, default=128)
    parser.add_argument("--efficiency", type=float, default=0.9)
    args = parser.parse_args()

    machine = FUTURE_200MFLOPS
    inputs, measured = get_inputs(args.source, args.pes)
    print(f"application: {inputs.label}  (F={inputs.F:,}, "
          f"C_max={inputs.c_max:,}, B_max={inputs.b_max})")
    print(f"machine: {machine.name} (T_f = {machine.tf * 1e9:.0f} ns/flop)\n")

    # -- step 1: sustained bandwidth per efficiency target ---------------
    print("required sustained per-PE bandwidth:")
    for eff in (0.5, 0.7, 0.8, 0.9, 0.95):
        bw = sustained_bandwidth_bytes(inputs, eff, machine)
        print(f"  E = {eff:4.2f}: {bw / 1e6:8.0f} MB/s")

    # -- step 2: the latency/bandwidth design space ----------------------
    eff = args.efficiency
    print(f"\ndesign space at E = {eff} (maximal blocks):")
    curve = tradeoff_curve(
        inputs,
        eff,
        machine,
        MAXIMAL_BLOCKS,
        burst_bandwidths_bytes=[100e6, 300e6, 600e6, 1e9, float("inf")],
    )
    for bw, tl in curve:
        bw_label = "inf" if bw == float("inf") else f"{bw / 1e6:.0f} MB/s"
        print(f"  burst {bw_label:>10}: block latency must be <= "
              f"{tl * 1e6:.2f} us")

    for mode in (MAXIMAL_BLOCKS, four_word_blocks()):
        target = half_bandwidth_targets(inputs, eff, machine, mode)
        print(
            f"  balanced point ({mode.name} blocks): "
            f"{target.burst_bandwidth_bytes / 1e6:.0f} MB/s burst + "
            f"{target.half_tl * 1e9:.0f} ns latency"
        )

    # -- step 3: would a T3E-class network deliver? ----------------------
    tc_t3e = tc_from_blocks(inputs, CRAY_T3E.tl, CRAY_T3E.tw)
    achieved = efficiency_from_tc(inputs, tc_t3e, machine)
    needed = required_tc(inputs, eff, machine)
    print(
        f"\na T3E-class network (T_l = 22 us, T_w = 55 ns) sustains "
        f"{8 / tc_t3e / 1e6:.0f} MB/s -> efficiency {achieved:.2f} "
        f"(target {eff}, which needs {8 / needed / 1e6:.0f} MB/s)"
    )

    if measured is not None:
        stats, dist = measured
        sim = BspSimulator(
            stats.f_per_pe,
            CommSchedule(dist),
            CRAY_T3E,
        )
        times = sim.run("barrier")
        print(
            f"BSP simulation on T3E constants: T_smvp = "
            f"{times.t_smvp * 1e3:.2f} ms, efficiency {times.efficiency:.2f} "
            f"(model said {efficiency_from_tc(inputs, tc_t3e, CRAY_T3E):.2f})"
        )


if __name__ == "__main__":
    main()
