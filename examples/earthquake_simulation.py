"""An end-to-end earthquake ground-motion simulation.

This is the application the paper's analysis abstracts: explicit
time-stepped elastic wave propagation through the basin model, with
every time step's SMVP executed by the *distributed* (p-PE) executor —
so each of the simulation's steps exercises exactly the computation
phase + exchange phase structure the performance model describes.

Seismograms at a rock site and a basin site are printed as ASCII
traces; the basin site should show the amplified, extended shaking that
motivates the whole Quake project.

Run:  python examples/earthquake_simulation.py [--steps N] [--pes P]
"""

import argparse

import numpy as np

from repro import DistributedSMVP, backend_names, get_instance, partition_mesh
from repro.fem import (
    ExplicitTimeStepper,
    PointSource,
    RickerWavelet,
    assemble_lumped_mass,
    assemble_stiffness,
    materials_from_model,
    stable_timestep,
)


def ascii_trace(values: np.ndarray, width: int = 64, height: int = 9) -> str:
    """Render a 1D signal as a small ASCII plot."""
    if len(values) > width:
        # Downsample by max-abs so peaks survive.
        bins = np.array_split(values, width)
        values = np.array([b[np.argmax(np.abs(b))] for b in bins])
    peak = np.abs(values).max() or 1.0
    half = height // 2
    levels = np.round(values / peak * half).astype(int)
    rows = []
    for level in range(half, -half - 1, -1):
        chars = []
        for l in levels:
            filled = (0 < level <= l) or (l <= level < 0)
            if filled:
                chars.append("*")
            elif level == 0:
                chars.append("-")
            else:
                chars.append(" ")
        rows.append("".join(chars))
    return "\n".join(rows)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--instance", default="demo")
    parser.add_argument("--pes", type=int, default=8)
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument(
        "--backend",
        default="serial",
        choices=sorted(backend_names()),
        help="execution backend for the per-PE local products",
    )
    args = parser.parse_args()

    instance = get_instance(args.instance)
    mesh, _ = instance.build()
    model = instance.model()
    materials = materials_from_model(mesh, model)
    print(f"instance {args.instance}: {mesh}")

    stiffness = assemble_stiffness(mesh, materials)
    mass = assemble_lumped_mass(mesh, materials)
    dt = stable_timestep(mesh, materials)
    print(f"stable dt = {dt:.4f} s; simulating {args.steps * dt:.1f} s")

    # Distribute across PEs: each step's SMVP runs the full scatter /
    # local products / exchange-and-sum cycle.
    partition = partition_mesh(mesh, args.pes, method="geometric")
    smvp = DistributedSMVP(mesh, partition, materials, backend=args.backend)
    print(
        f"{args.pes} PEs ({smvp.backend_name} backend): "
        f"C_max={smvp.schedule.c_max} words, "
        f"B_max={smvp.schedule.b_max} blocks per SMVP"
    )

    # A buried source under the basin edge.
    source = PointSource.at_point(
        mesh,
        (model.center_x - 8_000.0, model.center_y, -6_000.0),
        RickerWavelet(frequency=1.0 / instance.period, amplitude=1e13),
    )

    # Receivers: one on rock, one on the deepest basin sediment.
    rock_site = np.array([4_000.0, 4_000.0, 0.0])
    basin_site = np.array([model.center_x, model.center_y, 0.0])
    receivers = np.array(
        [
            int(np.argmin(((mesh.points - rock_site) ** 2).sum(axis=1))),
            int(np.argmin(((mesh.points - basin_site) ** 2).sum(axis=1))),
        ]
    )

    stepper = ExplicitTimeStepper(
        stiffness, mass, dt, damping_alpha=0.03, smvp=smvp
    )
    records, seismograms = stepper.run(
        args.steps,
        force_at=lambda t: source.force(t, mesh.num_nodes),
        record_nodes=receivers,
    )

    peak = max(r.max_displacement for r in records)
    print(f"peak displacement anywhere: {peak:.3e} m")
    for name, idx in (("rock site", 0), ("basin site", 1)):
        trace = seismograms[:, idx, 2]  # vertical component
        print(f"\n{name} vertical displacement "
              f"(peak {np.abs(trace).max():.3e} m):")
        print(ascii_trace(trace))

    amp = np.abs(seismograms[:, 1]).max() / max(
        np.abs(seismograms[:, 0]).max(), 1e-30
    )
    print(f"\nbasin/rock amplification factor: {amp:.1f}x")
    smvp.close()


if __name__ == "__main__":
    main()
