"""Scaling study: how the communication character evolves with problem
size and PE count.

Reproduces the paper's Section 4.1 observations on live meshes:

* F/C_max rises with problem size but only like n^(1/3) — you cannot
  outgrow the network by just running bigger problems;
* average message size M_avg stays small even as meshes grow;
* each PE talks to a couple dozen neighbors at most, between
  nearest-neighbor grids and all-to-all FFTs.

Run:  python examples/scaling_study.py
(REPRO_LARGE=1 includes the 380k-node sf2e instance.)
"""

from repro import get_instance, instance_names, smvp_statistics
from repro.mesh.instances import INSTANCES
from repro.tables.render import Table


def main() -> None:
    instances = [
        INSTANCES[name]
        for name in instance_names(enabled_only=True)
        if name != "demo"
    ]
    pe_counts = (4, 16, 64, 128)

    table = Table(
        title="Scaling of the SMVP communication character",
        headers=["instance", "nodes", "p", "F/C_max", "M_avg (words)",
                 "max neighbors", "beta"],
    )
    ratio_by_instance = {}
    for inst in instances:
        mesh, _ = inst.build()
        for p in pe_counts:
            stats = smvp_statistics(mesh, num_parts=p, method="geometric")
            if p == 64:
                ratio_by_instance[inst.name] = stats.f_over_c
            table.add_row(
                inst.name,
                mesh.num_nodes,
                p,
                round(stats.f_over_c, 1),
                round(stats.m_avg),
                stats.b_max // 2,
                round(stats.beta, 2),
            )
    print(table)

    names = [inst.name for inst in instances]
    if len(names) >= 2:
        first, last = names[0], names[-1]
        n_ratio = (
            INSTANCES[last].build()[0].num_nodes
            / INSTANCES[first].build()[0].num_nodes
        )
        r_ratio = ratio_by_instance[last] / ratio_by_instance[first]
        print(
            f"\n{last} has {n_ratio:.0f}x the nodes of {first}, but only "
            f"{r_ratio:.1f}x the computation/communication ratio at p=64 — "
            f"the paper's n^(1/3) law (predicted {n_ratio ** (1 / 3):.1f}x)."
        )


if __name__ == "__main__":
    main()
