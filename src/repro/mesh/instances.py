"""Named Quake-like problem instances.

The paper's four applications (sf10, sf5, sf2, sf1) resolve waves with
10/5/2/1-second periods over the San Fernando model.  Our synthetic
equivalents are named with a trailing "e" (sf10e etc.) to make clear
they are calibrated stand-ins, not the original meshes.  A fifth "demo"
instance (20-second period, ~1.5k nodes) exists so tests and examples
run in well under a second.

Instance meshes are deterministic (fixed seed), cached in-process, and
optionally cached on disk under ``$REPRO_MESH_CACHE``.

Large instances are *gated*: sf2e (~380k nodes) only builds when the
environment variable ``REPRO_LARGE=1`` is set, sf1e (~1.9M nodes) only
when ``REPRO_HUGE=1``.  This keeps the default test/benchmark runs fast
while leaving the full-scale reproduction one environment variable away.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import paperdata
from repro.mesh.core import TetMesh
from repro.mesh.generator import MeshBuildReport, generate_mesh
from repro.mesh.io import MeshIOError, load_mesh, save_mesh
from repro.telemetry.registry import count
from repro.velocity.basin import BasinModel, default_san_fernando_like_model


@dataclass(frozen=True)
class QuakeInstance:
    """A named, reproducible mesh configuration.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"sf5e"``.
    period:
        Shortest resolved wave period (seconds).
    paper_name:
        The paper application this instance stands in for (``None`` for
        the demo instance).
    gate:
        ``None`` (always enabled) or the name of the environment
        variable that must be "1" for :meth:`build` to proceed.
    points_per_wavelength:
        Per-instance calibration constant — the *effective* mesh nodes
        per shear wavelength, tuned so node counts land on the paper's
        Figure 2 (the meshes are uniformly coarser than a physically
        accurate simulation would use, with identical grading
        structure); see :mod:`repro.mesh.generator` for the full story.
    method, seed:
        Mesh generation parameters (see :func:`repro.mesh.generate_mesh`).
    """

    name: str
    period: float
    paper_name: Optional[str] = None
    gate: Optional[str] = None
    points_per_wavelength: float = 1.35
    method: str = "stuffing"
    seed: int = 0

    @property
    def paper_mesh_sizes(self) -> Optional[Dict[str, int]]:
        """The paper's Figure 2 row for this instance, if any."""
        if self.paper_name is None:
            return None
        return paperdata.MESH_SIZES[self.paper_name]

    def is_enabled(self) -> bool:
        """Whether the gating environment variable (if any) is set."""
        if self.gate is None:
            return True
        return os.environ.get(self.gate, "0") == "1"

    def model(self) -> BasinModel:
        """The ground model all standard instances share."""
        return default_san_fernando_like_model()

    def build(
        self, use_cache: bool = True
    ) -> Tuple[TetMesh, Optional[MeshBuildReport]]:
        """Generate (or fetch from cache) this instance's mesh.

        Raises ``RuntimeError`` when the instance is gated off; callers
        that want to skip instead should check :meth:`is_enabled` first.
        The build report is ``None`` for disk-cache hits.
        """
        if not self.is_enabled():
            raise RuntimeError(
                f"instance {self.name} is disabled; set {self.gate}=1 to "
                "enable it"
            )
        if use_cache:
            cached = _MEMORY_CACHE.get(self.name)
            if cached is not None:
                count(
                    "repro_mesh_cache_total",
                    instance=self.name,
                    result="memory-hit",
                )
                return cached
            disk = self._disk_cache_path()
            if disk is not None and disk.exists():
                try:
                    mesh = load_mesh(disk)
                except MeshIOError as exc:
                    # Graceful degradation: a corrupt/truncated/stale
                    # cache file costs a rebuild, never a crash.
                    warnings.warn(
                        f"mesh cache for {self.name} is unusable "
                        f"({exc}); deleting and rebuilding",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    try:
                        disk.unlink()
                    except OSError:
                        pass
                else:
                    count(
                        "repro_mesh_cache_total",
                        instance=self.name,
                        result="disk-hit",
                    )
                    result = (mesh, None)
                    _MEMORY_CACHE[self.name] = result
                    return result
        count(
            "repro_mesh_cache_total", instance=self.name, result="miss"
        )
        mesh, report = generate_mesh(
            self.model(),
            period=self.period,
            method=self.method,
            points_per_wavelength=self.points_per_wavelength,
            seed=self.seed,
        )
        result = (mesh, report)
        if use_cache:
            _MEMORY_CACHE[self.name] = result
            disk = self._disk_cache_path()
            if disk is not None:
                disk.parent.mkdir(parents=True, exist_ok=True)
                save_mesh(mesh, disk)
        return result

    def _disk_cache_path(self) -> Optional[Path]:
        root = os.environ.get("REPRO_MESH_CACHE")
        if not root:
            return None
        return Path(root) / f"{self.name}-seed{self.seed}.npz"


_MEMORY_CACHE: Dict[str, Tuple[TetMesh, Optional[MeshBuildReport]]] = {}


def clear_mesh_cache() -> None:
    """Drop all in-process cached meshes (tests use this)."""
    _MEMORY_CACHE.clear()


#: The instance registry.  sf2e/sf1e are gated by environment variables
#: because they take minutes and gigabytes to build.
INSTANCES: Dict[str, QuakeInstance] = {
    inst.name: inst
    for inst in (
        QuakeInstance(name="demo", period=25.0, points_per_wavelength=1.1111),
        QuakeInstance(
            name="sf10e",
            period=10.0,
            paper_name="sf10",
            points_per_wavelength=1.3514,
        ),
        QuakeInstance(
            name="sf5e",
            period=5.0,
            paper_name="sf5",
            points_per_wavelength=1.8018,
        ),
        QuakeInstance(
            name="sf2e",
            period=2.0,
            paper_name="sf2",
            gate="REPRO_LARGE",
            points_per_wavelength=2.4691,
        ),
        QuakeInstance(
            name="sf1e",
            period=1.0,
            paper_name="sf1",
            gate="REPRO_HUGE",
            points_per_wavelength=2.8571,
        ),
    )
}


def get_instance(name: str) -> QuakeInstance:
    """Look up an instance by name; raises ``KeyError`` with the options."""
    try:
        return INSTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; available: {sorted(INSTANCES)}"
        ) from None


def instance_names(enabled_only: bool = False) -> Tuple[str, ...]:
    """Registry names in increasing problem size order."""
    ordered = ("demo", "sf10e", "sf5e", "sf2e", "sf1e")
    if enabled_only:
        return tuple(n for n in ordered if INSTANCES[n].is_enabled())
    return ordered
