"""End-to-end mesh generation pipeline.

``generate_mesh`` is the reproduction's stand-in for the Archimedes tool
chain's meshing stage: ground model in, unstructured tetrahedral mesh
out, with resolution graded by the local seismic wavelength for a given
wave period (the "10" in sf10 etc.).

Two mesh construction methods are available:

* ``"stuffing"`` (default) — conforming template tetrahedralization of
  the balanced octree (:mod:`repro.mesh.stuffing`), followed by a
  volume-preserving node jitter.  Linear time; this is what makes the
  sf2e/sf1e scales (0.4M / 2.5M nodes) practical.
* ``"delaunay"`` — Delaunay tetrahedralization of the jittered octree
  corner points (:mod:`repro.mesh.delaunay`).  Closer to the paper's
  Delaunay-refinement heritage but Qhull degrades badly on strongly
  graded point sets, so it is only practical for small instances.

Calibration
-----------
A physically accurate simulation needs ~8-10 nodes per shear
wavelength; meshing our synthetic basin at that density would vastly
overshoot the paper's node counts (the real San Fernando model has far
less soft sediment than a worst-case synthetic bowl).  Each named
instance therefore carries an *effective* ``points_per_wavelength``
(between ~1.1 and ~2.9) calibrated so node counts land on the paper's
Figure 2 — i.e., the meshes are uniformly coarser than physical, with
identical grading *structure*.  Architectural statistics (node degree,
surface-to-volume of partitions, the O(n^{2/3}) communication scaling)
depend only on that structure; see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mesh.core import TetMesh
from repro.mesh.delaunay import delaunay_tetrahedralize
from repro.mesh.stuffing import jitter_mesh, stuff_octree
from repro.octree import LinearOctree, graded_points
from repro.telemetry.registry import get_registry
from repro.util.clock import now
from repro.velocity.basin import BasinModel
from repro.velocity.sizing import SizingField, WavelengthSizingField

#: Mesh construction methods accepted by :func:`generate_mesh`.
METHODS = ("stuffing", "delaunay")


@dataclass(frozen=True)
class MeshBuildReport:
    """Provenance and cost record for one generated mesh."""

    period: float
    method: str
    points_per_wavelength: float
    size_factor: float
    octree_leaves: int
    octree_max_level: int
    num_nodes: int
    num_elements: int
    num_edges: int
    seconds_octree: float
    seconds_mesh: float

    @property
    def seconds_total(self) -> float:
        return self.seconds_octree + self.seconds_mesh


def generate_mesh(
    model: BasinModel,
    period: float,
    method: str = "stuffing",
    points_per_wavelength: float = 1.35,
    size_factor: float = 1.0,
    dither: bool = True,
    base_shape: Tuple[int, int, int] = (5, 5, 1),
    max_level: int = 12,
    jitter: float = 0.15,
    seed: int = 0,
    sizing: Optional[SizingField] = None,
) -> Tuple[TetMesh, MeshBuildReport]:
    """Generate a wavelength-graded unstructured tet mesh of ``model``.

    Parameters
    ----------
    model:
        The ground (velocity) model to mesh.
    period:
        Shortest resolved wave period in seconds; halving it roughly
        multiplies the node count by eight (paper, Section 2.1).
    method:
        ``"stuffing"`` or ``"delaunay"`` (see module docstring).
    points_per_wavelength:
        Physical sizing target (nodes per shear wavelength).
    size_factor:
        Calibration: cells stop refining once their edge is within this
        factor of the physical target size.  The named instances carry
        per-instance values matched to the paper's node counts.
    dither:
        Smooth the power-of-two size quantization with deterministic
        probabilistic refinement (recommended; see
        :meth:`repro.octree.LinearOctree.refine`).
    base_shape:
        Root grid of cubic octree cells tiling the domain.
    max_level:
        Hard cap on octree depth.
    jitter:
        Node perturbation amplitude as a fraction of local spacing; 0
        leaves nodes on the octree lattice.
    seed:
        Seed for all deterministic randomness (dither and jitter).
    sizing:
        Override the sizing field entirely (``period`` and
        ``points_per_wavelength`` are then only recorded, not used).

    Returns
    -------
    (TetMesh, MeshBuildReport)
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    if sizing is None:
        sizing = WavelengthSizingField(
            model, period=period, points_per_wavelength=points_per_wavelength
        )
    t0 = now()
    tree = LinearOctree.build(
        model.domain,
        sizing,
        base_shape=base_shape,
        max_level=max_level,
        size_factor=size_factor,
        dither=dither,
        dither_seed=seed,
    )
    t1 = now()
    if method == "stuffing":
        mesh, spacing = stuff_octree(tree)
        if jitter:
            mesh = jitter_mesh(mesh, spacing, amplitude=jitter, seed=seed)
    else:
        points, _spacing = graded_points(tree, amplitude=jitter, seed=seed)
        mesh = delaunay_tetrahedralize(points)
    t2 = now()
    report = MeshBuildReport(
        period=float(period),
        method=method,
        points_per_wavelength=float(points_per_wavelength),
        size_factor=float(size_factor),
        octree_leaves=tree.leaf_count,
        octree_max_level=tree.max_level,
        num_nodes=mesh.num_nodes,
        num_elements=mesh.num_elements,
        num_edges=mesh.num_edges,
        seconds_octree=t1 - t0,
        seconds_mesh=t2 - t1,
    )
    reg = get_registry()
    if reg is not None:
        reg.counter("repro_mesh_builds_total", "meshes generated").inc(
            method=method
        )
        reg.gauge("repro_mesh_nodes", "last mesh node count").set(
            mesh.num_nodes
        )
        reg.gauge("repro_mesh_elements", "last mesh element count").set(
            mesh.num_elements
        )
        # Re-exports the pipeline's own clock reads; none happen here.
        reg.add_span("mesh.octree", t0, t1, track="mesh")
        reg.add_span(f"mesh.{method}", t1, t2, track="mesh")
    return mesh, report
