"""Vectorized mesh topology operations.

Everything here operates on raw ``(m, 4)`` element arrays so the
functions can be reused on subdomain element lists without building full
:class:`~repro.mesh.core.TetMesh` objects.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.geometry.tetra import TET_EDGES, TET_FACES


def directed_edges(tets: np.ndarray) -> np.ndarray:
    """All 6 undirected corner pairs of every element, low index first.

    Shape (6m, 2); contains duplicates (edges shared between elements).
    """
    tets = np.asarray(tets, dtype=np.int64)
    pairs = tets[:, TET_EDGES]  # (m, 6, 2)
    pairs = pairs.reshape(-1, 2)
    return np.sort(pairs, axis=1)


def unique_edges(tets: np.ndarray) -> np.ndarray:
    """Unique undirected edges of the mesh, sorted lexicographically.

    This is the edge count the paper's Figure 2 reports: the stiffness
    matrix K has one 3x3 off-diagonal block per direction of each edge
    plus one diagonal block per node.
    """
    pairs = directed_edges(tets)
    if len(pairs) == 0:
        return pairs.reshape(0, 2)
    # Pack into a single int64 key for a fast unique.
    n = int(pairs.max()) + 1
    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    uniq = np.unique(keys)
    out = np.empty((len(uniq), 2), dtype=np.int64)
    out[:, 0] = uniq // n
    out[:, 1] = uniq % n
    return out


def node_adjacency(num_nodes: int, edges: np.ndarray) -> sp.csr_matrix:
    """Symmetric boolean CSR adjacency of the node graph (no diagonal)."""
    if len(edges) == 0:
        return sp.csr_matrix((num_nodes, num_nodes), dtype=np.int8)
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    data = np.ones(len(rows), dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))


def element_node_incidence(
    tets: np.ndarray, num_nodes: int
) -> sp.csr_matrix:
    """Sparse (num_elements, num_nodes) incidence matrix (1 per corner)."""
    tets = np.asarray(tets, dtype=np.int64)
    m = tets.shape[0]
    rows = np.repeat(np.arange(m, dtype=np.int64), 4)
    cols = tets.ravel()
    data = np.ones(4 * m, dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(m, num_nodes))


def element_adjacency(tets: np.ndarray) -> sp.csr_matrix:
    """Element-to-element adjacency through shared faces.

    Two elements are adjacent when they share a triangular face.  Used by
    graph-growing and spectral partitioners.
    """
    tets = np.asarray(tets, dtype=np.int64)
    m = tets.shape[0]
    if m == 0:
        return sp.csr_matrix((0, 0), dtype=np.int8)
    faces = np.sort(tets[:, TET_FACES], axis=2).reshape(-1, 3)
    owner = np.repeat(np.arange(m, dtype=np.int64), 4)
    order = np.lexsort((faces[:, 2], faces[:, 1], faces[:, 0]))
    faces = faces[order]
    owner = owner[order]
    same = np.all(faces[1:] == faces[:-1], axis=1)
    a = owner[:-1][same]
    b = owner[1:][same]
    rows = np.concatenate([a, b])
    cols = np.concatenate([b, a])
    data = np.ones(len(rows), dtype=np.int8)
    return sp.csr_matrix((data, (rows, cols)), shape=(m, m))


def surface_faces(tets: np.ndarray) -> np.ndarray:
    """Triangles appearing in exactly one element (the mesh boundary)."""
    tets = np.asarray(tets, dtype=np.int64)
    if tets.shape[0] == 0:
        return np.empty((0, 3), dtype=np.int64)
    faces = np.sort(tets[:, TET_FACES], axis=2).reshape(-1, 3)
    order = np.lexsort((faces[:, 2], faces[:, 1], faces[:, 0]))
    faces = faces[order]
    first = np.ones(len(faces), dtype=bool)
    first[1:] = np.any(faces[1:] != faces[:-1], axis=1)
    # Run length of each distinct face.
    starts = np.flatnonzero(first)
    counts = np.diff(np.append(starts, len(faces)))
    return faces[starts[counts == 1]]


def is_connected(num_nodes: int, edges: np.ndarray) -> bool:
    """Whether the node graph has a single connected component."""
    if num_nodes <= 1:
        return True
    adj = node_adjacency(num_nodes, edges)
    ncomp, _ = connected_components(adj, directed=False)
    return int(ncomp) == 1


def nodes_of_elements(tets: np.ndarray, element_ids: np.ndarray) -> np.ndarray:
    """Sorted unique node indices touched by the given elements."""
    tets = np.asarray(tets, dtype=np.int64)
    return np.unique(tets[np.asarray(element_ids)].ravel())
