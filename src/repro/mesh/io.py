"""Mesh persistence.

Two formats:

* ``.npz`` — compact binary, used by the on-disk mesh cache.
* a portable text format modeled on the Spark98 mesh files the paper's
  postscript distributes: a header line with counts followed by node
  coordinates and element corner indices, whitespace separated.  Slow
  but human-readable and diff-able.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.mesh.core import TetMesh

PathLike = Union[str, os.PathLike]

_TEXT_MAGIC = "repro-tetmesh-v1"


def save_mesh(mesh: TetMesh, path: PathLike) -> None:
    """Write a mesh to a ``.npz`` file (created atomically)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as f:
        np.savez_compressed(f, points=mesh.points, tets=mesh.tets)
    os.replace(tmp, path)


def load_mesh(path: PathLike) -> TetMesh:
    """Read a mesh written by :func:`save_mesh`."""
    with np.load(Path(path)) as data:
        if "points" not in data or "tets" not in data:
            raise ValueError(f"{path} is not a repro mesh file")
        return TetMesh(data["points"], data["tets"])


def save_mesh_text(mesh: TetMesh, path: PathLike) -> None:
    """Write a mesh in the portable text format.

    Layout::

        repro-tetmesh-v1
        <num_nodes> <num_elements>
        x y z          (one line per node)
        a b c d        (one line per element, 0-based node indices)
    """
    path = Path(path)
    with open(path, "w") as f:
        f.write(f"{_TEXT_MAGIC}\n")
        f.write(f"{mesh.num_nodes} {mesh.num_elements}\n")
        for x, y, z in mesh.points:
            f.write(f"{float(x)!r} {float(y)!r} {float(z)!r}\n")
        for a, b, c, d in mesh.tets:
            f.write(f"{int(a)} {int(b)} {int(c)} {int(d)}\n")


def load_mesh_text(path: PathLike) -> TetMesh:
    """Read a mesh written by :func:`save_mesh_text`."""
    path = Path(path)
    with open(path) as f:
        magic = f.readline().strip()
        if magic != _TEXT_MAGIC:
            raise ValueError(f"{path}: bad magic {magic!r}")
        header = f.readline().split()
        if len(header) != 2:
            raise ValueError(f"{path}: bad header")
        num_nodes, num_elements = int(header[0]), int(header[1])
        points = np.empty((num_nodes, 3), dtype=np.float64)
        for i in range(num_nodes):
            parts = f.readline().split()
            if len(parts) != 3:
                raise ValueError(f"{path}: bad node line {i}")
            points[i] = [float(p) for p in parts]
        tets = np.empty((num_elements, 4), dtype=np.int64)
        for i in range(num_elements):
            parts = f.readline().split()
            if len(parts) != 4:
                raise ValueError(f"{path}: bad element line {i}")
            tets[i] = [int(p) for p in parts]
    return TetMesh(points, tets, copy=False)
