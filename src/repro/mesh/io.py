"""Mesh persistence.

Two formats:

* ``.npz`` — compact binary, used by the on-disk mesh cache.  Files
  carry a CRC-32 of their payload, and every way a cache file can be
  bad — truncated zip, missing arrays, bit rot, wrong shapes — is
  reported as a typed :class:`MeshIOError` so callers (the instance
  cache) can delete-and-rebuild instead of crashing on a raw
  ``zipfile``/``KeyError`` surprise.
* a portable text format modeled on the Spark98 mesh files the paper's
  postscript distributes: a header line with counts followed by node
  coordinates and element corner indices, whitespace separated.  Slow
  but human-readable and diff-able.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from repro.mesh.core import TetMesh
from repro.telemetry.registry import count

PathLike = Union[str, os.PathLike]

_TEXT_MAGIC = "repro-tetmesh-v1"


class MeshIOError(ValueError):
    """A mesh file is corrupt, truncated, stale, or not a mesh file.

    Subclasses ``ValueError`` so pre-existing callers that caught the
    loader's old untyped errors keep working; new callers (the instance
    cache) catch ``MeshIOError`` and delete-and-rebuild.
    """


def _payload_crc(points: np.ndarray, tets: np.ndarray) -> int:
    crc = zlib.crc32(np.ascontiguousarray(points, dtype=np.float64).tobytes())
    return zlib.crc32(
        np.ascontiguousarray(tets, dtype=np.int64).tobytes(), crc
    )


def save_mesh(mesh: TetMesh, path: PathLike) -> None:
    """Write a mesh to a ``.npz`` file (created atomically, with CRC)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as f:
        np.savez_compressed(
            f,
            points=mesh.points,
            tets=mesh.tets,
            crc=np.uint64(_payload_crc(mesh.points, mesh.tets)),
        )
    os.replace(tmp, path)
    count("repro_mesh_io_saves_total", format="npz")


def load_mesh(path: PathLike) -> TetMesh:
    """Read a mesh written by :func:`save_mesh`.

    Raises
    ------
    FileNotFoundError
        When the file simply is not there (not a corruption case).
    MeshIOError
        For every kind of bad file: truncated/corrupt zip containers,
        missing arrays, CRC mismatches, or shapes that are not a mesh.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "points" not in data or "tets" not in data:
                raise MeshIOError(f"{path} is not a repro mesh file")
            points = data["points"]
            tets = data["tets"]
            if "crc" in data and _payload_crc(points, tets) != int(data["crc"]):
                raise MeshIOError(f"{path} failed its CRC check (bit rot?)")
    except FileNotFoundError:
        raise
    except MeshIOError:
        count("repro_mesh_io_errors_total", format="npz")
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, EOFError, ...
        count("repro_mesh_io_errors_total", format="npz")
        raise MeshIOError(f"{path} is unreadable: {exc}") from exc
    try:
        mesh = TetMesh(points, tets)
    except (ValueError, IndexError) as exc:
        count("repro_mesh_io_errors_total", format="npz")
        raise MeshIOError(f"{path} holds invalid mesh arrays: {exc}") from exc
    count("repro_mesh_io_loads_total", format="npz")
    return mesh


def save_mesh_text(mesh: TetMesh, path: PathLike) -> None:
    """Write a mesh in the portable text format.

    Layout::

        repro-tetmesh-v1
        <num_nodes> <num_elements>
        x y z          (one line per node)
        a b c d        (one line per element, 0-based node indices)
    """
    path = Path(path)
    with open(path, "w") as f:
        f.write(f"{_TEXT_MAGIC}\n")
        f.write(f"{mesh.num_nodes} {mesh.num_elements}\n")
        for x, y, z in mesh.points:
            f.write(f"{float(x)!r} {float(y)!r} {float(z)!r}\n")
        for a, b, c, d in mesh.tets:
            f.write(f"{int(a)} {int(b)} {int(c)} {int(d)}\n")
    count("repro_mesh_io_saves_total", format="text")


def load_mesh_text(path: PathLike) -> TetMesh:
    """Read a mesh written by :func:`save_mesh_text`."""
    path = Path(path)
    with open(path) as f:
        magic = f.readline().strip()
        if magic != _TEXT_MAGIC:
            raise MeshIOError(f"{path}: bad magic {magic!r}")
        header = f.readline().split()
        if len(header) != 2:
            raise MeshIOError(f"{path}: bad header")
        try:
            num_nodes, num_elements = int(header[0]), int(header[1])
            points = np.empty((num_nodes, 3), dtype=np.float64)
            for i in range(num_nodes):
                parts = f.readline().split()
                if len(parts) != 3:
                    raise MeshIOError(f"{path}: bad node line {i}")
                points[i] = [float(p) for p in parts]
            tets = np.empty((num_elements, 4), dtype=np.int64)
            for i in range(num_elements):
                parts = f.readline().split()
                if len(parts) != 4:
                    raise MeshIOError(f"{path}: bad element line {i}")
                tets[i] = [int(p) for p in parts]
        except MeshIOError:
            count("repro_mesh_io_errors_total", format="text")
            raise
        except ValueError as exc:  # unparseable numbers = truncation/rot
            count("repro_mesh_io_errors_total", format="text")
            raise MeshIOError(f"{path}: {exc}") from exc
    count("repro_mesh_io_loads_total", format="text")
    return TetMesh(points, tets, copy=False)
