"""Element quality statistics.

Quality matters here for a specific reason: the paper's flop and
communication counts assume the mesh is a reasonable unstructured mesh
(bounded node degree, gradual size changes).  The quality report gives
tests something concrete to assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import (
    tet_longest_edges,
    tet_quality_radius_ratio,
    tet_shortest_edges,
    tet_volumes,
)
from repro.mesh.core import TetMesh


@dataclass(frozen=True)
class QualityReport:
    """Summary statistics over a mesh's elements and node graph."""

    num_nodes: int
    num_elements: int
    num_edges: int
    mean_degree: float
    max_degree: int
    min_quality: float
    mean_quality: float
    p05_quality: float
    min_volume: float
    total_volume: float
    max_edge_ratio: float  # longest/shortest edge, worst element

    def __str__(self) -> str:
        return (
            f"nodes={self.num_nodes} elements={self.num_elements} "
            f"edges={self.num_edges} degree(mean={self.mean_degree:.1f}, "
            f"max={self.max_degree}) quality(min={self.min_quality:.3f}, "
            f"mean={self.mean_quality:.3f}, p05={self.p05_quality:.3f}) "
            f"volume(total={self.total_volume:.3e})"
        )


def quality_report(mesh: TetMesh) -> QualityReport:
    """Compute a :class:`QualityReport` for a mesh."""
    q = tet_quality_radius_ratio(mesh.points, mesh.tets)
    vols = tet_volumes(mesh.points, mesh.tets)
    longest = tet_longest_edges(mesh.points, mesh.tets)
    shortest = tet_shortest_edges(mesh.points, mesh.tets)
    with np.errstate(divide="ignore", invalid="ignore"):
        edge_ratio = np.where(shortest > 0, longest / shortest, np.inf)
    degrees = mesh.node_degrees
    return QualityReport(
        num_nodes=mesh.num_nodes,
        num_elements=mesh.num_elements,
        num_edges=mesh.num_edges,
        mean_degree=float(degrees.mean()) if len(degrees) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
        min_quality=float(q.min()) if len(q) else 1.0,
        mean_quality=float(q.mean()) if len(q) else 1.0,
        p05_quality=float(np.percentile(q, 5)) if len(q) else 1.0,
        min_volume=float(vols.min()) if len(vols) else 0.0,
        total_volume=float(vols.sum()),
        max_edge_ratio=float(edge_ratio.max()) if len(q) else 1.0,
    )
