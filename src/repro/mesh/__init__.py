"""Unstructured tetrahedral meshes.

This subpackage provides the mesh data structure and the generation
pipeline that stands in for the paper's Archimedes/Pyramid mesher:

* :mod:`~repro.mesh.core` — :class:`TetMesh`, the central mesh type
  (node coordinates + tetrahedra), with cached topology.
* :mod:`~repro.mesh.topology` — edge extraction, adjacency graphs,
  surface faces, connectivity checks (all vectorized).
* :mod:`~repro.mesh.delaunay` — Delaunay tetrahedralization of graded
  point sets (scipy/Qhull) with orientation fixing and sliver filtering.
* :mod:`~repro.mesh.generator` — the full velocity-model -> sizing ->
  octree -> points -> Delaunay pipeline.
* :mod:`~repro.mesh.quality` — element quality statistics.
* :mod:`~repro.mesh.io` — binary (.npz) and portable text formats.
* :mod:`~repro.mesh.instances` — the named Quake-like problem instances
  (sf10e, sf5e, sf2e, sf1e) calibrated against the paper's Figure 2.
"""

from repro.mesh.core import TetMesh
from repro.mesh.delaunay import delaunay_tetrahedralize
from repro.mesh.generator import MeshBuildReport, generate_mesh
from repro.mesh.instances import (
    QuakeInstance,
    INSTANCES,
    get_instance,
    instance_names,
)
from repro.mesh.io import load_mesh, save_mesh, load_mesh_text, save_mesh_text
from repro.mesh.quality import QualityReport, quality_report
from repro.mesh.stuffing import jitter_mesh, stuff_octree

__all__ = [
    "TetMesh",
    "delaunay_tetrahedralize",
    "MeshBuildReport",
    "generate_mesh",
    "QuakeInstance",
    "INSTANCES",
    "get_instance",
    "instance_names",
    "load_mesh",
    "save_mesh",
    "load_mesh_text",
    "save_mesh_text",
    "QualityReport",
    "quality_report",
    "jitter_mesh",
    "stuff_octree",
]
