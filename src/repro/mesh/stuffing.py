"""Direct conforming tetrahedralization of a balanced octree.

Qhull's divide-and-conquer degrades badly on point sets with the
200:1 density contrast our wavelength grading produces (tens of seconds
for 25k points, unusable at the sf2/sf1 scales), so large meshes are
built by *stuffing* the balanced octree with tetrahedra directly — the
same family of technique the Quake project itself later adopted for its
octree-based meshers.

Scheme
------
Nodes are (a) every leaf-cell corner and (b) every leaf-cell center.
Each leaf is tetrahedralized by triangulating each of its six faces and
coning the triangles to the cell center.  Conformity between neighboring
leaves reduces to both sides triangulating the shared face identically,
which is guaranteed by making the face triangulation a function of the
face alone:

* Each face knows which of its nine lattice positions (4 corners, 4 edge
  midpoints, 1 center) exist as mesh nodes.  Midpoints/centers appear
  exactly where finer neighbors contribute their corners (the 2:1
  balance, enforced over faces *and* edges *and* vertices, means no
  other hanging positions can occur).
* If the face center exists, fan around it.
* Else if any edge midpoint exists, fan around the first present
  midpoint in canonical order (skipping collinear triangles).
* Else split along the diagonal through the face's unique corner with
  odd coordinates in units of the face size.  The odd-odd rule is what
  makes coarse-against-fine faces agree: the center of a coarse face is
  always the odd-odd corner of each quarter face, so the coarse fan and
  the fine cells' diagonals coincide.

A deterministic post-jitter moves nodes off the lattice (making the mesh
statistics behave like a genuinely unstructured mesh) while provably
keeping every element positively oriented: jitter that inverts an
element is withdrawn node by node.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.geometry import tet_signed_volumes
from repro.mesh.core import TetMesh
from repro.octree.linear import LinearOctree

# ---------------------------------------------------------------------------
# Face lattice positions, in (u, v) units of half the face size (H = S/2):
#   0..3 corners, 4..7 edge midpoints (bottom, right, top, left), 8 center.
_POS_UV = np.array(
    [
        (0, 0),  # 0 corner (0,0)
        (2, 0),  # 1 corner (S,0)
        (2, 2),  # 2 corner (S,S)
        (0, 2),  # 3 corner (0,S)
        (1, 0),  # 4 midpoint bottom
        (2, 1),  # 5 midpoint right
        (1, 2),  # 6 midpoint top
        (0, 1),  # 7 midpoint left
        (1, 1),  # 8 center
    ],
    dtype=np.int64,
)

#: Boundary cycle of the face (counter-clockwise in (u, v)).
_CYCLE = (0, 4, 1, 5, 2, 6, 3, 7)


def _collinear(a: int, b: int, c: int) -> bool:
    """Whether three lattice positions lie on one line (degenerate tri)."""
    pa, pb, pc = _POS_UV[a], _POS_UV[b], _POS_UV[c]
    return (pb[0] - pa[0]) * (pc[1] - pa[1]) == (pb[1] - pa[1]) * (pc[0] - pa[0])


def _face_template(pattern: int, anti_diagonal: bool) -> Tuple[Tuple[int, int, int], ...]:
    """Triangulation of a face, as triples of lattice-position labels.

    ``pattern`` is a 5-bit mask over (m_bottom, m_right, m_top, m_left,
    center) presence; ``anti_diagonal`` selects the diagonal when
    ``pattern == 0`` (ignored otherwise).
    """
    present_mid = [p for bit, p in enumerate((4, 5, 6, 7)) if pattern & (1 << bit)]
    has_center = bool(pattern & (1 << 4))
    boundary = [p for p in _CYCLE if p < 4 or p in present_mid]
    if has_center:
        pivot = 8
        ring = boundary
    elif present_mid:
        pivot = present_mid[0]
        k = boundary.index(pivot)
        ring = boundary[k:] + boundary[:k]
        ring = ring[1:]  # fan over the others, cyclically from the pivot
        tris = []
        for a, b in zip(ring, ring[1:]):
            if not _collinear(pivot, a, b):
                tris.append((pivot, a, b))
        return tuple(tris)
    else:
        if anti_diagonal:
            return ((1, 2, 3), (1, 3, 0))
        return ((0, 1, 2), (0, 2, 3))
    tris = []
    n = len(ring)
    for i in range(n):
        a, b = ring[i], ring[(i + 1) % n]
        if not _collinear(pivot, a, b):
            tris.append((pivot, a, b))
    return tuple(tris)


def _build_templates() -> Dict[Tuple[int, bool], np.ndarray]:
    templates = {}
    for pattern in range(32):
        for anti in (False, True):
            tris = _face_template(pattern, anti)
            templates[(pattern, anti)] = np.array(tris, dtype=np.int64)
    return templates


_TEMPLATES = _build_templates()

#: For each axis, the two in-face axes (u, v), chosen canonically.
_FACE_AXES = {0: (1, 2), 1: (0, 2), 2: (0, 1)}


def _encode(coords: np.ndarray) -> np.ndarray:
    c = np.asarray(coords, dtype=np.int64)
    return (c[:, 0] << 42) | (c[:, 1] << 21) | c[:, 2]


def stuff_octree(tree: LinearOctree) -> Tuple[TetMesh, np.ndarray]:
    """Tetrahedralize a 2:1-balanced octree.

    Returns ``(mesh, spacing)`` where ``spacing[i]`` is the local element
    scale at node ``i`` (edge of the smallest leaf the node touches),
    used by the jitter stage.

    Raises ``ValueError`` if the tree is not balanced (conformity of the
    face templates relies on the 2:1 invariant).
    """
    if not tree.levels:
        raise ValueError("empty octree")
    deepest = tree.max_level
    scale_bits = deepest + 1  # lattice resolves cell centers of deepest leaves

    # ---- gather node lattice coordinates -------------------------------
    corner_keys: List[np.ndarray] = []
    corner_sizes: List[np.ndarray] = []
    center_keys: List[np.ndarray] = []
    center_sizes: List[np.ndarray] = []
    child_offsets = np.array(
        [((c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1) for c in range(8)],
        dtype=np.int64,
    )
    for level, coords in tree.iter_leaves():
        shift = scale_bits - level
        base = coords << shift
        half = 1 << (shift - 1)
        corners = (base[:, None, :] + (child_offsets << shift)[None, :, :]).reshape(-1, 3)
        corner_keys.append(_encode(corners))
        corner_sizes.append(np.full(len(corners), tree.cell_size(level)))
        center_keys.append(_encode(base + half))
        center_sizes.append(np.full(len(coords), tree.cell_size(level)))

    ckeys = np.concatenate(corner_keys)
    csizes = np.concatenate(corner_sizes)
    order = np.argsort(ckeys, kind="stable")
    ckeys, csizes = ckeys[order], csizes[order]
    uniq_ckeys, start = np.unique(ckeys, return_index=True)
    uniq_csizes = np.minimum.reduceat(csizes, start)

    zkeys = np.concatenate(center_keys)
    zsizes = np.concatenate(center_sizes)
    # Centers are unique by construction and disjoint from corners.
    node_keys = np.concatenate([uniq_ckeys, zkeys])
    node_sizes = np.concatenate([uniq_csizes, zsizes])
    sorter = np.argsort(node_keys, kind="stable")
    node_keys = node_keys[sorter]
    node_sizes = node_sizes[sorter]
    if np.any(node_keys[1:] == node_keys[:-1]):
        raise ValueError("octree produced coincident corner/center nodes")

    # Only *corner* keys can appear on faces; membership tests use them.
    corner_key_sorted = uniq_ckeys

    # ---- per-leaf faces --------------------------------------------------
    tet_chunks: List[np.ndarray] = []
    for level, coords in tree.iter_leaves():
        shift = scale_bits - level
        size = np.int64(1) << shift  # face size S in lattice units
        half = size >> 1
        base = coords.astype(np.int64) << shift
        n = len(coords)
        center_key = _encode(base + half)
        center_idx = np.searchsorted(node_keys, center_key)

        for axis in range(3):
            u_ax, v_ax = _FACE_AXES[axis]
            for side in (0, 1):
                origin = base.copy()
                if side:
                    origin[:, axis] += size
                # Lattice coordinates of the 9 positions on this face.
                pos = np.zeros((n, 9, 3), dtype=np.int64)
                pos[:] = origin[:, None, :]
                pos[:, :, u_ax] += _POS_UV[:, 0] * half
                pos[:, :, v_ax] += _POS_UV[:, 1] * half
                keys9 = _encode(pos.reshape(-1, 3)).reshape(n, 9)
                # Presence of the 5 optional positions among corner nodes.
                opt = keys9[:, 4:9]
                loc = np.searchsorted(corner_key_sorted, opt)
                loc = np.minimum(loc, len(corner_key_sorted) - 1)
                present = corner_key_sorted[loc] == opt
                bits = present.astype(np.int64)
                pattern = (
                    bits[:, 0]
                    | (bits[:, 1] << 1)
                    | (bits[:, 2] << 2)
                    | (bits[:, 3] << 3)
                    | (bits[:, 4] << 4)
                )
                # Diagonal parity: odd-odd corner rule in face-size units.
                iu = origin[:, u_ax] >> shift
                iv = origin[:, v_ax] >> shift
                anti = ((iu ^ iv) & 1).astype(bool)  # mixed parity -> anti

                group = pattern * 2 + anti
                for g in np.unique(group):
                    sel = group == g
                    tpl = _TEMPLATES[(int(g) // 2, bool(g % 2))]
                    if len(tpl) == 0:
                        continue
                    face_keys = keys9[sel][:, tpl.ravel()].reshape(-1, 3)
                    tri_idx = np.searchsorted(node_keys, face_keys)
                    k = tri_idx.shape[0]
                    cent = np.repeat(center_idx[sel], len(tpl))
                    tets = np.column_stack([cent, tri_idx])
                    tet_chunks.append(tets)

    tets = np.vstack(tet_chunks)

    # ---- physical coordinates & orientation ------------------------------
    unit = tree.base_size / (1 << scale_bits)
    lattice = np.empty((len(node_keys), 3), dtype=np.float64)
    lattice[:, 0] = node_keys >> 42
    lattice[:, 1] = (node_keys >> 21) & ((1 << 21) - 1)
    lattice[:, 2] = node_keys & ((1 << 21) - 1)
    points = np.asarray(tree.domain.lo) + lattice * unit

    vols = tet_signed_volumes(points, tets)
    neg = vols < 0
    if np.any(neg):
        tets[neg] = tets[neg][:, [0, 1, 3, 2]]
    if np.any(vols == 0):
        raise AssertionError("stuffing produced a degenerate element")

    mesh = TetMesh(points, tets, copy=False)
    return mesh, node_sizes


def jitter_mesh(
    mesh: TetMesh,
    spacing: np.ndarray,
    amplitude: float = 0.15,
    seed: int = 0,
    max_rounds: int = 10,
) -> TetMesh:
    """Perturb node positions without inverting any element.

    Nodes move by a deterministic uniform jitter of half-range
    ``amplitude * spacing`` per axis; components normal to a domain
    boundary plane the node lies on are frozen so the mesh keeps filling
    the exact box.  After jittering, any element with non-positive volume
    causes its nodes' jitter to be withdrawn; this repeats (monotonically
    shrinking the set of moved nodes) until all elements are positive.
    """
    if amplitude == 0.0:
        return mesh
    if not 0.0 < amplitude < 0.5:
        raise ValueError("amplitude must be in (0, 0.5)")
    pts0 = mesh.points
    spc = np.asarray(spacing, dtype=float)
    if spc.shape != (mesh.num_nodes,):
        raise ValueError("spacing must have one entry per node")
    rng = np.random.default_rng(seed)
    delta = rng.uniform(-1.0, 1.0, size=pts0.shape) * (amplitude * spc)[:, None]
    lo = pts0.min(axis=0)
    hi = pts0.max(axis=0)
    tol = 1e-9 * float(max(hi - lo))
    frozen = (np.abs(pts0 - lo) <= tol) | (np.abs(pts0 - hi) <= tol)
    delta[frozen] = 0.0

    active = np.ones(mesh.num_nodes, dtype=bool)
    for _ in range(max_rounds):
        pts = pts0 + delta * active[:, None]
        vols = tet_signed_volumes(pts, mesh.tets)
        bad = vols <= 0
        if not np.any(bad):
            return TetMesh(pts, mesh.tets, copy=False)
        bad_nodes = np.unique(mesh.tets[bad].ravel())
        if not np.any(active[bad_nodes]):
            raise AssertionError(
                "inverted elements persist with jitter fully withdrawn"
            )
        active[bad_nodes] = False
    pts = pts0 + delta * active[:, None]
    vols = tet_signed_volumes(pts, mesh.tets)
    if np.any(vols <= 0):
        return mesh
    return TetMesh(pts, mesh.tets, copy=False)
