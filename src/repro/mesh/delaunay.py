"""Delaunay tetrahedralization of graded point sets.

The paper's meshes came from Shewchuk's Delaunay refinement mesher; we
use scipy's Qhull binding for the Delaunay step over point sets whose
grading was already enforced by the octree.  Because our domain is a
convex box and the point set includes its boundary, the Delaunay
tetrahedra exactly tile the domain.

Two cleanups are applied to raw Qhull output:

* elements are reoriented to positive signed volume (Qhull's simplex
  orientation is arbitrary);
* near-degenerate slivers on the hull (volume below a relative epsilon)
  are dropped — with jittered input these are floating-point artifacts,
  not real elements.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.geometry import tet_signed_volumes
from repro.mesh.core import TetMesh


def delaunay_tetrahedralize(
    points: np.ndarray,
    min_relative_volume: float = 1e-12,
) -> TetMesh:
    """Tetrahedralize a 3D point set.

    Parameters
    ----------
    points:
        ``(n, 3)`` coordinates.  Must contain at least 4 affinely
        independent points.
    min_relative_volume:
        Elements with volume below ``min_relative_volume * median_volume``
        are discarded as numerically degenerate.

    Returns
    -------
    TetMesh
        Positively oriented mesh over (a compacted copy of) the input
        points.  Point order is preserved for points that are used.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError("points must have shape (n, 3)")
    if pts.shape[0] < 4:
        raise ValueError("need at least 4 points to tetrahedralize")
    tri = Delaunay(pts, qhull_options="Qbb Qc Qz Q12")
    tets = tri.simplices.astype(np.int64)
    vols = tet_signed_volumes(pts, tets)
    # Fix orientation: swap two corners of negatively oriented elements.
    neg = vols < 0
    if np.any(neg):
        tets[neg] = tets[neg][:, [0, 1, 3, 2]]
        vols = np.abs(vols)
    # Drop degenerate slivers (relative to the typical element).
    if len(vols):
        cutoff = min_relative_volume * float(np.median(vols))
        keep = vols > cutoff
        tets = tets[keep]
    mesh = TetMesh(pts, tets, copy=False)
    if len(mesh.unused_nodes()):
        mesh = mesh.compacted()
    return mesh
