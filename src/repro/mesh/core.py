"""The tetrahedral mesh data structure.

A :class:`TetMesh` is the representation every other subsystem consumes:
the mesher produces one, the FEM assembles stiffness matrices over one,
the partitioners split one, and the SMVP statistics are all functions of
one plus a partition.  It is intentionally a thin, immutable-by-convention
container: ``points`` (n, 3) and ``tets`` (m, 4), with topology (edges,
degrees, adjacency) computed lazily and cached.

Terminology follows the paper: mesh vertices are *nodes* and tetrahedra
are *elements* (the paper reserves "PE" for processors to avoid clashing
with mesh nodes; we do the same).
"""

from __future__ import annotations

from functools import cached_property
from typing import Optional

import numpy as np

from repro.geometry import AABB, tet_signed_volumes, tet_volumes
from repro.mesh import topology


class TetMesh:
    """An unstructured tetrahedral mesh.

    Parameters
    ----------
    points:
        ``(num_nodes, 3)`` float array of node coordinates (meters).
    tets:
        ``(num_elements, 4)`` integer array; each row lists the four node
        indices of one element.
    copy:
        Whether to copy the input arrays (default) or adopt them.

    Notes
    -----
    The arrays should not be mutated after construction: topology is
    cached on first use.  All constructors in this project produce
    positively oriented elements (positive signed volume); ``validate``
    checks this along with index sanity.
    """

    def __init__(
        self, points: np.ndarray, tets: np.ndarray, copy: bool = True
    ) -> None:
        points = np.array(points, dtype=np.float64, copy=copy)
        tets = np.array(tets, dtype=np.int64, copy=copy)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (num_nodes, 3)")
        if tets.ndim != 2 or tets.shape[1] != 4:
            raise ValueError("tets must have shape (num_elements, 4)")
        self.points = points
        self.tets = tets

    # -- sizes ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of mesh nodes (the paper's n; vectors have length 3n)."""
        return self.points.shape[0]

    @property
    def num_elements(self) -> int:
        """Number of tetrahedral elements."""
        return self.tets.shape[0]

    @cached_property
    def num_edges(self) -> int:
        """Number of unique undirected node-to-node edges."""
        return self.edges.shape[0]

    def __repr__(self) -> str:
        return (
            f"TetMesh(nodes={self.num_nodes}, elements={self.num_elements}, "
            f"edges={self.num_edges})"
        )

    # -- topology (cached) --------------------------------------------------

    @cached_property
    def edges(self) -> np.ndarray:
        """Unique undirected edges as an (num_edges, 2) array, i < j, sorted."""
        return topology.unique_edges(self.tets)

    @cached_property
    def node_degrees(self) -> np.ndarray:
        """Number of distinct neighbors of each node (excluding itself)."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg

    @cached_property
    def bbox(self) -> AABB:
        """Bounding box of the node coordinates."""
        return AABB.from_points(self.points)

    @cached_property
    def element_centroids(self) -> np.ndarray:
        """Centroid of each element, shape (num_elements, 3)."""
        return self.points[self.tets].mean(axis=1)

    def node_adjacency(self):
        """Symmetric sparse (CSR) node adjacency matrix (no self loops)."""
        return topology.node_adjacency(self.num_nodes, self.edges)

    def element_adjacency(self):
        """Sparse element-to-element adjacency (sharing a face)."""
        return topology.element_adjacency(self.tets)

    def surface_faces(self) -> np.ndarray:
        """Boundary triangles: faces belonging to exactly one element."""
        return topology.surface_faces(self.tets)

    def volumes(self) -> np.ndarray:
        """Element volumes."""
        return tet_volumes(self.points, self.tets)

    def total_volume(self) -> float:
        """Sum of element volumes (equals the domain volume for a
        conforming mesh of a convex domain)."""
        return float(self.volumes().sum())

    # -- integrity -----------------------------------------------------------

    def validate(self, require_positive: bool = True) -> None:
        """Raise ``ValueError`` if the mesh is structurally broken.

        Checks index bounds, duplicate corners within an element, and
        (by default) positive orientation of every element.
        """
        if self.num_elements:
            if self.tets.min() < 0 or self.tets.max() >= self.num_nodes:
                raise ValueError("element refers to an out-of-range node")
            sorted_corners = np.sort(self.tets, axis=1)
            if np.any(sorted_corners[:, :-1] == sorted_corners[:, 1:]):
                raise ValueError("element with repeated node")
            if require_positive:
                vols = tet_signed_volumes(self.points, self.tets)
                if np.any(vols <= 0):
                    bad = int(np.sum(vols <= 0))
                    raise ValueError(
                        f"{bad} elements are degenerate or inverted"
                    )
        if not np.all(np.isfinite(self.points)):
            raise ValueError("non-finite node coordinate")

    def is_connected(self) -> bool:
        """True when the node graph forms a single connected component."""
        return topology.is_connected(self.num_nodes, self.edges)

    def unused_nodes(self) -> np.ndarray:
        """Indices of nodes not referenced by any element."""
        used = np.zeros(self.num_nodes, dtype=bool)
        used[self.tets.ravel()] = True
        return np.flatnonzero(~used)

    # -- derived meshes -------------------------------------------------------

    def compacted(self) -> "TetMesh":
        """Copy of the mesh with unused nodes dropped and indices remapped."""
        used = np.zeros(self.num_nodes, dtype=bool)
        used[self.tets.ravel()] = True
        remap = np.cumsum(used) - 1
        return TetMesh(self.points[used], remap[self.tets], copy=False)

    def subset(self, element_mask: np.ndarray) -> "TetMesh":
        """Mesh restricted to the selected elements (nodes compacted).

        ``element_mask`` may be a boolean mask or an index array over
        elements.  This is how subdomain meshes are carved out of the
        global mesh.
        """
        sub = TetMesh(self.points, self.tets[element_mask], copy=False)
        return sub.compacted()
