"""Element matrices for linear (4-node) tetrahedra.

For a linear tet, the shape function gradients are constant, so the
12x12 element stiffness has the closed form (isotropic elasticity)

``K[a*3+i, b*3+j] = V * (lam * g_a[i] g_b[j] + mu * g_a[j] g_b[i]
                          + mu * (g_a . g_b) * delta_ij)``

with ``g_a`` the gradient of shape function ``a`` and ``V`` the element
volume.  Everything here is vectorized over elements with einsum, which
is what makes assembling million-element stiffness matrices feasible.
"""

from __future__ import annotations

import numpy as np

from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh


def shape_gradients(mesh: TetMesh, element_ids=None):
    """Constant shape-function gradients and volumes per element.

    Returns ``(grads, volumes)`` with ``grads`` of shape (m, 4, 3):
    ``grads[e, a]`` is the gradient of shape function ``a`` on element
    ``e``.  Raises on degenerate elements.
    """
    tets = mesh.tets if element_ids is None else mesh.tets[element_ids]
    p = mesh.points[tets]  # (m, 4, 3)
    # Edge matrix rows: p1-p0, p2-p0, p3-p0.
    edge = p[:, 1:4, :] - p[:, 0:1, :]  # (m, 3, 3)
    det = np.linalg.det(edge)
    if np.any(np.abs(det) < 1e-30):
        raise ValueError("degenerate element encountered")
    inv = np.linalg.inv(edge)  # (m, 3, 3); columns are grad(lambda_{1..3})
    grads = np.empty((len(tets), 4, 3))
    grads[:, 1:4, :] = np.transpose(inv, (0, 2, 1))
    grads[:, 0, :] = -grads[:, 1:4, :].sum(axis=1)
    volumes = np.abs(det) / 6.0
    return grads, volumes


def element_stiffness(
    mesh: TetMesh,
    materials: ElementMaterials,
    element_ids=None,
) -> np.ndarray:
    """Dense 12x12 stiffness matrices, shape (m, 12, 12).

    ``element_ids`` restricts to a subset (used for chunked assembly
    and for per-subdomain assembly); materials are indexed by the same
    subset.
    """
    grads, volumes = shape_gradients(mesh, element_ids)
    if element_ids is None:
        lam, mu = materials.lam, materials.mu
    else:
        lam, mu = materials.lam[element_ids], materials.mu[element_ids]
    m = grads.shape[0]
    if materials.num_elements != mesh.num_elements and element_ids is not None:
        raise ValueError("materials must cover the full mesh")
    # K_block[e, a, b, i, j] per the closed form, then reshaped to 12x12.
    gg = np.einsum("eai,ebj->eabij", grads, grads)  # lam term: g_a[i] g_b[j]
    dots = np.einsum("eai,ebi->eab", grads, grads)
    eye = np.eye(3)
    blocks = (
        lam[:, None, None, None, None] * gg
        + mu[:, None, None, None, None] * np.transpose(gg, (0, 1, 2, 4, 3))
        + mu[:, None, None, None, None] * dots[..., None, None] * eye
    )
    blocks *= volumes[:, None, None, None, None]
    # (e, a, b, i, j) -> (e, a, i, b, j) -> (e, 12, 12)
    k = np.transpose(blocks, (0, 1, 3, 2, 4)).reshape(m, 12, 12)
    return k


def element_lumped_mass(
    mesh: TetMesh,
    materials: ElementMaterials,
    element_ids=None,
) -> np.ndarray:
    """Lumped nodal masses per element, shape (m, 4).

    Each corner receives a quarter of the element mass ``rho * V``.
    """
    tets = mesh.tets if element_ids is None else mesh.tets[element_ids]
    p = mesh.points[tets]
    edge = p[:, 1:4, :] - p[:, 0:1, :]
    volumes = np.abs(np.linalg.det(edge)) / 6.0
    rho = materials.rho if element_ids is None else materials.rho[element_ids]
    return np.repeat((rho * volumes / 4.0)[:, None], 4, axis=1)
