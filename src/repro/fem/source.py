"""Seismic sources.

A strong-motion simulation needs something to shake the ground; we use
the standard Ricker wavelet (second derivative of a Gaussian) applied
as a body force at the mesh node nearest a hypocenter, which is the
simplest physically reasonable stand-in for the double-couple sources
the real Quake code used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.core import TetMesh


@dataclass(frozen=True)
class RickerWavelet:
    """Ricker (Mexican hat) source-time function.

    ``w(t) = (1 - 2 a) * exp(-a)`` with ``a = (pi f0 (t - t0))^2``.

    Parameters
    ----------
    frequency:
        Peak frequency f0 (Hz).
    delay:
        Time shift t0 (s); defaults to ``1.5 / f0`` so the wavelet
        starts near zero amplitude.
    amplitude:
        Peak force scale (N).
    """

    frequency: float
    delay: float = -1.0
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.delay < 0:
            object.__setattr__(self, "delay", 1.5 / self.frequency)

    def __call__(self, t) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        a = (np.pi * self.frequency * (t - self.delay)) ** 2
        return self.amplitude * (1.0 - 2.0 * a) * np.exp(-a)


@dataclass(frozen=True)
class PointSource:
    """A body force at a single mesh node.

    Parameters
    ----------
    node:
        Global node index the force acts on.
    direction:
        Unit force direction (3,).
    wavelet:
        Source-time function.
    """

    node: int
    direction: np.ndarray
    wavelet: RickerWavelet

    def __post_init__(self) -> None:
        d = np.asarray(self.direction, dtype=float)
        norm = np.linalg.norm(d)
        if norm == 0:
            raise ValueError("direction must be nonzero")
        object.__setattr__(self, "direction", d / norm)

    @classmethod
    def at_point(
        cls,
        mesh: TetMesh,
        location,
        wavelet: RickerWavelet,
        direction=(0.0, 0.0, 1.0),
    ) -> "PointSource":
        """Source at the mesh node nearest a physical location."""
        loc = np.asarray(location, dtype=float)
        node = int(np.argmin(np.einsum("ij,ij->i", mesh.points - loc, mesh.points - loc)))
        return cls(node=node, direction=np.asarray(direction), wavelet=wavelet)

    def force(self, t: float, num_nodes: int) -> np.ndarray:
        """Global force vector (3 * num_nodes,) at time ``t``."""
        f = np.zeros(3 * num_nodes)
        f[3 * self.node : 3 * self.node + 3] = self.direction * float(
            self.wavelet(t)
        )
        return f
