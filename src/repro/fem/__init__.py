"""Finite element machinery for the Quake-style simulations.

Linear (4-node) tetrahedral elements with isotropic linear elasticity,
exactly the discretization behind the paper's stiffness matrices: K is
``3n x 3n`` with a 3x3 block for every node pair connected by a mesh
edge (plus diagonal blocks), each node carrying x/y/z displacement
degrees of freedom.

* :mod:`~repro.fem.material` — isotropic elastic materials, sampled per
  element from a :class:`~repro.velocity.BasinModel`.
* :mod:`~repro.fem.element` — vectorized 12x12 element stiffness and
  lumped mass matrices.
* :mod:`~repro.fem.assembly` — chunked sparse assembly into BSR/CSR.
* :mod:`~repro.fem.source` — Ricker-wavelet point sources.
* :mod:`~repro.fem.timestepper` — the explicit central-difference
  integrator (the paper's "explicit time-stepping method" that makes
  the SMVP the only communicating operation).
* :mod:`~repro.fem.memory` — the runtime memory model behind the
  paper's "1.2 KByte per node" rule.
"""

from repro.fem.material import ElementMaterials, materials_from_model
from repro.fem.element import element_stiffness, element_lumped_mass
from repro.fem.assembly import (
    assemble_stiffness,
    assemble_lumped_mass,
    assemble_subdomain_stiffness,
)
from repro.fem.boundary import SpongeLayer
from repro.fem.source import RickerWavelet, PointSource
from repro.fem.timestepper import ExplicitTimeStepper, stable_timestep
from repro.fem.memory import MemoryModel, memory_model

__all__ = [
    "ElementMaterials",
    "materials_from_model",
    "element_stiffness",
    "element_lumped_mass",
    "assemble_stiffness",
    "assemble_lumped_mass",
    "assemble_subdomain_stiffness",
    "SpongeLayer",
    "RickerWavelet",
    "PointSource",
    "ExplicitTimeStepper",
    "stable_timestep",
    "MemoryModel",
    "memory_model",
]
