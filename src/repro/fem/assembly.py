"""Sparse assembly of global and subdomain matrices.

The global stiffness K is ``3n x 3n`` and extremely sparse (~42
nonzeros per row on the Quake meshes, paper Section 2.2).  Assembly
proceeds in element chunks to bound peak memory: each chunk's dense
12x12 element matrices scatter into COO triplets, partial CSR matrices
are summed, and the result is optionally converted to 3x3 BSR (the
natural block storage for the vector-valued problem).

``assemble_subdomain_stiffness`` assembles the *local* matrix of one
PE — contributions from that PE's elements only, over that PE's local
node numbering.  Shared blocks therefore hold partial values, and the
exchange-and-sum phase of the distributed SMVP completes them; that is
exactly the storage scheme of the paper's Figure 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.fem.element import element_lumped_mass, element_stiffness
from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh
from repro.telemetry.registry import get_registry, stage_span

#: Elements per assembly chunk (144 COO entries each).
DEFAULT_CHUNK = 100_000


def _scatter_chunk(
    k_dense: np.ndarray, tets_chunk: np.ndarray, num_nodes: int
) -> sp.csr_matrix:
    """Scatter (m, 12, 12) element matrices into a 3n x 3n CSR matrix."""
    m = k_dense.shape[0]
    dof = (3 * tets_chunk[:, :, None] + np.arange(3)[None, None, :]).reshape(m, 12)
    rows = np.repeat(dof, 12, axis=1).ravel()
    cols = np.tile(dof, (1, 12)).ravel()
    coo = sp.coo_matrix(
        (k_dense.ravel(), (rows, cols)), shape=(3 * num_nodes, 3 * num_nodes)
    )
    return coo.tocsr()


def assemble_stiffness(
    mesh: TetMesh,
    materials: ElementMaterials,
    fmt: str = "csr",
    chunk_size: int = DEFAULT_CHUNK,
) -> sp.spmatrix:
    """Assemble the global stiffness matrix.

    Parameters
    ----------
    mesh, materials:
        Geometry and per-element properties (must cover the full mesh).
    fmt:
        ``"csr"`` or ``"bsr"`` (3x3 blocks).
    chunk_size:
        Elements per scatter chunk.
    """
    if materials.num_elements != mesh.num_elements:
        raise ValueError("materials must cover the full mesh")
    if fmt not in ("csr", "bsr"):
        raise ValueError("fmt must be 'csr' or 'bsr'")
    n = mesh.num_nodes
    total: Optional[sp.csr_matrix] = None
    with stage_span("fem.assemble", track="fem"):
        for start in range(0, mesh.num_elements, chunk_size):
            ids = np.arange(start, min(start + chunk_size, mesh.num_elements))
            k_dense = element_stiffness(mesh, materials, ids)
            part = _scatter_chunk(k_dense, mesh.tets[ids], n)
            total = part if total is None else total + part
        if total is None:
            total = sp.csr_matrix((3 * n, 3 * n))
        total.sum_duplicates()
    _record_assembly(total, scope="global")
    if fmt == "bsr":
        return sp.bsr_matrix(total, blocksize=(3, 3))
    return total


def _record_assembly(matrix: sp.spmatrix, scope: str) -> None:
    """Fold one finished assembly into the installed registry, if any."""
    reg = get_registry()
    if reg is not None:
        reg.counter(
            "repro_fem_assemblies_total", "stiffness assemblies"
        ).inc(scope=scope)
        reg.counter(
            "repro_fem_assembled_nnz_total",
            "nonzeros across assembled stiffness matrices",
        ).inc(int(matrix.nnz), scope=scope)


def assemble_lumped_mass(
    mesh: TetMesh, materials: ElementMaterials
) -> np.ndarray:
    """Lumped mass vector of length 3n (equal mass per dof of a node)."""
    if materials.num_elements != mesh.num_elements:
        raise ValueError("materials must cover the full mesh")
    node_mass = np.zeros(mesh.num_nodes)
    masses = element_lumped_mass(mesh, materials)
    np.add.at(node_mass, mesh.tets.ravel(), masses.ravel())
    return np.repeat(node_mass, 3)


def assemble_subdomain_stiffness(
    mesh: TetMesh,
    materials: ElementMaterials,
    element_ids: np.ndarray,
    local_nodes: np.ndarray,
    fmt: str = "csr",
    chunk_size: int = DEFAULT_CHUNK,
) -> sp.spmatrix:
    """Assemble one PE's local stiffness matrix.

    Parameters
    ----------
    element_ids:
        Global element indices owned by the PE.
    local_nodes:
        Sorted global node indices resident on the PE (from
        :meth:`repro.smvp.DataDistribution.local_nodes`); the result is
        ``3 * len(local_nodes)`` square, in local node numbering.
    """
    if materials.num_elements != mesh.num_elements:
        raise ValueError("materials must cover the full mesh")
    element_ids = np.asarray(element_ids, dtype=np.int64)
    local_nodes = np.asarray(local_nodes, dtype=np.int64)
    n_local = len(local_nodes)
    # Remap global -> local node indices for the owned elements.
    local_tets = np.searchsorted(local_nodes, mesh.tets[element_ids])
    if np.any(local_tets >= n_local) or np.any(
        local_nodes[np.minimum(local_tets, n_local - 1)]
        != mesh.tets[element_ids]
    ):
        raise ValueError("element touches a node not in local_nodes")
    total: Optional[sp.csr_matrix] = None
    with stage_span("fem.assemble_subdomain", track="fem"):
        for start in range(0, len(element_ids), chunk_size):
            sel = np.arange(start, min(start + chunk_size, len(element_ids)))
            k_dense = element_stiffness(mesh, materials, element_ids[sel])
            part = _scatter_chunk(k_dense, local_tets[sel], n_local)
            total = part if total is None else total + part
        if total is None:
            total = sp.csr_matrix((3 * n_local, 3 * n_local))
        total.sum_duplicates()
    _record_assembly(total, scope="subdomain")
    if fmt == "bsr":
        return sp.bsr_matrix(total, blocksize=(3, 3))
    return total
