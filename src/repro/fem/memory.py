"""Runtime memory model.

The paper (Section 2.1): "for each node in the mesh, a simulation uses
about 1.2 KByte of memory at runtime to accommodate the storage of
several vectors and sparse matrices.  For example, sf2 requires about
450 MBytes of memory at runtime."  This module derives that number from
first principles for any mesh, so the §1 EXFLOW comparison ("about 2
MBytes of data on each PE") and the §2.1 claim can both be checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import paperdata

#: Bytes per 64-bit float and per 32-bit index.
_FLOAT = 8
_INDEX = 4

#: Runtime displacement/velocity/force-style vectors of length 3n kept
#: live by the explicit solver (u, u_prev, u_next, f, M, M^-1, plus two
#: scratch vectors — matching our ExplicitTimeStepper working set).
VECTORS_PER_NODE = 8


@dataclass(frozen=True)
class MemoryModel:
    """Estimated runtime memory for one mesh (or subdomain)."""

    num_nodes: int
    num_edges: int
    matrix_bytes: int
    vector_bytes: int
    mesh_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.matrix_bytes + self.vector_bytes + self.mesh_bytes

    @property
    def bytes_per_node(self) -> float:
        """Comparable to the paper's 1.2 KByte/node rule."""
        return self.total_bytes / self.num_nodes if self.num_nodes else 0.0

    @property
    def mbytes(self) -> float:
        return self.total_bytes / 2**20


def memory_model(
    num_nodes: int,
    num_edges: int,
    num_elements: int = 0,
    vectors: int = VECTORS_PER_NODE,
) -> MemoryModel:
    """Estimate runtime memory from structural mesh counts.

    The stiffness matrix is costed in 3x3 block-sparse-row form: one
    dense 3x3 block (72 bytes) plus a 4-byte column index per stored
    block, with ``num_nodes + 2 * num_edges`` blocks, plus row pointers.
    Vectors are ``vectors`` arrays of 3 doubles per node.  Mesh
    connectivity (4 indices per element plus coordinates) is included
    because the real applications keep it live for output.
    """
    if num_nodes < 0 or num_edges < 0 or num_elements < 0:
        raise ValueError("counts must be non-negative")
    blocks = num_nodes + 2 * num_edges
    matrix_bytes = blocks * (9 * _FLOAT + _INDEX) + (3 * num_nodes + 1) * _INDEX
    vector_bytes = vectors * 3 * _FLOAT * num_nodes
    mesh_bytes = num_elements * 4 * _INDEX + num_nodes * 3 * _FLOAT
    return MemoryModel(
        num_nodes=num_nodes,
        num_edges=num_edges,
        matrix_bytes=matrix_bytes,
        vector_bytes=vector_bytes,
        mesh_bytes=mesh_bytes,
    )


def paper_rule_bytes(num_nodes: int) -> float:
    """The paper's flat 1.2 KByte/node estimate for comparison."""
    return paperdata.MEMORY_BYTES_PER_NODE * num_nodes
