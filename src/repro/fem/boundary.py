"""Absorbing boundaries.

The earth does not end 50 km from the epicenter; the real Quake codes
used absorbing boundary conditions so outgoing waves leave the box
instead of reflecting.  We implement the simplest robust scheme — a
*sponge layer* (Cerjan-style): mass-proportional damping that ramps
smoothly from zero in the interior to a maximum on the side and bottom
faces of the domain.  The free surface (z = 0) stays undamped, since it
is a real physical boundary.

The stepper consumes this as a per-dof damping coefficient vector
(generalizing its scalar ``damping_alpha``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import AABB
from repro.mesh.core import TetMesh


@dataclass(frozen=True)
class SpongeLayer:
    """A damping sponge on the non-free-surface boundaries.

    Parameters
    ----------
    thickness:
        Sponge width (m) measured inward from each absorbing face.
    max_alpha:
        Damping coefficient (1/s) reached at the boundary itself.
    profile_exponent:
        Shape of the ramp (2 = quadratic, the standard choice: gentle
        at the inner edge to avoid impedance reflections).
    absorb_top:
        Whether the z-max face also absorbs (False for a free surface).
    """

    thickness: float
    max_alpha: float
    profile_exponent: float = 2.0
    absorb_top: bool = False

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise ValueError("thickness must be positive")
        if self.max_alpha < 0:
            raise ValueError("max_alpha must be non-negative")
        if self.profile_exponent <= 0:
            raise ValueError("profile_exponent must be positive")

    def node_alpha(self, points: np.ndarray, domain: AABB) -> np.ndarray:
        """Damping coefficient per node, shape (n,)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        lo = np.asarray(domain.lo)
        hi = np.asarray(domain.hi)
        # Distance to the nearest absorbing face.
        distances = [
            pts[:, 0] - lo[0],
            hi[0] - pts[:, 0],
            pts[:, 1] - lo[1],
            hi[1] - pts[:, 1],
            pts[:, 2] - lo[2],
        ]
        if self.absorb_top:
            distances.append(hi[2] - pts[:, 2])
        dist = np.min(np.stack(distances, axis=1), axis=1)
        ramp = np.clip(1.0 - dist / self.thickness, 0.0, 1.0)
        return self.max_alpha * ramp**self.profile_exponent

    def dof_alpha(self, mesh: TetMesh, domain: AABB) -> np.ndarray:
        """Damping per degree of freedom (3 per node), shape (3n,)."""
        return np.repeat(self.node_alpha(mesh.points, domain), 3)
