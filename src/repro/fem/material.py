"""Per-element material properties.

The solver needs the Lame parameters and density of each element;
:func:`materials_from_model` samples a :class:`BasinModel` at element
centroids, which is the usual piecewise-constant material assignment
for wave propagation on meshes whose elements already follow material
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.core import TetMesh
from repro.velocity.basin import BasinModel


@dataclass(frozen=True)
class ElementMaterials:
    """Isotropic elastic properties per element.

    Attributes
    ----------
    lam, mu:
        Lame parameters (Pa), shape (num_elements,).
    rho:
        Density (kg/m^3), shape (num_elements,).
    """

    lam: np.ndarray
    mu: np.ndarray
    rho: np.ndarray

    def __post_init__(self) -> None:
        lam = np.asarray(self.lam, dtype=np.float64)
        mu = np.asarray(self.mu, dtype=np.float64)
        rho = np.asarray(self.rho, dtype=np.float64)
        if not (lam.shape == mu.shape == rho.shape) or lam.ndim != 1:
            raise ValueError("lam, mu, rho must be equal-length 1D arrays")
        if np.any(mu < 0) or np.any(rho <= 0):
            raise ValueError("need mu >= 0 and rho > 0")
        object.__setattr__(self, "lam", lam)
        object.__setattr__(self, "mu", mu)
        object.__setattr__(self, "rho", rho)

    @property
    def num_elements(self) -> int:
        return self.lam.shape[0]

    @classmethod
    def homogeneous(
        cls, num_elements: int, vs: float = 1000.0, vp: float = 1732.0, rho: float = 2000.0
    ) -> "ElementMaterials":
        """Uniform material (used heavily by tests)."""
        mu = rho * vs**2
        lam = rho * (vp**2 - 2 * vs**2)
        return cls(
            np.full(num_elements, lam),
            np.full(num_elements, mu),
            np.full(num_elements, rho),
        )

    def vp(self) -> np.ndarray:
        """Pressure wave velocity per element."""
        return np.sqrt((self.lam + 2 * self.mu) / self.rho)

    def vs(self) -> np.ndarray:
        """Shear wave velocity per element."""
        return np.sqrt(self.mu / self.rho)


def materials_from_model(mesh: TetMesh, model: BasinModel) -> ElementMaterials:
    """Sample a ground model at element centroids."""
    centroids = mesh.element_centroids
    lam, mu = model.lame_parameters(centroids)
    rho = model.rho(centroids)
    return ElementMaterials(lam, mu, rho)
