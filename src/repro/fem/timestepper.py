"""Explicit central-difference time integration.

The paper's simulations run 6000 explicit time steps, each dominated by
one SMVP — "because an explicit time-stepping method is used, there are
no other parallel operations (such as dot products or preconditioning)"
(Section 2.2).  This module is that integrator:

``M u'' + C u' + K u = f``  with lumped (diagonal) M and mass-
proportional damping ``C = alpha M``, stepped by

``u_next = [2 u - (1 - alpha dt/2) u_prev + dt^2 M^{-1} (f - K u)]
           / (1 + alpha dt/2)``

Each step performs exactly one SMVP (``K u``) plus vector updates — the
computational shape the whole paper models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.faults.detection import check_finite as _check_finite
from repro.faults.errors import NumericalFaultError
from repro.fem.material import ElementMaterials
from repro.geometry import tet_shortest_edges
from repro.mesh.core import TetMesh


def stable_timestep(
    mesh: TetMesh, materials: ElementMaterials, safety: float = 0.5
) -> float:
    """CFL-style stable time step estimate.

    ``dt = safety * min_e (shortest_edge_e / Vp_e)`` — the usual
    explicit-dynamics bound for linear tets.
    """
    if not 0 < safety <= 1:
        raise ValueError("safety must be in (0, 1]")
    edges = tet_shortest_edges(mesh.points, mesh.tets)
    vp = materials.vp()
    return float(safety * np.min(edges / vp))


@dataclass
class StepRecord:
    """Per-step diagnostics returned by the stepper."""

    step: int
    time: float
    max_displacement: float
    kinetic_proxy: float  # ||u - u_prev||^2 / dt^2, a cheap energy proxy


class ExplicitTimeStepper:
    """Central-difference integrator with lumped mass.

    Parameters
    ----------
    stiffness:
        Global (or local) sparse stiffness matrix, 3n x 3n.
    mass:
        Lumped mass vector, length 3n, strictly positive.
    dt:
        Time step (use :func:`stable_timestep`).
    damping_alpha:
        Mass-proportional Rayleigh damping coefficient (1/s): either a
        scalar, or a per-dof vector of length 3n (which is how the
        :class:`~repro.fem.boundary.SpongeLayer` absorbing boundaries
        plug in).
    smvp:
        Override the SMVP operation (the distributed executor passes
        itself in here — that is the integration point between the
        solver and the parallel SMVP machinery).
    check_finite:
        When True, every new state is guarded for NaN/Inf and a
        :class:`~repro.faults.NumericalFaultError` pinpoints the step a
        blow-up (or an undetected corrupt exchange) first appeared.
        Off by default — the guard costs one pass over the state.
    guard_growth:
        Optional per-step growth bound: raise a
        :class:`~repro.faults.NumericalFaultError` when the new state's
        peak magnitude exceeds ``guard_growth`` times the previous
        peak.  An escaped exponent-bit corruption multiplies a dof by
        ~2^k, which no legitimate explicit step under the CFL bound
        does — this is the cheap timestepper-level invariant backing up
        the per-superstep ABFT checks.  The guard only engages once the
        state is nonzero (a cold start legitimately grows from zero).
    rhs:
        Number of independent right-hand-side scenarios integrated in
        lock step (default 1).  With ``rhs > 1`` the state is a
        (3n, rhs) block, each step performs one *block* SMVP (one
        matrix traversal amortized over all scenarios), and every
        vector update broadcasts per column — column j of the
        trajectory is bit-identical to an ``rhs=1`` run with that
        column's forcing.  ``rhs=1`` keeps the historical vector path,
        bit for bit.
    """

    def __init__(
        self,
        stiffness: sp.spmatrix,
        mass: np.ndarray,
        dt: float,
        damping_alpha=0.0,
        smvp: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        check_finite: bool = False,
        guard_growth: Optional[float] = None,
        rhs: int = 1,
    ) -> None:
        mass = np.asarray(mass, dtype=np.float64)
        if stiffness.shape[0] != stiffness.shape[1]:
            raise ValueError("stiffness must be square")
        if mass.shape != (stiffness.shape[0],):
            raise ValueError("mass vector length must match stiffness")
        if np.any(mass <= 0):
            raise ValueError("lumped mass must be strictly positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.stiffness = stiffness.tocsr() if smvp is None else stiffness
        self.mass = mass
        self.inv_mass = 1.0 / mass
        self.dt = float(dt)
        damping = np.asarray(damping_alpha, dtype=np.float64)
        if damping.ndim not in (0, 1):
            raise ValueError("damping_alpha must be a scalar or a vector")
        if damping.ndim == 1 and damping.shape != (stiffness.shape[0],):
            raise ValueError("damping vector length must be 3n")
        if np.any(damping < 0):
            raise ValueError("damping must be non-negative")
        self.damping_alpha = damping
        self._smvp = smvp if smvp is not None else (lambda x: self.stiffness @ x)
        self.check_finite = bool(check_finite)
        if guard_growth is not None and guard_growth <= 1.0:
            raise ValueError("guard_growth must exceed 1.0")
        self.guard_growth = guard_growth
        if rhs < 1:
            raise ValueError("rhs must be >= 1")
        self.rhs = int(rhs)
        n = stiffness.shape[0]
        if self.rhs > 1:
            self.u = np.zeros((n, self.rhs))
            self.u_prev = np.zeros((n, self.rhs))
        else:
            self.u = np.zeros(n)
            self.u_prev = np.zeros(n)
        self.step_index = 0

    @property
    def time(self) -> float:
        return self.step_index * self.dt

    @property
    def smvp(self) -> Callable[[np.ndarray], np.ndarray]:
        """The SMVP operation each step applies (read via
        :meth:`rebind_smvp` for the mutable path)."""
        return self._smvp

    def rebind_smvp(
        self, smvp: Callable[[np.ndarray], np.ndarray]
    ) -> None:
        """Swap the SMVP operation mid-run.

        The central-difference state is the pair ``(u, u_prev)`` plus
        ``step_index`` — nothing in the stepper caches the operator —
        so after a PE eviction the resilience supervisor rebinds the
        reconfigured P-1 executor here and stepping continues
        bit-consistently.
        """
        self._smvp = smvp

    def set_state(
        self, u: np.ndarray, u_prev: np.ndarray, step_index: int
    ) -> None:
        """Load an explicit ``(u, u_prev, step_index)`` state.

        This is the splice point for recovery: the state fully
        determines the trajectory, so loading a reconstructed pair and
        continuing reproduces an uninterrupted run exactly.
        """
        u = np.asarray(u, dtype=np.float64)
        u_prev = np.asarray(u_prev, dtype=np.float64)
        if u.shape != self.u.shape or u_prev.shape != self.u_prev.shape:
            raise ValueError("state vectors must have length 3n")
        if step_index < 0:
            raise ValueError("step_index must be non-negative")
        self.u = u.copy()
        self.u_prev = u_prev.copy()
        self.step_index = int(step_index)

    def step(self, force: Optional[np.ndarray] = None) -> StepRecord:
        """Advance one time step; returns diagnostics.

        With ``rhs > 1`` a 1-D ``force`` broadcasts to every scenario
        column; a (3n, rhs) force drives each column independently.
        """
        dt = self.dt
        ku = self._smvp(self.u)
        if self.rhs > 1:
            f = 0.0
            if force is not None:
                force = np.asarray(force, dtype=np.float64)
                f = force[:, None] if force.ndim == 1 else force
            accel = self.inv_mass[:, None] * (f - ku)
            half = 0.5 * self.damping_alpha * dt
            if np.ndim(half) == 1:
                half = half[:, None]
        else:
            accel = self.inv_mass * (
                (force if force is not None else 0.0) - ku
            )
            half = 0.5 * self.damping_alpha * dt
        u_next = (
            2.0 * self.u - (1.0 - half) * self.u_prev + dt * dt * accel
        ) / (1.0 + half)
        if self.check_finite:
            _check_finite(
                u_next,
                f"displacement at step {self.step_index + 1}",
                step=self.step_index + 1,
                phase="timestep",
            )
        if self.guard_growth is not None:
            prev_peak = max(
                float(np.abs(self.u).max()), float(np.abs(self.u_prev).max())
            )
            peak = float(np.abs(u_next).max())
            if prev_peak > 0.0 and peak > self.guard_growth * prev_peak:
                raise NumericalFaultError(
                    f"displacement grew {peak / prev_peak:.1f}x in one "
                    f"step (bound {self.guard_growth:.1f}x) — likely an "
                    "escaped corruption",
                    step=self.step_index + 1,
                    phase="timestep",
                )
        self.u_prev = self.u
        self.u = u_next
        self.step_index += 1
        diff = self.u - self.u_prev
        if self.rhs > 1:
            kinetic = float(np.sum(diff * diff) / (dt * dt))
        else:
            kinetic = float((diff @ diff) / (dt * dt))
        return StepRecord(
            step=self.step_index,
            time=self.time,
            max_displacement=float(np.abs(self.u).max()),
            kinetic_proxy=kinetic,
        )

    def run(
        self,
        num_steps: int,
        force_at: Optional[Callable[[float], np.ndarray]] = None,
        record_nodes: Optional[np.ndarray] = None,
        checkpoint=None,
        trace_sink=None,
    ):
        """Run ``num_steps`` steps.

        Parameters
        ----------
        force_at:
            ``t -> force vector`` callback evaluated every step.
        record_nodes:
            Node indices whose 3 displacement dofs are recorded every
            step (seismograms).
        checkpoint:
            Optional :class:`~repro.faults.CheckpointManager` (anything
            with a ``maybe_save(stepper)`` method): the run snapshots
            its state at the manager's interval, so a killed run can
            resume from the latest checkpoint and reproduce the
            uninterrupted trajectory exactly.
        trace_sink:
            Optional callable receiving one
            :class:`~repro.smvp.trace.SuperstepTrace` per time step
            (each step is exactly one superstep).  Requires the SMVP to
            be a tracing executor — a
            :class:`~repro.smvp.executor.DistributedSMVP`; the sink is
            attached for the duration of the run and the executor's
            previous sink restored afterwards.

        Returns
        -------
        (records, seismograms)
            ``records`` is the list of :class:`StepRecord`;
            ``seismograms`` is ``(num_steps, len(record_nodes), 3)``
            (with an extra trailing ``rhs`` axis when ``rhs > 1``) or
            ``None``.
        """
        previous_sink = None
        if trace_sink is not None:
            if not hasattr(self._smvp, "trace_sink"):
                raise ValueError(
                    "trace_sink needs an SMVP that emits SuperstepTrace "
                    "records (a DistributedSMVP); the sequential matvec "
                    "has no superstep phases to trace"
                )
            previous_sink = self._smvp.trace_sink
            self._smvp.trace_sink = trace_sink
        try:
            records: List[StepRecord] = []
            seis = None
            if record_nodes is not None:
                record_nodes = np.asarray(record_nodes, dtype=np.int64)
                shape = (num_steps, len(record_nodes), 3)
                if self.rhs > 1:
                    shape = shape + (self.rhs,)
                seis = np.zeros(shape)
            for k in range(num_steps):
                force = force_at(self.time) if force_at is not None else None
                rec = self.step(force)
                records.append(rec)
                if seis is not None:
                    dof = (3 * record_nodes[:, None] + np.arange(3)).ravel()
                    if self.rhs > 1:
                        seis[k] = self.u[dof].reshape(-1, 3, self.rhs)
                    else:
                        seis[k] = self.u[dof].reshape(-1, 3)
                if checkpoint is not None:
                    checkpoint.maybe_save(self)
            return records, seis
        finally:
            if trace_sink is not None:
                self._smvp.trace_sink = previous_sink
