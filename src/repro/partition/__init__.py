"""Mesh partitioners.

The paper's Archimedes tool chain partitions each mesh's *elements* into
``p`` disjoint subdomains (one per PE) using recursive geometric
bisection (Miller-Teng-Thurston-Vavasis), dividing elements equally
while minimizing the number of mesh nodes shared between subdomains.

This subpackage provides that algorithm plus the comparison partitioners
the paper cites (spectral bisection a la Barnard-Simon / Chaco) and
simple baselines, all behind one interface:

* :class:`~repro.partition.base.Partition` — the result type (an
  element-to-part assignment).
* :func:`~repro.partition.base.partition_mesh` — front door, dispatching
  on method name.
* Methods: ``rcb`` (recursive coordinate bisection), ``inertial``
  (recursive inertial bisection), ``geometric`` (MTTV-style sphere
  cuts), ``spectral`` (recursive Fiedler bisection), ``growing``
  (greedy graph growing), ``random`` (scattered baseline).

All recursive methods number the parts so the first bisection separates
parts ``0..p/2-1`` from ``p/2..p-1`` — the split the paper's bisection-
bandwidth measure (Section 4.2) assumes.
"""

from repro.partition.base import (
    Partition,
    Partitioner,
    partition_mesh,
    PARTITIONERS,
    recursive_bisection,
)
from repro.partition.metrics import PartitionMetrics, partition_metrics
from repro.partition.refine import smooth_partition


def register_all() -> None:
    """Import every partitioner module so the registry is complete."""
    from repro.partition import rcb, inertial, geometric, spectral, growing  # noqa: F401


__all__ = [
    "register_all",
    "smooth_partition",
    "Partition",
    "Partitioner",
    "partition_mesh",
    "PARTITIONERS",
    "recursive_bisection",
    "PartitionMetrics",
    "partition_metrics",
]
