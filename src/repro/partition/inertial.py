"""Recursive inertial bisection (RIB).

Like coordinate bisection, but each cut is made perpendicular to the
*principal axis* of the element centroids (the eigenvector of their
covariance with the largest eigenvalue) instead of a coordinate axis.
This adapts to the geometry of the subdomain being cut — e.g. a basin
that slants diagonally across the map — and usually shortens the cut
surface relative to RCB.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.core import TetMesh
from repro.partition.base import (
    Partition,
    Partitioner,
    recursive_bisection,
    register,
)


def principal_axis(points: np.ndarray) -> np.ndarray:
    """Unit eigenvector of the covariance with the largest eigenvalue.

    Falls back to the x axis for degenerate inputs (fewer than two
    points, or zero variance).
    """
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] < 2:
        return np.array([1.0, 0.0, 0.0])
    centered = pts - pts.mean(axis=0)
    cov = centered.T @ centered
    if not np.all(np.isfinite(cov)) or np.allclose(cov, 0):
        return np.array([1.0, 0.0, 0.0])
    eigvals, eigvecs = np.linalg.eigh(cov)
    return eigvecs[:, -1]


@register
class InertialBisection(Partitioner):
    """Recursive inertial bisection on element centroids."""

    name = "inertial"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        centroids = mesh.element_centroids

        def bisect(mesh, ids, rng, target_left):
            pts = centroids[ids]
            axis = principal_axis(pts)
            return self.split_by_order(pts @ axis, target_left)

        parts = recursive_bisection(mesh, num_parts, bisect, seed=seed)
        return Partition(parts, num_parts, method=self.name)
