"""Greedy boundary refinement of an existing partition.

The recursive bisection partitioners decide each cut once and never
revisit it.  A standard post-pass (in the Kernighan-Lin / Fiduccia-
Mattheyses tradition, simplified to a greedy hill-climb) walks the
subdomain boundaries and moves individual elements between neighboring
parts whenever the move reduces the number of *shared mesh nodes* — the
quantity that directly sets the communication volume C — without
hurting load balance beyond a tolerance.

This is deliberately a local polish, not a global method: it cannot fix
a bad cut, but it reliably shaves a few percent off shared nodes and
smooths the jagged staircase boundaries coordinate bisection leaves in
graded regions (see the partitioner ablation bench).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.mesh.core import TetMesh
from repro.partition.base import Partition


def _incidence_counts(mesh: TetMesh, parts: np.ndarray) -> Dict[Tuple[int, int], int]:
    """Count of elements of each part touching each node."""
    counts: Dict[Tuple[int, int], int] = {}
    for element, tet in enumerate(mesh.tets):
        part = int(parts[element])
        for node in tet:
            key = (int(node), part)
            counts[key] = counts.get(key, 0) + 1
    return counts


def smooth_partition(
    mesh: TetMesh,
    partition: Partition,
    max_passes: int = 4,
    balance_tolerance: float = 1.03,
) -> Partition:
    """Greedily move boundary elements to reduce shared nodes.

    Parameters
    ----------
    mesh, partition:
        The partition to refine (not modified; a new one is returned).
    max_passes:
        Sweeps over the boundary; each pass only keeps going while it
        finds improving moves.
    balance_tolerance:
        Maximum allowed ``part_size / ideal_size`` after any move.

    Returns
    -------
    Partition
        Refined assignment (method name suffixed with ``+smooth``).
    """
    if partition.num_elements != mesh.num_elements:
        raise ValueError("partition does not match mesh")
    if balance_tolerance < 1.0:
        raise ValueError("balance_tolerance must be >= 1")
    parts = partition.parts.copy()
    p = partition.num_parts
    if p == 1:
        return partition
    tets = mesh.tets
    ideal = mesh.num_elements / p
    max_size = int(np.floor(balance_tolerance * ideal))
    sizes = np.bincount(parts, minlength=p)

    counts = _incidence_counts(mesh, parts)
    # residency[node] = set of parts whose elements touch the node.
    residency = [set() for _ in range(mesh.num_nodes)]
    for (node, part), c in counts.items():
        if c > 0:
            residency[node].add(part)

    def sharing_delta(element: int, src: int, dst: int) -> int:
        """Change in total shared-node count if element moves src->dst."""
        delta = 0
        for node in tets[element]:
            node = int(node)
            res = residency[node]
            before = len(res) >= 2
            # After the move: src loses one incidence, dst gains one.
            leaves_src = counts.get((node, src), 0) == 1
            after_set_size = len(res) + (dst not in res) - leaves_src
            after = after_set_size >= 2
            delta += int(after) - int(before)
        return delta

    def apply_move(element: int, src: int, dst: int) -> None:
        parts[element] = dst
        sizes[src] -= 1
        sizes[dst] += 1
        for node in tets[element]:
            node = int(node)
            counts[(node, src)] = counts.get((node, src), 0) - 1
            if counts[(node, src)] == 0:
                residency[node].discard(src)
            counts[(node, dst)] = counts.get((node, dst), 0) + 1
            residency[node].add(dst)

    for _pass in range(max_passes):
        moved = 0
        # Boundary elements: any corner node resident on >= 2 parts.
        boundary = [
            e
            for e in range(mesh.num_elements)
            if any(len(residency[int(n)]) >= 2 for n in tets[e])
        ]
        for element in boundary:
            src = int(parts[element])
            if sizes[src] <= 1:
                continue
            # Candidate destinations: other parts present on its nodes.
            candidates = set()
            for node in tets[element]:
                candidates |= residency[int(node)]
            candidates.discard(src)
            best_dst = None
            best_delta = 0
            # Sorted so tie-breaks (equal deltas) pick the same
            # destination on every run — set order would not.
            for dst in sorted(candidates):
                if sizes[dst] + 1 > max_size:
                    continue
                delta = sharing_delta(element, src, int(dst))
                if delta < best_delta:
                    best_delta = delta
                    best_dst = int(dst)
            if best_dst is not None:
                apply_move(element, src, best_dst)
                moved += 1
        if moved == 0:
            break

    return Partition(parts, p, method=f"{partition.method}+smooth")
