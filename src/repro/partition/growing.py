"""Greedy graph-growing bisection.

A classic cheap combinatorial partitioner: pick a peripheral seed
element (found by a double breadth-first search), grow a region through
face adjacencies until it holds the target number of elements, and call
that one side of the cut.  Disconnected leftovers are handled by
reseeding.  Included as a combinatorial baseline between ``random`` and
``spectral``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import breadth_first_order

from repro.mesh.core import TetMesh
from repro.mesh.topology import element_adjacency
from repro.partition.base import (
    Partition,
    Partitioner,
    recursive_bisection,
    register,
)


def peripheral_vertex(adj: sp.csr_matrix, start: int) -> int:
    """Approximate peripheral vertex: the last vertex of a BFS from the
    last vertex of a BFS from ``start`` (the standard double sweep)."""
    order, _ = breadth_first_order(adj, start, directed=False, return_predecessors=True)
    far = int(order[-1])
    order, _ = breadth_first_order(adj, far, directed=False, return_predecessors=True)
    return int(order[-1])


def grow_region(
    adj: sp.csr_matrix, seed_vertex: int, target: int
) -> np.ndarray:
    """Boolean mask of a BFS region of exactly ``target`` vertices.

    If a connected component is exhausted early, growth restarts from
    the lowest-numbered unvisited vertex.
    """
    n = adj.shape[0]
    if not 0 <= target <= n:
        raise ValueError("target out of range")
    mask = np.zeros(n, dtype=bool)
    taken = 0
    next_seed = seed_vertex
    while taken < target:
        order, _ = breadth_first_order(
            adj, next_seed, directed=False, return_predecessors=True
        )
        order = order[~mask[order]]
        room = target - taken
        chosen = order[:room]
        mask[chosen] = True
        taken += len(chosen)
        if taken < target:
            remaining = np.flatnonzero(~mask)
            next_seed = int(remaining[0])
    return mask


@register
class GraphGrowing(Partitioner):
    """Recursive greedy-growing bisection of the element graph."""

    name = "growing"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        adj_full = element_adjacency(mesh.tets).tocsr()

        def bisect(mesh, ids, rng, target_left):
            sub = adj_full[ids][:, ids]
            start = int(rng.integers(len(ids)))
            seed_vertex = peripheral_vertex(sub, start)
            return grow_region(sub, seed_vertex, target_left)

        parts = recursive_bisection(mesh, num_parts, bisect, seed=seed)
        return Partition(parts, num_parts, method=self.name)


@register
class RandomPartition(Partitioner):
    """Balanced random scatter — the worst-case baseline.

    Elements are randomly permuted and dealt into equal blocks; there is
    no locality at all, so nearly every node is shared.  Useful to show
    how much the locality-aware partitioners actually buy.
    """

    name = "random"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(mesh.num_elements)
        parts = np.empty(mesh.num_elements, dtype=np.int32)
        # Deal permuted elements into num_parts near-equal blocks.
        bounds = np.linspace(0, mesh.num_elements, num_parts + 1).astype(int)
        for part in range(num_parts):
            parts[perm[bounds[part] : bounds[part + 1]]] = part
        return Partition(parts, num_parts, method=self.name)
