"""Recursive coordinate bisection (RCB).

The simplest geometric partitioner: at each level, sort the element
centroids along the axis with the largest extent and cut at the exact
balance point.  Fast, deterministic, and — on graded 3D meshes — a
strong baseline that the paper-style geometric partitioner must beat on
shared-node counts.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.core import TetMesh
from repro.partition.base import (
    Partition,
    Partitioner,
    recursive_bisection,
    register,
)


@register
class CoordinateBisection(Partitioner):
    """Recursive coordinate bisection on element centroids."""

    name = "rcb"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        centroids = mesh.element_centroids

        def bisect(mesh, ids, rng, target_left):
            pts = centroids[ids]
            extents = pts.max(axis=0) - pts.min(axis=0)
            axis = int(np.argmax(extents))
            return self.split_by_order(pts[:, axis], target_left)

        parts = recursive_bisection(mesh, num_parts, bisect, seed=seed)
        return Partition(parts, num_parts, method=self.name)
