"""Partition quality metrics.

These are the quantities the paper says a good partitioner optimizes
(Section 2.2): equal element counts per subdomain and few mesh nodes
shared between subdomains.  ``partition_metrics`` is what the
partitioner-comparison ablation bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.mesh.core import TetMesh
from repro.mesh.topology import element_adjacency
from repro.partition.base import Partition


def node_part_incidence(mesh: TetMesh, partition: Partition) -> sp.csr_matrix:
    """Boolean sparse (num_nodes, num_parts) matrix: node i resides on
    part j (because some element of part j touches node i).

    This is the fundamental object behind all communication statistics:
    a node is *shared* when its row has two or more nonzeros, and the
    vectors x/y are replicated on exactly the parts of its row.
    """
    tets = mesh.tets
    m = tets.shape[0]
    rows = tets.ravel()
    cols = np.repeat(partition.parts.astype(np.int64), 4)
    data = np.ones(4 * m, dtype=np.int8)
    mat = sp.csr_matrix(
        (data, (rows, cols)), shape=(mesh.num_nodes, partition.num_parts)
    )
    mat.data[:] = 1  # collapse duplicates to boolean
    return mat


@dataclass(frozen=True)
class PartitionMetrics:
    """Summary of one partition's quality."""

    method: str
    num_parts: int
    imbalance: float  # max part size / ideal part size
    shared_nodes: int  # nodes residing on >= 2 parts
    shared_fraction: float  # shared_nodes / num_nodes
    replication: float  # sum of residencies / num_nodes (>= 1.0)
    max_node_parts: int  # worst node's residency count
    cut_faces: int  # element faces whose two elements sit on different parts

    def __str__(self) -> str:
        return (
            f"{self.method}/{self.num_parts}: imbalance={self.imbalance:.3f} "
            f"shared={self.shared_nodes} ({100 * self.shared_fraction:.1f}%) "
            f"replication={self.replication:.3f} cut_faces={self.cut_faces}"
        )


def partition_metrics(mesh: TetMesh, partition: Partition) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for a partition of ``mesh``."""
    if partition.num_elements != mesh.num_elements:
        raise ValueError("partition does not match mesh")
    incidence = node_part_incidence(mesh, partition)
    residency = np.asarray(incidence.sum(axis=1)).ravel()
    shared = int(np.count_nonzero(residency >= 2))
    # Cut faces: adjacent element pairs straddling a part boundary.
    adj = element_adjacency(mesh.tets).tocoo()
    parts = partition.parts
    crossing = parts[adj.row] != parts[adj.col]
    cut_faces = int(np.count_nonzero(crossing) // 2)
    return PartitionMetrics(
        method=partition.method,
        num_parts=partition.num_parts,
        imbalance=partition.imbalance(),
        shared_nodes=shared,
        shared_fraction=shared / max(mesh.num_nodes, 1),
        replication=float(residency.sum() / max(mesh.num_nodes, 1)),
        max_node_parts=int(residency.max()) if len(residency) else 0,
        cut_faces=cut_faces,
    )
