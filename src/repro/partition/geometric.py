"""MTTV-style geometric sphere-cut partitioner.

This follows the recursive geometric bisection scheme of Miller, Teng,
Thurston, and Vavasis [12 in the paper] that Archimedes used:

1. stereographically project the element centroids onto the unit sphere
   in R^4;
2. compute an (approximate) centerpoint of the projected points;
3. conformally map the sphere so the centerpoint moves to the origin
   (rotate it onto the pole axis, then dilate);
4. cut with a random great circle — after the conformal map, a random
   great circle splits the points near-evenly and, for meshes of bounded
   aspect ratio, cuts O(n^{2/3}) shared nodes in expectation;
5. keep the best of several random circles.

Two departures from the letter of MTTV, both standard in practice: the
centerpoint is approximated by a geometric median (Weiszfeld iteration)
rather than computed exactly, and each candidate circle's cut plane is
slid along its normal to the exact balance point (MTTV instead
re-weights; sliding keeps subdomain sizes exactly equal, which the
paper's Figure 7 assumes).  The candidate that shares the fewest mesh
nodes across the cut wins.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.core import TetMesh
from repro.partition.base import (
    Partition,
    Partitioner,
    recursive_bisection,
    register,
)


def stereographic_lift(points: np.ndarray) -> np.ndarray:
    """Map R^3 points onto the unit sphere in R^4.

    Uses the inverse stereographic projection from the north pole after
    normalizing the input into the unit ball (centered on the centroid,
    scaled by the 90th percentile radius so outliers don't compress the
    bulk of the points near the origin).
    """
    pts = np.asarray(points, dtype=float)
    center = pts.mean(axis=0)
    rel = pts - center
    radii = np.linalg.norm(rel, axis=1)
    scale = np.percentile(radii, 90) if len(radii) else 1.0
    if scale <= 0:
        scale = 1.0
    x = rel / scale
    norm2 = np.einsum("ij,ij->i", x, x)
    denom = norm2 + 1.0
    lifted = np.empty((len(pts), 4))
    lifted[:, :3] = 2.0 * x / denom[:, None]
    lifted[:, 3] = (norm2 - 1.0) / denom
    return lifted


def weiszfeld_median(points: np.ndarray, iterations: int = 12) -> np.ndarray:
    """Approximate geometric median (centerpoint surrogate)."""
    pts = np.asarray(points, dtype=float)
    guess = pts.mean(axis=0)
    for _ in range(iterations):
        diff = pts - guess
        dist = np.linalg.norm(diff, axis=1)
        dist = np.maximum(dist, 1e-12)
        w = 1.0 / dist
        guess = (pts * w[:, None]).sum(axis=0) / w.sum()
    return guess


def conformal_map_to_center(
    lifted: np.ndarray, centerpoint: np.ndarray
) -> np.ndarray:
    """Move ``centerpoint`` to the sphere's center by rotation + dilation.

    Rotates R^4 so the centerpoint sits on the +w axis at height ``r``,
    then applies the stereographic dilation with factor
    ``sqrt((1 - r) / (1 + r))``, which maps the centerpoint to the
    origin.  After this map, every great circle is a splitting circle
    through the centerpoint's image.
    """
    c = np.asarray(centerpoint, dtype=float)
    r = float(np.linalg.norm(c))
    if r < 1e-12:
        return np.asarray(lifted, dtype=float)
    r = min(r, 1.0 - 1e-9)
    axis = c / np.linalg.norm(c)
    target = np.array([0.0, 0.0, 0.0, 1.0])
    # Householder-style rotation taking `axis` to `target`.
    v = axis - target
    vnorm2 = v @ v
    if vnorm2 < 1e-24:
        rotated = np.asarray(lifted, dtype=float)
    else:
        rotated = lifted - 2.0 * np.outer((lifted @ v) / vnorm2, v)
    # Dilation in stereographic coordinates from the north pole (+w).
    alpha = np.sqrt((1.0 - r) / (1.0 + r))
    w = rotated[:, 3]
    xyz = rotated[:, :3]
    denom = np.maximum(1.0 - w, 1e-12)
    plane = xyz / denom[:, None]
    plane *= alpha
    norm2 = np.einsum("ij,ij->i", plane, plane)
    back = np.empty_like(rotated)
    back[:, :3] = 2.0 * plane / (norm2 + 1.0)[:, None]
    back[:, 3] = (norm2 - 1.0) / (norm2 + 1.0)
    return back


def _shared_nodes_across(
    tets: np.ndarray, ids: np.ndarray, left_mask: np.ndarray
) -> int:
    """Number of mesh nodes touched by elements on both sides of a cut."""
    left_nodes = np.unique(tets[ids[left_mask]].ravel())
    right_nodes = np.unique(tets[ids[~left_mask]].ravel())
    return len(np.intersect1d(left_nodes, right_nodes, assume_unique=True))


@register
class GeometricBisection(Partitioner):
    """Recursive MTTV-style sphere-cut bisection.

    ``candidates`` random great circles are tried per cut (plus the
    three coordinate planes as safeguards); the cut sharing the fewest
    nodes wins.
    """

    name = "geometric"

    def __init__(self, candidates: int = 12) -> None:
        if candidates < 1:
            raise ValueError("need at least one candidate circle")
        self.candidates = candidates

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        centroids = mesh.element_centroids
        tets = mesh.tets

        def bisect(mesh, ids, rng, target_left):
            pts = centroids[ids]
            lifted = stereographic_lift(pts)
            center = weiszfeld_median(lifted)
            mapped = conformal_map_to_center(lifted, center)
            best_mask = None
            best_cost = None
            normals = rng.normal(size=(self.candidates, 4))
            # Coordinate-plane fallbacks guarantee sane cuts even if the
            # random draws are unlucky.
            fallbacks = np.zeros((3, 4))
            fallbacks[:, :3] = np.eye(3)
            for normal in np.vstack([normals, fallbacks]):
                norm = np.linalg.norm(normal)
                if norm < 1e-12:
                    continue
                values = mapped @ (normal / norm)
                mask = self.split_by_order(values, target_left)
                cost = _shared_nodes_across(tets, ids, mask)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_mask = mask
            return best_mask

        parts = recursive_bisection(mesh, num_parts, bisect, seed=seed)
        return Partition(parts, num_parts, method=self.name)
