"""Partition result type, partitioner interface, and recursion driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

import numpy as np

from repro.mesh.core import TetMesh
from repro.telemetry.registry import get_registry, stage_span


@dataclass(frozen=True)
class Partition:
    """An assignment of mesh elements to ``num_parts`` subdomains.

    Attributes
    ----------
    parts:
        ``(num_elements,)`` integer array; ``parts[e]`` is the
        subdomain (PE index) owning element ``e``.
    num_parts:
        Number of subdomains ``p``.
    method:
        Name of the partitioner that produced the assignment.
    """

    parts: np.ndarray
    num_parts: int
    method: str = "unknown"

    def __post_init__(self) -> None:
        parts = np.asarray(self.parts, dtype=np.int32)
        object.__setattr__(self, "parts", parts)
        if parts.ndim != 1:
            raise ValueError("parts must be a 1D array")
        if self.num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        if parts.size and (parts.min() < 0 or parts.max() >= self.num_parts):
            raise ValueError("part index out of range")

    @property
    def num_elements(self) -> int:
        return self.parts.shape[0]

    def part_sizes(self) -> np.ndarray:
        """Number of elements in each subdomain, shape (num_parts,)."""
        return np.bincount(self.parts, minlength=self.num_parts)

    def elements_of(self, part: int) -> np.ndarray:
        """Element indices assigned to one subdomain."""
        if not 0 <= part < self.num_parts:
            raise ValueError(f"part {part} out of range")
        return np.flatnonzero(self.parts == part)

    def imbalance(self) -> float:
        """``max_part_size / ideal_size`` (1.0 = perfectly balanced)."""
        sizes = self.part_sizes()
        ideal = self.num_elements / self.num_parts
        return float(sizes.max() / ideal) if ideal > 0 else 1.0


#: A bisection function: given (mesh, element_ids, rng, target_left_count)
#: return a boolean mask over element_ids selecting the "left" side with
#: exactly target_left_count True entries.
BisectFn = Callable[[TetMesh, np.ndarray, np.random.Generator, int], np.ndarray]


def recursive_bisection(
    mesh: TetMesh,
    num_parts: int,
    bisect: BisectFn,
    seed: int = 0,
) -> np.ndarray:
    """Drive a bisection function down to ``num_parts`` subdomains.

    Parts are numbered so that each bisection splits a contiguous part
    range: the root cut separates parts ``[0, ceil(p/2))`` from
    ``[ceil(p/2), p)``.  For non-power-of-two ``p``, element counts are
    divided proportionally to the part counts on each side, keeping all
    final parts within one element of ideal balance.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    parts = np.zeros(mesh.num_elements, dtype=np.int32)
    rng = np.random.default_rng(seed)
    stack = [(np.arange(mesh.num_elements, dtype=np.int64), 0, num_parts)]
    while stack:
        ids, first_part, p = stack.pop()
        if p == 1:
            parts[ids] = first_part
            continue
        p_left = (p + 1) // 2
        target_left = int(round(len(ids) * p_left / p))
        target_left = min(max(target_left, 0), len(ids))
        left_mask = bisect(mesh, ids, rng, target_left)
        if left_mask.dtype != bool or left_mask.shape != ids.shape:
            raise ValueError("bisect must return a boolean mask over ids")
        if int(left_mask.sum()) != target_left:
            raise ValueError(
                f"bisect returned {int(left_mask.sum())} left elements, "
                f"expected {target_left}"
            )
        stack.append((ids[left_mask], first_part, p_left))
        stack.append((ids[~left_mask], first_part + p_left, p - p_left))
    return parts


class Partitioner:
    """Base class: subclasses implement :meth:`partition`."""

    #: Registry name; subclasses must override.
    name = "abstract"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        raise NotImplementedError

    @staticmethod
    def split_by_order(values: np.ndarray, target_left: int) -> np.ndarray:
        """Boolean mask marking the ``target_left`` smallest ``values``.

        Ties are broken deterministically by index (stable argsort), so
        exact balance is always achievable even with duplicate values.
        """
        order = np.argsort(values, kind="stable")
        mask = np.zeros(len(values), dtype=bool)
        mask[order[:target_left]] = True
        return mask


#: Populated by repro.partition.register_all() at import time.
PARTITIONERS: Dict[str, Type[Partitioner]] = {}


def register(cls: Type[Partitioner]) -> Type[Partitioner]:
    """Class decorator adding a partitioner to the registry."""
    if cls.name in PARTITIONERS:
        raise ValueError(f"duplicate partitioner name {cls.name!r}")
    PARTITIONERS[cls.name] = cls
    return cls


def partition_mesh(
    mesh: TetMesh,
    num_parts: int,
    method: str = "rcb",
    seed: int = 0,
) -> Partition:
    """Partition a mesh's elements into ``num_parts`` subdomains.

    ``method`` is one of the registry names (``sorted(PARTITIONERS)``).
    """
    # Import implementations lazily to avoid import cycles; they
    # register themselves on first use.
    from repro.partition import register_all

    register_all()
    try:
        cls = PARTITIONERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; available: {sorted(PARTITIONERS)}"
        ) from None
    with stage_span(f"partition.{method}", track="partition"):
        part = cls().partition(mesh, num_parts, seed=seed)
    reg = get_registry()
    if reg is not None:
        reg.counter(
            "repro_partitions_total", "meshes partitioned"
        ).inc(method=method)
        reg.gauge(
            "repro_partition_imbalance", "last partition imbalance"
        ).set(part.imbalance(), method=method)
    return part
