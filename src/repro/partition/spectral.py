"""Recursive spectral bisection.

The paper cites spectral partitioning (Barnard & Simon; Chaco) as the
main alternative family to geometric bisection.  Each cut sorts the
elements by the Fiedler vector (the eigenvector of the graph Laplacian
with the second-smallest eigenvalue) of the *element* adjacency graph
(elements adjacent when they share a face) and splits at the exact
balance point.

The Fiedler vector is computed with LOBPCG, deflating the constant
vector, with a dense-eigensolver fallback for tiny subproblems and a
degenerate-but-correct handling of disconnected subgraphs (where the
"Fiedler" vector is a component indicator — exactly the split you want).
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import lobpcg

from repro.mesh.core import TetMesh
from repro.mesh.topology import element_adjacency
from repro.partition.base import (
    Partition,
    Partitioner,
    recursive_bisection,
    register,
)

#: Below this many vertices, use a dense eigensolver (more robust).
_DENSE_CUTOFF = 64


def graph_laplacian(adj: sp.csr_matrix) -> sp.csr_matrix:
    """Combinatorial Laplacian ``D - A`` of an undirected graph."""
    dense_adj = adj.astype(np.float64)
    degrees = np.asarray(dense_adj.sum(axis=1)).ravel()
    return sp.diags(degrees) - dense_adj


def fiedler_vector(
    adj: sp.csr_matrix,
    rng: np.random.Generator,
    tol: float = 1e-3,
    maxiter: int = 200,
) -> np.ndarray:
    """Second-smallest Laplacian eigenvector of a graph.

    For disconnected graphs the returned vector separates components
    (eigenvalue ~0), which is the correct bisection behaviour.
    """
    n = adj.shape[0]
    lap = graph_laplacian(adj)
    if n <= _DENSE_CUTOFF:
        eigvals, eigvecs = np.linalg.eigh(lap.toarray())
        return eigvecs[:, 1] if n > 1 else np.zeros(n)
    ones = np.ones((n, 1)) / np.sqrt(n)
    x0 = rng.normal(size=(n, 1))
    x0 -= ones * (ones.T @ x0)
    # Jacobi preconditioner: inverse degrees (plus epsilon for isolated
    # vertices).
    inv_diag = 1.0 / np.maximum(lap.diagonal(), 1e-12)
    precond = sp.diags(inv_diag)
    try:
        # The split only needs the *ordering* induced by the Fiedler
        # vector, so a loose tolerance is fine; LOBPCG's "did not reach
        # tolerance" warnings are expected and suppressed.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            eigvals, eigvecs = lobpcg(
                lap,
                x0,
                M=precond,
                Y=ones,
                tol=tol,
                maxiter=maxiter,
                largest=False,
            )
        vec = eigvecs[:, 0]
        if np.all(np.isfinite(vec)):
            return vec
    except Exception:  # pragma: no cover  # repro-lint: ignore[no-bare-except]
        pass
    # Fallback: a few rounds of inverse power iteration on (L + sigma I).
    sigma = 1e-3 * float(lap.diagonal().mean() + 1.0)
    shifted = (lap + sigma * sp.identity(n)).tocsc()
    solve = sp.linalg.factorized(shifted)
    vec = rng.normal(size=n)
    for _ in range(20):
        vec -= vec.mean()
        vec = solve(vec)
        vec /= np.linalg.norm(vec)
    return vec


@register
class SpectralBisection(Partitioner):
    """Recursive Fiedler-vector bisection of the element graph."""

    name = "spectral"

    def partition(
        self, mesh: TetMesh, num_parts: int, seed: int = 0
    ) -> Partition:
        adj_full = element_adjacency(mesh.tets).tocsr()

        def bisect(mesh, ids, rng, target_left):
            sub = adj_full[ids][:, ids]
            vec = fiedler_vector(sub, rng)
            return self.split_by_order(vec, target_left)

        parts = recursive_bisection(mesh, num_parts, bisect, seed=seed)
        return Partition(parts, num_parts, method=self.name)
