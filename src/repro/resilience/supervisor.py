"""The superstep supervisor: retry, quarantine, evict, continue.

:class:`SuperstepSupervisor` wraps an
:class:`~repro.fem.timestepper.ExplicitTimeStepper` driving a
:class:`~repro.smvp.executor.DistributedSMVP` and turns fault signals
into the escalation ladder of :mod:`repro.resilience.policy`:

* an :class:`~repro.faults.ExchangeFaultError` (a link that exhausted
  its retransmit budget) blames one endpoint, bumps its health record,
  and the superstep is **retried** — the central-difference step calls
  the SMVP before mutating state, so a failed superstep is free to
  replay;
* repeated failures **quarantine** the flaky PE's links (circuit-break
  onto the verified path — numerically a no-op);
* a failure streak, or a scheduled permanent kill, **evicts** the PE
  online: its elements are regrown onto the survivors
  (:func:`~repro.smvp.distribution.redistribute_after_eviction`), the
  schedule and exchange rounds are rebuilt, its exclusive rows are
  spliced from the buddy shadow (zero recompute) or from the last
  CRC-valid checkpoint (rollback + deterministic recompute), and the
  run continues on P-1 PEs bit-consistently — the final vector equals
  a fresh P-1 run launched from the spliced state.

Every eviction emits an :class:`EvictionEvent` (telemetry counters via
:func:`repro.telemetry.registry.record_eviction`) and a
:class:`ResumePoint` that the chaos harness replays to *prove*
survivor equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.faults.errors import (
    ExchangeFaultError,
    PermanentFailureError,
    RecoveryDeadlineError,
    SdcFaultError,
)
from repro.resilience.elastic import (
    ScaleEvent,
    ScalePolicy,
    efficiency_after_growth,
    growth_migration_plan,
    predicted_efficiency,
)
from repro.resilience.eviction import migration_plan, splice_state
from repro.resilience.policy import (
    Escalation,
    HealthTracker,
    RecoveryPolicy,
)
from repro.resilience.shadow import ShadowStore
from repro.simulate.bsp import ReconfigurationCost, model_reconfiguration
from repro.smvp.schedule import ScheduleDelta, schedule_delta
from repro.telemetry.registry import (
    count,
    record_eviction,
    record_scale_event,
    record_sdc_latency,
    stage_span,
)


@dataclass(frozen=True)
class EvictionEvent:
    """One completed online eviction."""

    dead_pe: int  # original numbering
    dead_pe_current: int  # id in the pre-eviction numbering
    superstep: int  # completed steps when the PE died
    num_pes_before: int
    num_pes_after: int
    recovery_source: str  # "shadow" | "checkpoint"
    recomputed_supersteps: int
    migrated_words: int
    migrated_blocks: int
    shadow_words: int
    repartition_flops: int
    redistribution_waves: int
    delta: ScheduleDelta
    cost: Optional[ReconfigurationCost] = None


@dataclass(frozen=True)
class ResumePoint:
    """Everything needed to relaunch the run fresh from an eviction.

    The chaos harness builds a brand-new P-1 executor from this and
    steps it to the end: exact equality with the supervised run is the
    survivor-equivalence guarantee.
    """

    partition_parts: np.ndarray
    num_parts: int
    u: np.ndarray
    u_prev: np.ndarray
    step_index: int
    superstep: int  # executor exchange counter (fault-stream key)
    quarantined: frozenset
    # Physical PE ids of the survivors (SDC fault streams key on
    # these); None on resume points from pre-ABFT runs.
    pe_ids: Optional[np.ndarray] = None


@dataclass
class SupervisorReport:
    """Outcome of one supervised run."""

    records: List = field(default_factory=list)
    evictions: List[EvictionEvent] = field(default_factory=list)
    resume_points: List[ResumePoint] = field(default_factory=list)
    retried_supersteps: int = 0
    quarantined: List[int] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)
    final_num_pes: int = 0
    scale_events: List[ScaleEvent] = field(default_factory=list)

    @property
    def grows(self) -> List[ScaleEvent]:
        return [e for e in self.scale_events if e.kind == "grow"]

    @property
    def readmissions(self) -> List[ScaleEvent]:
        """Readmitted hardware: quarantine releases plus rejoins of
        previously evicted physical PEs."""
        return [e for e in self.scale_events if e.readmitted]

    @property
    def total_migrated_words(self) -> int:
        return sum(e.migrated_words for e in self.evictions)

    @property
    def total_reconfiguration_seconds(self) -> Optional[float]:
        costs = [e.cost for e in self.evictions]
        if not costs or any(c is None for c in costs):
            return None
        return sum(c.t_total for c in costs)


class SuperstepSupervisor:
    """Self-healing driver for a distributed time-stepped run.

    Parameters
    ----------
    stepper:
        An :class:`~repro.fem.timestepper.ExplicitTimeStepper` whose
        SMVP is a :class:`~repro.smvp.executor.DistributedSMVP` (the
        supervisor needs ``reconfigure_without`` / ``quarantine``).
    policy:
        Escalation thresholds (:class:`RecoveryPolicy`).
    checkpoints:
        Optional :class:`~repro.faults.CheckpointManager`; enables the
        rollback-and-recompute fallback and is fed ``maybe_save`` with
        the *active* distribution every step.
    kill_schedule:
        Mapping ``superstep -> PE id(s)`` (original numbering) of
        scheduled permanent failures, applied just before that
        superstep executes.
    grow_schedule:
        Mapping ``superstep -> count`` of scheduled online PE
        additions, applied just before that superstep executes (after
        any kills scheduled for the same step).  Orthogonal to the
        autoscaler: scheduled grows fire regardless of ``scale_policy``.
    scale_policy:
        Optional :class:`~repro.resilience.elastic.ScalePolicy`.  With
        ``autoscale=True`` the supervisor consults the contention-aware
        efficiency oracle after every completed step (requires
        ``machine``); probation/readmission of quarantined PEs is
        governed by the policy regardless of ``autoscale``.
    machine:
        Optional :class:`~repro.model.machine.Machine` with comm
        constants; prices each eviction via
        :func:`~repro.simulate.bsp.model_reconfiguration` and feeds
        the autoscaler's :func:`~repro.resilience.elastic.predicted_efficiency`.
    max_retries_per_step:
        Hard cap on supervised retries of a single superstep (a
        backstop against a policy that never escalates).
    """

    def __init__(
        self,
        stepper,
        policy: Optional[RecoveryPolicy] = None,
        checkpoints=None,
        kill_schedule: Optional[Mapping[int, object]] = None,
        grow_schedule: Optional[Mapping[int, int]] = None,
        scale_policy: Optional[ScalePolicy] = None,
        machine=None,
        max_retries_per_step: int = 16,
    ) -> None:
        smvp = stepper.smvp
        if not hasattr(smvp, "reconfigure_without"):
            raise ValueError(
                "supervision needs a DistributedSMVP-backed stepper; "
                "a sequential matvec has no PEs to heal"
            )
        if machine is not None:
            machine.require_comm("the reconfiguration cost model")
        if (
            scale_policy is not None
            and scale_policy.autoscale
            and machine is None
        ):
            raise ValueError(
                "autoscaling needs a machine model: the grow/shrink "
                "decisions come from predicted efficiency under Eq. (2)"
            )
        self.stepper = stepper
        self.policy = policy or RecoveryPolicy()
        self.checkpoints = checkpoints
        self.machine = machine
        self.scale_policy = scale_policy
        self.max_retries_per_step = int(max_retries_per_step)
        self.health = HealthTracker(smvp.num_parts, self.policy)
        self.shadow = ShadowStore(smvp.distribution)
        self.shadow.capture_from(stepper)
        self._current_to_orig: List[int] = list(range(smvp.num_parts))
        self._kills = _normalize_kills(kill_schedule)
        self._grows = _normalize_grows(grow_schedule)
        self._initial_num_pes = smvp.num_parts
        self._evicted_physical: List[tuple] = []  # (superstep, physical id)
        self._quarantined_at: Dict[int, int] = {}
        self._grow_count = 0
        self._under_utilized_streak = 0
        self._last_scale_step: Optional[int] = None
        self.events: List[EvictionEvent] = []
        self.scale_events: List[ScaleEvent] = []
        self.resume_points: List[ResumePoint] = []
        self.retried_supersteps = 0
        self._force_at = None

    # -- id plumbing -------------------------------------------------------

    @property
    def smvp(self):
        return self.stepper.smvp

    def current_id(self, original_pe: int) -> Optional[int]:
        """The PE's id in the live numbering, or ``None`` if evicted."""
        try:
            return self._current_to_orig.index(original_pe)
        except ValueError:
            return None

    def original_id(self, current_pe: int) -> int:
        return self._current_to_orig[current_pe]

    # -- the supervised loop ----------------------------------------------

    def run(
        self,
        num_steps: int,
        force_at=None,
        record_nodes: Optional[np.ndarray] = None,
    ) -> SupervisorReport:
        """Run ``num_steps`` supervised steps; never loses the run to a
        recoverable fault."""
        self._force_at = force_at
        records: List = []
        seis = None
        if record_nodes is not None:
            record_nodes = np.asarray(record_nodes, dtype=np.int64)
        target = self.stepper.step_index + num_steps
        try:
            while self.stepper.step_index < target:
                k = self.stepper.step_index
                for orig_pe in self._kills.get(k, ()):
                    if self.current_id(orig_pe) is not None:
                        with stage_span("eviction", track="resilience"):
                            self._evict(orig_pe)
                for _ in range(self._grows.get(k, 0)):
                    with stage_span("growth", track="resilience"):
                        self._grow(reason="scheduled")
                records.append(self._supervised_step(force_at))
                self.shadow.capture_from(self.stepper)
                if self.checkpoints is not None:
                    self.checkpoints.maybe_save(
                        self.stepper, self.smvp.distribution
                    )
                if self.scale_policy is not None:
                    self._maybe_readmit()
                    if self.scale_policy.autoscale:
                        self._maybe_autoscale()
        finally:
            self._force_at = None
        return SupervisorReport(
            records=records,
            evictions=list(self.events),
            resume_points=list(self.resume_points),
            retried_supersteps=self.retried_supersteps,
            quarantined=self.health.quarantined(),
            evicted=self.health.evicted(),
            final_num_pes=self.smvp.num_parts,
            scale_events=list(self.scale_events),
        )

    def _supervised_step(self, force_at):
        """One step under the escalation ladder; returns its record."""
        stepper = self.stepper
        for attempt in range(self.max_retries_per_step + 1):
            force = (
                force_at(stepper.time) if force_at is not None else None
            )
            try:
                record = stepper.step(force)
            except ExchangeFaultError as exc:
                self.retried_supersteps += 1
                count("repro_supervised_retries_total")
                self._check_recovery_budget(exc.step)
                if attempt >= self.max_retries_per_step:
                    raise
                self._escalate(exc)
                continue
            except SdcFaultError as exc:
                self.retried_supersteps += 1
                count("repro_supervised_retries_total", kind="sdc")
                self._check_recovery_budget(exc.step)
                if attempt >= self.max_retries_per_step:
                    raise
                self._escalate_sdc(exc)
                continue
            for orig_pe in self._current_to_orig:
                self.health.record_success(orig_pe)
            return record
        raise AssertionError("unreachable")  # pragma: no cover

    def _escalate(self, exc: ExchangeFaultError) -> None:
        """Blame an endpoint of the failed link and apply the policy."""
        if exc.src is None or exc.dst is None:
            # No link attribution — plain retry is all we can do.
            return
        blamed_orig = self.health.blame(
            self.original_id(exc.src), self.original_id(exc.dst)
        )
        escalation = self.health.record_failure(blamed_orig)
        if escalation is Escalation.QUARANTINE:
            self.smvp.quarantine(self.current_id(blamed_orig))
            self._quarantined_at[blamed_orig] = self.stepper.step_index
            count("repro_pe_quarantines_total", pe=blamed_orig)
        elif escalation is Escalation.EVICT:
            self._evict(blamed_orig)

    def _escalate_sdc(self, exc: SdcFaultError) -> None:
        """Apply the policy against the PE an ABFT check blamed.

        Unlike a failed exchange, SDC detection names a single PE
        directly — no link-endpoint ambiguity — so the failure lands
        on exactly that PE's health record.  Quarantine circuit-breaks
        its links (the numeric no-op rung of the ladder; it cannot fix
        a bad core, but it is the policy's mandated intermediate step);
        a continued streak evicts the PE and its corrupted influence
        with it.
        """
        if exc.pe is None:
            return
        blamed_orig = self.original_id(exc.pe)
        escalation = self.health.record_failure(blamed_orig)
        if escalation is Escalation.QUARANTINE:
            self.smvp.quarantine(self.current_id(blamed_orig))
            self._quarantined_at[blamed_orig] = self.stepper.step_index
            count("repro_pe_quarantines_total", pe=blamed_orig)
        elif escalation is Escalation.EVICT:
            # Detection-to-eviction latency, in retried supersteps.
            record_sdc_latency(
                float(self.health.consecutive_failures[blamed_orig])
            )
            self._evict(blamed_orig)

    def _check_recovery_budget(self, step: Optional[int]) -> None:
        """Enforce the per-run escalation deadline, if one is set."""
        budget = self.policy.recovery_budget
        if budget is not None and self.retried_supersteps > budget:
            raise RecoveryDeadlineError(
                f"recovery budget exhausted: {self.retried_supersteps} "
                f"retried supersteps exceed the per-run budget of "
                f"{budget}",
                budget=budget,
                retried=self.retried_supersteps,
                step=step,
            )

    # -- eviction ----------------------------------------------------------

    def _evict(self, orig_pe: int) -> EvictionEvent:
        """Evict one PE online and splice the run back together."""
        if len(self._current_to_orig) < 2:
            raise PermanentFailureError(
                "cannot evict the last surviving PE", pe=orig_pe
            )
        if (
            self.policy.max_evictions is not None
            and len(self.events) >= self.policy.max_evictions
        ):
            raise PermanentFailureError(
                f"eviction budget ({self.policy.max_evictions}) "
                "exhausted",
                pe=orig_pe,
            )
        stepper = self.stepper
        old_smvp = self.smvp
        cur = self._current_to_orig.index(orig_pe)
        old_distribution = old_smvp.distribution
        old_schedule = old_smvp.schedule
        step_index = stepper.step_index
        dead_physical = int(old_smvp.pe_ids[cur])

        new_smvp, redistribution = old_smvp.reconfigure_without(cur)
        migration = migration_plan(
            old_distribution,
            new_smvp.distribution,
            cur,
            redistribution.survivor_map,
        )
        segment = (
            self.shadow.segment(cur, step_index)
            if self.policy.prefer_shadow
            else None
        )
        recomputed = 0
        if segment is not None:
            u, u_prev = splice_state(
                old_distribution, cur, stepper.u, stepper.u_prev, segment
            )
            stepper.rebind_smvp(new_smvp)
            stepper.set_state(u, u_prev, step_index)
            source = "shadow"
        else:
            recomputed = self._rollback_and_recompute(
                new_smvp, old_distribution, orig_pe, step_index
            )
            source = "checkpoint"
        old_smvp.close()

        self._current_to_orig.pop(cur)
        self.health.mark_evicted(orig_pe)
        self._evicted_physical.append((step_index, dead_physical))
        self._quarantined_at.pop(orig_pe, None)
        self.shadow = ShadowStore(new_smvp.distribution)
        self.shadow.capture_from(stepper)

        delta = schedule_delta(
            old_schedule,
            new_smvp.schedule,
            id_map=redistribution.survivor_map,
        )
        cost = None
        if self.machine is not None:
            cost = model_reconfiguration(
                redistribution.affinity_flops,
                migration.migrated_words,
                migration.migrated_blocks,
                self.machine,
                recomputed_supersteps=recomputed,
            )
        event = EvictionEvent(
            dead_pe=orig_pe,
            dead_pe_current=cur,
            superstep=step_index,
            num_pes_before=old_distribution.num_parts,
            num_pes_after=new_smvp.num_parts,
            recovery_source=source,
            recomputed_supersteps=recomputed,
            migrated_words=migration.migrated_words,
            migrated_blocks=migration.migrated_blocks,
            shadow_words=migration.shadow_words,
            repartition_flops=redistribution.affinity_flops,
            redistribution_waves=redistribution.waves,
            delta=delta,
            cost=cost,
        )
        self.events.append(event)
        record_eviction(event)
        self.resume_points.append(
            ResumePoint(
                partition_parts=new_smvp.partition.parts.copy(),
                num_parts=new_smvp.num_parts,
                u=stepper.u.copy(),
                u_prev=stepper.u_prev.copy(),
                step_index=stepper.step_index,
                superstep=new_smvp._superstep,
                quarantined=new_smvp.quarantined,
                pe_ids=new_smvp.pe_ids.copy(),
            )
        )
        return event

    def _rollback_and_recompute(
        self, new_smvp, old_distribution, orig_pe: int, step_index: int
    ) -> int:
        """Checkpoint fallback: load, validate, recompute forward.

        Returns the number of recomputed supersteps.  The checkpoint
        must match the distribution the run was on when it was written
        (its header is validated against ``old_distribution``) — the
        whole state rolls back, so no cross-layout splicing happens.
        """
        stepper = self.stepper
        ck = (
            self.checkpoints.latest()
            if self.checkpoints is not None
            else None
        )
        if ck is None:
            raise PermanentFailureError(
                f"PE {orig_pe} died with no current shadow and no "
                "checkpoint to roll back to — the run is lost",
                pe=orig_pe,
                step=step_index,
            )
        if not ck.matches(old_distribution):
            raise PermanentFailureError(
                f"latest checkpoint (step {ck.step_index}) was written "
                "under a different distribution than the failing run — "
                "refusing to splice across layouts",
                pe=orig_pe,
                step=step_index,
            )
        stepper.rebind_smvp(new_smvp)
        stepper.set_state(ck.u, ck.u_prev, ck.step_index)
        recomputed = step_index - ck.step_index
        for _ in range(recomputed):
            force = (
                self._force_at(stepper.time)
                if self._force_at is not None
                else None
            )
            stepper.step(force)
        count(
            "repro_recomputed_supersteps_total",
            recomputed,
            pe=orig_pe,
        )
        return recomputed

    # -- elastic growth ----------------------------------------------------

    def _grow(
        self,
        reason: str = "scheduled",
        eff_before: Optional[float] = None,
        eff_after: Optional[float] = None,
    ) -> ScaleEvent:
        """Bring one PE online mid-run.

        Replicated shared-node storage means growth loses no rows: the
        global ``(u, u_prev)`` arrays stay valid verbatim, so unlike
        eviction there is no splice — the stepper is rebound to the
        new executor and the run continues, bit-identical to a fresh
        run launched at the p+1 layout from the same state.
        """
        policy = self.scale_policy
        if (
            policy is not None
            and policy.max_grows is not None
            and self._grow_count >= policy.max_grows
        ):
            raise ValueError(
                f"growth budget ({policy.max_grows}) exhausted"
            )
        stepper = self.stepper
        old_smvp = self.smvp
        old_distribution = old_smvp.distribution
        old_schedule = old_smvp.schedule
        step_index = stepper.step_index
        physical, readmitted = self._pick_physical_id(step_index)

        new_smvp, redistribution = old_smvp.reconfigure_with(
            physical_id=physical
        )
        migration = growth_migration_plan(
            old_distribution, new_smvp.distribution
        )
        stepper.rebind_smvp(new_smvp)
        old_smvp.close()

        self._current_to_orig.append(self.health.add_pe())
        self._grow_count += 1
        self.shadow = ShadowStore(new_smvp.distribution)
        self.shadow.capture_from(stepper)

        # Survivor ids are stable under growth (the new PE takes the
        # fresh highest slot), so the delta maps pairs identically.
        delta = schedule_delta(old_schedule, new_smvp.schedule)
        event = ScaleEvent(
            kind="grow",
            superstep=step_index,
            pe=int(new_smvp.pe_ids[-1]),
            num_pes_before=old_distribution.num_parts,
            num_pes_after=new_smvp.num_parts,
            migrated_words=migration.migrated_words,
            migrated_blocks=migration.migrated_blocks,
            predicted_efficiency_before=eff_before,
            predicted_efficiency_after=eff_after,
            readmitted=readmitted,
            delta=delta,
            reason=reason,
        )
        self.scale_events.append(event)
        record_scale_event(event)
        self._last_scale_step = step_index
        self.resume_points.append(
            ResumePoint(
                partition_parts=new_smvp.partition.parts.copy(),
                num_parts=new_smvp.num_parts,
                u=stepper.u.copy(),
                u_prev=stepper.u_prev.copy(),
                step_index=stepper.step_index,
                superstep=new_smvp._superstep,
                quarantined=new_smvp.quarantined,
                pe_ids=new_smvp.pe_ids.copy(),
            )
        )
        return event

    def _pick_physical_id(self, step_index: int):
        """Choose the hardware for a grow: rejoin or fresh.

        When the scale policy allows readmission and an evicted
        physical PE has sat out its probation window, the oldest such
        PE rejoins under its original physical id — its fault streams
        (keyed by physical id) resume where its history left off.
        Otherwise ``None`` lets the executor provision fresh hardware
        at ``max(pe_ids) + 1``.
        """
        policy = self.scale_policy
        if policy is not None and policy.readmit_evicted:
            for i, (evicted_at, physical) in enumerate(
                self._evicted_physical
            ):
                if step_index - evicted_at >= policy.probation_steps:
                    self._evicted_physical.pop(i)
                    return physical, True
        return None, False

    def _maybe_readmit(self) -> None:
        """Release quarantined PEs whose probation has elapsed."""
        policy = self.scale_policy
        k = self.stepper.step_index
        for orig in self.health.quarantined():
            since = self._quarantined_at.setdefault(orig, k)
            if k - since < policy.probation_steps:
                continue
            cur = self.current_id(orig)
            if cur is None:
                continue
            self.smvp.unquarantine(cur)
            self.health.readmit(orig)
            del self._quarantined_at[orig]
            event = ScaleEvent(
                kind="readmit",
                superstep=k,
                pe=int(self.smvp.pe_ids[cur]),
                num_pes_before=self.smvp.num_parts,
                num_pes_after=self.smvp.num_parts,
                readmitted=True,
                reason=(
                    f"probation served "
                    f"({policy.probation_steps} clean supersteps)"
                ),
            )
            self.scale_events.append(event)
            record_scale_event(event)

    def _maybe_autoscale(self) -> None:
        """Consult the contention-aware oracle; grow or shrink.

        Grow when the run is short-handed (evictions or quarantines,
        unless ``require_deficit=False``) *and* the fitted model
        predicts the p+1 layout beats the current one by at least
        ``grow_threshold``; shrink after ``shrink_patience``
        consecutive under-utilized evaluations.  Cooldown keeps one
        noisy evaluation from thrashing.
        """
        policy = self.scale_policy
        k = self.stepper.step_index
        if k % policy.evaluation_interval != 0:
            return
        if (
            self._last_scale_step is not None
            and k - self._last_scale_step < policy.cooldown_steps
        ):
            return
        smvp = self.smvp
        u = self.stepper.u
        rhs = int(u.shape[1]) if u.ndim == 2 else 1
        flops = smvp.distribution.local_counts["flops"]
        eff_now = predicted_efficiency(
            flops, smvp.schedule, self.machine, rhs=rhs
        )
        deficit = (self._initial_num_pes - smvp.num_parts) + len(
            self.health.quarantined()
        )
        can_grow = (
            policy.max_grows is None or self._grow_count < policy.max_grows
        )
        if can_grow and (deficit > 0 or not policy.require_deficit):
            try:
                eff_next, _, _ = efficiency_after_growth(
                    smvp.distribution.mesh,
                    smvp.partition,
                    self.machine,
                    rhs=rhs,
                )
            except ValueError:
                eff_next = None  # nothing to peel — every PE at floor
            if (
                eff_next is not None
                and eff_next - eff_now >= policy.grow_threshold
            ):
                with stage_span("growth", track="resilience"):
                    self._grow(
                        reason=(
                            f"autoscale: predicted efficiency "
                            f"{eff_now:.3f} -> {eff_next:.3f}"
                        ),
                        eff_before=eff_now,
                        eff_after=eff_next,
                    )
                self._under_utilized_streak = 0
                return
        if eff_now < policy.shrink_utilization:
            self._under_utilized_streak += 1
        else:
            self._under_utilized_streak = 0
        if self._under_utilized_streak < policy.shrink_patience:
            return
        if len(self._current_to_orig) < 2:
            return
        if (
            self.policy.max_evictions is not None
            and len(self.events) >= self.policy.max_evictions
        ):
            return
        loads = np.bincount(
            smvp.partition.parts, minlength=smvp.num_parts
        )
        orig = self.original_id(int(np.argmin(loads)))
        with stage_span("eviction", track="resilience"):
            ev = self._evict(orig)
        event = ScaleEvent(
            kind="shrink",
            superstep=k,
            pe=ev.dead_pe,
            num_pes_before=ev.num_pes_before,
            num_pes_after=ev.num_pes_after,
            migrated_words=ev.migrated_words,
            migrated_blocks=ev.migrated_blocks,
            predicted_efficiency_before=eff_now,
            reason=(
                f"under-utilized (predicted efficiency {eff_now:.3f} < "
                f"{policy.shrink_utilization}) for "
                f"{policy.shrink_patience} evaluations"
            ),
        )
        self.scale_events.append(event)
        record_scale_event(event)
        self._last_scale_step = k
        self._under_utilized_streak = 0


def _normalize_grows(
    grow_schedule: Optional[Mapping[int, int]]
) -> Dict[int, int]:
    """``{superstep: count}`` with validation."""
    out: Dict[int, int] = {}
    if grow_schedule is None:
        return out
    items = (
        grow_schedule.items()
        if hasattr(grow_schedule, "items")
        else grow_schedule
    )
    for step, n in items:
        n = int(n)
        if n < 1:
            raise ValueError("grow count must be positive")
        out[int(step)] = out.get(int(step), 0) + n
    return out


def _normalize_kills(
    kill_schedule: Optional[Mapping[int, object]]
) -> Dict[int, List[int]]:
    """``{superstep: pe-or-sequence}`` -> ``{superstep: [pes]}``."""
    out: Dict[int, List[int]] = {}
    if kill_schedule is None:
        return out
    items = (
        kill_schedule.items()
        if hasattr(kill_schedule, "items")
        else kill_schedule
    )
    for step, pes in items:
        if isinstance(pes, (int, np.integer)):
            pes = [int(pes)]
        out[int(step)] = [int(pe) for pe in pes]
    return out
