"""Elastic scale-out: autoscaling policy and growth accounting.

The eviction machinery (:mod:`repro.resilience.supervisor`) shrinks a
run when hardware dies.  This module supplies the other direction —
and the judgement for both:

* :class:`ScalePolicy` — when to grow onto a fresh PE, when to shrink
  off an under-utilized one, and when a quarantined PE has served
  enough probation to be readmitted to full service;
* :func:`predicted_efficiency` — the contention-aware oracle the
  policy consults: parallel efficiency at a candidate layout under the
  fitted machine model (Eq. (2) plus the ``T_q * q_i**2`` queue-search
  term when the machine carries one);
* :func:`growth_migration_plan` — prices a growth reconfiguration the
  way :func:`repro.resilience.eviction.migration_plan` prices an
  eviction: the state words the new PE must receive and one migration
  message per donor.

Growth is cheaper than eviction in one structural way: replicated
shared-node storage means no rows are lost, so ``(u, u_prev)`` stay
valid verbatim and no splicing happens — the supervisor only rebinds
the stepper to the new executor.  That is what makes mid-run growth
bit-identical to a from-scratch run at the new layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.resilience.policy import PolicyConfigError
from repro.resilience.shadow import STATE_WORDS_PER_NODE
from repro.smvp.schedule import ScheduleDelta


@dataclass(frozen=True)
class ScalePolicy:
    """Thresholds governing elastic growth, shrink, and readmission.

    Parameters
    ----------
    grow_threshold:
        Minimum predicted-efficiency *gain* (absolute, at the
        candidate p+1 layout versus the current one) before the
        autoscaler grows.  The contention term makes this a real
        trade-off: more PEs shrink per-PE compute but deepen the
        max incoming-message queue.
    shrink_utilization:
        Predicted parallel efficiency below which the layout counts as
        under-utilized; ``shrink_patience`` consecutive evaluations
        below it shrink the run by evicting the lightest PE.
    shrink_patience:
        Consecutive under-utilized evaluations before a shrink.
    probation_steps:
        Supersteps a quarantined PE must survive on the verified path
        before :meth:`SuperstepSupervisor` readmits it.
    evaluation_interval:
        Evaluate the autoscaler every this-many completed steps.
    cooldown_steps:
        Minimum steps between consecutive scale actions, so one noisy
        evaluation cannot thrash grow/shrink.
    max_grows:
        Hard cap on grow actions per run (``None``: unbounded).
    readmit_evicted:
        Whether growth may rejoin an *evicted* physical PE (after its
        probation window) instead of provisioning fresh hardware.
        The rejoined PE keeps its physical id — and therefore its
        fault history.
    require_deficit:
        Only grow when the run is actually short-handed: PEs were
        evicted or are quarantined.  ``False`` lets the oracle grow a
        healthy run purely on predicted efficiency.
    autoscale:
        Master switch for the grow/shrink oracle.  ``False`` keeps the
        policy's probation/readmission rules active (used by the chaos
        harness's ``--readmit`` mode) without autonomous scaling.
    """

    grow_threshold: float = 0.02
    shrink_utilization: float = 0.25
    shrink_patience: int = 3
    probation_steps: int = 8
    evaluation_interval: int = 1
    cooldown_steps: int = 4
    max_grows: Optional[int] = None
    readmit_evicted: bool = True
    require_deficit: bool = True
    autoscale: bool = True

    def __post_init__(self) -> None:
        if self.grow_threshold < 0:
            raise PolicyConfigError("grow_threshold must be non-negative")
        if not 0.0 < self.shrink_utilization < 1.0:
            raise PolicyConfigError(
                "shrink_utilization must be in (0, 1)"
            )
        if self.shrink_patience < 1:
            raise PolicyConfigError("shrink_patience must be at least 1")
        if self.probation_steps < 1:
            raise PolicyConfigError("probation_steps must be at least 1")
        if self.evaluation_interval < 1:
            raise PolicyConfigError(
                "evaluation_interval must be at least 1"
            )
        if self.cooldown_steps < 0:
            raise PolicyConfigError("cooldown_steps must be non-negative")
        if self.max_grows is not None and self.max_grows < 0:
            raise PolicyConfigError("max_grows must be non-negative")


@dataclass(frozen=True)
class ScaleEvent:
    """One completed elastic action (grow, shrink, or readmission)."""

    kind: str  # "grow" | "shrink" | "readmit"
    superstep: int
    pe: int  # physical id (grow/readmit) or original id (shrink)
    num_pes_before: int
    num_pes_after: int
    migrated_words: int = 0
    migrated_blocks: int = 0
    predicted_efficiency_before: Optional[float] = None
    predicted_efficiency_after: Optional[float] = None
    readmitted: bool = False
    delta: Optional[ScheduleDelta] = None
    reason: str = ""


@dataclass(frozen=True)
class GrowthMigration:
    """State traffic required to bring one new PE online.

    The new PE must receive the ``(u, u_prev)`` words of every node
    now resident on it; each distinct donor (a PE that hosted at least
    one of those nodes under the old layout) sends one migration
    message.  Survivors keep their replicated rows — growth moves data
    *to* the newcomer only.
    """

    new_pe: int
    migrated_words: int
    migrated_blocks: int


def growth_migration_plan(
    old_distribution, new_distribution
) -> GrowthMigration:
    """Price the state movement of one growth reconfiguration."""
    new_pe = new_distribution.num_parts - 1
    if old_distribution.num_parts != new_pe:
        raise ValueError(
            "growth_migration_plan expects new layout = old layout + 1 PE"
        )
    gained = new_distribution.local_nodes(new_pe)
    donors = set()
    for pe in range(old_distribution.num_parts):
        if np.intersect1d(
            old_distribution.local_nodes(pe), gained, assume_unique=True
        ).size:
            donors.add(pe)
    return GrowthMigration(
        new_pe=new_pe,
        migrated_words=STATE_WORDS_PER_NODE * int(gained.size),
        migrated_blocks=len(donors),
    )


def predicted_efficiency(
    flops_per_pe, schedule, machine, rhs: int = 1
) -> float:
    """Parallel efficiency of a layout under the (fitted) machine.

    ``T_step = max_i(F_i T_f r) + max_i(B_i T_l + C_i T_w r
    [+ T_q q_i**2])`` — the same per-PE accounting as the simulator's
    barrier mode, including the contention correction when the machine
    carries ``tq``.  Efficiency is ``T_seq / (p * T_step)`` with
    ``T_seq = T_f r * sum_i F_i``.  This is the quantity the
    autoscaler compares across candidate layouts: the contention term
    is what lets it notice when an extra PE would deepen the worst
    incoming-message queue faster than it thins the compute.
    """
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    flops = np.asarray(flops_per_pe, dtype=np.float64)
    p = schedule.num_parts
    if flops.size != p:
        raise ValueError("flops_per_pe length must match the schedule")
    if p < 1 or float(flops.sum()) <= 0:
        raise ValueError("need at least one PE with work")
    tf = machine.tf * rhs
    t_comp = tf * float(flops.max())
    busy = (
        schedule.blocks_per_pe * machine.tl
        + schedule.words_per_pe * machine.tw * rhs
    )
    if machine.tq is not None:
        incoming = schedule.incoming_per_pe.astype(np.float64)
        busy = busy + machine.tq * incoming * incoming
    t_step = t_comp + (float(busy.max()) if len(busy) else 0.0)
    if t_step <= 0:
        return 1.0
    t_seq = tf * float(flops.sum())
    return t_seq / (p * t_step)


def efficiency_after_growth(
    mesh, partition, machine, rhs: int = 1
) -> Tuple[float, object, object]:
    """Predicted efficiency if the current layout grew by one PE.

    Builds the candidate p+1 layout with
    :func:`~repro.smvp.distribution.redistribute_after_addition`,
    prices it with :func:`predicted_efficiency`, and returns
    ``(efficiency, candidate_partition, redistribution)`` so a caller
    that decides to grow does not repeat the repartition.
    """
    from repro.smvp.distribution import (
        DataDistribution,
        redistribute_after_addition,
    )
    from repro.smvp.schedule import CommSchedule

    new_partition, redistribution = redistribute_after_addition(
        mesh, partition
    )
    distribution = DataDistribution(mesh, new_partition)
    schedule = CommSchedule(distribution)
    eff = predicted_efficiency(
        distribution.local_counts["flops"], schedule, machine, rhs=rhs
    )
    return eff, new_partition, redistribution
