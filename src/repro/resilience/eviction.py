"""State splicing and migration accounting for online PE eviction.

When a PE is declared permanently dead at the start of superstep
``k``, the trajectory state is the post-step-``k-1`` pair ``(u,
u_prev)``.  Every row resident on at least one survivor is intact
(replicated-shared-node storage); the dead PE's *exclusive* rows come
from its buddy's shadow segment (:mod:`repro.resilience.shadow`).
:func:`splice_state` assembles the full state from exactly those two
sources and refuses to proceed unless they cover every row — a
coverage hole means data loss and must surface as a typed error, not
as NaNs a thousand supersteps later.

:func:`migration_plan` prices the reconfiguration for the cost model
(:func:`repro.simulate.bsp.model_reconfiguration`): the words of
time-stepper state that must move so every survivor holds its new
resident rows, and one migration message per receiving survivor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.faults.errors import PermanentFailureError
from repro.resilience.shadow import STATE_WORDS_PER_NODE, ShadowSegment
from repro.smvp.distribution import DataDistribution


@dataclass(frozen=True)
class MigrationSummary:
    """State traffic required by one eviction.

    ``migrated_words`` counts the ``(u, u_prev)`` words survivors must
    receive for rows newly resident on them; ``migrated_blocks`` is
    one message per survivor that gains at least one node;
    ``shadow_words`` is the portion sourced from the buddy's shadow
    (the dead PE's exclusive rows).
    """

    dead_pe: int
    migrated_words: int
    migrated_blocks: int
    shadow_words: int


def splice_state(
    old_distribution: DataDistribution,
    dead_pe: int,
    u: np.ndarray,
    u_prev: np.ndarray,
    shadow_segment: ShadowSegment,
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild the full state from survivor rows plus the shadow.

    ``u``/``u_prev`` carry the survivors' view of the post-step state
    (their resident rows are authoritative; the dead PE's exclusive
    rows in them are unreachable and ignored).  Returns fresh arrays
    built only from survivor-resident rows and the shadow segment,
    verifying the two sources cover every dof exactly.
    """
    mesh = old_distribution.mesh
    n = mesh.num_nodes
    # 1-D vector state, or a (3n, r) block of scenario columns — the
    # splice is row-wise either way (every column of a shadowed row
    # was captured together).
    if u.shape[0] != 3 * n or u.shape != u_prev.shape or u.ndim > 2:
        raise ValueError("state vectors must have 3 * num_nodes rows")
    covered = np.zeros(n, dtype=bool)
    out_u = np.full(u.shape, np.nan)
    out_prev = np.full(u_prev.shape, np.nan)
    dof3 = np.arange(3)
    for pe in range(old_distribution.num_parts):
        if pe == dead_pe:
            continue
        nodes = old_distribution.local_nodes(pe)
        dofs = (3 * nodes[:, None] + dof3).ravel()
        out_u[dofs] = u[dofs]
        out_prev[dofs] = u_prev[dofs]
        covered[nodes] = True
    shadow_nodes = old_distribution.exclusive_nodes[dead_pe]
    if shadow_segment.dofs.size != 3 * shadow_nodes.size:
        raise PermanentFailureError(
            f"shadow segment for PE {dead_pe} covers "
            f"{shadow_segment.dofs.size} dofs, expected "
            f"{3 * shadow_nodes.size}",
            pe=dead_pe,
        )
    out_u[shadow_segment.dofs] = shadow_segment.u
    out_prev[shadow_segment.dofs] = shadow_segment.u_prev
    covered[shadow_nodes] = True
    if not covered.all():
        missing = int(np.count_nonzero(~covered))
        raise PermanentFailureError(
            f"evicting PE {dead_pe} leaves {missing} node(s) with no "
            "surviving replica and no shadow — state is unrecoverable",
            pe=dead_pe,
        )
    return out_u, out_prev


def migration_plan(
    old_distribution: DataDistribution,
    new_distribution: DataDistribution,
    dead_pe: int,
    survivor_map: Dict[int, int],
) -> MigrationSummary:
    """Price the state movement of one eviction.

    A survivor must receive the state words of every node that is
    resident on it under the new distribution but was not under the
    old one (its replicated rows for everything else are already
    local and correct).
    """
    migrated_words = 0
    migrated_blocks = 0
    for old_pe, new_pe in sorted(survivor_map.items()):
        before = old_distribution.local_nodes(old_pe)
        after = new_distribution.local_nodes(new_pe)
        gained = np.setdiff1d(after, before, assume_unique=True)
        if gained.size:
            migrated_words += STATE_WORDS_PER_NODE * int(gained.size)
            migrated_blocks += 1
    shadow_words = 2 * 3 * int(
        old_distribution.exclusive_nodes[dead_pe].size
    )
    return MigrationSummary(
        dead_pe=dead_pe,
        migrated_words=migrated_words,
        migrated_blocks=migrated_blocks,
        shadow_words=shadow_words,
    )
