"""In-memory shadow copies of each PE's exclusive vector rows.

The replicated-shared-node storage (paper Section 2.3) gives most of
PE failure recovery away for free: a node resident on several PEs has
its vector entries replicated bit-identically on all of them, so when
one PE dies every *shared* row survives on a neighbor.  The only rows
lost with a PE are its **exclusive** nodes — residency exactly 1
(:attr:`~repro.smvp.distribution.DataDistribution.exclusive_nodes`).

:class:`ShadowStore` models buddy replication of exactly those rows:
after every completed step, each PE's exclusive segment of ``(u,
u_prev)`` is snapshotted to its buddy (the next surviving PE,
cyclically).  The store is tiny — exclusive rows only, roughly ``1/P``
of the state per PE — and keeps recovery at **zero recompute**: splice
the buddy's segment into the survivors' rows and step on.  When the
store is stale or disabled, the supervisor falls back to checkpoint
rollback plus deterministic recompute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.smvp.distribution import DataDistribution

#: Words of time-stepper state per mesh node: 3 dofs each in ``u``
#: and ``u_prev`` (64-bit words).
STATE_WORDS_PER_NODE = 6


class ShadowSegment:
    """One PE's shadowed exclusive state at a known step."""

    __slots__ = ("dofs", "u", "u_prev", "step_index")

    def __init__(
        self,
        dofs: np.ndarray,
        u: np.ndarray,
        u_prev: np.ndarray,
        step_index: int,
    ) -> None:
        self.dofs = dofs
        self.u = u
        self.u_prev = u_prev
        self.step_index = step_index

    @property
    def words(self) -> int:
        return 2 * int(self.dofs.size)


class ShadowStore:
    """Buddy snapshots of every PE's exclusive dofs.

    Capture the state *after* each completed step (and once at
    construction, so an eviction during the very first superstep is
    covered).  ``segment(pe, step_index)`` returns the PE's shadowed
    rows only if they are current for that step — a stale shadow is
    reported as missing, never silently spliced.
    """

    def __init__(self, distribution: DataDistribution) -> None:
        self.distribution = distribution
        dof3 = np.arange(3)
        self._dofs: List[np.ndarray] = [
            (3 * nodes[:, None] + dof3).ravel()
            for nodes in distribution.exclusive_nodes
        ]
        self._segments: Dict[int, ShadowSegment] = {}
        self.captures = 0

    @property
    def num_parts(self) -> int:
        return self.distribution.num_parts

    def buddy_of(self, pe: int) -> int:
        """The PE holding ``pe``'s shadow (next PE, cyclically)."""
        return (pe + 1) % self.num_parts

    @property
    def words_per_capture(self) -> int:
        """Replication traffic per capture: every exclusive dof, twice."""
        return 2 * sum(int(d.size) for d in self._dofs)

    def capture(
        self, u: np.ndarray, u_prev: np.ndarray, step_index: int
    ) -> None:
        """Snapshot every PE's exclusive segment of the given state."""
        for pe, dofs in enumerate(self._dofs):
            self._segments[pe] = ShadowSegment(
                dofs, u[dofs].copy(), u_prev[dofs].copy(), int(step_index)
            )
        self.captures += 1

    def capture_from(self, stepper) -> None:
        """Snapshot straight from an ``ExplicitTimeStepper``."""
        self.capture(stepper.u, stepper.u_prev, stepper.step_index)

    def segment(
        self, pe: int, step_index: int
    ) -> Optional[ShadowSegment]:
        """The PE's shadowed segment iff current for ``step_index``."""
        seg = self._segments.get(pe)
        if seg is None or seg.step_index != step_index:
            return None
        return seg

    def coverage(self, pe: int) -> Tuple[int, int]:
        """(exclusive dofs shadowed, total state words) for one PE."""
        dofs = int(self._dofs[pe].size)
        return dofs, 2 * dofs
