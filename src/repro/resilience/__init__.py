"""Self-healing execution for the distributed SMVP pipeline.

The fault layer (:mod:`repro.faults`) recovers *transient* faults —
dropped, corrupted, duplicated blocks — inside a superstep.  This
package handles what it cannot: links that stay broken and PEs that
die for good.  Four pieces:

* :mod:`~repro.resilience.policy` — the escalation ladder
  (retry → quarantine → evict) and per-PE health tracking.
* :mod:`~repro.resilience.shadow` — buddy shadow copies of each PE's
  *exclusive* vector rows (everything else survives automatically via
  the paper's replicated-shared-node storage).
* :mod:`~repro.resilience.eviction` — state splicing and migration
  accounting for online PE eviction.
* :mod:`~repro.resilience.supervisor` — the superstep supervisor
  wrapping the time-stepped executor loop; evicts dead PEs online,
  redistributes their rows to the survivors, rebuilds the exchange
  schedule, and continues bit-consistently on P-1 PEs.
* :mod:`~repro.resilience.chaos` — seeded kill schedules and the
  survivor-equivalence proof harness (CLI: ``repro-chaos``).
* :mod:`~repro.resilience.elastic` — the other direction: online PE
  addition, the autoscaling grow/shrink/readmit policy, and the
  contention-aware efficiency oracle behind it.
"""

from repro.resilience.chaos import (
    ChaosReport,
    KillSchedule,
    parse_grow_schedule,
    render_chaos_report,
    run_chaos,
)
from repro.resilience.elastic import (
    GrowthMigration,
    ScaleEvent,
    ScalePolicy,
    growth_migration_plan,
    predicted_efficiency,
)
from repro.resilience.eviction import (
    MigrationSummary,
    migration_plan,
    splice_state,
)
from repro.resilience.policy import (
    Escalation,
    HealthTracker,
    PEState,
    PolicyConfigError,
    RecoveryPolicy,
)
from repro.resilience.shadow import (
    STATE_WORDS_PER_NODE,
    ShadowSegment,
    ShadowStore,
)
from repro.resilience.supervisor import (
    EvictionEvent,
    ResumePoint,
    SuperstepSupervisor,
    SupervisorReport,
)

__all__ = [
    "ChaosReport",
    "Escalation",
    "EvictionEvent",
    "GrowthMigration",
    "HealthTracker",
    "KillSchedule",
    "MigrationSummary",
    "PEState",
    "PolicyConfigError",
    "RecoveryPolicy",
    "ResumePoint",
    "STATE_WORDS_PER_NODE",
    "ScaleEvent",
    "ScalePolicy",
    "ShadowSegment",
    "ShadowStore",
    "SuperstepSupervisor",
    "SupervisorReport",
    "growth_migration_plan",
    "migration_plan",
    "parse_grow_schedule",
    "predicted_efficiency",
    "render_chaos_report",
    "run_chaos",
    "splice_state",
]
