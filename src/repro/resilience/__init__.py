"""Self-healing execution for the distributed SMVP pipeline.

The fault layer (:mod:`repro.faults`) recovers *transient* faults —
dropped, corrupted, duplicated blocks — inside a superstep.  This
package handles what it cannot: links that stay broken and PEs that
die for good.  Four pieces:

* :mod:`~repro.resilience.policy` — the escalation ladder
  (retry → quarantine → evict) and per-PE health tracking.
* :mod:`~repro.resilience.shadow` — buddy shadow copies of each PE's
  *exclusive* vector rows (everything else survives automatically via
  the paper's replicated-shared-node storage).
* :mod:`~repro.resilience.eviction` — state splicing and migration
  accounting for online PE eviction.
* :mod:`~repro.resilience.supervisor` — the superstep supervisor
  wrapping the time-stepped executor loop; evicts dead PEs online,
  redistributes their rows to the survivors, rebuilds the exchange
  schedule, and continues bit-consistently on P-1 PEs.
* :mod:`~repro.resilience.chaos` — seeded kill schedules and the
  survivor-equivalence proof harness (CLI: ``repro-chaos``).
"""

from repro.resilience.chaos import (
    ChaosReport,
    KillSchedule,
    render_chaos_report,
    run_chaos,
)
from repro.resilience.eviction import (
    MigrationSummary,
    migration_plan,
    splice_state,
)
from repro.resilience.policy import (
    Escalation,
    HealthTracker,
    PEState,
    RecoveryPolicy,
)
from repro.resilience.shadow import (
    STATE_WORDS_PER_NODE,
    ShadowSegment,
    ShadowStore,
)
from repro.resilience.supervisor import (
    EvictionEvent,
    ResumePoint,
    SuperstepSupervisor,
    SupervisorReport,
)

__all__ = [
    "ChaosReport",
    "Escalation",
    "EvictionEvent",
    "HealthTracker",
    "KillSchedule",
    "MigrationSummary",
    "PEState",
    "RecoveryPolicy",
    "ResumePoint",
    "STATE_WORDS_PER_NODE",
    "ShadowSegment",
    "ShadowStore",
    "SuperstepSupervisor",
    "SupervisorReport",
    "migration_plan",
    "render_chaos_report",
    "run_chaos",
    "splice_state",
]
