"""Chaos harness: seeded kill schedules and survivor-equivalence proof.

``repro-chaos`` (see :mod:`repro.cli`) drives this module: run a
time-stepped distributed simulation under the
:class:`~repro.resilience.supervisor.SuperstepSupervisor` with a
deterministic :class:`KillSchedule` of permanent PE failures, then
*prove* the healing worked by relaunching a fresh executor from each
final :class:`~repro.resilience.supervisor.ResumePoint` and demanding
the final state match the supervised run to the last bit — the
acceptance bar of the self-healing design (DESIGN.md §10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.elastic import ScalePolicy
from repro.resilience.policy import RecoveryPolicy
from repro.resilience.supervisor import (
    EvictionEvent,
    SuperstepSupervisor,
    SupervisorReport,
)

#: SeedSequence domain tag for kill-schedule draws (the fault
#: injector's domains are 1-6; chaos stays clear of them).
_DOMAIN_KILLS = 101


@dataclass(frozen=True)
class KillSchedule:
    """Deterministic permanent-failure schedule.

    ``kills`` is a sorted tuple of ``(superstep, original PE id)``
    pairs; each PE appears at most once (a PE only dies once).
    """

    kills: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        pes = [pe for _, pe in self.kills]
        if len(set(pes)) != len(pes):
            raise ValueError("a PE can only be killed once")
        for step, pe in self.kills:
            if step < 0 or pe < 0:
                raise ValueError("kill entries must be non-negative")
        object.__setattr__(self, "kills", tuple(sorted(self.kills)))

    @classmethod
    def parse(cls, spec: str) -> "KillSchedule":
        """Parse ``"step:pe[,step:pe...]"``, e.g. ``"12:3,40:1"``."""
        kills = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                step_text, pe_text = token.split(":")
                kills.append((int(step_text), int(pe_text)))
            except ValueError:
                raise ValueError(
                    f"bad kill token {token!r}; expected 'superstep:pe'"
                ) from None
        if not kills:
            raise ValueError("empty kill schedule")
        return cls(tuple(kills))

    @classmethod
    def random(
        cls, seed: int, num_pes: int, num_steps: int, count: int = 1
    ) -> "KillSchedule":
        """Seeded random schedule: ``count`` distinct PEs at distinct
        supersteps in ``[0, num_steps)``, at least one PE surviving."""
        if not 1 <= count < num_pes:
            raise ValueError("count must leave at least one survivor")
        if count > num_steps:
            raise ValueError("need at least one superstep per kill")
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(seed, _DOMAIN_KILLS))
        )
        pes = rng.choice(num_pes, size=count, replace=False)
        steps = rng.choice(num_steps, size=count, replace=False)
        return cls(
            tuple((int(s), int(p)) for s, p in zip(steps, pes))
        )

    def as_mapping(self) -> Dict[int, List[int]]:
        out: Dict[int, List[int]] = {}
        for step, pe in self.kills:
            out.setdefault(step, []).append(pe)
        return out

    def __str__(self) -> str:
        return ",".join(f"{step}:{pe}" for step, pe in self.kills)


def parse_grow_schedule(spec: str) -> Dict[int, int]:
    """Parse ``"step[:count][,step[:count]...]"``, e.g. ``"24"`` or
    ``"10:2,30"`` — a bare step grows by one PE."""
    out: Dict[int, int] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            if ":" in token:
                step_text, count_text = token.split(":")
                step, count = int(step_text), int(count_text)
            else:
                step, count = int(token), 1
        except ValueError:
            raise ValueError(
                f"bad grow token {token!r}; expected 'superstep[:count]'"
            ) from None
        if step < 0 or count < 1:
            raise ValueError(
                f"bad grow token {token!r}; step must be non-negative "
                "and count positive"
            )
        out[step] = out.get(step, 0) + count
    if not out:
        raise ValueError("empty grow schedule")
    return out


@dataclass
class ChaosReport:
    """Outcome of one chaos run, equivalence proof included."""

    instance: str
    kernel: str
    backend: str
    num_steps: int
    num_pes_initial: int
    num_pes_final: int
    kill_schedule: str
    supervisor: SupervisorReport = field(repr=False, default=None)
    survivor_equivalent: Optional[bool] = None
    survivor_max_abs_diff: Optional[float] = None
    final_max_displacement: float = 0.0
    #: Whether the run's executors carried ABFT checksum verification.
    abft: bool = False
    # SDC tallies from the executor's cumulative FaultStats.
    sdc_injected: int = 0
    sdc_detected: int = 0
    sdc_recomputed: int = 0
    sdc_scrubbed: int = 0
    sdc_escaped: int = 0
    #: Every injected SDC produced a detection (and none escaped).
    sdc_all_detected: Optional[bool] = None
    #: Every detection was blamed to a (superstep, physical PE) that
    #: really had an injection — no false accusations.
    sdc_blame_correct: Optional[bool] = None
    #: No-eviction SDC runs only: the healed final state is bit-equal
    #: to a fault-free reference run of the same configuration.
    clean_equivalent: Optional[bool] = None
    clean_max_abs_diff: Optional[float] = None
    #: Sticky (bad-core) PEs all ended the run evicted.
    sticky_evicted: Optional[bool] = None
    #: Elastic scale-out accounting.
    grow_schedule: str = "none"
    grows: int = 0
    readmissions: int = 0
    #: Every scheduled grow actually reconfigured the run.
    grow_applied: Optional[bool] = None
    #: ``--readmit`` runs only: at least one previously evicted
    #: physical PE rejoined (same physical id, fault history intact).
    readmit_ok: Optional[bool] = None

    @property
    def evictions(self) -> List[EvictionEvent]:
        return self.supervisor.evictions if self.supervisor else []

    @property
    def scale_events(self):
        return self.supervisor.scale_events if self.supervisor else []

    @property
    def passed(self) -> bool:
        """Every gate that applied to this run held.

        Gates are ``None`` when they did not apply (e.g. no clean
        reference on an eviction run); a run with no applicable gate —
        ``verify=False`` and no SDC — passes vacuously.
        """
        gates = [
            self.survivor_equivalent,
            self.sdc_all_detected,
            self.sdc_blame_correct,
            self.clean_equivalent,
            self.sticky_evicted,
            self.grow_applied,
            self.readmit_ok,
        ]
        return all(g for g in gates if g is not None) if any(
            g is not None for g in gates
        ) else True


def run_chaos(
    instance: str = "sf10e",
    pes: int = 8,
    steps: int = 40,
    kills: Optional[KillSchedule] = None,
    kernel: str = "csr",
    backend: str = "serial",
    policy: Optional[RecoveryPolicy] = None,
    machine_name: str = "t3e",
    fault_rate: float = 0.0,
    seed: int = 0,
    checkpoint_dir=None,
    checkpoint_interval: int = 10,
    verify: bool = True,
    flip_rate: float = 0.0,
    sticky: Tuple[int, ...] = (),
    sticky_from: int = 0,
    abft: Optional[bool] = None,
    grows: Optional[Dict[int, int]] = None,
    scale_policy: Optional[ScalePolicy] = None,
    readmit: bool = False,
) -> ChaosReport:
    """Run a supervised simulation under a kill schedule and verify.

    The verification relaunches a *fresh* executor from the last
    eviction's :class:`ResumePoint` — same partition, same injector
    seed, same exchange counter, same quarantine set — steps it to the
    end, and demands exact (bit-level) agreement with the supervised
    run's final ``(u, u_prev)``.

    ``flip_rate`` turns on silent data corruption: per PE per
    superstep, bits flip in the local input vector and kernel output at
    that rate and in the assembled stiffness block at half of it (so
    ``flip_rate`` must be at most 0.4).  ``sticky`` names physical PE
    ids that corrupt *every* kernel output from ``sticky_from`` on —
    the bad-core model that defeats inline recompute and must be
    escalated through quarantine to eviction.  Either implies ABFT
    verification on every executor (override with ``abft``); when no
    kill schedule is given, SDC runs default to an *empty* one so the
    corruption story stands alone.

    SDC runs add gates beyond survivor equivalence: every injection
    detected and blamed to the right (superstep, physical PE), nothing
    escaped, and — when no eviction reshaped the partition — the healed
    final state bit-identical to a fault-free reference run.

    ``grows`` schedules online PE additions (``{superstep: count}``);
    the run must then prove rejoin equivalence too — the last resume
    point (from the last kill *or* grow) relaunches fresh at the grown
    layout and must match to the bit.  ``readmit`` requires ``grows``
    and makes growth rejoin previously evicted physical PEs after the
    scale policy's probation window (defaulting to
    ``ScalePolicy(autoscale=False)`` when none is given); the run
    fails unless at least one rejoin happened.
    """
    from repro.faults import CheckpointManager, FaultConfig, FaultInjector
    from repro.fem import (
        ExplicitTimeStepper,
        assemble_lumped_mass,
        assemble_stiffness,
        materials_from_model,
        stable_timestep,
    )
    from repro.mesh.instances import get_instance
    from repro.model.machine import MACHINES
    from repro.partition.base import Partition, partition_mesh
    from repro.smvp.executor import DistributedSMVP

    sticky = tuple(int(pe) for pe in sticky)
    sdc_configured = flip_rate > 0 or bool(sticky)
    if any(not 0 <= pe < pes for pe in sticky):
        raise ValueError(
            f"sticky PEs must be in [0, {pes}), got {sticky}"
        )
    if kills is None:
        # SDC runs default to no permanent kills: the corruption story
        # (detect/heal/escalate) should stand on its own unless the
        # caller explicitly stacks a kill schedule on top.
        kills = (
            KillSchedule(())
            if sdc_configured
            else KillSchedule.random(seed, pes, steps, count=1)
        )
    use_abft = bool(abft) if abft is not None else sdc_configured
    machine = MACHINES[machine_name] if machine_name else None
    if readmit:
        if not grows:
            raise ValueError(
                "--readmit needs a grow schedule: an evicted PE can "
                "only rejoin through a scheduled growth"
            )
        if scale_policy is None:
            scale_policy = ScalePolicy(autoscale=False)

    inst = get_instance(instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    stiffness = assemble_stiffness(mesh, materials)
    mass = assemble_lumped_mass(mesh, materials)
    dt = stable_timestep(mesh, materials)
    partition = partition_mesh(mesh, pes)
    injector = None
    if fault_rate > 0 or sdc_configured:
        injector = FaultInjector(
            FaultConfig(
                seed=seed,
                drop_rate=fault_rate,
                bitflip_rate=fault_rate,
                duplicate_rate=fault_rate,
                flip_x_rate=flip_rate,
                flip_y_rate=flip_rate,
                flip_k_rate=flip_rate / 2.0,
                sticky_pes=sticky,
                sticky_from_step=sticky_from,
            )
        )
    checkpoints = None
    if checkpoint_dir is not None:
        checkpoints = CheckpointManager(
            checkpoint_dir, interval=checkpoint_interval
        )

    force = np.zeros(3 * mesh.num_nodes)
    force[: min(300, force.size)] = 1e9
    force_at = lambda t: force  # noqa: E731 - constant-force workload

    smvp = DistributedSMVP(
        mesh,
        partition,
        materials,
        kernel=kernel,
        backend=backend,
        injector=injector,
        abft=use_abft,
    )
    stepper = ExplicitTimeStepper(stiffness, mass, dt, smvp=smvp)
    supervisor = SuperstepSupervisor(
        stepper,
        policy=policy,
        checkpoints=checkpoints,
        kill_schedule=kills.as_mapping(),
        grow_schedule=grows,
        scale_policy=scale_policy,
        machine=machine,
    )
    try:
        sup_report = supervisor.run(steps, force_at=force_at)
        u_final = stepper.u.copy()
        u_prev_final = stepper.u_prev.copy()
        # sdc_stats/sdc_events are shared across eviction-spawned
        # executors, so the final smvp holds the whole run's tallies.
        sdc_stats = stepper.smvp.sdc_stats
        sdc_events = list(stepper.smvp.sdc_events)
    finally:
        stepper.smvp.close()

    report = ChaosReport(
        instance=instance,
        kernel=kernel,
        backend=backend,
        num_steps=steps,
        num_pes_initial=pes,
        num_pes_final=sup_report.final_num_pes,
        kill_schedule=str(kills) or "none",
        supervisor=sup_report,
        final_max_displacement=float(np.abs(u_final).max()),
        abft=use_abft,
        sdc_injected=sdc_stats.injected_sdc,
        sdc_detected=sdc_stats.detected_sdc,
        sdc_recomputed=sdc_stats.recomputed_sdc,
        sdc_scrubbed=sdc_stats.repaired_blocks,
        sdc_escaped=sdc_stats.escaped_sdc,
        grow_schedule=(
            ",".join(f"{s}:{n}" for s, n in sorted(grows.items()))
            if grows
            else "none"
        ),
        grows=len(sup_report.grows),
        readmissions=len(sup_report.readmissions),
    )
    if grows:
        scheduled_total = sum(grows.values())
        report.grow_applied = (
            sum(1 for e in sup_report.grows if e.reason == "scheduled")
            == scheduled_total
        )
    if readmit:
        report.readmit_ok = any(e.readmitted for e in sup_report.grows)
    if sdc_configured:
        injected_sites = {
            (e.step, e.physical_pe)
            for e in sdc_events
            if e.action == "injected"
        }
        detected_sites = {
            (e.step, e.physical_pe)
            for e in sdc_events
            if e.action == "detected"
        }
        # A persistent K-flip can also be annihilated by an eviction's
        # matrix reassembly before the check ever fires; the executor
        # logs that scrub as "repaired" against the injection site.
        contained_sites = detected_sites | {
            (e.step, e.physical_pe)
            for e in sdc_events
            if e.action == "repaired"
        }
        report.sdc_all_detected = (
            sdc_stats.escaped_sdc == 0
            and injected_sites <= contained_sites
        )
        report.sdc_blame_correct = detected_sites <= injected_sites
        if sticky:
            report.sticky_evicted = set(sticky) <= set(sup_report.evicted)
    if not verify:
        return report

    if sdc_configured and not sup_report.evictions:
        # No eviction reshaped the partition, so the healed trajectory
        # must be *bit-identical* to a fault-free run — the strongest
        # possible statement that every corruption was contained.
        reference = DistributedSMVP(
            mesh, partition, materials, kernel=kernel, backend=backend
        )
        try:
            ref_stepper = ExplicitTimeStepper(
                stiffness, mass, dt, smvp=reference
            )
            ref_stepper.run(steps, force_at=force_at)
            diff = np.abs(ref_stepper.u - u_final)
            report.clean_max_abs_diff = float(diff.max())
            report.clean_equivalent = bool(
                np.array_equal(ref_stepper.u, u_final)
                and np.array_equal(ref_stepper.u_prev, u_prev_final)
            )
        finally:
            reference.close()
    if not sup_report.resume_points:
        return report

    rp = sup_report.resume_points[-1]
    fresh_partition = Partition(
        rp.partition_parts.copy(), rp.num_parts, method="resume"
    )
    fresh = DistributedSMVP(
        mesh,
        fresh_partition,
        materials,
        kernel=kernel,
        backend=backend,
        injector=injector,
        abft=use_abft,
        pe_ids=rp.pe_ids,
    )
    try:
        fresh.reset_superstep(rp.superstep)
        for pe in sorted(rp.quarantined):
            fresh.quarantine(pe)
        fresh_stepper = ExplicitTimeStepper(
            stiffness, mass, dt, smvp=fresh
        )
        fresh_stepper.set_state(rp.u, rp.u_prev, rp.step_index)
        fresh_stepper.run(steps - rp.step_index, force_at=force_at)
        diff = np.abs(fresh_stepper.u - u_final)
        report.survivor_max_abs_diff = float(diff.max())
        report.survivor_equivalent = bool(
            np.array_equal(fresh_stepper.u, u_final)
            and np.array_equal(fresh_stepper.u_prev, u_prev_final)
        )
    finally:
        fresh.close()
    return report


def render_chaos_report(report: ChaosReport) -> List[str]:
    """Human-readable summary lines for the CLI."""
    lines = [
        f"chaos run: {report.instance} x {report.num_steps} steps, "
        f"{report.num_pes_initial} -> {report.num_pes_final} PEs "
        f"({report.kernel}/{report.backend})",
        f"kill schedule: {report.kill_schedule}",
        f"evictions: {len(report.evictions)}",
    ]
    for event in report.evictions:
        cost_text = (
            f", modeled cost {event.cost.t_total:.3e} s"
            if event.cost is not None
            else ""
        )
        lines.append(
            f"  superstep {event.superstep}: PE {event.dead_pe} "
            f"({event.num_pes_before} -> {event.num_pes_after} PEs) "
            f"via {event.recovery_source}; migrated "
            f"{event.migrated_words} words in {event.migrated_blocks} "
            f"blocks, repartition {event.repartition_flops} flops in "
            f"{event.redistribution_waves} waves"
            f"{cost_text}"
        )
        lines.append(
            f"    schedule: C_max {event.delta.c_max_before} -> "
            f"{event.delta.c_max_after}, B_max "
            f"{event.delta.b_max_before} -> {event.delta.b_max_after}, "
            f"beta {event.delta.beta_before:.3f} -> "
            f"{event.delta.beta_after:.3f}"
        )
    if report.grow_schedule != "none" or report.scale_events:
        lines.append(
            f"grow schedule: {report.grow_schedule}; "
            f"grows: {report.grows}; "
            f"readmissions: {report.readmissions}"
        )
    for event in report.scale_events:
        rejoined = " (rejoined)" if event.readmitted else ""
        detail = ""
        if event.kind == "grow":
            detail = (
                f"; migrated {event.migrated_words} words in "
                f"{event.migrated_blocks} blocks"
            )
        lines.append(
            f"  superstep {event.superstep}: {event.kind} PE "
            f"{event.pe}{rejoined} ({event.num_pes_before} -> "
            f"{event.num_pes_after} PEs) [{event.reason}]{detail}"
        )
    sup = report.supervisor
    if sup is not None:
        lines.append(
            f"retried supersteps: {sup.retried_supersteps}; "
            f"quarantined PEs: {sup.quarantined or 'none'}"
        )
        total_cost = sup.total_reconfiguration_seconds
        if total_cost is not None:
            lines.append(
                f"total migrated words: {sup.total_migrated_words}; "
                f"total reconfiguration cost: {total_cost:.3e} s"
            )
    if report.abft or report.sdc_injected:
        lines.append(
            f"SDC: {report.sdc_injected} injected, "
            f"{report.sdc_detected} detected, "
            f"{report.sdc_recomputed} recomputed, "
            f"{report.sdc_scrubbed} matrix blocks scrubbed, "
            f"{report.sdc_escaped} escaped"
        )
    if report.sdc_all_detected is not None:
        verdict = "PASS" if report.sdc_all_detected else "FAIL"
        lines.append(f"all SDC detected: {verdict}")
    if report.sdc_blame_correct is not None:
        verdict = "PASS" if report.sdc_blame_correct else "FAIL"
        lines.append(
            f"blame attribution (superstep, physical PE): {verdict}"
        )
    if report.sticky_evicted is not None:
        verdict = "PASS" if report.sticky_evicted else "FAIL"
        lines.append(f"sticky PEs evicted: {verdict}")
    if report.grow_applied is not None:
        verdict = "PASS" if report.grow_applied else "FAIL"
        lines.append(f"scheduled grows applied: {verdict}")
    if report.readmit_ok is not None:
        verdict = "PASS" if report.readmit_ok else "FAIL"
        lines.append(f"evicted PE readmitted: {verdict}")
    if report.clean_equivalent is not None:
        verdict = "PASS" if report.clean_equivalent else "FAIL"
        lines.append(
            f"bit-identical to fault-free run: {verdict} "
            f"(max |diff| = {report.clean_max_abs_diff:.3e})"
        )
    if report.survivor_equivalent is not None:
        verdict = "PASS" if report.survivor_equivalent else "FAIL"
        lines.append(
            f"survivor equivalence: {verdict} "
            f"(max |diff| = {report.survivor_max_abs_diff:.3e})"
        )
    lines.append(
        f"final max displacement: {report.final_max_displacement:.6e}"
    )
    return lines
