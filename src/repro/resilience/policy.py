"""Escalation policy and per-PE health tracking.

The supervisor (see :mod:`repro.resilience.supervisor`) turns fault
signals into one of three responses, in escalating order:

1. **RETRY** — re-run the superstep.  The central-difference step calls
   the SMVP *before* mutating any state, so a failed superstep leaves
   the trajectory untouched and retrying is always safe.
2. **QUARANTINE** — circuit-break the flaky PE's links: its exchange
   blocks take the verified slow path (no fault draws, one clean
   transmission).  Numerically a no-op; the cost is modeled, not the
   bits.
3. **EVICT** — declare the PE permanently dead, redistribute its rows
   to the survivors, splice its state, and continue on P-1 PEs.

:class:`HealthTracker` accumulates per-PE failure evidence in the
*original* PE numbering — evictions renumber the survivors, and health
history must survive renumbering — and maps the evidence to an
:class:`Escalation` through the thresholds in :class:`RecoveryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional


class PolicyConfigError(ValueError):
    """A policy dataclass was constructed with inconsistent thresholds.

    Subclasses :class:`ValueError` so call sites that predate the typed
    error (and tests written against them) keep working; new code
    should catch this type to distinguish configuration mistakes from
    runtime value errors.
    """


class PEState(Enum):
    """Lifecycle of one PE under supervision."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    EVICTED = "evicted"


class Escalation(Enum):
    """What the supervisor should do about the latest failure."""

    RETRY = "retry"
    QUARANTINE = "quarantine"
    EVICT = "evict"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Thresholds mapping failure evidence to escalations.

    Parameters
    ----------
    quarantine_after:
        Consecutive failed supersteps blaming one PE before its links
        are circuit-broken.
    evict_after:
        Consecutive failures before the PE is declared dead and
        evicted.  Must be >= ``quarantine_after``.
    prefer_shadow:
        Recover an evicted PE's exclusive rows from the survivors'
        in-memory shadow copies when they are current (zero recompute);
        ``False`` forces the checkpoint-rollback path.
    max_evictions:
        Hard cap on evictions per run (``None``: keep evicting while
        at least two PEs survive).
    recovery_budget:
        Per-run ceiling on the *cumulative* number of retried
        supersteps — a clock-free escalation deadline.  When the
        supervisor's total retry count would pass this, it raises
        :class:`~repro.faults.RecoveryDeadlineError` instead of
        retrying again, turning an every-PE-is-flaky run into a typed
        failure rather than unbounded recovery effort.  ``None``
        (default) keeps the historical behavior: only the per-step
        retry cap bounds recovery.
    """

    quarantine_after: int = 2
    evict_after: int = 4
    prefer_shadow: bool = True
    max_evictions: Optional[int] = None
    recovery_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.quarantine_after < 1:
            raise PolicyConfigError("quarantine_after must be at least 1")
        if self.evict_after < self.quarantine_after:
            raise PolicyConfigError(
                "evict_after must be >= quarantine_after"
            )
        if self.max_evictions is not None and self.max_evictions < 0:
            raise PolicyConfigError("max_evictions must be non-negative")
        if self.recovery_budget is not None and self.recovery_budget < 1:
            raise PolicyConfigError("recovery_budget must be positive")


class HealthTracker:
    """Per-PE failure evidence, keyed by *original* PE id."""

    def __init__(self, num_pes: int, policy: RecoveryPolicy) -> None:
        if num_pes < 1:
            raise ValueError("num_pes must be positive")
        self.policy = policy
        self.num_pes = num_pes
        self.consecutive_failures = [0] * num_pes
        self.total_failures = [0] * num_pes
        self.states: List[PEState] = [PEState.HEALTHY] * num_pes

    def record_success(self, pe: int) -> None:
        """A superstep completed with this PE participating cleanly.

        Clears the consecutive-failure streak; a SUSPECT PE returns to
        HEALTHY.  Quarantine is sticky — one good superstep over the
        verified path says nothing about the flaky wire.
        """
        self._check(pe)
        self.consecutive_failures[pe] = 0
        if self.states[pe] is PEState.SUSPECT:
            self.states[pe] = PEState.HEALTHY

    def record_failure(self, pe: int) -> Escalation:
        """A superstep failed with this PE blamed; returns the response."""
        self._check(pe)
        self.consecutive_failures[pe] += 1
        self.total_failures[pe] += 1
        streak = self.consecutive_failures[pe]
        if streak >= self.policy.evict_after:
            return Escalation.EVICT
        if streak >= self.policy.quarantine_after:
            self.states[pe] = PEState.QUARANTINED
            return Escalation.QUARANTINE
        self.states[pe] = PEState.SUSPECT
        return Escalation.RETRY

    def mark_quarantined(self, pe: int) -> None:
        self._check(pe)
        self.states[pe] = PEState.QUARANTINED

    def add_pe(self) -> int:
        """Register a freshly added PE; returns its original-id slot.

        Elastic growth extends the health universe: the new PE starts
        HEALTHY with no failure history.  A *readmitted* physical PE
        also comes through here — its old slot stays EVICTED as the
        permanent record of that incarnation, and the rejoined hardware
        is tracked under a new original id (the physical id, which keys
        the fault streams, is what persists across the rejoin).
        """
        pe = self.num_pes
        self.num_pes += 1
        self.consecutive_failures.append(0)
        self.total_failures.append(0)
        self.states.append(PEState.HEALTHY)
        return pe

    def readmit(self, pe: int) -> None:
        """Return a quarantined PE to full service.

        Clears the streak that put it in quarantine (its probation was
        served over the verified path) but keeps ``total_failures`` —
        blame ties should still break against a historically flaky PE.
        """
        self._check(pe)
        if self.states[pe] is not PEState.QUARANTINED:
            raise ValueError(f"PE {pe} is not quarantined")
        self.consecutive_failures[pe] = 0
        self.states[pe] = PEState.HEALTHY

    def mark_evicted(self, pe: int) -> None:
        self._check(pe)
        self.states[pe] = PEState.EVICTED

    def evicted(self) -> List[int]:
        """Original ids of evicted PEs, ascending."""
        return [
            pe for pe, s in enumerate(self.states) if s is PEState.EVICTED
        ]

    def quarantined(self) -> List[int]:
        """Original ids of quarantined (but alive) PEs, ascending."""
        return [
            pe for pe, s in enumerate(self.states) if s is PEState.QUARANTINED
        ]

    def blame(self, src: int, dst: int) -> int:
        """Which endpoint of a failed link to hold responsible.

        Deterministic: the endpoint with the worse consecutive streak,
        then the worse total history, then the lower id — so repeated
        failures on one link converge on a single PE instead of
        alternating.
        """
        self._check(src)
        self._check(dst)
        key = lambda pe: (  # noqa: E731 - local sort key
            -self.consecutive_failures[pe],
            -self.total_failures[pe],
            pe,
        )
        return min((src, dst), key=key)

    def _check(self, pe: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise ValueError(f"PE {pe} out of range")
        if self.states[pe] is PEState.EVICTED:
            raise ValueError(f"PE {pe} was already evicted")
