"""Model-versus-simulation validation (Sections 3.3-3.4).

``validate_model`` runs the barrier-mode simulator on a real schedule
and compares the simulated communication phase against Equation (2)'s
prediction ``T_comm = B_max T_l + C_max T_w``.  The paper proves the
prediction can only overestimate, by at most the factor β of Section
3.4; both properties are checked here (and asserted by tests across
meshes, partitioners, and machines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.machine import Machine
from repro.simulate.bsp import BspSimulator
from repro.smvp.schedule import CommSchedule
from repro.stats.beta import beta_bound


@dataclass(frozen=True)
class ModelValidation:
    """Outcome of one model-vs-simulation comparison."""

    modeled_t_comm: float
    simulated_t_comm: float
    beta: float

    @property
    def ratio(self) -> float:
        """modeled / simulated (1 <= ratio <= beta when the model holds)."""
        if self.simulated_t_comm == 0:
            return 1.0
        return self.modeled_t_comm / self.simulated_t_comm

    @property
    def model_holds(self) -> bool:
        """The Section 3.4 guarantee: never underestimates, never
        overestimates by more than β (tiny float slack allowed)."""
        return 1.0 - 1e-12 <= self.ratio <= self.beta + 1e-9


def validate_model(
    flops_per_pe: np.ndarray,
    schedule: CommSchedule,
    machine: Machine,
) -> ModelValidation:
    """Compare Equation (2) against the simulated communication phase."""
    sim = BspSimulator(flops_per_pe, schedule, machine)
    times = sim.run("barrier")
    modeled = (
        schedule.b_max * machine.tl + schedule.c_max * machine.tw
    )
    beta = beta_bound(schedule.words_per_pe, schedule.blocks_per_pe)
    return ModelValidation(
        modeled_t_comm=float(modeled),
        simulated_t_comm=times.t_comm,
        beta=beta,
    )
