"""Bulk-synchronous machine simulation of the parallel SMVP.

The paper derives T_comp and T_comm analytically and validates the
parameters against real machines.  We cannot measure a Cray T3E, so we
do the next best thing: *execute* the phase structure of the SMVP on a
simulated machine whose PEs have exactly the model's three parameters
(T_f, T_l, T_w), and check the analytic model against the simulated
times — in particular that Equation (2)'s pessimistic coupling of C_max
and B_max never overestimates the simulated communication phase by more
than the β bound of Section 3.4.

* :mod:`~repro.simulate.bsp` — the simulator: barrier-synchronized
  phases (the paper's assumption), a skewed mode without the barrier,
  and a communication/computation overlap mode (the "difficult
  modification" of the paper's footnote 1, here as an extension study).
* :mod:`~repro.simulate.validate` — model-vs-simulation comparison.
"""

from repro.simulate.bsp import BspSimulator, PhaseTimes
from repro.simulate.validate import ModelValidation, validate_model

__all__ = [
    "BspSimulator",
    "PhaseTimes",
    "ModelValidation",
    "validate_model",
]
