"""The BSP phase simulator.

Machine model (paper Figure 5): each PE is a processor + memory + a
network interface with one input and one output link; the
interconnection network itself has infinite capacity and constant
latency (the paper argues this is reasonable for tightly coupled
systems), so *all* communication cost accrues at the PEs.

Three execution modes:

``barrier``
    The paper's model: a global barrier separates the phases.  The
    computation phase ends when the slowest PE finishes (``max_i F_i
    T_f``); during the communication phase each PE's interface
    serializes its own blocks (``max_i (B_i T_l + C_i T_w)``).

``skewed``
    No barrier: each PE starts communicating as soon as its own local
    product is done.  A block transfer from i to j starts when i has
    finished computing and both interfaces are free, and occupies both
    for ``T_l + words T_w``.  Scheduled greedily (earliest-ready
    first) — a classic list simulation with an event heap.

``overlap``
    The footnote-1 extension: a PE's *interior* flops (rows not touched
    by any shared node) can overlap communication; only the *boundary*
    flops must precede the exchange.  Per PE:
    ``T_i = max(F_i T_f, F_i^boundary T_f + B_i T_l + C_i T_w)`` and the
    SMVP ends at ``max_i T_i``.

With a :class:`~repro.faults.FaultInjector` attached, ``barrier`` mode
additionally models an imperfect machine: straggler PEs stretch the
computation phase (everyone waits at the barrier), transient PE
failures restart-and-recompute their step, and dropped or corrupted
blocks are retransmitted after a timeout with exponential backoff —
all in simulated time, all deterministic under the injector's seed.
With injection disabled the code path (and therefore every timing, bit
for bit) is identical to the fault-free simulator.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.contracts import check_schedule_contract
from repro.faults.detection import FaultStats
from repro.faults.injector import FaultInjector, SdcTarget
from repro.faults.recovery import retransmit_penalty
from repro.model.machine import Machine
from repro.smvp.schedule import CommSchedule
from repro.smvp.trace import PhaseBreakdown
from repro.telemetry.registry import get_registry, record_fault_stats

#: Execution modes accepted by :meth:`BspSimulator.run`.
MODES = ("barrier", "skewed", "overlap")


@dataclass(frozen=True)
class PhaseTimes(PhaseBreakdown):
    """Simulated timing of one SMVP.

    Extends the shared :class:`~repro.smvp.trace.PhaseBreakdown` core
    (t_comp / t_comm / t_smvp / efficiency) — the same fields the real
    executor's measured :class:`~repro.smvp.trace.SuperstepTrace`
    carries — with what only the simulator knows: the execution mode
    and each PE's modeled communication busy time.
    """

    mode: str
    per_pe_comm: np.ndarray  # each PE's own communication busy time
    faults: Optional[FaultStats] = None  # injected-fault tally, if any
    t_verify: float = 0.0  # modeled ABFT check time (0.0 when off)


@dataclass(frozen=True)
class ReconfigurationCost:
    """Modeled cost of an online eviction/reconfiguration.

    Priced against the same machine vocabulary as Eq. (2): the survivor
    PEs spend ``repartition_flops`` growing their regions into the dead
    PE's territory (charged at T_f), then the orphaned element data and
    newly replicated state rows migrate as ``migrated_blocks`` bulk
    messages carrying ``migrated_words`` words (charged at
    ``B T_l + C T_w``).  ``recomputed_supersteps`` counts supersteps
    replayed after a checkpoint rollback (the shadow-splice path
    replays none); their cost is modeled separately by re-running the
    simulator on the survivor schedule.
    """

    repartition_flops: int
    migrated_words: int
    migrated_blocks: int
    t_repartition: float
    t_migration: float
    recomputed_supersteps: int = 0

    @property
    def t_total(self) -> float:
        return self.t_repartition + self.t_migration


def model_reconfiguration(
    repartition_flops: int,
    migrated_words: int,
    migrated_blocks: int,
    machine: Machine,
    recomputed_supersteps: int = 0,
) -> ReconfigurationCost:
    """Price one reconfiguration on a (T_f, T_l, T_w) machine.

    ``T_repartition = repartition_flops * T_f`` and ``T_migration =
    migrated_blocks * T_l + migrated_words * T_w`` — the state
    migration is one more irregular communication phase, so it takes
    the Eq. (2) form with the migration traffic in place of the
    exchange schedule's C/B.
    """
    machine.require_comm("the reconfiguration cost model")
    return ReconfigurationCost(
        repartition_flops=int(repartition_flops),
        migrated_words=int(migrated_words),
        migrated_blocks=int(migrated_blocks),
        t_repartition=float(repartition_flops) * machine.tf,
        t_migration=(
            float(migrated_blocks) * machine.tl
            + float(migrated_words) * machine.tw
        ),
        recomputed_supersteps=int(recomputed_supersteps),
    )


def modeled_critical_path(
    flops_per_pe: np.ndarray,
    schedule: CommSchedule,
    machine: Machine,
    rhs: int = 1,
) -> dict:
    """The analytic prediction in the profiler's blame vocabulary.

    Splits the barrier-mode superstep into the same buckets the
    critical-path profiler attributes measured wall time to, so
    modeled and measured breakdowns render side by side: ``compute``
    is the *mean* per-PE product time (``mean_i F_i T_f r``),
    ``imbalance`` the slowest-PE excess the barrier exposes
    (``(max_i - mean_i) F_i T_f r``), ``latency`` the Eq. (2) block
    term (``B_max T_l``) and ``bandwidth`` its volume term
    (``C_max T_w r``).  The model has no verify/recovery/overhead
    costs, so those buckets are zero.  Deterministic and clock-free.
    """
    machine.require_comm("the modeled critical path")
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    flops = np.asarray(flops_per_pe, dtype=np.float64)
    tf = machine.tf * rhs
    f_max = float(flops.max()) if len(flops) else 0.0
    f_mean = float(flops.mean()) if len(flops) else 0.0
    buckets = {
        "compute": f_mean * tf,
        "imbalance": (f_max - f_mean) * tf,
        "latency": float(schedule.b_max) * machine.tl,
        "bandwidth": float(schedule.c_max) * machine.tw * rhs,
        "verify": 0.0,
        "recovery": 0.0,
        "overhead": 0.0,
    }
    buckets["total"] = sum(buckets.values())
    return buckets


class BspSimulator:
    """Simulate one SMVP on a (T_f, T_l, T_w) machine.

    Parameters
    ----------
    flops_per_pe:
        F_i for each PE (from the distribution or the executor).
    schedule:
        The communication schedule (messages with word counts).
    machine:
        Must have ``tl`` and ``tw`` set.
    boundary_flops_per_pe:
        Only needed for ``overlap`` mode: the flops that must complete
        before the exchange can start.
    injector:
        Optional fault injector; when enabled, ``barrier`` runs model
        stragglers, transient PE failures, block retransmits, and —
        when SDC modes are configured — silent-data-corruption
        detection and recomputation.
    abft_flops_per_pe:
        Per-PE flop cost of the ABFT verification
        (:func:`repro.smvp.abft.verify_flops_per_pe`).  When given,
        every mode charges the checks as extra compute (the ``T_verify``
        term), and faulty barrier runs model SDC detections as one
        recompute of the afflicted PE's product.  ``None`` (default)
        models no verification and leaves every timing bit-identical
        to the pre-ABFT simulator.
    rhs:
        Number of right-hand-side columns per superstep (default 1).
        A block superstep traverses the matrix once but performs
        ``rhs`` times the flops and ships ``rhs`` words per shared dof,
        while the *block count* (and hence the latency term ``B_i T_l``)
        is unchanged — that is exactly Eq. (2) with an r-aware volume
        term: ``T_comm = max_i (B_i T_l + r C_i T_w)``.  Modeled by
        scaling the effective per-word and per-flop costs, so ``rhs=1``
        is bit-identical to the historical simulator (``x * 1`` is
        exact in IEEE-754).  ABFT verification checks every column, so
        ``T_verify`` scales with ``rhs`` too.
    """

    def __init__(
        self,
        flops_per_pe: np.ndarray,
        schedule: CommSchedule,
        machine: Machine,
        boundary_flops_per_pe: Optional[np.ndarray] = None,
        injector: Optional[FaultInjector] = None,
        abft_flops_per_pe: Optional[np.ndarray] = None,
        rhs: int = 1,
    ) -> None:
        machine.require_comm("the BSP simulator")
        check_schedule_contract(schedule)
        if rhs < 1:
            raise ValueError("rhs must be >= 1")
        self.rhs = int(rhs)
        self.flops = np.asarray(flops_per_pe, dtype=np.float64)
        self.schedule = schedule
        self.machine = machine
        if self.flops.shape != (schedule.num_parts,):
            raise ValueError("flops_per_pe length must equal PE count")
        self.boundary_flops = (
            None
            if boundary_flops_per_pe is None
            else np.asarray(boundary_flops_per_pe, dtype=np.float64)
        )
        self.abft_flops = (
            None
            if abft_flops_per_pe is None
            else np.asarray(abft_flops_per_pe, dtype=np.float64)
        )
        if (
            self.abft_flops is not None
            and self.abft_flops.shape != self.flops.shape
        ):
            raise ValueError("abft_flops_per_pe length must equal PE count")
        self.injector = injector
        # Effective per-column costs: a block superstep does r times the
        # flops and ships r times the words per block, at unchanged
        # latency.  Exact at rhs=1 (multiplying a float by 1 is lossless).
        self._tf = self.machine.tf * self.rhs
        self._tw = self.machine.tw * self.rhs

    # -- per-PE communication busy times ---------------------------------

    def _comm_busy(self) -> np.ndarray:
        """B_i T_l + r C_i T_w (+ T_q q_i^2 under contention) per PE.

        With ``machine.tq`` set, each PE additionally pays the
        queue-search cost of matching its ``q_i`` incoming messages
        against a queue of the same depth — the Bienz et al. contention
        correction.  Queue matching is per *message*, so the term does
        not scale with the block width r.  ``tq=None`` (every preset)
        leaves the busy times bit-identical to the uniform model.
        """
        tl, tw = self.machine.tl, self._tw
        busy = (
            self.schedule.blocks_per_pe * tl + self.schedule.words_per_pe * tw
        )
        if self.machine.tq is not None:
            incoming = self.schedule.incoming_per_pe.astype(np.float64)
            busy = busy + self.machine.tq * incoming * incoming
        return busy

    # -- modes -------------------------------------------------------------

    def run(self, mode: str = "barrier", step: int = 0) -> PhaseTimes:
        """Simulate one SMVP in the given mode.

        ``step`` is the superstep index; it only matters with a fault
        injector attached, where it selects that superstep's (seeded)
        fault draws so a multi-step run sees an evolving fault history.
        """
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        faulty = self.injector is not None and self.injector.enabled
        if mode == "barrier":
            result = (
                self._run_barrier_faulty(step)
                if faulty
                else self._run_barrier()
            )
        elif faulty:
            raise ValueError(
                "fault injection is only modeled in 'barrier' mode "
                f"(requested {mode!r})"
            )
        elif mode == "skewed":
            result = self._run_skewed()
        else:
            result = self._run_overlap()
        reg = get_registry()
        if reg is not None:
            reg.counter(
                "repro_bsp_runs_total", "simulated SMVPs"
            ).inc(mode=mode)
            reg.gauge(
                "repro_bsp_t_smvp_seconds", "last simulated T_smvp"
            ).set(result.t_smvp, mode=mode)
            record_fault_stats(result.faults, "simulator")
        return result

    def _verify_times(self) -> Tuple[np.ndarray, float]:
        """Per-PE ABFT check time and the reported T_verify (its max)."""
        if self.abft_flops is None:
            zeros = np.zeros_like(self.flops)
            return zeros, 0.0
        verify = self.abft_flops * self._tf
        return verify, float(verify.max()) if len(verify) else 0.0

    def _run_barrier(self) -> PhaseTimes:
        verify, t_verify = self._verify_times()
        t_comp = float(((self.flops * self._tf) + verify).max())
        busy = self._comm_busy()
        t_comm = float(busy.max()) if len(busy) else 0.0
        return PhaseTimes(
            mode="barrier",
            t_comp=t_comp,
            t_comm=t_comm,
            t_smvp=t_comp + t_comm,
            per_pe_comm=busy,
            t_verify=t_verify,
        )

    def _run_barrier_faulty(self, step: int) -> PhaseTimes:
        """Barrier mode on an imperfect machine.

        Computation phase: each PE's nominal ``F_i T_f`` is stretched by
        its straggler factor; a transiently failed PE restarts and
        recomputes the step (time doubles) plus a fixed restart penalty.
        The barrier makes every PE wait for the slowest.

        Communication phase: each directed block is re-decided per
        attempt; a failed attempt costs its wire time plus a timeout
        (with exponential backoff) before the retransmit, and occupies
        both endpoints' interfaces — exactly the accounting of
        :func:`repro.faults.recovery.retransmit_penalty`.
        """
        injector = self.injector
        cfg = injector.config
        tf, tl, tw = self._tf, self.machine.tl, self._tw
        stats = FaultStats()
        verify, t_verify = self._verify_times()
        abft_on = self.abft_flops is not None

        comp = self.flops * tf
        for pe in range(len(comp)):
            factor = injector.straggler_factor(pe, step)
            if factor > 1.0:
                stats.straggler_events += 1
                comp[pe] *= factor
            if injector.pe_failed(pe, step):
                stats.pe_failures += 1
                comp[pe] = 2.0 * comp[pe] + cfg.pe_restart_penalty
            if injector.sdc_enabled:
                events = 0
                if injector.sdc_target(pe, step) is not SdcTarget.NONE:
                    events += 1
                sticky = injector.sticky(pe, step)
                if sticky:
                    events += 1
                if events:
                    stats.injected_sdc += events
                    if not abft_on:
                        # Nothing watching: the corruption commits.
                        stats.escaped_sdc += events
                    elif sticky:
                        # Inline recovery re-corrupts twice, then the
                        # supervisor restarts the superstep.
                        stats.detected_sdc += events
                        stats.recomputed_sdc += 2
                        comp[pe] += (
                            2.0 * self.flops[pe] * tf + cfg.pe_restart_penalty
                        )
                    else:
                        # One recompute of the local product heals it.
                        stats.detected_sdc += events
                        stats.recomputed_sdc += events
                        comp[pe] += events * self.flops[pe] * tf
        comp = comp + verify
        t_comp = float(comp.max()) if len(comp) else 0.0

        busy = np.zeros(self.schedule.num_parts, dtype=np.float64)
        for msg in self.schedule.messages:
            outcome = injector.transmission_outcome(msg.src, msg.dst, step)
            base = tl + msg.words * tw
            # Failed attempts are contiguous from attempt 0 (the retry
            # loop stops at the first success), so the k-th stall takes
            # the k-th seeded jitter factor for this link and step.
            jitters = None
            if outcome.failures and cfg.backoff_jitter > 0.0:
                jitters = [
                    injector.backoff_jitter(msg.src, msg.dst, step, k)
                    for k in range(outcome.failures)
                ]
            cost = base + retransmit_penalty(
                base,
                outcome.failures,
                cfg.timeout_factor,
                cfg.backoff_factor,
                jitters=jitters,
            )
            cost += outcome.duplicates * base
            stats.injected_drops += outcome.drops
            stats.detected_missing += outcome.drops
            stats.injected_corruptions += outcome.corruptions
            stats.detected_corrupt += outcome.corruptions
            stats.injected_duplicates += outcome.duplicates
            stats.duplicates_ignored += outcome.duplicates
            stats.retransmits += outcome.failures
            stats.words_retransmitted += outcome.failures * msg.words * self.rhs
            if not outcome.delivered:
                # Retry budget exhausted: the run would fail over to a
                # checkpoint restart; charge the restart penalty to both
                # endpoints instead of dying silently.
                cost += cfg.pe_restart_penalty
            busy[msg.src] += cost
            busy[msg.dst] += cost
        t_comm = float(busy.max()) if len(busy) else 0.0
        return PhaseTimes(
            mode="barrier",
            t_comp=t_comp,
            t_comm=t_comm,
            t_smvp=t_comp + t_comm,
            per_pe_comm=busy,
            faults=stats,
            t_verify=t_verify,
        )

    def _run_skewed(self) -> PhaseTimes:
        tf, tl, tw = self._tf, self.machine.tl, self._tw
        verify, t_verify = self._verify_times()
        # The compute check gates each PE's sends, so verification time
        # delays communication readiness like compute does.
        ready = self.flops * tf + verify  # when each PE may communicate
        free = ready.copy()  # when each PE's interface is next free
        # Transfers, each occupying both endpoints' interfaces.
        pending: List[Tuple[float, int, int, int, float]] = []
        for k, msg in enumerate(self.schedule.messages):
            duration = tl + msg.words * tw
            start_lb = max(ready[msg.src], ready[msg.dst])
            heapq.heappush(pending, (start_lb, k, msg.src, msg.dst, duration))
        finish = ready.copy()
        while pending:
            start_lb, k, src, dst, duration = heapq.heappop(pending)
            start = max(start_lb, free[src], free[dst])
            if start > start_lb:
                # Both interfaces were not actually free yet; requeue
                # with the tightened bound so earliest-ready runs first.
                heapq.heappush(pending, (start, k, src, dst, duration))
                continue
            end = start + duration
            free[src] = end
            free[dst] = end
            finish[src] = max(finish[src], end)
            finish[dst] = max(finish[dst], end)
        t_comp = float(ready.max())
        t_smvp = float(finish.max())
        return PhaseTimes(
            mode="skewed",
            t_comp=t_comp,
            t_comm=t_smvp - t_comp,
            t_smvp=t_smvp,
            per_pe_comm=finish - ready,
            t_verify=t_verify,
        )

    def _run_overlap(self) -> PhaseTimes:
        if self.boundary_flops is None:
            raise ValueError("overlap mode needs boundary_flops_per_pe")
        if np.any(self.boundary_flops > self.flops):
            raise ValueError("boundary flops exceed total flops")
        tf = self._tf
        busy = self._comm_busy()
        verify, t_verify = self._verify_times()
        # Interior flops overlap communication, but the compute check
        # must finish before the exchange starts — it rides with the
        # boundary flops on the critical path.
        per_pe = np.maximum(
            self.flops * tf + verify,
            self.boundary_flops * tf + verify + busy,
        )
        t_smvp = float(per_pe.max())
        t_comp = float((self.flops * tf + verify).max())
        return PhaseTimes(
            mode="overlap",
            t_comp=t_comp,
            t_comm=t_smvp - t_comp,
            t_smvp=t_smvp,
            per_pe_comm=busy,
            t_verify=t_verify,
        )
