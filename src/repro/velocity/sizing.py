"""Element sizing fields.

A sizing field assigns to every point in the domain the target edge
length ``h(x)`` for mesh elements near that point.  The paper (Section
2.1): "the size of elements in any region of the mesh must be matched to
the wavelength of ground motion, which is shorter in softer soils and
longer in hard rock."  :class:`WavelengthSizingField` implements exactly
that rule:

``h(x) = clamp(Vs(x) * period / points_per_wavelength, h_min, h_max)``

where ``Vs * period`` is the local shear wavelength for the highest
resolved frequency and ``points_per_wavelength`` is the number of mesh
nodes required per wavelength for numerical stability (about 8-10 for
linear elements).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.velocity.basin import BasinModel


class SizingField:
    """Interface: target element size at arbitrary points."""

    def h(self, points: np.ndarray) -> np.ndarray:
        """Target edge length (m) at each point, shape (n,)."""
        raise NotImplementedError

    def h_min(self) -> float:
        """A lower bound on ``h`` anywhere (used to bound octree depth)."""
        raise NotImplementedError


@dataclass
class UniformSizingField(SizingField):
    """Constant element size everywhere (structured-mesh baseline)."""

    size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("size must be positive")

    def h(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        return np.full(pts.shape[0], self.size, dtype=float)

    def h_min(self) -> float:
        return self.size


@dataclass
class WavelengthSizingField(SizingField):
    """Wavelength-matched element sizes over a :class:`BasinModel`.

    Parameters
    ----------
    model:
        The ground model supplying ``Vs``.
    period:
        Shortest resolved wave period in seconds (the "10" in sf10).
    points_per_wavelength:
        Mesh nodes per shear wavelength (numerical-accuracy requirement).
    floor, ceiling:
        Absolute clamps on element size (m).  The ceiling keeps rock
        elements from exceeding the domain thickness; the floor guards
        against pathological profiles.
    """

    model: BasinModel
    period: float
    points_per_wavelength: float = 10.0
    floor: float = 25.0
    ceiling: float = 5_000.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.points_per_wavelength <= 0:
            raise ValueError("points_per_wavelength must be positive")
        if not 0 < self.floor <= self.ceiling:
            raise ValueError("need 0 < floor <= ceiling")

    def h(self, points: np.ndarray) -> np.ndarray:
        vs = self.model.vs(points)
        raw = vs * self.period / self.points_per_wavelength
        return np.clip(raw, self.floor, self.ceiling)

    def h_min(self) -> float:
        raw = self.model.min_vs() * self.period / self.points_per_wavelength
        return float(np.clip(raw, self.floor, self.ceiling))
