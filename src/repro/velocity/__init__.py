"""Synthetic ground model of a sediment-filled basin.

The paper's meshes were generated from a material model of the San
Fernando Valley: soft alluvial sediments (slow shear-wave velocity)
filling a basin carved into much stiffer rock.  Mesh resolution follows
the local seismic wavelength, so the soft basin gets dramatically smaller
elements than the surrounding rock — that contrast is exactly what makes
the meshes *irregular* and is why the applications need unstructured
meshes at all (paper, Section 2.1).

We cannot obtain the proprietary San Fernando model, so this subpackage
provides a synthetic stand-in with the same structure:

* :mod:`~repro.velocity.profiles` — depth-dependent shear/pressure wave
  velocity and density profiles for sediments and rock.
* :mod:`~repro.velocity.basin` — a 3D basin geometry (smooth elliptical
  bowl) embedded in a rectangular domain, dispatching between profiles.
* :mod:`~repro.velocity.sizing` — the wavelength-driven element sizing
  field ``h(x) = Vs(x) * T / points_per_wavelength`` that drives mesh
  grading for a simulation resolving waves of period ``T``.
"""

from repro.velocity.profiles import (
    VelocityProfile,
    LinearGradientProfile,
    PowerLawSedimentProfile,
    LayeredProfile,
)
from repro.velocity.basin import (
    BasinModel,
    Bowl,
    MultiBasinModel,
    default_san_fernando_like_model,
)
from repro.velocity.sizing import SizingField, WavelengthSizingField, UniformSizingField

__all__ = [
    "VelocityProfile",
    "LinearGradientProfile",
    "PowerLawSedimentProfile",
    "LayeredProfile",
    "BasinModel",
    "Bowl",
    "MultiBasinModel",
    "default_san_fernando_like_model",
    "SizingField",
    "WavelengthSizingField",
    "UniformSizingField",
]
