"""Depth-dependent material profiles.

A profile maps *depth below the free surface* (meters, >= 0) to isotropic
elastic material properties: shear-wave velocity ``Vs``, pressure-wave
velocity ``Vp`` and density ``rho``.  All profile evaluations are
vectorized over arrays of depths.

The numbers are loosely modeled on published Southern California basin
studies: soft alluvium starts near 300 m/s shear velocity at the surface
and stiffens with depth, while basement rock sits in the 2.5-4 km/s range.
The exact values are not load-bearing for the reproduction — what matters
is the roughly 10:1 velocity (and hence wavelength, and hence element
size) contrast between sediments and rock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np


class VelocityProfile:
    """Interface for depth-dependent material profiles."""

    def vs(self, depth: np.ndarray) -> np.ndarray:
        """Shear-wave velocity (m/s) at each depth (m below surface)."""
        raise NotImplementedError

    def vp(self, depth: np.ndarray) -> np.ndarray:
        """Pressure-wave velocity (m/s).

        Defaults to a Poisson solid with a near-surface correction:
        ``Vp = Vs * sqrt(3)`` (Poisson ratio 0.25).
        """
        return self.vs(depth) * np.sqrt(3.0)

    def rho(self, depth: np.ndarray) -> np.ndarray:
        """Density (kg/m^3); defaults to a Gardner-style fit on Vp."""
        vp = np.asarray(self.vp(depth), dtype=float)
        # Gardner's relation rho = 310 * Vp^0.25 (Vp in m/s, rho kg/m^3),
        # clipped to physically plausible soil/rock densities.
        return np.clip(310.0 * np.power(np.maximum(vp, 1.0), 0.25), 1400.0, 3000.0)

    def _as_depth_array(self, depth) -> np.ndarray:
        d = np.asarray(depth, dtype=float)
        if np.any(d < -1e-6):
            raise ValueError("depth below surface must be non-negative")
        return np.maximum(d, 0.0)


@dataclass
class LinearGradientProfile(VelocityProfile):
    """``Vs`` increasing linearly with depth, clamped at ``vs_max``.

    Used for basement rock: stiff at the surface outcrop, stiffer below.
    """

    vs_surface: float = 2500.0
    gradient_per_m: float = 0.15
    vs_max: float = 4000.0

    def vs(self, depth) -> np.ndarray:
        d = self._as_depth_array(depth)
        return np.minimum(self.vs_surface + self.gradient_per_m * d, self.vs_max)


@dataclass
class PowerLawSedimentProfile(VelocityProfile):
    """``Vs = vs_surface * (1 + depth/ref_depth)^exponent``, clamped.

    A standard shape for alluvium: rapid stiffening in the first tens of
    meters, slow growth below.  Clamped at ``vs_max`` so deep sediment
    never exceeds soft rock speeds.
    """

    vs_surface: float = 300.0
    ref_depth: float = 50.0
    exponent: float = 0.45
    vs_max: float = 1200.0

    def vs(self, depth) -> np.ndarray:
        d = self._as_depth_array(depth)
        return np.minimum(
            self.vs_surface * np.power(1.0 + d / self.ref_depth, self.exponent),
            self.vs_max,
        )


@dataclass
class LayeredProfile(VelocityProfile):
    """Piecewise-constant layers, each ``(top_depth, vs)``.

    ``layers`` must be sorted by increasing top depth and start at 0.
    Depths below the last layer use the last layer's velocity.
    """

    layers: Sequence[Tuple[float, float]] = field(
        default_factory=lambda: [(0.0, 400.0), (100.0, 800.0), (1000.0, 2000.0)]
    )

    def __post_init__(self) -> None:
        tops = [t for t, _ in self.layers]
        if not self.layers or tops[0] != 0.0 or sorted(tops) != tops:
            raise ValueError(
                "layers must be sorted by top depth and start at depth 0"
            )

    def vs(self, depth) -> np.ndarray:
        d = self._as_depth_array(depth)
        tops = np.array([t for t, _ in self.layers], dtype=float)
        speeds = np.array([v for _, v in self.layers], dtype=float)
        idx = np.clip(np.searchsorted(tops, d, side="right") - 1, 0, len(speeds) - 1)
        return speeds[idx]
