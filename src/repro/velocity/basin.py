"""Three-dimensional basin geometry.

:class:`BasinModel` combines a rectangular earth domain, a smooth
elliptical basin surface (depth-to-basement as a function of map
position), and two material profiles (sediment inside the basin, rock
outside/below).  Evaluation is vectorized over point arrays.

Coordinate convention (used everywhere in this project): ``x`` and ``y``
are map coordinates in meters, ``z`` is elevation in meters with the free
surface at ``z = 0`` and the bottom of the domain at ``z = -depth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry import AABB
from repro.velocity.profiles import (
    LinearGradientProfile,
    PowerLawSedimentProfile,
    VelocityProfile,
)


@dataclass
class BasinModel:
    """A sediment-filled elliptical basin embedded in rock.

    The basement surface under map point ``(x, y)`` lies at depth

    ``d(x, y) = depth_max * max(0, 1 - r2)^bowl_exponent``

    where ``r2`` is the squared normalized elliptical radius of ``(x, y)``
    around ``(center_x, center_y)`` with semi-axes ``(semi_x, semi_y)``.
    Points above the basement (and below the free surface) are sediment;
    everything else is rock.

    Parameters
    ----------
    domain:
        The rectangular earth volume being modeled.
    center_x, center_y:
        Map position of the deepest basin point.
    semi_x, semi_y:
        Basin footprint semi-axes (m).
    depth_max:
        Maximum sediment thickness (m).
    bowl_exponent:
        Controls how steep-sided the bowl is (1 = paraboloid).
    sediment, rock:
        Material profiles; sediment profiles are evaluated with depth
        below the free surface, rock profiles likewise.
    """

    domain: AABB = field(
        default_factory=lambda: AABB((0.0, 0.0, -10_000.0), (50_000.0, 50_000.0, 0.0))
    )
    center_x: float = 25_000.0
    center_y: float = 22_000.0
    semi_x: float = 17_000.0
    semi_y: float = 11_000.0
    depth_max: float = 1_800.0
    bowl_exponent: float = 1.0
    sediment: VelocityProfile = field(default_factory=PowerLawSedimentProfile)
    rock: VelocityProfile = field(default_factory=LinearGradientProfile)

    def __post_init__(self) -> None:
        if self.semi_x <= 0 or self.semi_y <= 0:
            raise ValueError("basin semi-axes must be positive")
        if self.depth_max < 0:
            raise ValueError("depth_max must be non-negative")
        if self.depth_max > -self.domain.lo[2]:
            raise ValueError("basin deeper than the domain")

    # -- geometry ---------------------------------------------------------

    def basement_depth(self, x, y) -> np.ndarray:
        """Sediment thickness (m) under map point(s) ``(x, y)``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        r2 = ((x - self.center_x) / self.semi_x) ** 2 + (
            (y - self.center_y) / self.semi_y
        ) ** 2
        bowl = np.maximum(0.0, 1.0 - r2) ** self.bowl_exponent
        return self.depth_max * bowl

    def in_sediment(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask: which points lie inside the sediment body."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        depth = -pts[:, 2]
        return (depth >= 0) & (depth < self.basement_depth(pts[:, 0], pts[:, 1]))

    # -- materials --------------------------------------------------------

    def vs(self, points: np.ndarray) -> np.ndarray:
        """Shear-wave velocity (m/s) at each point, shape (n,)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        depth = np.maximum(-pts[:, 2], 0.0)
        sed = self.in_sediment(pts)
        out = np.empty(pts.shape[0], dtype=float)
        if np.any(sed):
            out[sed] = self.sediment.vs(depth[sed])
        if np.any(~sed):
            out[~sed] = self.rock.vs(depth[~sed])
        return out

    def vp(self, points: np.ndarray) -> np.ndarray:
        """Pressure-wave velocity (m/s) at each point."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        depth = np.maximum(-pts[:, 2], 0.0)
        sed = self.in_sediment(pts)
        out = np.empty(pts.shape[0], dtype=float)
        if np.any(sed):
            out[sed] = self.sediment.vp(depth[sed])
        if np.any(~sed):
            out[~sed] = self.rock.vp(depth[~sed])
        return out

    def rho(self, points: np.ndarray) -> np.ndarray:
        """Density (kg/m^3) at each point."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        depth = np.maximum(-pts[:, 2], 0.0)
        sed = self.in_sediment(pts)
        out = np.empty(pts.shape[0], dtype=float)
        if np.any(sed):
            out[sed] = self.sediment.rho(depth[sed])
        if np.any(~sed):
            out[~sed] = self.rock.rho(depth[~sed])
        return out

    def lame_parameters(self, points: np.ndarray):
        """Lame parameters ``(lambda, mu)`` at each point.

        ``mu = rho Vs^2`` and ``lambda = rho (Vp^2 - 2 Vs^2)``.
        """
        vs = self.vs(points)
        vp = self.vp(points)
        rho = self.rho(points)
        mu = rho * vs**2
        lam = rho * (vp**2 - 2.0 * vs**2)
        return lam, mu

    def min_vs(self) -> float:
        """Smallest shear velocity anywhere in the model (at the surface)."""
        probe = np.array(
            [[self.center_x, self.center_y, 0.0], [self.domain.lo[0], self.domain.lo[1], 0.0]]
        )
        return float(self.vs(probe).min())


@dataclass(frozen=True)
class Bowl:
    """One elliptical sediment bowl of a :class:`MultiBasinModel`."""

    center_x: float
    center_y: float
    semi_x: float
    semi_y: float
    depth_max: float
    exponent: float = 1.0

    def depth(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        r2 = ((x - self.center_x) / self.semi_x) ** 2 + (
            (y - self.center_y) / self.semi_y
        ) ** 2
        return self.depth_max * np.maximum(0.0, 1.0 - r2) ** self.exponent


@dataclass
class MultiBasinModel(BasinModel):
    """Several sediment bowls in one rock domain.

    Southern California valleys are rarely single bowls; this variant
    takes the pointwise-deepest of a list of :class:`Bowl` shapes.  All
    material behaviour is inherited from :class:`BasinModel` — only the
    basement surface changes.
    """

    bowls: Sequence["Bowl"] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The single-bowl parameters of the base class are ignored;
        # validate the bowls instead.
        if not self.bowls:
            raise ValueError("MultiBasinModel needs at least one bowl")
        deepest = max(b.depth_max for b in self.bowls)
        if deepest > -self.domain.lo[2]:
            raise ValueError("a bowl is deeper than the domain")
        for bowl in self.bowls:
            if bowl.semi_x <= 0 or bowl.semi_y <= 0 or bowl.depth_max < 0:
                raise ValueError("bowl axes must be positive, depth >= 0")

    def basement_depth(self, x, y) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        depth = np.zeros(np.broadcast(x, y).shape)
        for bowl in self.bowls:
            depth = np.maximum(depth, bowl.depth(x, y))
        return depth

    def min_vs(self) -> float:
        probe_points = [[b.center_x, b.center_y, 0.0] for b in self.bowls]
        probe_points.append([self.domain.lo[0], self.domain.lo[1], 0.0])
        return float(self.vs(np.array(probe_points)).min())


def default_san_fernando_like_model() -> BasinModel:
    """The calibrated basin used by the named sf10e..sf1e instances.

    A single basin whose footprint covers roughly a quarter of the 50 km x
    50 km map area, with ~1.8 km of sediments at its deepest point — the
    same order as published San Fernando Valley structure.
    """
    return BasinModel()
