"""Machine parameter sets.

A machine, for the purposes of the model, is three numbers:

* ``T_f`` — amortized time per flop of the local SMVP (the *sustained*
  local rate, not peak; includes cache misses, pipeline stalls, and
  every other overhead — which is why a 600-MFLOP-peak T3E measures
  only 70 MFLOPS here).
* ``T_l`` — block latency: fixed cost to move one block between the
  network interface and local memory.
* ``T_w`` — marginal time per additional block word (1/burst bandwidth).

All stored in seconds.  ``T_l``/``T_w`` may be ``None`` for machines the
paper only characterizes computationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import paperdata


@dataclass(frozen=True)
class Machine:
    """A (T_f, T_l, T_w[, T_q]) machine model.

    ``T_q`` is the optional queue-search contention coefficient (Bienz,
    Gropp & Olson): the paper's Eq. (2) charges every message the same
    ``T_l + words * T_w``, but on real networks a PE receiving ``q``
    messages in one exchange pays an extra queue-matching cost that
    grows with the queue depth — modeled here as ``T_q * q_i**2`` per
    PE.  ``None`` (the default for every preset) keeps the uniform
    per-message model, bit-identical to the historical behavior.
    """

    name: str
    tf: float  # seconds per flop
    tl: Optional[float] = None  # seconds per block
    tw: Optional[float] = None  # seconds per word
    tq: Optional[float] = None  # seconds per squared queued message

    def __post_init__(self) -> None:
        if self.tf <= 0:
            raise ValueError("tf must be positive")
        if self.tl is not None and self.tl < 0:
            raise ValueError("tl must be non-negative")
        if self.tw is not None and self.tw < 0:
            raise ValueError("tw must be non-negative")
        if self.tq is not None and self.tq < 0:
            raise ValueError("tq must be non-negative")

    @property
    def has_contention(self) -> bool:
        """Whether the queue-contention coefficient ``T_q`` is set."""
        return self.tq is not None

    @property
    def mflops(self) -> float:
        """Sustained local SMVP rate in MFLOPS (1 / T_f, scaled)."""
        return 1e-6 / self.tf

    @property
    def has_comm_constants(self) -> bool:
        """Whether both block constants ``T_l`` and ``T_w`` are set."""
        return self.tl is not None and self.tw is not None

    def require_comm(self, context: str = "communication modeling") -> None:
        """Fail fast (and clearly) when ``T_l``/``T_w`` are missing.

        Several consumers (the BSP simulator, Equation (2), application
        predictions) multiply by ``tl``/``tw``; without this check they
        would die later with a cryptic ``TypeError`` on ``None``
        arithmetic.
        """
        if not self.has_comm_constants:
            missing = [
                name
                for name, value in (("T_l", self.tl), ("T_w", self.tw))
                if value is None
            ]
            raise ValueError(
                f"machine preset {self.name!r} does not define "
                f"{' or '.join(missing)}, which {context} requires; use a "
                "preset with block constants (e.g. 't3e') or construct a "
                "Machine with explicit tl/tw"
            )

    @property
    def burst_bandwidth_bytes(self) -> Optional[float]:
        """Burst bandwidth in bytes/s (words are 64-bit)."""
        if self.tw is None or self.tw == 0:
            return None
        return paperdata.BYTES_PER_WORD / self.tw

    @classmethod
    def from_mflops(
        cls,
        name: str,
        mflops: float,
        tl: Optional[float] = None,
        tw: Optional[float] = None,
    ) -> "Machine":
        """Build a machine from a sustained MFLOPS rating."""
        if mflops <= 0:
            raise ValueError("mflops must be positive")
        return cls(name=name, tf=1e-6 / mflops, tl=tl, tw=tw)


#: The paper's hypothetical "current" machine (Section 4): 100 MFLOPS.
CURRENT_100MFLOPS = Machine.from_mflops("current-100MFLOPS", 100.0)

#: The paper's hypothetical "future" machine: 200 MFLOPS.
FUTURE_200MFLOPS = Machine.from_mflops("future-200MFLOPS", 200.0)

#: Cray T3D: measured T_f = 30 ns (Section 3.1).
CRAY_T3D = Machine(name="Cray T3D", tf=30e-9)

#: Cray T3E: measured T_f = 14 ns, T_l = 22 us, T_w = 55 ns
#: (Sections 3.1 and 3.3).
CRAY_T3E = Machine(name="Cray T3E", tf=14e-9, tl=22e-6, tw=55e-9)

#: Registry by short name.
MACHINES: Dict[str, Machine] = {
    "current": CURRENT_100MFLOPS,
    "future": FUTURE_200MFLOPS,
    "t3d": CRAY_T3D,
    "t3e": CRAY_T3E,
}
