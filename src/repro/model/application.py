"""Whole-application predictions.

A Quake run is 6000 explicit time steps (Section 2.2), each dominated
by one SMVP.  Given an application's (F, C_max, B_max) and a machine
with block constants, this module predicts the achieved efficiency, the
per-SMVP time, and the full simulation's running time — turning the
paper's models into the forward tool an application scientist would
actually use ("how long will sf2 take on 128 of these?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import paperdata
from repro.model.highlevel import efficiency_from_tc, smvp_time
from repro.model.inputs import ModelInputs
from repro.model.lowlevel import BlockMode, MAXIMAL_BLOCKS, tc_from_blocks
from repro.model.machine import Machine


@dataclass(frozen=True)
class ApplicationPrediction:
    """Predicted performance of one application on one machine."""

    label: str
    machine: str
    num_parts: int
    flops_per_step: int
    tc: float  # sustained time per word achieved (s)
    efficiency: float
    t_smvp: float  # seconds per SMVP
    num_steps: int

    @property
    def total_seconds(self) -> float:
        """Full-simulation running time (SMVPs only, the >80% part)."""
        return self.num_steps * self.t_smvp

    @property
    def sustained_mflops_per_pe(self) -> float:
        """Achieved MFLOPS per PE including communication stalls."""
        return self.flops_per_step / self.t_smvp / 1e6


def predict_application(
    inputs: ModelInputs,
    machine: Machine,
    mode: BlockMode = MAXIMAL_BLOCKS,
    num_steps: int = paperdata.NUM_TIME_STEPS,
) -> ApplicationPrediction:
    """Predict efficiency and running time on a machine with T_l/T_w.

    Uses Equation (2) for the sustained per-word time the machine
    actually delivers, then Equation (1) inverted for the efficiency.
    """
    machine.require_comm("predicting application performance")
    tc = tc_from_blocks(inputs, machine.tl, machine.tw, mode)
    eff = efficiency_from_tc(inputs, tc, machine)
    t_step = smvp_time(inputs, tc, machine)
    return ApplicationPrediction(
        label=inputs.label,
        machine=machine.name,
        num_parts=inputs.num_parts,
        flops_per_step=inputs.F,
        tc=tc,
        efficiency=eff,
        t_smvp=t_step,
        num_steps=num_steps,
    )
