"""Section 4 requirement sweeps (the data behind Figures 8 and 9).

Both figures sweep subdomain counts {4..128} x machines {100, 200
MFLOPS} x efficiencies {0.5, 0.8, 0.9}; each function here produces one
row per (p, machine, efficiency) so the table benches can print them
and tests can assert the headline claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro import paperdata
from repro.model.highlevel import required_tc, sustained_bandwidth_bytes
from repro.model.inputs import ModelInputs
from repro.model.machine import CURRENT_100MFLOPS, FUTURE_200MFLOPS, Machine

#: The efficiencies the paper's Figures 8-9 plot.
DEFAULT_EFFICIENCIES = (0.5, 0.8, 0.9)

#: The two hypothetical machines of Section 4.
DEFAULT_MACHINES = (CURRENT_100MFLOPS, FUTURE_200MFLOPS)


def bisection_bandwidth_bytes(
    inputs: ModelInputs, efficiency: float, machine: Machine
) -> float:
    """Required sustained bisection bandwidth (bytes/s) — Section 4.2.

    ``V`` words cross the bisection while the busiest PE spends
    ``C_max * T_c`` seconds communicating, so the network must sustain
    ``V / (C_max T_c)`` words/s across the bisection.
    """
    if inputs.bisection_words is None:
        raise ValueError(f"{inputs.label}: no bisection volume available")
    tc = required_tc(inputs, efficiency, machine)
    words_per_second = inputs.bisection_words / (inputs.c_max * tc)
    return paperdata.BYTES_PER_WORD * words_per_second


@dataclass(frozen=True)
class RequirementRow:
    """One point of a Figure 8/9 curve."""

    label: str
    num_parts: int
    machine: str
    mflops: float
    efficiency: float
    mbytes_per_second: float


def pe_bandwidth_requirement_rows(
    inputs_list: Sequence[ModelInputs],
    efficiencies: Iterable[float] = DEFAULT_EFFICIENCIES,
    machines: Iterable[Machine] = DEFAULT_MACHINES,
) -> List[RequirementRow]:
    """Figure 9: required sustained per-PE bandwidth for each point."""
    rows = []
    for machine in machines:
        for eff in efficiencies:
            for inputs in inputs_list:
                bw = sustained_bandwidth_bytes(inputs, eff, machine)
                rows.append(
                    RequirementRow(
                        label=inputs.label,
                        num_parts=inputs.num_parts,
                        machine=machine.name,
                        mflops=machine.mflops,
                        efficiency=eff,
                        mbytes_per_second=bw / 1e6,
                    )
                )
    return rows


def bisection_requirement_rows(
    inputs_list: Sequence[ModelInputs],
    efficiencies: Iterable[float] = DEFAULT_EFFICIENCIES,
    machines: Iterable[Machine] = DEFAULT_MACHINES,
) -> List[RequirementRow]:
    """Figure 8: required sustained bisection bandwidth for each point."""
    rows = []
    for machine in machines:
        for eff in efficiencies:
            for inputs in inputs_list:
                bw = bisection_bandwidth_bytes(inputs, eff, machine)
                rows.append(
                    RequirementRow(
                        label=inputs.label,
                        num_parts=inputs.num_parts,
                        machine=machine.name,
                        mflops=machine.mflops,
                        efficiency=eff,
                        mbytes_per_second=bw / 1e6,
                    )
                )
    return rows
