"""Equation (1): the high-level communication model.

The SMVP is two synchronous phases: ``T_smvp = T_comp + T_comm`` with
``T_comp = F T_f`` and ``T_comm = C_max T_c``.  Defining efficiency
``E = T_comp / T_smvp`` and solving for the sustained per-word time:

``T_c = (F / C_max) ((1 - E) / E) T_f``                      (1)

The separation the paper highlights: ``F / C_max`` is an application +
partitioner property, ``T_f`` a processor + compiler property, and
``E`` a user-imposed target.
"""

from __future__ import annotations

from repro import paperdata
from repro.model.inputs import ModelInputs
from repro.model.machine import Machine


def _check_efficiency(efficiency: float) -> None:
    if not 0.0 < efficiency < 1.0:
        raise ValueError("efficiency must be strictly between 0 and 1")


def required_tc(inputs: ModelInputs, efficiency: float, machine: Machine) -> float:
    """Equation (1): required sustained time per word (seconds)."""
    _check_efficiency(efficiency)
    return (
        inputs.f_over_c * ((1.0 - efficiency) / efficiency) * machine.tf
    )


def sustained_bandwidth_bytes(
    inputs: ModelInputs, efficiency: float, machine: Machine
) -> float:
    """Required sustained per-PE bandwidth (bytes/s) — Figure 9's y-axis."""
    tc = required_tc(inputs, efficiency, machine)
    return paperdata.BYTES_PER_WORD / tc


def efficiency_from_tc(inputs: ModelInputs, tc: float, machine: Machine) -> float:
    """Invert Equation (1): efficiency achieved at a given T_c."""
    if tc < 0:
        raise ValueError("tc must be non-negative")
    t_comp = inputs.F * machine.tf
    t_comm = inputs.c_max * tc
    return t_comp / (t_comp + t_comm)


def smvp_time(inputs: ModelInputs, tc: float, machine: Machine) -> float:
    """Modeled T_smvp = F T_f + C_max T_c (seconds)."""
    if tc < 0:
        raise ValueError("tc must be non-negative")
    return inputs.F * machine.tf + inputs.c_max * tc
