"""Equation (2): the low-level (block) communication model.

During the communication phase a PE moves ``B`` blocks totalling ``C``
words; block ``i`` of ``l_i`` words costs ``T_l + l_i T_w``, so

``T_comm = B_max T_l + C_max T_w``  and  ``T_c = (B_max/C_max) T_l + T_w``  (2)

Block modes
-----------
``B_max`` depends on the transfer granularity:

* *maximal blocks* — one message per neighbor per direction (message
  passing, or DSMs that aggregate); ``B_max`` comes straight from the
  schedule.
* *fixed-size blocks* — e.g. 4-word cache lines on a fine-grained
  shared-memory machine; then ``B_max = C_max / block_words``
  (Section 4.4's Figure 10(b) uses 4 words).

The paper's prose quotes for the *maximal*-block latency limits are
2.5-3x tighter than Equation (2) applied to the published Figure 7 data
(see DESIGN.md); a ``blocks_per_neighbor`` multiplier (e.g. 3 if each
degree of freedom travelled as its own message) reproduces them and is
exposed for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import paperdata
from repro.model.highlevel import required_tc
from repro.model.inputs import ModelInputs
from repro.model.machine import Machine


@dataclass(frozen=True)
class BlockMode:
    """How communication words are grouped into blocks.

    Exactly one of ``fixed_words`` (fixed-size blocks of that many
    words) or ``maximal`` behaviour (``fixed_words is None``) applies;
    ``blocks_per_neighbor`` scales the maximal-block count.
    """

    name: str
    fixed_words: Optional[int] = None
    blocks_per_neighbor: int = 1

    def __post_init__(self) -> None:
        if self.fixed_words is not None and self.fixed_words < 1:
            raise ValueError("fixed_words must be >= 1")
        if self.blocks_per_neighbor < 1:
            raise ValueError("blocks_per_neighbor must be >= 1")

    def b_max(self, inputs: ModelInputs) -> float:
        """Effective maximum block count for this mode."""
        if self.fixed_words is not None:
            return inputs.c_max / self.fixed_words
        return inputs.b_max * self.blocks_per_neighbor


#: One (maximal) block per neighbor per direction.
MAXIMAL_BLOCKS = BlockMode(name="maximal")


def four_word_blocks() -> BlockMode:
    """Fixed 4-word (32-byte cache line) blocks — Figure 10(b)."""
    return BlockMode(name="4-word", fixed_words=4)


def fixed_blocks(words: int) -> BlockMode:
    """Fixed blocks of an arbitrary word count (block-size ablation)."""
    return BlockMode(name=f"{words}-word", fixed_words=words)


def tc_from_blocks(
    inputs: ModelInputs, tl: float, tw: float, mode: BlockMode = MAXIMAL_BLOCKS
) -> float:
    """Equation (2) forward: T_c from machine block parameters."""
    if tl < 0 or tw < 0:
        raise ValueError("tl and tw must be non-negative")
    return (mode.b_max(inputs) / inputs.c_max) * tl + tw


def latency_for_tradeoff(
    inputs: ModelInputs,
    efficiency: float,
    machine: Machine,
    tw: float,
    mode: BlockMode = MAXIMAL_BLOCKS,
) -> float:
    """Largest block latency meeting the efficiency target at burst 1/tw.

    Solves Equation (2) for ``T_l`` given the Equation (1) requirement;
    returns a negative number when the target is infeasible even at
    zero latency (i.e. ``tw`` alone already exceeds the required T_c).
    """
    tc = required_tc(inputs, efficiency, machine)
    return (tc - tw) * inputs.c_max / mode.b_max(inputs)


def tradeoff_curve(
    inputs: ModelInputs,
    efficiency: float,
    machine: Machine,
    mode: BlockMode = MAXIMAL_BLOCKS,
    burst_bandwidths_bytes: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float]]:
    """Figure 10: (burst bandwidth bytes/s, max latency s) pairs.

    Each point is a machine design meeting the sustained-bandwidth
    requirement exactly.  Points where the latency would be negative
    (infeasible burst bandwidth) are dropped.  The default burst grid
    spans 10 MB/s to 100 GB/s, plus infinity (tw = 0).
    """
    if burst_bandwidths_bytes is None:
        burst_bandwidths_bytes = list(np.geomspace(10e6, 100e9, 25)) + [
            float("inf")
        ]
    out = []
    for bw in burst_bandwidths_bytes:
        tw = 0.0 if np.isinf(bw) else paperdata.BYTES_PER_WORD / bw
        tl = latency_for_tradeoff(inputs, efficiency, machine, tw, mode)
        if tl >= 0:
            out.append((float(bw), float(tl)))
    return out


@dataclass(frozen=True)
class HalfBandwidthTarget:
    """A balanced design point: latency and bandwidth each consume half
    of the communication-phase time (Section 4.4).

    Over-engineering either side beyond this point can recover at most
    a factor of two — which is why the paper proposes these as network
    design targets.
    """

    label: str
    efficiency: float
    machine: str
    mode: str
    tc: float  # required sustained time per word (s)
    half_tw: float  # seconds per word
    half_tl: float  # seconds per block

    @property
    def burst_bandwidth_bytes(self) -> float:
        return paperdata.BYTES_PER_WORD / self.half_tw

    @property
    def sustained_bandwidth_bytes(self) -> float:
        return paperdata.BYTES_PER_WORD / self.tc


def half_bandwidth_targets(
    inputs: ModelInputs,
    efficiency: float,
    machine: Machine,
    mode: BlockMode = MAXIMAL_BLOCKS,
) -> HalfBandwidthTarget:
    """Figure 11: the half-bandwidth / half-latency design point.

    Setting ``C_max T_w = B_max T_l = T_comm / 2`` gives
    ``T_w = T_c / 2`` and ``T_l = T_c C_max / (2 B_max)``.
    """
    tc = required_tc(inputs, efficiency, machine)
    half_tw = tc / 2.0
    half_tl = tc * inputs.c_max / (2.0 * mode.b_max(inputs))
    return HalfBandwidthTarget(
        label=inputs.label,
        efficiency=efficiency,
        machine=machine.name,
        mode=mode.name,
        tc=tc,
        half_tw=half_tw,
        half_tl=half_tl,
    )
