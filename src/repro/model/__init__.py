"""The paper's SMVP performance models (Sections 3-4).

This is the core analytical contribution being reproduced:

* :mod:`~repro.model.machine` — machine parameter sets (T_f, T_l, T_w):
  the hypothetical 100/200-MFLOP machines of Section 4 and the measured
  Cray T3D/T3E constants.
* :mod:`~repro.model.inputs` — the application-side inputs (F, C_max,
  B_max), constructible from measured statistics or from the paper's
  published Figure 7.
* :mod:`~repro.model.highlevel` — Equation (1): sustained communication
  time per word T_c required for a target efficiency.
* :mod:`~repro.model.lowlevel` — Equation (2): the block latency /
  burst bandwidth decomposition of T_c, with maximal or fixed-size
  (cache-line) block modes.
* :mod:`~repro.model.requirements` — the Section 4 requirement curves:
  bisection bandwidth (Fig 8), sustained per-PE bandwidth (Fig 9),
  latency/bandwidth tradeoffs (Fig 10), half-bandwidth targets (Fig 11).
"""

from repro.model.machine import (
    Machine,
    CURRENT_100MFLOPS,
    FUTURE_200MFLOPS,
    CRAY_T3D,
    CRAY_T3E,
    MACHINES,
)
from repro.model.inputs import ModelInputs
from repro.model.highlevel import (
    required_tc,
    sustained_bandwidth_bytes,
    efficiency_from_tc,
    smvp_time,
)
from repro.model.lowlevel import (
    BlockMode,
    MAXIMAL_BLOCKS,
    four_word_blocks,
    tc_from_blocks,
    latency_for_tradeoff,
    tradeoff_curve,
    half_bandwidth_targets,
    HalfBandwidthTarget,
)
from repro.model.requirements import (
    bisection_bandwidth_bytes,
    pe_bandwidth_requirement_rows,
    bisection_requirement_rows,
)

__all__ = [
    "Machine",
    "CURRENT_100MFLOPS",
    "FUTURE_200MFLOPS",
    "CRAY_T3D",
    "CRAY_T3E",
    "MACHINES",
    "ModelInputs",
    "required_tc",
    "sustained_bandwidth_bytes",
    "efficiency_from_tc",
    "smvp_time",
    "BlockMode",
    "MAXIMAL_BLOCKS",
    "four_word_blocks",
    "tc_from_blocks",
    "latency_for_tradeoff",
    "tradeoff_curve",
    "half_bandwidth_targets",
    "HalfBandwidthTarget",
    "bisection_bandwidth_bytes",
    "pe_bandwidth_requirement_rows",
    "bisection_requirement_rows",
]
