"""Application-side inputs to the performance model.

Equations (1) and (2) need only three application numbers — F, C_max,
B_max (plus the bisection volume for Figure 8).  ``ModelInputs`` is the
small adapter that lets every model function run identically on

* measured statistics from our meshes/partitions
  (:meth:`ModelInputs.from_stats`), and
* the paper's published Figure 7 rows
  (:meth:`ModelInputs.from_paper`) — which is how the model-side
  figures (8-11) stay exactly reproducible even when the big meshes
  are gated off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import paperdata
from repro.stats.properties import SmvpStats


@dataclass(frozen=True)
class ModelInputs:
    """The (F, C_max, B_max) triple plus optional extras."""

    label: str
    num_parts: int
    F: int
    c_max: int
    b_max: int
    m_avg: Optional[float] = None
    bisection_words: Optional[int] = None

    def __post_init__(self) -> None:
        if self.F <= 0 or self.c_max <= 0 or self.b_max <= 0:
            raise ValueError("F, C_max, B_max must be positive")

    @property
    def f_over_c(self) -> float:
        return self.F / self.c_max

    @classmethod
    def from_stats(cls, stats: SmvpStats, label: str = "") -> "ModelInputs":
        """Adapt measured :class:`~repro.stats.SmvpStats`."""
        return cls(
            label=label or f"measured/{stats.num_parts}",
            num_parts=stats.num_parts,
            F=stats.F,
            c_max=stats.c_max,
            b_max=stats.b_max,
            m_avg=stats.m_avg,
            bisection_words=stats.bisection_words,
        )

    @classmethod
    def from_paper(cls, application: str, num_parts: int) -> "ModelInputs":
        """The paper's published Figure 7 row for (application, p)."""
        props = paperdata.SMVP_PROPERTIES[(application, num_parts)]
        return cls(
            label=f"{application}/{num_parts}",
            num_parts=num_parts,
            F=props.F,
            c_max=props.C_max,
            b_max=props.B_max,
            m_avg=float(props.M_avg),
        )
