"""Vectorized measures of tetrahedra.

Every function takes the mesh representation used throughout this project:
``points`` is an ``(n, 3)`` float array of node coordinates and ``tets`` is
an ``(m, 4)`` integer array of node indices, one row per tetrahedron.
All functions are fully vectorized over the ``m`` tetrahedra, which is what
makes meshes with millions of elements practical in Python.

The quality measures (radius ratio, aspect ratio) are the standard ones
used by Delaunay refinement literature (Shewchuk's thesis, cited by the
paper as the origin of the Quake meshes): a regular tetrahedron has radius
ratio 1.0 and degenerate slivers approach 0.0.
"""

from __future__ import annotations

import numpy as np

#: The six (corner, corner) index pairs forming the edges of a tetrahedron.
TET_EDGES = np.array(
    [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], dtype=np.int64
)

#: The four faces of a tetrahedron, each opposite the omitted corner,
#: oriented so their normals point outward for a positively oriented tet.
TET_FACES = np.array(
    [(1, 2, 3), (0, 3, 2), (0, 1, 3), (0, 2, 1)], dtype=np.int64
)


def _corner_coords(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Gather corner coordinates into an (m, 4, 3) array."""
    points = np.asarray(points, dtype=float)
    tets = np.asarray(tets, dtype=np.int64)
    if tets.ndim != 2 or tets.shape[1] != 4:
        raise ValueError("tets must have shape (m, 4)")
    return points[tets]


def tet_signed_volumes(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Signed volume of each tet (positive for right-handed orientation)."""
    p = _corner_coords(points, tets)
    a = p[:, 1] - p[:, 0]
    b = p[:, 2] - p[:, 0]
    c = p[:, 3] - p[:, 0]
    return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0


def tet_volumes(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Absolute volume of each tet."""
    return np.abs(tet_signed_volumes(points, tets))


def tet_centroids(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Centroid (mean of the four corners) of each tet, shape (m, 3)."""
    return _corner_coords(points, tets).mean(axis=1)


def tet_edge_lengths(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Lengths of the six edges of each tet, shape (m, 6).

    Edge ordering follows :data:`TET_EDGES`.
    """
    p = _corner_coords(points, tets)
    diffs = p[:, TET_EDGES[:, 0], :] - p[:, TET_EDGES[:, 1], :]
    return np.linalg.norm(diffs, axis=2)


def tet_longest_edges(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Longest edge of each tet."""
    return tet_edge_lengths(points, tets).max(axis=1)


def tet_shortest_edges(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Shortest edge of each tet."""
    return tet_edge_lengths(points, tets).min(axis=1)


def _face_areas(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Areas of the four faces of each tet, shape (m, 4)."""
    p = _corner_coords(points, tets)
    f = p[:, TET_FACES, :]  # (m, 4, 3 corners, 3 coords)
    u = f[:, :, 1, :] - f[:, :, 0, :]
    v = f[:, :, 2, :] - f[:, :, 0, :]
    return np.linalg.norm(np.cross(u, v), axis=2) / 2.0


def tet_inradii(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Inscribed-sphere radius: ``3 V / (sum of face areas)``.

    Degenerate tets (zero surface) return 0.
    """
    vol = tet_volumes(points, tets)
    area = _face_areas(points, tets).sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(area > 0, 3.0 * vol / area, 0.0)
    return r


def tet_circumradii(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Circumscribed-sphere radius of each tet.

    Uses the formula ``R = |alpha| / (12 V)`` where ``alpha`` is a
    Cayley-Menger-style determinant expression; implemented via the
    standard construction ``R = |a|^2 (b x c) + |b|^2 (c x a) + |c|^2 (a x b)|
    / (12 V)`` with a, b, c the edge vectors from corner 0.  Degenerate
    tets return ``inf``.
    """
    p = _corner_coords(points, tets)
    a = p[:, 1] - p[:, 0]
    b = p[:, 2] - p[:, 0]
    c = p[:, 3] - p[:, 0]
    la = np.einsum("ij,ij->i", a, a)
    lb = np.einsum("ij,ij->i", b, b)
    lc = np.einsum("ij,ij->i", c, c)
    num = (
        la[:, None] * np.cross(b, c)
        + lb[:, None] * np.cross(c, a)
        + lc[:, None] * np.cross(a, b)
    )
    vol6 = np.abs(np.einsum("ij,ij->i", a, np.cross(b, c)))
    with np.errstate(divide="ignore", invalid="ignore"):
        r = np.where(
            vol6 > 0, np.linalg.norm(num, axis=1) / (2.0 * vol6), np.inf
        )
    return r


def tet_quality_radius_ratio(
    points: np.ndarray, tets: np.ndarray
) -> np.ndarray:
    """Normalized radius ratio ``3 r_in / R_circ`` in [0, 1].

    Equals 1 for a regular tetrahedron and tends to 0 for slivers; this is
    the measure mesh-quality statistics report.
    """
    rin = tet_inradii(points, tets)
    rcirc = tet_circumradii(points, tets)
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.where(np.isfinite(rcirc) & (rcirc > 0), 3.0 * rin / rcirc, 0.0)
    return np.clip(q, 0.0, 1.0)


def tet_aspect_ratios(points: np.ndarray, tets: np.ndarray) -> np.ndarray:
    """Longest edge divided by inradius (lower is better; regular ~4.9).

    Degenerate tets return ``inf``.
    """
    longest = tet_longest_edges(points, tets)
    rin = tet_inradii(points, tets)
    with np.errstate(divide="ignore", invalid="ignore"):
        ar = np.where(rin > 0, longest / rin, np.inf)
    return ar
