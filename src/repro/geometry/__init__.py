"""Geometric primitives used throughout the reproduction.

This subpackage is deliberately small and dependency-free (numpy only).
It provides the few geometric facts the rest of the system needs:

* :class:`~repro.geometry.aabb.AABB` — axis-aligned boxes, used to describe
  the simulation domain and octree cells.
* :mod:`~repro.geometry.tetra` — vectorized measures of tetrahedra
  (signed volume, edge lengths, radius ratios) used by the mesher and the
  finite element assembly.
* :mod:`~repro.geometry.predicates` — orientation and containment tests.
"""

from repro.geometry.aabb import AABB
from repro.geometry.tetra import (
    tet_volumes,
    tet_signed_volumes,
    tet_edge_lengths,
    tet_quality_radius_ratio,
    tet_circumradii,
    tet_inradii,
    tet_centroids,
    tet_longest_edges,
    tet_shortest_edges,
    tet_aspect_ratios,
)
from repro.geometry.predicates import (
    orient3d,
    points_in_tets,
    points_in_aabb,
)

__all__ = [
    "AABB",
    "tet_volumes",
    "tet_signed_volumes",
    "tet_edge_lengths",
    "tet_quality_radius_ratio",
    "tet_circumradii",
    "tet_inradii",
    "tet_centroids",
    "tet_longest_edges",
    "tet_shortest_edges",
    "tet_aspect_ratios",
    "orient3d",
    "points_in_tets",
    "points_in_aabb",
]
