"""Orientation and containment predicates.

These are plain floating-point predicates (no adaptive arithmetic); the
mesher only uses them for sanity checks and point-location on meshes whose
coordinates are kilometers apart, far from the degeneracy regime where
exact predicates matter.
"""

from __future__ import annotations

import numpy as np


def orient3d(a, b, c, d) -> np.ndarray:
    """Orientation of point(s) ``d`` relative to the plane through a, b, c.

    Positive when ``d`` lies on the side such that (a, b, c, d) form a
    positively oriented (right-handed) tetrahedron, negative on the other
    side, ~0 when coplanar.  Inputs broadcast: each argument may be a
    single point or an (n, 3) array.
    """
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    c = np.atleast_2d(np.asarray(c, dtype=float))
    d = np.atleast_2d(np.asarray(d, dtype=float))
    # det[b-a, c-a, d-a]: six times the signed volume of (a, b, c, d).
    ba = b - a
    ca = c - a
    da = d - a
    det = np.einsum("ij,ij->i", ba, np.cross(ca, da))
    return det


def points_in_aabb(points: np.ndarray, lo, hi) -> np.ndarray:
    """Boolean mask of points inside the closed box [lo, hi]."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    return np.all((pts >= lo) & (pts <= hi), axis=1)


def points_in_tets(
    points: np.ndarray,
    tet_corners: np.ndarray,
    tol: float = 1e-9,
) -> np.ndarray:
    """Test whether ``points[i]`` lies inside ``tet_corners[i]``.

    Parameters
    ----------
    points:
        ``(n, 3)`` query points.
    tet_corners:
        ``(n, 4, 3)`` corner coordinates, one tet per query point (this is
        the shape produced by gathering ``mesh.points[mesh.tets[idx]]``).
    tol:
        Relative slack on the barycentric coordinates.

    Returns
    -------
    numpy.ndarray
        Boolean mask of length ``n``.
    """
    pts = np.asarray(points, dtype=float)
    tc = np.asarray(tet_corners, dtype=float)
    if pts.ndim != 2 or tc.ndim != 3 or tc.shape[1:] != (4, 3):
        raise ValueError("expected points (n,3) and tet_corners (n,4,3)")
    # Solve for barycentric coordinates: p = p0 + T @ lambda[1:4].
    t_mat = np.transpose(tc[:, 1:4, :] - tc[:, 0:1, :], (0, 2, 1))
    rhs = pts - tc[:, 0, :]
    # Batched 3x3 solve; singular (degenerate) tets marked as "outside".
    dets = np.linalg.det(t_mat)
    ok = np.abs(dets) > 0
    lam = np.zeros((pts.shape[0], 3))
    if np.any(ok):
        lam[ok] = np.linalg.solve(t_mat[ok], rhs[ok][..., None])[..., 0]
    lam0 = 1.0 - lam.sum(axis=1)
    inside = (
        ok
        & (lam0 >= -tol)
        & np.all(lam >= -tol, axis=1)
        & (lam0 <= 1 + tol)
        & np.all(lam <= 1 + tol, axis=1)
    )
    return inside
