"""Axis-aligned bounding boxes.

The Quake simulation domain is a rectangular box of earth (roughly
50 km x 50 km x 10 km under the San Fernando Valley).  ``AABB`` is the
type we use to describe that domain, octree cells carved out of it, and
query regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box ``[lo, hi]`` in 3D.

    Coordinates are stored as immutable tuples so an ``AABB`` can be used
    as a dict key or set member.  All arithmetic helpers return numpy
    arrays or new ``AABB`` instances; the box itself is never mutated.

    Parameters
    ----------
    lo:
        Minimum corner ``(x, y, z)``.
    hi:
        Maximum corner ``(x, y, z)``.  Must satisfy ``hi >= lo``
        component-wise.
    """

    lo: tuple
    hi: tuple

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lo)
        hi = tuple(float(v) for v in self.hi)
        if len(lo) != 3 or len(hi) != 3:
            raise ValueError("AABB corners must be 3D points")
        if any(h < l for l, h in zip(lo, hi)):
            raise ValueError(f"AABB hi corner {hi} below lo corner {lo}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "AABB":
        """Smallest box containing every row of ``points`` (shape (n, 3))."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 3 or pts.shape[0] == 0:
            raise ValueError("from_points expects a non-empty (n, 3) array")
        return cls(tuple(pts.min(axis=0)), tuple(pts.max(axis=0)))

    @property
    def size(self) -> np.ndarray:
        """Edge lengths ``hi - lo`` as a length-3 array."""
        return np.asarray(self.hi) - np.asarray(self.lo)

    @property
    def center(self) -> np.ndarray:
        """Box center as a length-3 array."""
        return (np.asarray(self.hi) + np.asarray(self.lo)) / 2.0

    @property
    def volume(self) -> float:
        """Product of the edge lengths."""
        return float(np.prod(self.size))

    @property
    def longest_edge(self) -> float:
        return float(self.size.max())

    def contains(self, points: np.ndarray, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of which rows of ``points`` lie inside the box.

        ``tol`` expands the box by an absolute margin on every side, which
        is useful when testing points produced by floating-point clipping.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        lo = np.asarray(self.lo) - tol
        hi = np.asarray(self.hi) + tol
        return np.all((pts >= lo) & (pts <= hi), axis=1)

    def intersects(self, other: "AABB") -> bool:
        """True when the two (closed) boxes share at least one point."""
        return bool(
            np.all(np.asarray(self.lo) <= np.asarray(other.hi))
            and np.all(np.asarray(other.lo) <= np.asarray(self.hi))
        )

    def intersection(self, other: "AABB") -> "AABB":
        """The overlapping box; raises ``ValueError`` if disjoint."""
        if not self.intersects(other):
            raise ValueError("boxes do not intersect")
        lo = np.maximum(np.asarray(self.lo), np.asarray(other.lo))
        hi = np.minimum(np.asarray(self.hi), np.asarray(other.hi))
        return AABB(tuple(lo), tuple(hi))

    def union(self, other: "AABB") -> "AABB":
        """Smallest box containing both boxes."""
        lo = np.minimum(np.asarray(self.lo), np.asarray(other.lo))
        hi = np.maximum(np.asarray(self.hi), np.asarray(other.hi))
        return AABB(tuple(lo), tuple(hi))

    def expanded(self, margin: float) -> "AABB":
        """Box grown by ``margin`` on every side."""
        lo = np.asarray(self.lo) - margin
        hi = np.asarray(self.hi) + margin
        return AABB(tuple(lo), tuple(hi))

    def corners(self) -> np.ndarray:
        """The eight corner points as an (8, 3) array, z-major order."""
        xs = (self.lo[0], self.hi[0])
        ys = (self.lo[1], self.hi[1])
        zs = (self.lo[2], self.hi[2])
        out = np.array(
            [(x, y, z) for z in zs for y in ys for x in xs], dtype=float
        )
        return out

    def octant(self, index: int) -> "AABB":
        """One of the eight child boxes produced by splitting at the center.

        ``index`` uses bit 0 for x, bit 1 for y, bit 2 for z (0 = low half).
        This is the child ordering the octree subpackage relies on.
        """
        if not 0 <= index < 8:
            raise ValueError("octant index must be in [0, 8)")
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        mid = (lo + hi) / 2.0
        bits = np.array([(index >> d) & 1 for d in range(3)])
        new_lo = np.where(bits == 0, lo, mid)
        new_hi = np.where(bits == 0, mid, hi)
        return AABB(tuple(new_lo), tuple(new_hi))

    def sample_grid(self, counts) -> np.ndarray:
        """Regular lattice of points inside the box, inclusive of faces.

        ``counts`` gives the number of samples along each axis (>= 2 each,
        or 1 to sample the midplane of that axis).  Returns an (N, 3) array.
        """
        axes = []
        for lo, hi, c in zip(self.lo, self.hi, counts):
            c = int(c)
            if c < 1:
                raise ValueError("sample count must be >= 1")
            if c == 1:
                axes.append(np.array([(lo + hi) / 2.0]))
            else:
                axes.append(np.linspace(lo, hi, c))
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
