"""Published numbers from the paper, transcribed verbatim.

Every table and every prose figure quote used by the reproduction lives
here, so that benchmark output can always print "paper" next to
"measured" and EXPERIMENTS.md can be regenerated mechanically.

Source: D. O'Hallaron, J. Shewchuk, T. Gross, "Architectural
Implications of a Family of Irregular Applications", HPCA 1998.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: The four applications, ordered by decreasing wave period.
APPLICATIONS = ("sf10", "sf5", "sf2", "sf1")

#: The PE (subdomain) counts used throughout the paper's tables.
SUBDOMAIN_COUNTS = (4, 8, 16, 32, 64, 128)

#: Figure 2 — sizes of the Quake meshes.
MESH_SIZES: Dict[str, Dict[str, int]] = {
    "sf10": {"nodes": 7_294, "elements": 35_025, "edges": 44_922},
    "sf5": {"nodes": 30_169, "elements": 151_239, "edges": 190_377},
    "sf2": {"nodes": 378_747, "elements": 2_067_739, "edges": 2_509_064},
    "sf1": {"nodes": 2_461_694, "elements": 13_980_162, "edges": 16_684_112},
}

#: Section 2.1 — "for each node in the mesh, a simulation uses about
#: 1.2 KByte of memory at runtime"; sf2 needs ~450 MBytes.
MEMORY_BYTES_PER_NODE = 1.2 * 1024
SF2_MEMORY_MBYTES = 450.0

#: Section 2.2 — simulated duration and number of explicit time steps.
NUM_TIME_STEPS = 6000
SIMULATED_SECONDS = 60.0

#: Section 2.2 — each node connects to an average of 13 neighbors, so a
#: row of K holds on average 14 * 3 = 42 nonzeros.
AVG_NODE_NEIGHBORS = 13.0
AVG_ROW_NONZEROS = 42.0

#: Section 2.3 — SMVPs consume over 80% of sequential running time.
SMVP_RUNTIME_FRACTION = 0.80


@dataclass(frozen=True)
class SmvpProperties:
    """One cell of Figure 7 (one application at one subdomain count).

    Attributes mirror the paper's symbols: ``F`` flops per PE per SMVP,
    ``C_max`` maximum communication words on any PE, ``B_max`` maximum
    communication blocks on any PE, ``M_avg`` average message size in
    64-bit words.  ``f_over_c`` is the published (rounded) ratio.
    """

    F: int
    C_max: int
    B_max: int
    M_avg: int
    f_over_c: int


#: Figure 7 — Quake SMVP properties, keyed by (application, subdomains).
SMVP_PROPERTIES: Dict[Tuple[str, int], SmvpProperties] = {
    ("sf10", 4): SmvpProperties(453_924, 2_352, 6, 369, 193),
    ("sf5", 4): SmvpProperties(1_899_396, 7_746, 6, 1_290, 245),
    ("sf2", 4): SmvpProperties(24_640_110, 55_338, 6, 8_682, 445),
    ("sf1", 4): SmvpProperties(162_372_024, 186_162, 6, 27_540, 872),
    ("sf10", 8): SmvpProperties(235_566, 2_550, 12, 237, 92),
    ("sf5", 8): SmvpProperties(970_740, 7_080, 12, 699, 137),
    ("sf2", 8): SmvpProperties(12_414_006, 35_148, 10, 4_152, 353),
    ("sf1", 8): SmvpProperties(81_602_442, 151_764, 14, 13_761, 538),
    ("sf10", 16): SmvpProperties(122_742, 2_208, 18, 159, 56),
    ("sf5", 16): SmvpProperties(496_872, 5_292, 20, 342, 94),
    ("sf2", 16): SmvpProperties(6_278_076, 28_482, 16, 1_920, 220),
    ("sf1", 16): SmvpProperties(41_116_374, 119_280, 18, 7_434, 345),
    ("sf10", 32): SmvpProperties(64_980, 2_172, 30, 87, 30),
    ("sf5", 32): SmvpProperties(257_004, 4_476, 30, 213, 57),
    ("sf2", 32): SmvpProperties(3_191_436, 24_018, 26, 1_239, 133),
    ("sf1", 32): SmvpProperties(20_740_734, 87_228, 26, 4_044, 238),
    ("sf10", 64): SmvpProperties(34_956, 1_764, 38, 57, 20),
    ("sf5", 64): SmvpProperties(134_424, 4_296, 40, 135, 31),
    ("sf2", 64): SmvpProperties(1_632_708, 20_520, 36, 765, 80),
    ("sf1", 64): SmvpProperties(10_511_586, 73_062, 38, 2_712, 144),
    ("sf10", 128): SmvpProperties(18_954, 1_740, 62, 36, 11),
    ("sf5", 128): SmvpProperties(70_956, 3_360, 52, 135, 21),
    ("sf2", 128): SmvpProperties(838_224, 16_260, 50, 459, 52),
    ("sf1", 128): SmvpProperties(5_332_806, 51_048, 46, 1_515, 104),
}

#: Figure 6 — computed relative error bounds beta on T_c.
BETA_BOUNDS: Dict[Tuple[str, int], float] = {
    ("sf10", 4): 1.00, ("sf5", 4): 1.00, ("sf2", 4): 1.00, ("sf1", 4): 1.00,
    ("sf10", 8): 1.00, ("sf5", 8): 1.00, ("sf2", 8): 1.00, ("sf1", 8): 1.00,
    ("sf10", 16): 1.09, ("sf5", 16): 1.10, ("sf2", 16): 1.07, ("sf1", 16): 1.00,
    ("sf10", 32): 1.01, ("sf5", 32): 1.01, ("sf2", 32): 1.15, ("sf1", 32): 1.00,
    ("sf10", 64): 1.03, ("sf5", 64): 1.08, ("sf2", 64): 1.11, ("sf1", 64): 1.05,
    ("sf10", 128): 1.03, ("sf5", 128): 1.04, ("sf2", 128): 1.04, ("sf1", 128): 1.11,
}

#: Section 3.1 — measured amortized time per flop for the local SMVP.
T_F_MEASURED_NS = {
    "Cray T3D (150 MHz Alpha 21064, cc -O3)": 30.0,
    "Cray T3E (300 MHz Alpha 21164, cc -O3)": 14.0,
}

#: Section 4 — the T3E runs the local SMVP at ~70 MFLOPS, 12% of its
#: 600 MFLOPS peak.
T3E_LOCAL_SMVP_MFLOPS = 70.0
T3E_PEAK_MFLOPS = 600.0

#: Section 3.3 — measured communication constants for the Cray T3E.
T3E_T_L_US = 22.0
T3E_T_W_NS = 55.0

#: Section 1 — EXFLOW (Cypher et al.) vs Quake sf2/128 comparison.
EXFLOW_COMPARISON = {
    "exflow": {
        "mbytes_per_pe": 2.0,
        "comm_kbytes_per_mflop": 144.0,
        "messages_per_mflop": 66.0,
        "avg_message_kbytes": 2.2,
    },
    "quake_sf2_128": {
        "mbytes_per_pe": 2.0,
        "comm_kbytes_per_mflop": 155.0,
        "messages_per_mflop": 60.0,
        "avg_message_kbytes": 3.6,
    },
}

#: Section 4 headline requirements (64-bit words throughout).
PROSE_CLAIMS = {
    # Figure 8: worst-case required bisection bandwidth (MB/s), E=0.9,
    # 200 MFLOP PEs.
    "bisection_worst_mbytes_per_s": 700.0,
    # Figure 9: sustained per-PE bandwidth (MB/s) sufficient for all sf2
    # instances at E=0.9.
    "sustained_bw_100mflops_mbytes_per_s": 120.0,
    "sustained_bw_200mflops_mbytes_per_s": 300.0,
    # Figure 10(a): max tolerable block latency at infinite burst
    # bandwidth, sf2/128, 200 MFLOPS, E=0.9, maximal blocks.
    "max_latency_maximal_blocks_us": 3.0,
    # Figure 10(b): same with 4-word blocks.
    "max_latency_4word_blocks_ns": 100.0,
    # Figure 11 extremes (half-bandwidth targets).
    "half_bw_hardest_mbytes_per_s": 600.0,
    "half_latency_hardest_maximal_us": 2.0,
    "half_latency_hardest_4word_ns": 70.0,
    "half_bw_easiest_mbytes_per_s": 3.0,
    "half_latency_easiest_maximal_ms": 8.0,
    "half_latency_easiest_4word_us": 10.0,
}

#: Hypothetical machines used throughout Section 4.
CURRENT_MACHINE_MFLOPS = 100.0
FUTURE_MACHINE_MFLOPS = 200.0

#: Efficiency targets plotted in Figures 8-11.
EFFICIENCY_TARGETS = (0.5, 0.6, 0.7, 0.8, 0.9)

#: 64-bit floating point words everywhere.
BYTES_PER_WORD = 8


def period_of(application: str) -> float:
    """Wave period in seconds encoded in an application name ('sf10' -> 10)."""
    if not application.startswith("sf"):
        raise ValueError(f"unknown application {application!r}")
    return float(application[2:])
