"""A linear (pointerless) octree forest with vectorized refinement.

Cells are identified by ``(level, i, j, k)``: at level ``L`` the domain is
conceptually tiled by ``base_shape * 2**L`` cubic cells of edge length
``base_size / 2**L``, and ``(i, j, k)`` indexes into that tiling.  The
octree stores, per level, the integer coordinates of its *leaf* cells as a
``(n, 3)`` array; there are no per-cell Python objects anywhere, so
octrees with millions of leaves are cheap.

The domain need not be a cube: it is covered by a ``base_shape`` grid of
cubic root cells (e.g. the 50 km x 50 km x 10 km earth volume uses a
5 x 5 x 1 grid of 10 km roots), and all levels share a single global
integer coordinate system, so neighbor queries never need to know which
root a cell descends from.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.geometry import AABB
from repro.velocity.sizing import SizingField

#: Bits reserved per axis in the packed cell key (supports coords < 2^21).
_KEY_BITS = 21
_KEY_MASK = (1 << _KEY_BITS) - 1

#: The 26 unit offsets to a cell's face/edge/corner neighbors.
_NEIGHBOR_OFFSETS = np.array(
    [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)

#: Child offsets within a split cell (bit d of the index selects axis d).
_CHILD_OFFSETS = np.array(
    [((c >> 0) & 1, (c >> 1) & 1, (c >> 2) & 1) for c in range(8)],
    dtype=np.int64,
)


def encode_cells(coords: np.ndarray) -> np.ndarray:
    """Pack (n, 3) integer cell coordinates into sortable int64 keys."""
    c = np.asarray(coords, dtype=np.int64)
    if c.size and (c.min() < 0 or c.max() > _KEY_MASK):
        raise ValueError("cell coordinate out of key range")
    return (c[:, 0] << (2 * _KEY_BITS)) | (c[:, 1] << _KEY_BITS) | c[:, 2]


def _hash_unit(coords: np.ndarray, level: int, seed: int) -> np.ndarray:
    """Deterministic per-cell uniform draws in [0, 1) (splitmix64 mix)."""
    k = encode_cells(coords).astype(np.uint64)
    mask = (1 << 64) - 1
    salt = (((level + 1) * 0x9E3779B97F4A7C15) ^ ((seed + 1) * 0xBF58476D1CE4E5B9)) & mask
    k ^= np.uint64(salt)
    k = (k ^ (k >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    k = (k ^ (k >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    k = k ^ (k >> np.uint64(31))
    return k.astype(np.float64) / float(2**64)


def decode_cells(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_cells`; returns an (n, 3) int64 array."""
    k = np.asarray(keys, dtype=np.int64)
    out = np.empty((k.shape[0], 3), dtype=np.int64)
    out[:, 0] = k >> (2 * _KEY_BITS)
    out[:, 1] = (k >> _KEY_BITS) & _KEY_MASK
    out[:, 2] = k & _KEY_MASK
    return out


class LinearOctree:
    """Sizing-driven octree forest over a box domain.

    Construct with :meth:`build`, which refines until every leaf's edge
    length is no larger than the sizing field anywhere inside it, then
    call :meth:`balance` to enforce the 2:1 rule.

    Attributes
    ----------
    domain:
        The covered box.
    base_shape:
        Number of cubic root cells along each axis.
    base_size:
        Edge length of a root cell (m); all roots are cubes.
    levels:
        Mapping ``level -> (n, 3) int64 array`` of leaf coordinates.
    """

    def __init__(
        self,
        domain: AABB,
        base_shape: Tuple[int, int, int],
        levels: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        self.domain = domain
        self.base_shape = tuple(int(b) for b in base_shape)
        if any(b < 1 for b in self.base_shape):
            raise ValueError("base_shape entries must be >= 1")
        sizes = domain.size / np.asarray(self.base_shape, dtype=float)
        if not np.allclose(sizes, sizes[0], rtol=1e-9):
            raise ValueError(
                f"base_shape {self.base_shape} does not tile domain "
                f"{domain.size} into cubes (cell sizes {sizes})"
            )
        self.base_size = float(sizes[0])
        if levels is None:
            roots = np.stack(
                np.meshgrid(
                    np.arange(self.base_shape[0]),
                    np.arange(self.base_shape[1]),
                    np.arange(self.base_shape[2]),
                    indexing="ij",
                ),
                axis=-1,
            ).reshape(-1, 3)
            levels = {0: roots.astype(np.int64)}
        self.levels: Dict[int, np.ndarray] = {
            int(l): np.asarray(c, dtype=np.int64).reshape(-1, 3)
            for l, c in levels.items()
            if len(c)
        }

    # -- construction -----------------------------------------------------

    @classmethod
    def for_domain(cls, domain: AABB, target_root_size: float) -> "LinearOctree":
        """Root forest whose cubes are as close as possible to a target size.

        Picks, for each axis, the cell count whose cube size divides the
        domain; raises if the domain aspect does not admit a common cube.
        """
        counts = np.maximum(1, np.rint(domain.size / target_root_size)).astype(int)
        return cls(domain, tuple(counts))

    @classmethod
    def build(
        cls,
        domain: AABB,
        sizing: SizingField,
        base_shape: Tuple[int, int, int],
        max_level: int = 12,
        size_factor: float = 1.0,
        dither: bool = False,
        dither_seed: int = 0,
    ) -> "LinearOctree":
        """Refine a fresh forest against ``sizing`` and 2:1-balance it.

        A cell is split while its edge length exceeds
        ``size_factor * min(h)`` over a 9-point sample (center plus
        corners) of the cell.
        """
        tree = cls(domain, base_shape)
        tree.refine(
            sizing,
            max_level=max_level,
            size_factor=size_factor,
            dither=dither,
            dither_seed=dither_seed,
        )
        tree.balance()
        return tree

    def refine(
        self,
        sizing: SizingField,
        max_level: int = 12,
        size_factor: float = 1.0,
        dither: bool = False,
        dither_seed: int = 0,
    ) -> None:
        """Split every leaf whose edge exceeds the local sizing target.

        With ``dither=True``, cells whose edge is between 0.5x and 1.0x
        the split threshold are additionally split with a probability
        that rises linearly across that band, decided by a deterministic
        hash of the cell coordinates (so the mesh is reproducible).
        Dithering removes the coarse count plateaus the power-of-two
        cell sizes otherwise impose, mimicking the mixed local densities
        of a Delaunay-refinement mesh and giving the calibration knob a
        continuous response.
        """
        if size_factor <= 0:
            raise ValueError("size_factor must be positive")
        level = 0
        while level <= max_level:
            coords = self.levels.get(level)
            if coords is None or len(coords) == 0:
                if level >= max(self.levels, default=0):
                    break
                level += 1
                continue
            size = self.cell_size(level)
            if level == max_level:
                break
            h_local = self._min_sizing_in_cells(sizing, coords, level)
            ratio = size / (size_factor * h_local)
            split = ratio > 1.0
            if dither:
                band = (ratio > 0.5) & ~split
                if np.any(band):
                    prob = 2.0 * ratio[band] - 1.0
                    draws = _hash_unit(coords[band], level, dither_seed)
                    band_split = np.zeros_like(split)
                    band_split[np.flatnonzero(band)[draws < prob]] = True
                    split = split | band_split
            if np.any(split):
                keep = coords[~split]
                children = self._children(coords[split])
                if len(keep):
                    self.levels[level] = keep
                else:
                    self.levels.pop(level, None)
                self._add_cells(level + 1, children)
            level += 1

    def _min_sizing_in_cells(
        self, sizing: SizingField, coords: np.ndarray, level: int
    ) -> np.ndarray:
        """Minimum of the sizing field over 9 sample points per cell."""
        size = self.cell_size(level)
        lo = np.asarray(self.domain.lo) + coords * size
        # Sample offsets: center plus the 8 corners pulled slightly
        # inward so boundary cells sample inside the domain.
        eps = 1e-6
        offsets = np.vstack(
            [[0.5, 0.5, 0.5], _CHILD_OFFSETS * (1 - 2 * eps) + eps]
        )
        n = len(coords)
        h_min = np.full(n, np.inf)
        for off in offsets:
            pts = lo + off * size
            h_min = np.minimum(h_min, sizing.h(pts))
        return h_min

    @staticmethod
    def _children(coords: np.ndarray) -> np.ndarray:
        """All eight children of each cell, shape (8n, 3), at level+1."""
        doubled = coords * 2
        return (doubled[:, None, :] + _CHILD_OFFSETS[None, :, :]).reshape(-1, 3)

    def _add_cells(self, level: int, coords: np.ndarray) -> None:
        existing = self.levels.get(level)
        if existing is not None and len(existing):
            merged_keys = np.union1d(encode_cells(existing), encode_cells(coords))
            self.levels[level] = decode_cells(merged_keys)
        else:
            keys = np.unique(encode_cells(coords))
            self.levels[level] = decode_cells(keys)

    # -- 2:1 balance ------------------------------------------------------

    def balance(self) -> int:
        """Enforce the 2:1 rule across faces, edges, and corners.

        After this call, any two leaves sharing a face, edge, or corner
        differ by at most one level.  Returns the number of splits
        performed.  Single descending sweep (splits only ever create
        cells at shallower levels than the one being processed, so one
        pass suffices — the classic linear-octree balance argument).
        """
        if not self.levels:
            return 0
        splits = 0
        for level in range(max(self.levels), 1, -1):
            coords = self.levels.get(level)
            if coords is None or len(coords) == 0:
                continue
            targets = self._neighbor_parents(coords, level)
            splits += self._ensure_refined(targets, level - 1)
        return splits

    def _neighbor_parents(self, coords: np.ndarray, level: int) -> np.ndarray:
        """Parents (at level-1) of all in-bounds neighbors of ``coords``."""
        shape = np.asarray(self.base_shape, dtype=np.int64) * (1 << level)
        nbrs = (coords[:, None, :] + _NEIGHBOR_OFFSETS[None, :, :]).reshape(-1, 3)
        inside = np.all((nbrs >= 0) & (nbrs < shape), axis=1)
        parents = nbrs[inside] >> 1
        return decode_cells(np.unique(encode_cells(parents)))

    def _ensure_refined(self, targets: np.ndarray, target_level: int) -> int:
        """Split leaves shallower than ``target_level`` that cover targets.

        ``targets`` are cells at ``target_level`` that must exist either
        as leaves or as internal (further subdivided) cells.
        """
        if len(targets) == 0:
            return 0
        splits = 0
        target_keys = None  # recomputed per level below
        for level in range(0, target_level):
            leaves = self.levels.get(level)
            if leaves is None or len(leaves) == 0:
                continue
            shift = target_level - level
            ancestors = np.unique(encode_cells(targets >> shift))
            leaf_keys = encode_cells(leaves)
            to_split = np.isin(leaf_keys, ancestors, assume_unique=False)
            if not np.any(to_split):
                continue
            splits += int(to_split.sum())
            keep = leaves[~to_split]
            children = self._children(leaves[to_split])
            if len(keep):
                self.levels[level] = keep
            else:
                self.levels.pop(level, None)
            self._add_cells(level + 1, children)
        return splits

    def is_balanced(self) -> bool:
        """Check the 2:1 invariant (used by tests)."""
        leaf_levels = sorted(self.levels)
        # Build a lookup of all leaf keys per level.
        keys = {l: np.sort(encode_cells(c)) for l, c in self.levels.items()}
        for level in leaf_levels:
            coords = self.levels[level]
            shape = np.asarray(self.base_shape, dtype=np.int64) * (1 << level)
            nbrs = (coords[:, None, :] + _NEIGHBOR_OFFSETS[None, :, :]).reshape(-1, 3)
            inside = np.all((nbrs >= 0) & (nbrs < shape), axis=1)
            nbrs = nbrs[inside]
            # A neighbor region is covered by some leaf at level' where
            # |level' - level| must be <= 1.  Violations are leaves at
            # level' <= level - 2 containing a neighbor.
            for shallow in range(0, level - 1):
                if shallow not in keys:
                    continue
                anc = encode_cells(nbrs >> (level - shallow))
                if np.any(np.isin(anc, keys[shallow])):
                    return False
        return True

    # -- queries ----------------------------------------------------------

    def cell_size(self, level: int) -> float:
        """Edge length (m) of cells at ``level``."""
        return self.base_size / (1 << level)

    @property
    def leaf_count(self) -> int:
        return sum(len(c) for c in self.levels.values())

    @property
    def max_level(self) -> int:
        return max(self.levels) if self.levels else 0

    def iter_leaves(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(level, coords)`` pairs, shallow levels first."""
        for level in sorted(self.levels):
            yield level, self.levels[level]

    def leaf_centers_and_sizes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Physical centers (n, 3) and edge lengths (n,) of all leaves."""
        centers = []
        sizes = []
        lo = np.asarray(self.domain.lo)
        for level, coords in self.iter_leaves():
            s = self.cell_size(level)
            centers.append(lo + (coords + 0.5) * s)
            sizes.append(np.full(len(coords), s))
        if not centers:
            return np.empty((0, 3)), np.empty(0)
        return np.vstack(centers), np.concatenate(sizes)

    def corner_lattice(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unique leaf-corner points and their local spacing.

        Corners are deduplicated exactly by expressing every corner in
        the integer lattice of the deepest level.  Returns ``(points,
        spacing)`` where ``points`` is (n, 3) physical coordinates and
        ``spacing[i]`` is the edge length of the smallest leaf touching
        corner ``i`` (used to scale jitter).
        """
        deepest = self.max_level
        corner_keys = []
        corner_sizes = []
        for level, coords in self.iter_leaves():
            scale = 1 << (deepest - level)
            base = coords * scale
            corners = (
                base[:, None, :] + _CHILD_OFFSETS[None, :, :] * scale
            ).reshape(-1, 3)
            corner_keys.append(encode_cells(corners))
            corner_sizes.append(
                np.full(len(corners), self.cell_size(level))
            )
        keys = np.concatenate(corner_keys)
        sizes = np.concatenate(corner_sizes)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        sizes = sizes[order]
        uniq_keys, start = np.unique(keys, return_index=True)
        # Smallest leaf touching each corner: minimum over each run.
        min_sizes = np.minimum.reduceat(sizes, start)
        lattice = decode_cells(uniq_keys).astype(float)
        step = self.cell_size(deepest)
        points = np.asarray(self.domain.lo) + lattice * step
        return points, min_sizes
