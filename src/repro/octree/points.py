"""Graded point sets for Delaunay meshing.

The corners of a balanced, sizing-refined octree form a point set whose
local spacing tracks the sizing field and changes by at most a factor of
two between neighboring regions.  Feeding those corners straight into a
Delaunay triangulator would produce a highly structured (and degenerate:
many cospherical corner groups) mesh, so we perturb interior points by a
deterministic jitter proportional to the local spacing.  Points on the
domain boundary are only jittered *within* their face (or edge), so the
convex hull of the point set remains exactly the domain box and the
Delaunay tetrahedralization fills it without gaps.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.geometry import AABB
from repro.octree.linear import LinearOctree


def _boundary_axis_mask(points: np.ndarray, domain: AABB, tol: float) -> np.ndarray:
    """(n, 3) bool mask: True where a point sits on a domain face
    perpendicular to that axis (so jitter along that axis must be zero)."""
    lo = np.asarray(domain.lo)
    hi = np.asarray(domain.hi)
    on_lo = np.abs(points - lo) <= tol
    on_hi = np.abs(points - hi) <= tol
    return on_lo | on_hi


def jitter_points(
    points: np.ndarray,
    spacing: np.ndarray,
    domain: AABB,
    amplitude: float = 0.22,
    seed: int = 0,
) -> np.ndarray:
    """Deterministically perturb a graded point set.

    Parameters
    ----------
    points:
        (n, 3) point coordinates.
    spacing:
        (n,) local spacing; each point moves at most
        ``amplitude * spacing`` along each axis.
    domain:
        Points are clamped back into this box, and components of the
        jitter normal to a boundary face the point lies on are zeroed.
    amplitude:
        Fraction of local spacing used as the jitter half-range.  Must be
        < 0.5 so neighboring lattice points can never swap.
    seed:
        RNG seed; the same inputs always yield the same mesh.
    """
    pts = np.asarray(points, dtype=float)
    spc = np.asarray(spacing, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 3 or spc.shape != (pts.shape[0],):
        raise ValueError("points must be (n, 3) and spacing (n,)")
    if not 0.0 <= amplitude < 0.5:
        raise ValueError("amplitude must be in [0, 0.5)")
    rng = np.random.default_rng(seed)
    delta = rng.uniform(-1.0, 1.0, size=pts.shape) * (amplitude * spc)[:, None]
    tol = 1e-9 * max(domain.size.max(), 1.0)
    frozen = _boundary_axis_mask(pts, domain, tol)
    delta[frozen] = 0.0
    out = pts + delta
    lo = np.asarray(domain.lo)
    hi = np.asarray(domain.hi)
    return np.clip(out, lo, hi)


def graded_points(
    tree: LinearOctree,
    amplitude: float = 0.22,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the jittered corner point set of a balanced octree.

    Returns ``(points, spacing)``: the perturbed (n, 3) coordinates and
    the per-point local spacing (edge length of the smallest adjacent
    leaf), which downstream consumers use as the local element size.
    """
    raw, spacing = tree.corner_lattice()
    pts = jitter_points(raw, spacing, tree.domain, amplitude=amplitude, seed=seed)
    return pts, spacing
