"""Shared utilities with no scientific content.

Currently just :mod:`repro.util.clock`, the single audited wall-clock
access point enforced by ``repro-lint``.
"""

from repro.util.clock import now, stopwatch

__all__ = ["now", "stopwatch"]
