"""The one place the codebase reads a wall clock.

``repro-lint``'s ``wall-clock`` rule forbids direct ``time.*`` /
``datetime.*`` reads everywhere in ``src/``: benchmark and harness code
(T_f measurement, mesh-build reports) must time itself through this
shim, and pure model/simulator code (``model/``, ``simulate/``) may not
read clocks at all — there, simulated time is an *output* of Equations
(1)/(2) or the BSP simulator, never a host measurement.  Routing every
read through one module makes the boundary auditable: the two pragmas
below are the complete inventory of nondeterministic time in the tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator


def now() -> float:
    """Monotonic high-resolution timestamp in seconds.

    Only differences are meaningful (``perf_counter`` semantics); the
    epoch is arbitrary.
    """
    return time.perf_counter()  # repro-lint: ignore[wall-clock]


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Context manager yielding a callable that reads elapsed seconds.

    >>> with stopwatch() as elapsed:
    ...     do_work()
    >>> print(elapsed())
    """
    start = time.perf_counter()  # repro-lint: ignore[wall-clock]
    yield lambda: now() - start
