"""The β error bound (paper Section 3.4).

Equation (2) pessimistically assumes the PE transferring the most words
(C_max) is also the PE transferring the most blocks (B_max).  The paper
bounds the resulting overestimate of T_comm by

``beta = 1 + min_i max{ C_max (B_max - B_i) / (C_i B_max),
                        B_max (C_max - C_i) / (B_i C_max) }``

which equals 1 when one PE attains both maxima and never exceeds 2.
Figure 6 tabulates β for every (application, subdomain count); our
Figure 6 bench recomputes it, and the BSP simulator validates that the
modeled T_comm never exceeds the executed T_comm by more than β.
"""

from __future__ import annotations

import numpy as np


def beta_bound(words_per_pe: np.ndarray, blocks_per_pe: np.ndarray) -> float:
    """Compute β from per-PE word and block counts.

    PEs that communicate nothing at all (C_i = B_i = 0) cannot be the
    binding PE and are excluded; if *no* PE communicates, β is 1 by
    convention (the model is exact: T_comm = 0).
    """
    c = np.asarray(words_per_pe, dtype=np.float64)
    b = np.asarray(blocks_per_pe, dtype=np.float64)
    if c.shape != b.shape or c.ndim != 1:
        raise ValueError("words and blocks must be equal-length 1D arrays")
    active = (c > 0) & (b > 0)
    if not np.any(active):
        return 1.0
    c = c[active]
    b = b[active]
    c_max = c.max()
    b_max = b.max()
    term1 = c_max * (b_max - b) / (c * b_max)
    term2 = b_max * (c_max - c) / (b * c_max)
    return float(1.0 + np.minimum.reduce(np.maximum(term1, term2)))
