"""Per-(instance, PE count) SMVP properties — the paper's Figure 7.

Everything is derived from the mesh and partition alone (no machine
parameters):

* ``F`` — flops per PE per SMVP: 2 flops per stored nonzero of the
  largest local matrix, ``nnz = 9 (n_local + 2 e_local)``.
* ``C_max`` — maximum words sent+received by any PE (3 words per shared
  node per neighbor, both directions).
* ``B_max`` — maximum messages sent+received by any PE, blocks maximal
  (one message per neighbor per direction).
* ``M_avg`` — total volume over total messages.
* ``F / C_max`` — the computation/communication ratio.
* ``beta`` — the Section 3.4 error bound (Figure 6).
* ``bisection_words`` — words crossing the PE-number bisection
  (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mesh.core import TetMesh
from repro.partition.base import Partition, partition_mesh
from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule
from repro.stats.beta import beta_bound


@dataclass(frozen=True)
class SmvpStats:
    """One row of the reproduction's Figure 7 (plus extras)."""

    num_parts: int
    partition_method: str
    F: int
    c_max: int
    b_max: int
    m_avg: float
    beta: float
    bisection_words: int
    total_words: int
    total_blocks: int
    f_per_pe: np.ndarray
    c_per_pe: np.ndarray
    b_per_pe: np.ndarray

    @property
    def f_over_c(self) -> float:
        """Computation/communication ratio F / C_max."""
        return self.F / self.c_max if self.c_max else float("inf")

    def __str__(self) -> str:
        return (
            f"p={self.num_parts}: F={self.F} C_max={self.c_max} "
            f"B_max={self.b_max} M_avg={self.m_avg:.0f} "
            f"F/C={self.f_over_c:.0f} beta={self.beta:.2f}"
        )


def smvp_statistics(
    mesh: TetMesh,
    partition: Optional[Partition] = None,
    num_parts: int = 0,
    method: str = "rcb",
    seed: int = 0,
) -> SmvpStats:
    """Compute the Figure 7 quantities for one partitioned mesh.

    Pass either a ready ``partition`` or a ``num_parts`` (the mesh is
    then partitioned with ``method``).
    """
    if partition is None:
        if num_parts < 1:
            raise ValueError("provide a partition or num_parts >= 1")
        partition = partition_mesh(mesh, num_parts, method=method, seed=seed)
    dist = DataDistribution(mesh, partition)
    sched = CommSchedule(dist)
    flops = dist.local_counts["flops"]
    return SmvpStats(
        num_parts=partition.num_parts,
        partition_method=partition.method,
        F=int(flops.max()),
        c_max=sched.c_max,
        b_max=sched.b_max,
        m_avg=sched.m_avg,
        beta=beta_bound(sched.words_per_pe, sched.blocks_per_pe),
        bisection_words=sched.bisection_words(),
        total_words=sched.total_words,
        total_blocks=sched.total_blocks,
        f_per_pe=flops,
        c_per_pe=sched.words_per_pe,
        b_per_pe=sched.blocks_per_pe,
    )
