"""Application statistics — the paper's Figure 6/7 quantities.

Given a mesh and a partition, this subpackage computes every
application-side number the performance model consumes:

* :mod:`~repro.stats.properties` — F, C_max, B_max, M_avg, F/C_max per
  (instance, PE count): the paper's Figure 7.
* :mod:`~repro.stats.beta` — the β error bound of Section 3.4
  (Figure 6).
* :mod:`~repro.stats.exflow` — the derived per-MFLOP communication
  ratios used in the Section 1 EXFLOW comparison, plus per-PE memory.
"""

from repro.stats.properties import SmvpStats, smvp_statistics
from repro.stats.beta import beta_bound
from repro.stats.exflow import ExflowStyleStats, exflow_style_stats

__all__ = [
    "SmvpStats",
    "smvp_statistics",
    "beta_bound",
    "ExflowStyleStats",
    "exflow_style_stats",
]
