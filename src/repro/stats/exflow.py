"""EXFLOW-style derived statistics (paper Section 1).

The paper compares Quake sf2/128 against Cypher et al.'s EXFLOW using
four machine-independent ratios: data per PE (MBytes), communication
volume per MFLOP (KBytes), messages per MFLOP, and average message size
(KBytes).  All four follow directly from the Figure 7 quantities and
the memory model:

* comm KBytes/MFLOP = ``8 * C_max / 1024  /  (F / 1e6)``
* messages/MFLOP    = ``B_max / (F / 1e6)``
* avg message KB    = ``8 * M_avg / 1024``

(The published Quake row — 155 KB/MFLOP, 60 msgs/MFLOP, 3.6 KB — is
recovered exactly from the published Figure 7 sf2/128 row, which is how
we confirmed these definitions.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fem.memory import memory_model
from repro.smvp.distribution import DataDistribution
from repro.stats.properties import SmvpStats

_BYTES_PER_WORD = 8


@dataclass(frozen=True)
class ExflowStyleStats:
    """The Section-1 comparison row for one partitioned instance."""

    num_parts: int
    mbytes_per_pe: float
    comm_kbytes_per_mflop: float
    messages_per_mflop: float
    avg_message_kbytes: float


def exflow_style_stats(
    stats: SmvpStats, distribution: DataDistribution
) -> ExflowStyleStats:
    """Derive the comparison ratios from Figure 7 stats + memory model.

    ``mbytes_per_pe`` uses the busiest PE's structural counts through
    the same memory model that reproduces the paper's 1.2 KB/node rule.
    """
    counts = distribution.local_counts
    worst = int(counts["nodes"].argmax())
    mem = memory_model(
        int(counts["nodes"][worst]),
        int(counts["edges"][worst]),
        int(counts["elements"][worst]),
    )
    mflops = stats.F / 1e6
    return ExflowStyleStats(
        num_parts=stats.num_parts,
        mbytes_per_pe=mem.mbytes,
        comm_kbytes_per_mflop=_BYTES_PER_WORD * stats.c_max / 1024 / mflops,
        messages_per_mflop=stats.b_max / mflops,
        avg_message_kbytes=_BYTES_PER_WORD * stats.m_avg / 1024,
    )
