"""The distributed SMVP executor.

This is a faithful in-process execution of the paper's parallel SMVP
(Section 2.3): each PE holds a local stiffness matrix assembled from
its own elements over its own (replicated-shared) node set, computes a
local product, and then exchanges-and-sums partial y values with every
PE it shares nodes with.  The result is directly comparable to the
global product — tests assert the distributed product equals the
global sparse product to floating-point tolerance.

The executor is the integration point of the superstep engine's four
layers, each swappable on its own:

* **kernel** (:mod:`repro.smvp.kernels`) — the local storage format;
  prepared once at setup, applied per product.
* **backend** (:mod:`repro.smvp.backends`) — where the per-PE products
  run: ``serial`` (historical semantics, bit-identical), ``threaded``
  (thread pool; scipy matvec releases the GIL), or ``shared-memory``
  (process pool).
* **exchange** (:mod:`repro.smvp.exchange`) — the pairwise
  exchange-and-sum; the fault protocol from :mod:`repro.faults` is
  middleware on the transport, not a forked loop.
* **trace** (:mod:`repro.smvp.trace`) — optional per-superstep
  instrumentation: attach a ``trace_sink`` and every ``multiply``
  emits a :class:`~repro.smvp.trace.SuperstepTrace`.

The executor doubles as the ground truth for the performance model:
its per-PE flop counts and the communication schedule's word/block
counts are exactly the F, C_i, and B_i the model consumes.
"""

from __future__ import annotations

import threading
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.contracts import (
    check_csr_contract,
    check_schedule_contract,
)
from repro.analysis.ownership import owns, reads_ghosts
from repro.analysis.sanitizer import SuperstepSanitizer, sanitizer_enabled
from repro.faults.detection import FaultStats, block_checksum, verify_block
from repro.faults.errors import SdcFaultError
from repro.faults.injector import FaultInjector, SdcTarget
from repro.fem.assembly import assemble_subdomain_stiffness
from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh
from repro.partition.base import Partition
from repro.smvp.abft import AbftChecker, MatrixCorruption, SdcEvent, nnz_coords
from repro.smvp.backends import make_backend
from repro.smvp.distribution import DataDistribution
from repro.smvp.exchange import (
    BlockSend,
    ExchangeRecord,
    _record_exchange_metrics,
    make_transport,
    run_exchange,
)
from repro.profile.spans import ProfiledTransport, SpanRecorder
from repro.smvp.kernels import get_kernel
from repro.smvp.schedule import CommSchedule
from repro.smvp.trace import SuperstepTrace, TraceSink
from repro.telemetry.registry import (
    count,
    get_registry,
    record_sdc_event,
    record_sdc_latency,
)
from repro.util.clock import now

__all__ = ["DistributedSMVP", "ExchangeRecord"]

# Site-stream salts keep the x / matrix / y / sticky flip draws disjoint.
_SALT_INPUT = 1
_SALT_MATRIX = 2
_SALT_OUTPUT = 3
_SALT_STICKY = 4

#: Inline recompute attempts before a compute-phase SDC escalates to
#: the supervisor (attempt 1 heals a transient output flip, attempt 2
#: scrubs a corrupted matrix block first; a sticky PE survives both).
_MAX_SDC_ATTEMPTS = 2


class DistributedSMVP:
    """A p-PE distributed ``y = K x`` over a partitioned mesh.

    Parameters
    ----------
    mesh, partition, materials:
        The global problem.
    kernel:
        Local kernel name from the registry in
        :mod:`repro.smvp.kernels` (``get_kernel``).
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  When enabled,
        the exchange phase runs through the checksummed, retransmitting
        :class:`~repro.smvp.exchange.FaultMiddleware`: injected
        drops/corruptions are detected (timeout / CRC mismatch) and
        recovered by resending from the sender's partial, duplicates
        are delivered once, and the per-exchange ``FaultStats`` are
        attached to the :class:`ExchangeRecord`.  With no injector (or
        a disabled one) the exchange takes the clean transport, bit for
        bit the original fault-free path.
    backend:
        Execution-backend name (``serial`` / ``threaded`` /
        ``shared-memory``) or an
        :class:`~repro.smvp.backends.ExecutionBackend` instance.  The
        backend decides where the compute phase's per-PE products run;
        results are bit-identical across backends.
    trace_sink:
        Optional callable receiving a
        :class:`~repro.smvp.trace.SuperstepTrace` after every
        ``multiply`` (per-phase wall times, per-PE traffic, fault
        stats).  ``None`` (default) keeps the hot path clock-free.
    abft:
        Enable algorithm-based fault tolerance (see
        :mod:`repro.smvp.abft`): every ``multiply`` verifies each PE's
        input vector (exact CRC against the scatter snapshot), local
        product (checksum row ``w_i = 1ᵀK_i``), and post-exchange
        partial (incoming-payload sum) in O(n_i) per PE, heals inline
        by recomputation, and raises
        :class:`~repro.faults.SdcFaultError` blaming a specific PE and
        phase when inline recovery is exhausted (a sticky fault).
        With ``abft=False`` and no SDC fault modes configured,
        ``multiply`` takes the historical path, bit for bit.
    pe_ids:
        Physical identity of each PE slot (default ``0..P-1``).  The
        SDC injector keys its draws on *physical* ids, so a sticky
        "bad core" follows the same hardware through post-eviction
        renumbering instead of silently migrating to an innocent
        survivor.
    profile:
        Record per-PE / per-message spans (see :mod:`repro.profile`)
        on every *traced* multiply and attach them to the emitted
        :class:`~repro.smvp.trace.SuperstepTrace` as ``pe_spans``.
        Spans are only recorded when a trace sink is attached at call
        time, so ``profile=True`` with no sink — and the default
        ``profile=False`` everywhere — keeps the hot path clock-free
        and bit-identical.  Sanitized multiplies skip span recording
        (the sanitizer already owns that path's instrumentation).
    """

    def __init__(
        self,
        mesh: TetMesh,
        partition: Partition,
        materials: ElementMaterials,
        kernel: str = "csr",
        injector: Optional[FaultInjector] = None,
        backend: str = "serial",
        trace_sink: Optional[TraceSink] = None,
        abft: bool = False,
        pe_ids: Optional[Sequence[int]] = None,
        sanitizer: Optional[bool] = None,
        profile: bool = False,
    ) -> None:
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.kernel_name = self.kernel.name
        self.injector = injector
        self.trace_sink = trace_sink
        self.profile = bool(profile)
        self._recorder = SpanRecorder() if self.profile else None
        # Recorder of the in-flight profiled multiply, visible to the
        # ABFT recovery helpers (recovery spans); None otherwise.
        self._live_rec: Optional[SpanRecorder] = None
        self._superstep = 0  # exchange counter; keys the fault streams
        self._quarantined: frozenset = frozenset()
        self.mesh = mesh
        self.partition = partition
        self.materials = materials
        self.distribution = DataDistribution(mesh, partition)
        self.schedule = CommSchedule(self.distribution)
        fmt = self.kernel.preferred_format

        self.local_nodes: List[np.ndarray] = []
        self.local_matrices: List[sp.spmatrix] = []
        for part in range(partition.num_parts):
            nodes = self.distribution.local_nodes(part)
            self.local_nodes.append(nodes)
            local_k = assemble_subdomain_stiffness(
                mesh,
                materials,
                self.distribution.local_elements(part),
                nodes,
                fmt=fmt,
            )
            check_csr_contract(local_k, context=f"PE {part} local stiffness")
            self.local_matrices.append(local_k)
        check_schedule_contract(self.schedule, self.distribution)

        self.backend = make_backend(backend)
        self.backend_name = self.backend.name
        self.backend.setup(self.kernel, self.local_matrices)

        # Overlap-capable backends need the boundary/interior dof split
        # to compute boundary rows before the exchange launches and
        # interior rows while blocks are in flight.
        self._overlap = bool(getattr(self.backend, "supports_overlap", False))
        if self._overlap:
            dof3 = np.arange(3)
            self.backend.set_row_split(
                [
                    (3 * nodes[:, None] + dof3).ravel()
                    for nodes in self.distribution.boundary_local_nodes
                ],
                [
                    (3 * nodes[:, None] + dof3).ravel()
                    for nodes in self.distribution.interior_local_nodes
                ],
            )

        if pe_ids is None:
            self.pe_ids = np.arange(partition.num_parts, dtype=np.int64)
        else:
            self.pe_ids = np.asarray(list(pe_ids), dtype=np.int64)
            if self.pe_ids.shape != (partition.num_parts,):
                raise ValueError(
                    f"pe_ids must have one entry per PE "
                    f"({partition.num_parts}), got {self.pe_ids.shape}"
                )
        self.abft_enabled = bool(abft)
        self._abft = AbftChecker(self.local_matrices) if abft else None
        self._sdc_active = injector is not None and injector.sdc_enabled
        # Live virtual matrix corruption, one record per afflicted PE:
        # the authoritative local matrices are never mutated (backends
        # may alias or privately copy them), the corruption's rank-1
        # effect is re-applied to every product until scrubbed — so the
        # same fault is bit-identical across all backends.
        self._k_corruption: Dict[int, MatrixCorruption] = {}
        self._flat_cols_cache: Dict[int, np.ndarray] = {}
        # Cumulative across the executor's life; reconfigure_without
        # hands both to the successor so a run's SDC history survives
        # evictions.
        self.sdc_stats = FaultStats()
        self.sdc_events: List[SdcEvent] = []
        # Cumulative transport (in-flight) fault tally across exchanges.
        self.transport_stats = FaultStats()

        reg = get_registry()
        if reg is not None:
            reg.counter(
                "repro_smvp_setups_total", "executor constructions"
            ).inc(kernel=self.kernel_name, backend=self.backend_name)
            reg.gauge("repro_smvp_num_pes", "PE count").set(
                partition.num_parts
            )
            reg.gauge("repro_smvp_c_max_words", "schedule C_max").set(
                self.schedule.c_max
            )
            reg.gauge("repro_smvp_b_max_blocks", "schedule B_max").set(
                self.schedule.b_max
            )

        # Per unordered pair: (part_a, part_b, local indices on a, on b).
        self._pairs: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        for (a, b), shared in self.distribution.pair_shared_nodes.items():
            ia = self.distribution.global_to_local(a, shared)
            ib = self.distribution.global_to_local(b, shared)
            self._pairs.append((a, b, ia, ib))

        # Owner of each global node for the gather step: lowest PE.
        csr = self.distribution.node_parts.tocsr()
        if np.any(np.diff(csr.indptr) == 0):
            raise ValueError(
                "mesh has nodes unused by any element; compact it first"
            )
        self._owner = csr.indices[csr.indptr[:-1]].astype(np.int64)

        # Per-PE owned-dof index arrays: gather writes straight through
        # these (no dense scratch allocation, no per-call masking).
        # Ownership partitions the nodes, so the destinations cover
        # every global dof exactly once.
        dof3 = np.arange(3)
        self._gather_src: List[np.ndarray] = []
        self._gather_dst: List[np.ndarray] = []
        for part in range(partition.num_parts):
            nodes = self.local_nodes[part]
            mine = np.flatnonzero(self._owner[nodes] == part)
            self._gather_src.append((3 * mine[:, None] + dof3).ravel())
            self._gather_dst.append(
                (3 * nodes[mine][:, None] + dof3).ravel()
            )

        # Per-PE flat global dof rows (3 per local node, node order):
        # the block scatter gathers rows through these with np.take,
        # which beats the reshape-and-fancy-index route ~3x on large
        # instances while selecting exactly the same rows.
        self._dof_rows: List[np.ndarray] = [
            (3 * nodes[:, None] + dof3).ravel() for nodes in self.local_nodes
        ]

        # Position maps for the overlapped superstep: where each shared
        # dof lives inside the backend's persistent boundary buffers,
        # and how owned dofs split across the boundary/interior buffers
        # at gather time.  Built once; the hot path then runs on plain
        # integer take/put with no per-call set algebra.
        if self._overlap:
            self._build_overlap_maps()

        # Superstep sanitizer (REPRO_SAN=1, or sanitizer=True): checks
        # every multiply's access sets against the ownership map and
        # exchange schedule.  Off (the default), the only cost is one
        # `is None` test per multiply — the hot path is untouched.
        use_sanitizer = (
            sanitizer_enabled() if sanitizer is None else bool(sanitizer)
        )
        self.sanitizer: Optional[SuperstepSanitizer] = (
            self._build_sanitizer() if use_sanitizer else None
        )

    def _build_sanitizer(self, strict: bool = True) -> SuperstepSanitizer:
        """Sanitizer bound to this executor's ownership + schedule maps."""
        dof3 = np.arange(3)
        expected: Dict[Tuple[int, int], np.ndarray] = {}
        for a, b, ia, ib in self._pairs:
            expected[(a, b)] = (3 * ib[:, None] + dof3).ravel()
            expected[(b, a)] = (3 * ia[:, None] + dof3).ravel()
        return SuperstepSanitizer(
            num_parts=self.num_parts,
            local_sizes=[3 * len(n) for n in self.local_nodes],
            owned_dofs=self._gather_src,
            expected_sends=expected,
            ownership_hash=self.distribution.ownership_hash,
            strict=strict,
        )

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    def close(self) -> None:
        """Release backend resources (thread/process pools)."""
        self.backend.close()

    def __enter__(self) -> "DistributedSMVP":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def reset_superstep(self, step: int = 0) -> None:
        """Rewind the exchange counter (reproducible fault histories)."""
        self._superstep = step

    # -- resilience hooks --------------------------------------------------

    @property
    def quarantined(self) -> frozenset:
        """PEs whose links are currently circuit-broken."""
        return self._quarantined

    def quarantine(self, pe: int) -> None:
        """Circuit-break one PE's links: its exchange blocks take the
        verified slow path (no fault draws) from the next superstep on.

        Numerically a no-op — the same clean payloads are summed in the
        same order — so quarantine never perturbs the bit-level result.
        """
        if not 0 <= pe < self.num_parts:
            raise ValueError(f"PE {pe} out of range")
        self._quarantined = self._quarantined | {pe}

    def unquarantine(self, pe: int) -> None:
        """Restore a quarantined PE's links to the normal wire."""
        self._quarantined = self._quarantined - {pe}

    def reconfigure_without(self, dead_pe: int):
        """Build the P-1 executor that continues after ``dead_pe`` dies.

        Redistributes the dead PE's elements onto the survivors
        (:func:`~repro.smvp.distribution.redistribute_after_eviction`),
        reassembles local matrices, and rebuilds the schedule, exchange
        pairs, and gather maps for the compacted ``0 .. P-2`` numbering.
        The new executor keeps this one's kernel, backend kind,
        injector, and trace sink, inherits the superstep counter (the
        fault history keeps evolving, not restarting), and carries the
        quarantine set remapped through the survivor map.

        Returns ``(new_executor, redistribution)``; the caller owns
        closing both executors.
        """
        from repro.smvp.distribution import redistribute_after_eviction

        new_partition, redistribution = redistribute_after_eviction(
            self.mesh, self.partition, dead_pe
        )
        survivor_ids = np.empty(new_partition.num_parts, dtype=np.int64)
        for old_slot, new_slot in redistribution.survivor_map.items():
            survivor_ids[new_slot] = self.pe_ids[old_slot]
        new = DistributedSMVP(
            self.mesh,
            new_partition,
            self.materials,
            kernel=self.kernel,
            injector=self.injector,
            backend=self.backend_name,
            trace_sink=self.trace_sink,
            abft=self.abft_enabled,
            pe_ids=survivor_ids,
            sanitizer=self.sanitizer is not None,
            profile=self.profile,
        )
        new._superstep = self._superstep
        if self.sanitizer is not None:
            # The successor's sanitizer is freshly bound to the *new*
            # ownership map (rebuilt atomically with the distribution);
            # it keeps appending to the same run-level report.
            new.sanitizer.adopt(self.sanitizer)
        new._quarantined = frozenset(
            redistribution.survivor_map[pe]
            for pe in self._quarantined
            if pe in redistribution.survivor_map
        )
        # The run's SDC history continues on the successor (shared, not
        # copied).  Live virtual matrix corruption does NOT carry over:
        # redistribution reassembles every local matrix from the
        # authoritative element data, which scrubs it by construction —
        # record the scrub (against the injection superstep) so the
        # fault's lifecycle closes even when eviction, not detection,
        # annihilated it.
        for pe, corruption in sorted(self._k_corruption.items()):
            self.sdc_stats.repaired_blocks += 1
            self._note_sdc(
                corruption.step, pe, "compute", "flip-k", "repaired",
                "scrubbed by redistribution",
            )
        new.sdc_stats = self.sdc_stats
        new.sdc_events = self.sdc_events
        new.transport_stats = self.transport_stats
        count("repro_smvp_reconfigurations_total", dead_pe=dead_pe)
        return new, redistribution

    def reconfigure_with(
        self, physical_id: Optional[int] = None, target_size=None
    ):
        """Build the P+1 executor that continues after adding one PE.

        The mirror of :meth:`reconfigure_without`: a fresh region is
        peeled off the heaviest donors in BFS-affinity waves
        (:func:`~repro.smvp.distribution.redistribute_after_addition`),
        local matrices are reassembled, and the schedule, exchange
        pairs, and gather maps are rebuilt for ``0 .. P`` — existing
        PE ids are stable, so the quarantine set carries over
        unchanged and the new PE joins unquarantined.  The new slot's
        *physical* id defaults to one past the largest live id (fault
        streams key on physical ids, so fresh hardware gets a fresh
        fault history); pass an evicted PE's physical id to re-admit
        that hardware, history and all.  The state vectors need no
        splicing: growth loses no rows, every dof the new layout
        scatters is already present in the global ``(u, u_prev)``.

        Returns ``(new_executor, redistribution)``; the caller owns
        closing both executors.
        """
        from repro.smvp.distribution import redistribute_after_addition

        new_partition, redistribution = redistribute_after_addition(
            self.mesh, self.partition, target_size=target_size
        )
        if physical_id is None:
            physical_id = int(self.pe_ids.max()) + 1
        new_ids = np.append(self.pe_ids, np.int64(physical_id))
        new = DistributedSMVP(
            self.mesh,
            new_partition,
            self.materials,
            kernel=self.kernel,
            injector=self.injector,
            backend=self.backend_name,
            trace_sink=self.trace_sink,
            abft=self.abft_enabled,
            pe_ids=new_ids,
            sanitizer=self.sanitizer is not None,
            profile=self.profile,
        )
        new._superstep = self._superstep
        if self.sanitizer is not None:
            new.sanitizer.adopt(self.sanitizer)
        # Ids 0 .. P-1 are stable across a growth, so the circuit-broken
        # set needs no remapping.
        new._quarantined = self._quarantined
        # Growth reassembles every local matrix from the authoritative
        # element data, which scrubs live virtual K corruption exactly
        # as an eviction does — close each fault's lifecycle.
        for pe, corruption in sorted(self._k_corruption.items()):
            self.sdc_stats.repaired_blocks += 1
            self._note_sdc(
                corruption.step, pe, "compute", "flip-k", "repaired",
                "scrubbed by redistribution",
            )
        new.sdc_stats = self.sdc_stats
        new.sdc_events = self.sdc_events
        new.transport_stats = self.transport_stats
        count("repro_smvp_reconfigurations_total", new_pe=redistribution.new_pe)
        return new, redistribution

    def flops_per_pe(self) -> np.ndarray:
        """Actual F_i = 2 * nnz of each PE's local matrix."""
        return np.array([2 * k.nnz for k in self.local_matrices], dtype=np.int64)

    # -- phases -----------------------------------------------------------

    def scatter(self, x_global: np.ndarray) -> List[np.ndarray]:
        """Distribute a global vector (3n,) — or an n x r block of
        right-hand sides (3n, r) — to per-PE local arrays."""
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.ndim == 2:
            if x_global.shape[0] != 3 * self.mesh.num_nodes:
                raise ValueError("X must have 3 * num_nodes rows")
            # Same rows the reshape-and-fancy-index route would select
            # (3 per node, node order), gathered with np.take — ~3x
            # less scatter time at r=16 on the large instances.
            return [
                np.take(x_global, rows, axis=0, mode="clip")
                for rows in self._dof_rows
            ]
        if x_global.shape != (3 * self.mesh.num_nodes,):
            raise ValueError("x must have length 3 * num_nodes")
        blocks = x_global.reshape(-1, 3)
        return [blocks[nodes].ravel() for nodes in self.local_nodes]

    def _scatter_one(self, x_global: np.ndarray, pe: int) -> np.ndarray:
        """Re-scatter one PE's local vector/block from the global array
        (ABFT input healing)."""
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.ndim == 2:
            return np.take(x_global, self._dof_rows[pe], axis=0)
        blocks = x_global.reshape(-1, 3)
        return blocks[self.local_nodes[pe]].ravel()

    def compute_phase(self, x_locals: List[np.ndarray]) -> List[np.ndarray]:
        """Local SMVPs on every PE (the computation phase)."""
        if x_locals and getattr(x_locals[0], "ndim", 1) == 2:
            return self.backend.compute_block(x_locals)
        return self.backend.compute(x_locals)

    def _compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        """One PE's local product, vector or block (ABFT recovery)."""
        if x.ndim == 2:
            return self.backend.compute_one_block(pe, x)
        return self.backend.compute_one(pe, x)

    def _recover_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        """`_compute_one` with a ``recovery`` span when profiling.

        The ABFT heal paths route their recomputes through here so a
        profiled run attributes healing time to the ``recovery`` bucket
        instead of the surrounding verify window; unprofiled runs pay
        only the ``is None`` test.
        """
        rec = self._live_rec
        if rec is None:
            return self._compute_one(pe, x)
        t_start = now()
        y = self._compute_one(pe, x)
        rec.add("recovery", pe, t_start, now())
        return y

    def communication_phase(
        self,
        y_locals: List[np.ndarray],
        step: Optional[int] = None,
        collector: Optional[List[Tuple[BlockSend, np.ndarray]]] = None,
        recorder: Optional[SpanRecorder] = None,
    ) -> Tuple[List[np.ndarray], ExchangeRecord]:
        """Pairwise exchange-and-sum of shared partial y values.

        Send buffers are built from the pre-exchange partials (as real
        message passing would), then all contributions are summed —
        nodes shared by three or more PEs receive every other owner's
        partial exactly once.  The fault protocol, when an injector is
        enabled, rides along as transport middleware (see
        :mod:`repro.smvp.exchange`).

        ``step`` keys the fault injector's per-superstep streams; it
        defaults to an internal counter so repeated SMVPs (time
        stepping) see an evolving fault history.

        ``recorder``, when given, wraps the transport so every
        transmitted block leaves a ``wire`` span (the profiler's
        per-message attribution); the wrapped transmit is bit-identical
        to the bare one.
        """
        if step is None:
            step = self._superstep
        self._superstep = step + 1
        transport = make_transport(self.injector, self._quarantined)
        if recorder is not None:
            transport = ProfiledTransport(transport, recorder)
        y_locals, record = run_exchange(
            y_locals,
            self._pairs,
            transport,
            step,
            self.num_parts,
            collector=collector,
        )
        self._fold_transport_stats(record.faults)
        return y_locals, record

    def _fold_transport_stats(self, faults: Optional[FaultStats]) -> None:
        """Accumulate one exchange's fault tally into the run totals."""
        if faults is None:
            return
        for field in dataclass_fields(faults):
            value = getattr(faults, field.name)
            if value:
                setattr(
                    self.transport_stats,
                    field.name,
                    getattr(self.transport_stats, field.name) + value,
                )

    def gather(
        self,
        y_locals: List[np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Collect the (now globally summed) y into one global array.

        ``out``, when given, receives the result in place (its previous
        contents are fully overwritten — ownership covers every global
        dof exactly once).  Passing a warm buffer across repeated
        multiplies avoids re-faulting the output pages each call, which
        dominates gather time for wide blocks on large instances.
        """
        rows = 3 * self.mesh.num_nodes
        if y_locals and y_locals[0].ndim == 2:
            shape: Tuple[int, ...] = (rows, y_locals[0].shape[1])
        else:
            shape = (rows,)
        if out is None:
            out = np.empty(shape, dtype=np.float64)
        elif out.shape != shape or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 array of shape {shape}"
            )
        for part in range(self.num_parts):
            out[self._gather_dst[part]] = y_locals[part][self._gather_src[part]]
        return out

    def multiply(
        self, x_global: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The full distributed SMVP: scatter, compute, exchange, gather.

        With a ``trace_sink`` attached, emits one
        :class:`~repro.smvp.trace.SuperstepTrace` per call; without
        one, the path reads no clock at all.

        ``out``, when given, receives the result in place and is
        returned (see :meth:`gather`); reusing a warm buffer across
        time steps keeps the output pages resident.  Omitted, a fresh
        array is allocated — behavior is unchanged.
        """
        count(
            "repro_smvp_supersteps_total",
            kernel=self.kernel_name,
            backend=self.backend_name,
        )
        if self._abft is not None or self._sdc_active:
            y = self._multiply_verified(x_global)
            if out is None:
                return y
            out[...] = y
            return out
        if self.sanitizer is not None:
            y = self._multiply_sanitized(x_global)
            if out is None:
                return y
            out[...] = y
            return out
        if self._overlap:
            return self._multiply_overlapped(x_global, out)
        sink = self.trace_sink
        if sink is None:
            x_locals = self.scatter(x_global)
            y_locals = self.compute_phase(x_locals)
            y_locals, _record = self.communication_phase(y_locals)
            return self.gather(y_locals, out)

        rhs = (
            x_global.shape[1] if getattr(x_global, "ndim", 1) == 2 else 1
        )
        step = self._superstep
        rec = self._recorder
        if rec is not None:
            rec.start()
        t0 = now()
        x_locals = self.scatter(x_global)
        t1 = now()
        if rec is None:
            y_locals = self.compute_phase(x_locals)
        else:
            y_locals, windows = self.backend.compute_timed(x_locals, now)
            for pe, (w_start, w_end) in enumerate(windows):
                rec.add("compute", pe, w_start, w_end)
        t2 = now()
        y_locals, record = self.communication_phase(
            y_locals, recorder=rec
        )
        t3 = now()
        y_global = self.gather(y_locals, out)
        t4 = now()
        pe_spans = None
        if rec is not None:
            rec.add("scatter", -1, t0, t1)
            rec.add("compute", -1, t1, t2)
            rec.add("exchange", -1, t2, t3)
            rec.add("gather", -1, t3, t4)
            pe_spans = rec.finish(t0)
        sink(
            SuperstepTrace(
                t_comp=t2 - t1,
                t_comm=t3 - t2,
                t_smvp=t4 - t0,
                step=step,
                kernel=self.kernel_name,
                backend=self.backend_name,
                t_scatter=t1 - t0,
                t_gather=t4 - t3,
                words_sent=record.words_sent,
                blocks_sent=record.blocks_sent,
                faults=record.faults,
                rhs=rhs,
                pe_spans=pe_spans,
            )
        )
        return y_global

    __call__ = multiply

    # -- the overlapped superstep ------------------------------------------

    def _build_overlap_maps(self) -> None:
        """Precompute the index maps the overlapped superstep runs on.

        The overlap backend computes boundary and interior rows into
        two dense per-PE buffers; nothing ever assembles a full per-PE
        ``y_locals`` array.  That requires translating every local dof
        index the exchange and gather use into a *position* inside the
        right buffer:

        - ``_ov_pair_pos``: per shared pair, the positions of the
          shared dofs inside each side's boundary buffer (in the exact
          order ``build_sends`` would enumerate them, so payload values
          and summation order are unchanged).
        - ``_ov_gather``: per PE, the owned-dof destinations split by
          which buffer holds the source row.
        """
        backend = self.backend
        bpos: List[np.ndarray] = []
        ipos: List[np.ndarray] = []
        for part in range(self.num_parts):
            nloc = 3 * len(self.local_nodes[part])
            bp = np.full(nloc, -1, dtype=np.int64)
            bp[backend.boundary_dofs[part]] = np.arange(
                backend.boundary_dofs[part].size
            )
            ip = np.full(nloc, -1, dtype=np.int64)
            ip[backend.interior_dofs[part]] = np.arange(
                backend.interior_dofs[part].size
            )
            bpos.append(bp)
            ipos.append(ip)
        dof3 = np.arange(3)
        self._ov_pair_pos: List[
            Tuple[int, int, np.ndarray, np.ndarray]
        ] = []
        for a, b, ia, ib in self._pairs:
            pa = bpos[a][(3 * ia[:, None] + dof3).ravel()]
            pb = bpos[b][(3 * ib[:, None] + dof3).ravel()]
            if (pa < 0).any() or (pb < 0).any():
                raise AssertionError(
                    "shared dof outside the boundary row split"
                )
            self._ov_pair_pos.append((a, b, pa, pb))
        self._ov_gather: List[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        for part in range(self.num_parts):
            src = self._gather_src[part]
            dst = self._gather_dst[part]
            pb = bpos[part][src]
            on_boundary = pb >= 0
            src_i = ipos[part][src[~on_boundary]]
            # Interior nodes have residency 1, so every interior row is
            # owned by its PE: the interior source map is the identity
            # and gather can copy the whole buffer without a source
            # gather pass (None marks the shortcut).
            if src_i.size and np.array_equal(
                src_i, np.arange(src_i.size)
            ):
                src_i = None
            self._ov_gather.append(
                (
                    dst[on_boundary],
                    pb[on_boundary],
                    dst[~on_boundary],
                    src_i,
                )
            )
        # Persistent scatter buffers (lazily shaped to the rhs width):
        # fresh per-call local arrays pay first-touch page faults that
        # show up as scatter time on the large instances.
        self._ov_xbufs: Optional[List[np.ndarray]] = None
        self._ov_xtail: Optional[Tuple[int, ...]] = None

    def _scatter_overlap(self, x_global: np.ndarray) -> List[np.ndarray]:
        """Scatter into the overlapped path's persistent local buffers.

        Selects exactly the rows :meth:`scatter` would (same values,
        same bits) but writes them into executor-owned arrays that are
        reused across supersteps — valid until the next overlapped
        multiply.
        """
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.ndim == 2:
            if x_global.shape[0] != 3 * self.mesh.num_nodes:
                raise ValueError("X must have 3 * num_nodes rows")
        elif x_global.shape != (3 * self.mesh.num_nodes,):
            raise ValueError("x must have length 3 * num_nodes")
        tail = x_global.shape[1:]
        if self._ov_xbufs is None or self._ov_xtail != tail:
            self._ov_xbufs = [
                np.empty((rows.size,) + tail) for rows in self._dof_rows
            ]
            self._ov_xtail = tail
        # mode="clip" skips the per-element bounds check (the row maps
        # are in-bounds by construction) — measurably faster at r=16.
        for rows, buf in zip(self._dof_rows, self._ov_xbufs):
            np.take(x_global, rows, axis=0, out=buf, mode="clip")
        return self._ov_xbufs

    @reads_ghosts("bbufs")  # boundary partials feed the wire pre-exchange
    def _multiply_overlapped(
        self, x_global: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Superstep with comm/comp overlap (the paper's footnote 1).

        Boundary rows — the rows of shared nodes, the only inputs the
        exchange reads — compute first, into the backend's persistent
        boundary buffers; their partial sums enter the wire on a
        background thread while the interior rows compute in the
        foreground (scipy's sparse products release the GIL, so the
        wire genuinely runs during interior flops).  No per-PE
        ``y_locals`` array is ever assembled: the exchange sums
        deliveries straight into the boundary buffers after the join,
        and gather reads each owned dof from whichever buffer holds it
        (via the maps from :meth:`_build_overlap_maps`).  Every payload
        value, summation order, and committed bit equals the standard
        phase order exactly, per column — only the storage layout
        differs.  With a trace sink, ``t_comm`` records only the
        *exposed* communication — the wait after interior compute ends
        plus the summation — which is how the overlap credits hidden
        interior flops.
        """
        backend = self.backend
        sink = self.trace_sink
        timed = sink is not None
        rec = self._recorder if timed else None
        if rec is not None:
            rec.start()
        step = self._superstep
        self._superstep = step + 1
        is_block = getattr(x_global, "ndim", 1) == 2
        rhs = x_global.shape[1] if is_block else 1
        t0 = now() if timed else 0.0
        x_locals = self._scatter_overlap(x_global)
        t1 = now() if timed else 0.0
        if rec is None:
            bbufs = [
                backend.compute_boundary_one(pe, x)
                for pe, x in enumerate(x_locals)
            ]
        else:
            bbufs = []
            for pe, x in enumerate(x_locals):
                b_start = now()
                bbufs.append(backend.compute_boundary_one(pe, x))
                rec.add("boundary", pe, b_start, now())
        # The boundary partials are the exchange's only inputs: snapshot
        # the send payloads now (straight out of the boundary buffers,
        # same pair order and values as build_sends) and deliver them
        # off-thread.
        transport = make_transport(self.injector, self._quarantined)
        if rec is not None:
            # Wire spans are recorded on the background thread; the
            # recorder's append is GIL-atomic (see SpanRecorder).
            transport = ProfiledTransport(transport, rec)
        stats = transport.make_stats()
        words_sent = np.zeros(self.num_parts, dtype=np.int64)
        blocks_sent = np.zeros(self.num_parts, dtype=np.int64)
        # dof_dst on these sends are positions into the destination's
        # *boundary buffer*, not local dof rows — the transports never
        # interpret them, only the summation loop below does.
        sends: List[BlockSend] = []
        for a, b, pa, pb in self._ov_pair_pos:
            # Advanced indexing already snapshots the partials (fresh
            # arrays, not views), matching build_sends' copy semantics.
            sends.append(BlockSend(a, b, pb, bbufs[a][pa]))
            sends.append(BlockSend(b, a, pa, bbufs[b][pb]))
        delivered: List[Tuple[BlockSend, np.ndarray]] = []
        failure: List[BaseException] = []

        def _deliver() -> None:
            try:
                for send in sends:
                    delivered.append(
                        (
                            send,
                            transport.transmit(
                                send, step, stats, words_sent, blocks_sent
                            ),
                        )
                    )
            except BaseException as exc:  # re-raised after join
                failure.append(exc)

        wire = threading.Thread(target=_deliver, name="repro-overlap-wire")
        wire.start()
        tb = now() if rec is not None else 0.0
        if rec is None:
            ibufs = [
                backend.compute_interior_one(pe, x)
                for pe, x in enumerate(x_locals)
            ]
        else:
            ibufs = []
            for pe, x in enumerate(x_locals):
                i_start = now()
                ibufs.append(backend.compute_interior_one(pe, x))
                rec.add("interior", pe, i_start, now())
        t2 = now() if timed else 0.0
        wire.join()
        tj = now() if rec is not None else 0.0
        if failure:
            raise failure[0]
        # Delivered contributions sum into the boundary buffers in the
        # exact order apply_sends would use on full per-PE arrays.
        for send, payload in delivered:
            bbufs[send.dst][send.dof_dst] += payload
        record = ExchangeRecord(words_sent, blocks_sent, faults=stats)
        if get_registry() is not None:
            _record_exchange_metrics(record)
        self._fold_transport_stats(record.faults)
        t3 = now() if timed else 0.0
        rows = 3 * self.mesh.num_nodes
        shape = (rows, rhs) if is_block else (rows,)
        if out is None:
            out = np.empty(shape, dtype=np.float64)
        elif out.shape != shape or out.dtype != np.float64:
            raise ValueError(
                f"out must be a float64 array of shape {shape}"
            )
        for part in range(self.num_parts):
            dst_b, src_b, dst_i, src_i = self._ov_gather[part]
            out[dst_b] = bbufs[part][src_b]
            if src_i is None:
                out[dst_i] = ibufs[part]
            else:
                out[dst_i] = ibufs[part][src_i]
        t4 = now() if timed else 0.0
        if timed:
            pe_spans = None
            if rec is not None:
                rec.add("scatter", -1, t0, t1)
                rec.add("boundary", -1, t1, tb)
                rec.add("interior", -1, tb, t2)
                rec.add("wait", -1, t2, tj)
                rec.add("sum", -1, tj, t3)
                rec.add("gather", -1, t3, t4)
                pe_spans = rec.finish(t0)
            sink(
                SuperstepTrace(
                    t_comp=t2 - t1,
                    t_comm=t3 - t2,
                    t_smvp=t4 - t0,
                    step=step,
                    kernel=self.kernel_name,
                    backend=self.backend_name,
                    t_scatter=t1 - t0,
                    t_gather=t4 - t3,
                    words_sent=record.words_sent,
                    blocks_sent=record.blocks_sent,
                    faults=record.faults,
                    rhs=rhs,
                    pe_spans=pe_spans,
                )
            )
        return out

    # -- REPRO_SAN: the sanitized superstep --------------------------------

    def _multiply_sanitized(self, x_global: np.ndarray) -> np.ndarray:
        """The superstep with the race sanitizer's tracked views.

        Each phase runs on :class:`TrackedArray` views of the per-PE
        vectors (same memory, same bits) and the sanitizer checks the
        recorded access sets after every phase: input mutations and
        aliased outputs after compute, schedule conformance after the
        exchange, owned-dof discipline after gather.  Strict mode
        raises :class:`~repro.analysis.sanitizer.SanitizerError` with
        exact (pe, step, phase, dof) blame before the corrupt result
        reaches the caller.

        The verified (ABFT/SDC) path takes precedence over the
        sanitizer — its own checks already police the data; sanitized
        runs skip trace emission to keep the instrumented path simple.
        """
        san = self.sanitizer
        san.begin_step(self._superstep, self.distribution)
        x_locals = self.scatter(x_global)
        x_tracked = san.wrap(x_locals, "x")
        san.set_phase("compute")
        y_locals = self.compute_phase(x_tracked)
        san.check_compute(y_locals)
        y_tracked = san.wrap(y_locals, "y")
        san.set_phase("exchange")
        collector: List[Tuple[BlockSend, np.ndarray]] = []
        y_tracked, _record = self.communication_phase(
            y_tracked, collector=collector
        )
        san.check_exchange(collector)
        san.set_phase("gather")
        y_global = self.gather(y_tracked)
        san.check_gather()
        san.end_step()
        return y_global

    # -- ABFT: the verified superstep --------------------------------------

    def _multiply_verified(self, x_global: np.ndarray) -> np.ndarray:
        """The superstep with SDC injection and ABFT checks woven in.

        Same four phases as the plain path, with a verification point
        after each data hand-off: the input CRC check after scatter,
        the checksum-row compute check after the local products, and
        the payload-sum exchange check after the exchange.  Inline
        recovery heals transient corruption on the spot (the committed
        bits equal a fault-free superstep's); a PE that cannot be
        healed raises :class:`~repro.faults.SdcFaultError` *before*
        any executor or caller state changes hands, so the superstep
        is retryable by the resilience supervisor.
        """
        sink = self.trace_sink
        timed = sink is not None
        rec = self._recorder if timed else None
        if rec is not None:
            rec.start()
            self._live_rec = rec
        step = self._superstep
        stats = FaultStats()
        record: Optional[ExchangeRecord] = None
        rhs = (
            x_global.shape[1] if getattr(x_global, "ndim", 1) == 2 else 1
        )
        t0 = now() if timed else 0.0
        try:
            x_locals = self.scatter(x_global)
            t1 = now() if timed else 0.0
            self._sdc_input_phase(x_locals, x_global, step, stats)
            tv1 = now() if timed else 0.0
            if rec is None:
                y_locals = self.compute_phase(x_locals)
            else:
                y_locals, windows = self.backend.compute_timed(
                    x_locals, now
                )
                for pe, (w_start, w_end) in enumerate(windows):
                    rec.add("compute", pe, w_start, w_end)
            t2 = now() if timed else 0.0
            pre = self._sdc_compute_phase(x_locals, y_locals, step, stats)
            tv2 = now() if timed else 0.0
            collector: List[Tuple[BlockSend, np.ndarray]] = []
            y_locals, record = self.communication_phase(
                y_locals, collector=collector, recorder=rec
            )
            t3 = now() if timed else 0.0
            self._sdc_exchange_phase(
                x_locals, y_locals, pre, collector, step, stats
            )
            tv3 = now() if timed else 0.0
            y_global = self.gather(y_locals)
            t4 = now() if timed else 0.0
        finally:
            # Escalations must not lose the tallies gathered so far.
            self._accumulate_sdc(stats)
            self._live_rec = None
        if timed:
            faults = record.faults
            if any(
                getattr(stats, f.name) for f in dataclass_fields(stats)
            ):
                faults = stats if faults is None else faults.merge(stats)
            pe_spans = None
            if rec is not None:
                rec.add("scatter", -1, t0, t1)
                rec.add("verify", -1, t1, tv1)
                rec.add("compute", -1, tv1, t2)
                rec.add("verify", -1, t2, tv2)
                rec.add("exchange", -1, tv2, t3)
                rec.add("verify", -1, t3, tv3)
                rec.add("gather", -1, tv3, t4)
                pe_spans = rec.finish(t0)
            sink(
                SuperstepTrace(
                    t_comp=t2 - tv1,
                    t_comm=t3 - tv2,
                    t_smvp=t4 - t0,
                    step=step,
                    kernel=self.kernel_name,
                    backend=self.backend_name,
                    t_scatter=t1 - t0,
                    t_gather=t4 - tv3,
                    words_sent=record.words_sent,
                    blocks_sent=record.blocks_sent,
                    faults=faults,
                    t_verify=(tv1 - t1) + (tv2 - t2) + (tv3 - t3),
                    rhs=rhs,
                    pe_spans=pe_spans,
                )
            )
        return y_global

    def _accumulate_sdc(self, stats: FaultStats) -> None:
        """Fold one superstep's SDC tallies into the run totals, in
        place (``sdc_stats`` is shared with post-eviction successors)."""
        for field in dataclass_fields(stats):
            value = getattr(stats, field.name)
            if value:
                setattr(
                    self.sdc_stats,
                    field.name,
                    getattr(self.sdc_stats, field.name) + value,
                )

    def _note_sdc(
        self,
        step: int,
        pe: int,
        phase: str,
        kind: str,
        action: str,
        detail: str = "",
    ) -> SdcEvent:
        event = SdcEvent(
            step=step,
            pe=pe,
            physical_pe=int(self.pe_ids[pe]),
            phase=phase,
            kind=kind,
            action=action,
            detail=detail,
        )
        self.sdc_events.append(event)
        record_sdc_event(event)
        return event

    def _flat_cols(self, pe: int) -> np.ndarray:
        """Column dof of every flat data word of PE ``pe``'s block
        (cached; drives importance weighting of matrix flip sites)."""
        cached = self._flat_cols_cache.get(pe)
        if cached is None:
            matrix = self.local_matrices[pe]
            if sp.isspmatrix_csr(matrix):
                cached = matrix.indices.astype(np.int64)
            elif sp.isspmatrix_bsr(matrix):
                br, bc = matrix.blocksize
                offsets = np.tile(np.arange(bc, dtype=np.int64), br)
                cached = (
                    bc * matrix.indices[:, None].astype(np.int64)
                    + offsets[None, :]
                ).ravel()
            else:
                raise TypeError(
                    f"unsupported format {type(matrix).__name__} for "
                    "ABFT matrix bookkeeping"
                )
            self._flat_cols_cache[pe] = cached
        return cached

    def _sdc_input_phase(
        self,
        x_locals: List[np.ndarray],
        x_global: np.ndarray,
        step: int,
        stats: FaultStats,
    ) -> None:
        """Snapshot-CRC the scattered inputs, inject x flips, verify,
        and heal by re-scatter from the authoritative global vector."""
        injector = self.injector if self._sdc_active else None
        if self._abft is None and injector is None:
            return
        crcs = (
            [block_checksum(x) for x in x_locals]
            if self._abft is not None
            else None
        )
        if injector is not None:
            for pe in range(self.num_parts):
                phys = int(self.pe_ids[pe])
                if injector.sdc_target(phys, step) is not SdcTarget.INPUT:
                    continue
                word, bit, _old, _new = injector.flip_sdc(
                    x_locals[pe], phys, step, salt=_SALT_INPUT
                )
                stats.injected_sdc += 1
                self._note_sdc(
                    step, pe, "input", "flip-x", "injected",
                    f"word {word} bit {bit}",
                )
        if crcs is None:
            return
        for pe in range(self.num_parts):
            if verify_block(x_locals[pe], crcs[pe]):
                continue
            stats.detected_sdc += 1
            record_sdc_latency(0.0)
            self._note_sdc(step, pe, "input", "flip-x", "detected")
            x_locals[pe] = self._scatter_one(x_global, pe)
            stats.recomputed_sdc += 1
            self._note_sdc(
                step, pe, "input", "flip-x", "recomputed", "re-scatter"
            )
            if not verify_block(x_locals[pe], crcs[pe]):
                self._note_sdc(step, pe, "input", "flip-x", "escalated")
                raise SdcFaultError(
                    f"PE {int(self.pe_ids[pe])} input vector corrupt "
                    f"after re-scatter (superstep {step})",
                    pe=pe,
                    step=step,
                    phase="input",
                )

    def _sdc_compute_phase(
        self,
        x_locals: List[np.ndarray],
        y_locals: List[np.ndarray],
        step: int,
        stats: FaultStats,
    ) -> Optional[List[Any]]:
        """Inject matrix/output corruption, verify every PE's product,
        heal inline.  Returns the per-PE pre-exchange checksums (floats
        for vectors, per-column arrays for blocks; consumed by the
        exchange check), or ``None`` when ABFT is off."""
        injector = self.injector if self._sdc_active else None
        if injector is not None:
            for pe in range(self.num_parts):
                phys = int(self.pe_ids[pe])
                if injector.sdc_target(phys, step) is not SdcTarget.MATRIX:
                    continue
                if pe in self._k_corruption:
                    continue  # one live corruption per PE block
                self._inject_matrix_flip(pe, phys, x_locals[pe], step, stats)
        # Re-apply every live matrix corruption to this superstep's
        # products — the persistent fault poisons each compute until
        # detection scrubs it.
        for pe, corruption in sorted(self._k_corruption.items()):
            y_locals[pe][corruption.row] += (
                corruption.new - corruption.old
            ) * x_locals[pe][corruption.col]
        if injector is not None:
            for pe in range(self.num_parts):
                phys = int(self.pe_ids[pe])
                if injector.sdc_target(phys, step) is SdcTarget.OUTPUT:
                    word, bit, _o, _n = injector.flip_sdc(
                        y_locals[pe], phys, step, salt=_SALT_OUTPUT
                    )
                    stats.injected_sdc += 1
                    self._note_sdc(
                        step, pe, "compute", "flip-y", "injected",
                        f"word {word} bit {bit}",
                    )
                if injector.sticky(phys, step):
                    injector.flip_sdc(
                        y_locals[pe], phys, step, salt=_SALT_STICKY
                    )
                    stats.injected_sdc += 1
                    self._note_sdc(
                        step, pe, "compute", "sticky", "injected",
                        "bad core corrupts every compute",
                    )
        if self._abft is None:
            # Injected, nothing watching: whatever was injected this
            # superstep escapes into committed state.
            escaped = stats.injected_sdc - stats.detected_sdc
            if escaped > 0:
                stats.escaped_sdc += escaped
            return None
        pre: List[Any] = [0.0] * self.num_parts
        for pe in range(self.num_parts):
            check = self._abft.check_compute(pe, x_locals[pe], y_locals[pe])
            if check.ok:
                pre[pe] = check.checksum
                continue
            stats.detected_sdc += 1
            record_sdc_latency(float(step - self._corruption_age(pe, step)))
            kind = self._blame_kind(pe, step)
            self._note_sdc(
                step, pe, "compute", kind, "detected",
                f"|err| {check.error:.3e} > tol {check.tol:.3e}",
            )
            pre[pe] = self._recover_compute(
                pe, x_locals[pe], y_locals, step, stats, kind
            )
        return pre

    def _blame_kind(self, pe: int, step: int) -> str:
        """Best-effort fault kind for a compute-check mismatch."""
        injector = self.injector if self._sdc_active else None
        phys = int(self.pe_ids[pe])
        if injector is not None and injector.sticky(phys, step):
            return "sticky"
        if pe in self._k_corruption:
            return "flip-k"
        return "flip-y"

    def _corruption_age(self, pe: int, step: int) -> int:
        """Superstep a live matrix corruption on ``pe`` was injected
        (for detection-latency accounting); ``step`` if none live."""
        corruption = self._k_corruption.get(pe)
        return corruption.step if corruption is not None else step

    def _inject_matrix_flip(
        self,
        pe: int,
        phys: int,
        x: np.ndarray,
        step: int,
        stats: FaultStats,
    ) -> None:
        """Record a persistent bit-flip in PE ``pe``'s assembled block.

        The flipped word is drawn importance-weighted by
        ``|K[word]| * |x[col(word)]|`` so the flip's rank-1 effect on
        the product is within three decades of the largest achievable —
        i.e. guaranteed detectable this superstep.  When every
        importance is zero (an all-zero local input, e.g. the first
        steps of a cold-started wave), a flip would be a bitwise no-op
        on the product, so injection is skipped — there is no
        observable fault to detect.
        """
        matrix = self.local_matrices[pe]
        data = np.asarray(matrix.data).reshape(-1)
        importance = np.abs(data) * np.abs(x[self._flat_cols(pe)])
        if float(importance.max()) <= 0.0:
            return
        injector = self.injector
        word, bit = injector.sdc_site(
            importance, phys, step, salt=_SALT_MATRIX
        )
        old = float(data[word])
        flipped = np.array([old], dtype=np.float64)
        flipped.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(bit)
        new = float(flipped[0])
        row, col = nnz_coords(matrix, word)
        self._k_corruption[pe] = MatrixCorruption(
            word=word, bit=bit, old=old, new=new, row=row, col=col,
            step=step,
        )
        stats.injected_sdc += 1
        self._note_sdc(
            step, pe, "compute", "flip-k", "injected",
            f"word {word} bit {bit} (dof {row},{col})",
        )

    @owns("y_locals", pe="pe")
    def _recover_compute(
        self,
        pe: int,
        x: np.ndarray,
        y_locals: List[np.ndarray],
        step: int,
        stats: FaultStats,
        kind: str,
    ) -> Any:
        """Heal one PE's corrupt product inline; returns the healed
        pre-exchange checksum or raises :class:`SdcFaultError`.

        Attempt 1 recomputes from the (CRC-verified) input — that
        alone heals a transient output flip.  Attempt 2 first scrubs
        any live matrix corruption (the authoritative assembled block
        is clean by construction; only the virtual record poisons
        products).  A sticky PE re-corrupts every recompute, exhausts
        both attempts, and escalates with exact blame attached.
        """
        injector = self.injector if self._sdc_active else None
        phys = int(self.pe_ids[pe])
        for attempt in range(1, _MAX_SDC_ATTEMPTS + 1):
            corruption = self._k_corruption.get(pe)
            if attempt > 1 and corruption is not None:
                del self._k_corruption[pe]
                corruption = None
                stats.repaired_blocks += 1
                self._note_sdc(
                    step, pe, "compute", "flip-k", "repaired",
                    "virtual corruption scrubbed",
                )
            y = self._recover_one(pe, x)
            stats.recomputed_sdc += 1
            self._note_sdc(
                step, pe, "compute", kind,
                "recomputed", f"attempt {attempt}",
            )
            if corruption is not None:
                y[corruption.row] += (
                    corruption.new - corruption.old
                ) * x[corruption.col]
            if injector is not None and injector.sticky(phys, step):
                injector.flip_sdc(
                    y, phys, step, salt=_SALT_STICKY, attempt=attempt
                )
                stats.injected_sdc += 1
                self._note_sdc(
                    step, pe, "compute", "sticky", "injected",
                    f"re-corrupted recovery attempt {attempt}",
                )
            check = self._abft.check_compute(pe, x, y)
            if check.ok:
                y_locals[pe] = y
                return check.checksum
            stats.detected_sdc += 1
            record_sdc_latency(0.0)
            self._note_sdc(
                step, pe, "compute", kind,
                "detected", f"recovery attempt {attempt} still corrupt",
            )
        self._note_sdc(
            step, pe, "compute", kind, "escalated",
            f"{_MAX_SDC_ATTEMPTS} recomputes exhausted",
        )
        raise SdcFaultError(
            f"PE {phys} product corrupt after {_MAX_SDC_ATTEMPTS} "
            f"recomputes (superstep {step}) — persistent hardware fault",
            pe=pe,
            step=step,
            phase="compute",
        )

    def _sdc_exchange_phase(
        self,
        x_locals: List[np.ndarray],
        y_locals: List[np.ndarray],
        pre: Optional[List[Any]],
        delivered: List[Tuple[BlockSend, np.ndarray]],
        step: int,
        stats: FaultStats,
    ) -> None:
        """Verify each PE's post-exchange partial against the incoming
        payload sums; heal by replaying that PE's compute + summation."""
        if self._abft is None or pre is None:
            return
        parts = self.num_parts
        incoming_sum: List[Any] = [0.0] * parts
        incoming_abs: List[Any] = [0.0] * parts
        incoming_terms = [0] * parts
        for send, payload in delivered:
            # axis-0 sums: scalars for vector payloads, per-column sums
            # for (ndofs, r) block payloads.
            incoming_sum[send.dst] = incoming_sum[send.dst] + payload.sum(
                axis=0
            )
            incoming_abs[send.dst] = incoming_abs[send.dst] + np.abs(
                payload
            ).sum(axis=0)
            incoming_terms[send.dst] += payload.shape[0]
        for pe in range(parts):
            check = self._abft.check_exchange(
                pe,
                y_locals[pe],
                pre[pe],
                incoming_sum[pe],
                incoming_abs[pe],
                incoming_terms[pe],
                x_locals[pe],
            )
            if check.ok:
                continue
            stats.detected_sdc += 1
            record_sdc_latency(0.0)
            self._note_sdc(
                step, pe, "exchange", "flip-y", "detected",
                f"|err| {check.error:.3e} > tol {check.tol:.3e}",
            )
            # Replay this PE alone: recompute the local product (plus
            # any live virtual matrix delta, for bit-parity with the
            # main path) and re-sum its delivered payloads in original
            # application order.
            y = self._recover_one(pe, x_locals[pe])
            corruption = self._k_corruption.get(pe)
            if corruption is not None:
                y[corruption.row] += (
                    corruption.new - corruption.old
                ) * x_locals[pe][corruption.col]
            for send, payload in delivered:
                if send.dst == pe:
                    y[send.dof_dst] += payload
            stats.recomputed_sdc += 1
            self._note_sdc(
                step, pe, "exchange", "flip-y", "recomputed",
                "local replay from delivered payloads",
            )
            check = self._abft.check_exchange(
                pe,
                y,
                pre[pe],
                incoming_sum[pe],
                incoming_abs[pe],
                incoming_terms[pe],
                x_locals[pe],
            )
            if not check.ok:
                self._note_sdc(
                    step, pe, "exchange", "flip-y", "escalated",
                    "replay still fails the payload-sum check",
                )
                raise SdcFaultError(
                    f"PE {int(self.pe_ids[pe])} post-exchange partial "
                    f"corrupt after local replay (superstep {step})",
                    pe=pe,
                    step=step,
                    phase="exchange",
                )
            y_locals[pe] = y

    def verify_against_global(
        self, global_stiffness: sp.spmatrix, rng_seed: int = 0
    ) -> float:
        """Max relative error of the distributed product vs the global one.

        Used by tests and by ``examples/quickstart.py`` to demonstrate
        correctness end to end.
        """
        rng = np.random.default_rng(rng_seed)
        x = rng.standard_normal(3 * self.mesh.num_nodes)
        y_dist = self.multiply(x)
        y_ref = global_stiffness @ x
        scale = float(np.abs(y_ref).max()) or 1.0
        return float(np.abs(y_dist - y_ref).max() / scale)
