"""The distributed SMVP executor.

This is a faithful in-process execution of the paper's parallel SMVP
(Section 2.3): each PE holds a local stiffness matrix assembled from
its own elements over its own (replicated-shared) node set, computes a
local product, and then exchanges-and-sums partial y values with every
PE it shares nodes with.  Running all PEs sequentially inside one
process keeps the *data movement* identical to the real thing while
making the result directly comparable — tests assert the distributed
product equals the global sparse product to floating-point tolerance.

The executor doubles as the ground truth for the performance model:
its per-PE flop counts and the communication schedule's word/block
counts are exactly the F, C_i, and B_i the model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_subdomain_stiffness
from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh
from repro.partition.base import Partition
from repro.smvp.distribution import DataDistribution
from repro.smvp.kernels import KERNELS
from repro.smvp.schedule import CommSchedule


@dataclass(frozen=True)
class ExchangeRecord:
    """Observed traffic for one executed SMVP (sanity-checkable against
    the static schedule)."""

    words_sent: np.ndarray  # per PE
    blocks_sent: np.ndarray  # per PE


class DistributedSMVP:
    """A p-PE distributed ``y = K x`` over a partitioned mesh.

    Parameters
    ----------
    mesh, partition, materials:
        The global problem.
    kernel:
        Local kernel name from :data:`repro.smvp.kernels.KERNELS`.
    """

    def __init__(
        self,
        mesh: TetMesh,
        partition: Partition,
        materials: ElementMaterials,
        kernel: str = "csr",
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.mesh = mesh
        self.partition = partition
        self.distribution = DataDistribution(mesh, partition)
        self.schedule = CommSchedule(self.distribution)
        self.kernel_name = kernel
        self._kernel = KERNELS[kernel]
        fmt = "bsr" if kernel == "bsr3x3" else "csr"

        self.local_nodes: List[np.ndarray] = []
        self.local_matrices: List[sp.spmatrix] = []
        for part in range(partition.num_parts):
            nodes = self.distribution.local_nodes(part)
            self.local_nodes.append(nodes)
            local_k = assemble_subdomain_stiffness(
                mesh,
                materials,
                self.distribution.local_elements(part),
                nodes,
                fmt=fmt,
            )
            self.local_matrices.append(local_k)

        # Per unordered pair: (part_a, part_b, local indices on a, on b).
        self._pairs: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        for (a, b), shared in self.distribution.pair_shared_nodes.items():
            ia = self.distribution.global_to_local(a, shared)
            ib = self.distribution.global_to_local(b, shared)
            self._pairs.append((a, b, ia, ib))

        # Owner of each global node for the gather step: lowest PE.
        csr = self.distribution.node_parts.tocsr()
        if np.any(np.diff(csr.indptr) == 0):
            raise ValueError(
                "mesh has nodes unused by any element; compact it first"
            )
        self._owner = csr.indices[csr.indptr[:-1]].astype(np.int64)

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    def flops_per_pe(self) -> np.ndarray:
        """Actual F_i = 2 * nnz of each PE's local matrix."""
        return np.array([2 * k.nnz for k in self.local_matrices], dtype=np.int64)

    # -- phases -----------------------------------------------------------

    def scatter(self, x_global: np.ndarray) -> List[np.ndarray]:
        """Distribute a global vector (3n,) to per-PE local vectors."""
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.shape != (3 * self.mesh.num_nodes,):
            raise ValueError("x must have length 3 * num_nodes")
        blocks = x_global.reshape(-1, 3)
        return [blocks[nodes].ravel() for nodes in self.local_nodes]

    def compute_phase(self, x_locals: List[np.ndarray]) -> List[np.ndarray]:
        """Local SMVPs on every PE (the computation phase)."""
        return [
            self._kernel(k, x) for k, x in zip(self.local_matrices, x_locals)
        ]

    def communication_phase(
        self, y_locals: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], ExchangeRecord]:
        """Pairwise exchange-and-sum of shared partial y values.

        Send buffers are built from the pre-exchange partials (as real
        message passing would), then all contributions are summed —
        nodes shared by three or more PEs receive every other owner's
        partial exactly once.
        """
        p = self.num_parts
        words_sent = np.zeros(p, dtype=np.int64)
        blocks_sent = np.zeros(p, dtype=np.int64)
        sends: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for a, b, ia, ib in self._pairs:
            dof_a = (3 * ia[:, None] + np.arange(3)).ravel()
            dof_b = (3 * ib[:, None] + np.arange(3)).ravel()
            buf_ab = y_locals[a][dof_a].copy()  # a -> b
            buf_ba = y_locals[b][dof_b].copy()  # b -> a
            sends.append((b, dof_b, buf_ab))
            sends.append((a, dof_a, buf_ba))
            words_sent[a] += len(buf_ab)
            words_sent[b] += len(buf_ba)
            blocks_sent[a] += 1
            blocks_sent[b] += 1
        for dst, dof, buf in sends:
            y_locals[dst][dof] += buf
        return y_locals, ExchangeRecord(words_sent, blocks_sent)

    def gather(self, y_locals: List[np.ndarray]) -> np.ndarray:
        """Collect the (now globally summed) y into one global vector."""
        out = np.zeros((self.mesh.num_nodes, 3))
        for part in range(self.num_parts):
            nodes = self.local_nodes[part]
            mine = self._owner[nodes] == part
            out[nodes[mine]] = y_locals[part].reshape(-1, 3)[mine]
        return out.ravel()

    def multiply(self, x_global: np.ndarray) -> np.ndarray:
        """The full distributed SMVP: scatter, compute, exchange, gather."""
        x_locals = self.scatter(x_global)
        y_locals = self.compute_phase(x_locals)
        y_locals, _record = self.communication_phase(y_locals)
        return self.gather(y_locals)

    __call__ = multiply

    def verify_against_global(
        self, global_stiffness: sp.spmatrix, rng_seed: int = 0
    ) -> float:
        """Max relative error of the distributed product vs the global one.

        Used by tests and by ``examples/quickstart.py`` to demonstrate
        correctness end to end.
        """
        rng = np.random.default_rng(rng_seed)
        x = rng.standard_normal(3 * self.mesh.num_nodes)
        y_dist = self.multiply(x)
        y_ref = global_stiffness @ x
        scale = float(np.abs(y_ref).max()) or 1.0
        return float(np.abs(y_dist - y_ref).max() / scale)
