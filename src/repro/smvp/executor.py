"""The distributed SMVP executor.

This is a faithful in-process execution of the paper's parallel SMVP
(Section 2.3): each PE holds a local stiffness matrix assembled from
its own elements over its own (replicated-shared) node set, computes a
local product, and then exchanges-and-sums partial y values with every
PE it shares nodes with.  Running all PEs sequentially inside one
process keeps the *data movement* identical to the real thing while
making the result directly comparable — tests assert the distributed
product equals the global sparse product to floating-point tolerance.

The executor doubles as the ground truth for the performance model:
its per-PE flop counts and the communication schedule's word/block
counts are exactly the F, C_i, and B_i the model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.contracts import (
    check_csr_contract,
    check_schedule_contract,
)
from repro.faults.detection import FaultStats, block_checksum, verify_block
from repro.faults.errors import ExchangeFaultError
from repro.faults.injector import BlockFault, FaultInjector
from repro.fem.assembly import assemble_subdomain_stiffness
from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh
from repro.partition.base import Partition
from repro.smvp.distribution import DataDistribution
from repro.smvp.kernels import KERNELS
from repro.smvp.schedule import CommSchedule


@dataclass(frozen=True)
class ExchangeRecord:
    """Observed traffic for one executed SMVP (sanity-checkable against
    the static schedule).

    With fault injection active, ``words_sent``/``blocks_sent`` count
    every transmission that actually happened — retransmits and
    duplicates included — so they can exceed the static schedule; the
    ``faults`` tally explains exactly by how much and why.
    """

    words_sent: np.ndarray  # per PE
    blocks_sent: np.ndarray  # per PE
    faults: Optional[FaultStats] = None  # None on the fault-free path


class DistributedSMVP:
    """A p-PE distributed ``y = K x`` over a partitioned mesh.

    Parameters
    ----------
    mesh, partition, materials:
        The global problem.
    kernel:
        Local kernel name from :data:`repro.smvp.kernels.KERNELS`.
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  When enabled,
        the exchange phase runs a checksummed, retransmitting protocol:
        injected drops/corruptions are detected (timeout / CRC mismatch)
        and recovered by resending from the sender's partial, duplicates
        are delivered once, and the per-exchange :class:`FaultStats` are
        attached to the :class:`ExchangeRecord`.  With no injector (or a
        disabled one) the exchange takes the original fault-free path,
        bit for bit.
    """

    def __init__(
        self,
        mesh: TetMesh,
        partition: Partition,
        materials: ElementMaterials,
        kernel: str = "csr",
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.injector = injector
        self._superstep = 0  # exchange counter; keys the fault streams
        self.mesh = mesh
        self.partition = partition
        self.distribution = DataDistribution(mesh, partition)
        self.schedule = CommSchedule(self.distribution)
        self.kernel_name = kernel
        self._kernel = KERNELS[kernel]
        fmt = "bsr" if kernel == "bsr3x3" else "csr"

        self.local_nodes: List[np.ndarray] = []
        self.local_matrices: List[sp.spmatrix] = []
        for part in range(partition.num_parts):
            nodes = self.distribution.local_nodes(part)
            self.local_nodes.append(nodes)
            local_k = assemble_subdomain_stiffness(
                mesh,
                materials,
                self.distribution.local_elements(part),
                nodes,
                fmt=fmt,
            )
            check_csr_contract(local_k, context=f"PE {part} local stiffness")
            self.local_matrices.append(local_k)
        check_schedule_contract(self.schedule, self.distribution)

        # Per unordered pair: (part_a, part_b, local indices on a, on b).
        self._pairs: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        for (a, b), shared in self.distribution.pair_shared_nodes.items():
            ia = self.distribution.global_to_local(a, shared)
            ib = self.distribution.global_to_local(b, shared)
            self._pairs.append((a, b, ia, ib))

        # Owner of each global node for the gather step: lowest PE.
        csr = self.distribution.node_parts.tocsr()
        if np.any(np.diff(csr.indptr) == 0):
            raise ValueError(
                "mesh has nodes unused by any element; compact it first"
            )
        self._owner = csr.indices[csr.indptr[:-1]].astype(np.int64)

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    def reset_superstep(self, step: int = 0) -> None:
        """Rewind the exchange counter (reproducible fault histories)."""
        self._superstep = step

    def flops_per_pe(self) -> np.ndarray:
        """Actual F_i = 2 * nnz of each PE's local matrix."""
        return np.array([2 * k.nnz for k in self.local_matrices], dtype=np.int64)

    # -- phases -----------------------------------------------------------

    def scatter(self, x_global: np.ndarray) -> List[np.ndarray]:
        """Distribute a global vector (3n,) to per-PE local vectors."""
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.shape != (3 * self.mesh.num_nodes,):
            raise ValueError("x must have length 3 * num_nodes")
        blocks = x_global.reshape(-1, 3)
        return [blocks[nodes].ravel() for nodes in self.local_nodes]

    def compute_phase(self, x_locals: List[np.ndarray]) -> List[np.ndarray]:
        """Local SMVPs on every PE (the computation phase)."""
        return [
            self._kernel(k, x) for k, x in zip(self.local_matrices, x_locals)
        ]

    def communication_phase(
        self, y_locals: List[np.ndarray], step: Optional[int] = None
    ) -> Tuple[List[np.ndarray], ExchangeRecord]:
        """Pairwise exchange-and-sum of shared partial y values.

        Send buffers are built from the pre-exchange partials (as real
        message passing would), then all contributions are summed —
        nodes shared by three or more PEs receive every other owner's
        partial exactly once.

        ``step`` keys the fault injector's per-superstep streams; it
        defaults to an internal counter so repeated SMVPs (time
        stepping) see an evolving fault history.
        """
        if step is None:
            step = self._superstep
        self._superstep = step + 1
        if self.injector is not None and self.injector.enabled:
            return self._communication_phase_faulty(y_locals, step)
        p = self.num_parts
        words_sent = np.zeros(p, dtype=np.int64)
        blocks_sent = np.zeros(p, dtype=np.int64)
        sends: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for a, b, ia, ib in self._pairs:
            dof_a = (3 * ia[:, None] + np.arange(3)).ravel()
            dof_b = (3 * ib[:, None] + np.arange(3)).ravel()
            buf_ab = y_locals[a][dof_a].copy()  # a -> b
            buf_ba = y_locals[b][dof_b].copy()  # b -> a
            sends.append((b, dof_b, buf_ab))
            sends.append((a, dof_a, buf_ba))
            words_sent[a] += len(buf_ab)
            words_sent[b] += len(buf_ba)
            blocks_sent[a] += 1
            blocks_sent[b] += 1
        for dst, dof, buf in sends:
            y_locals[dst][dof] += buf
        return y_locals, ExchangeRecord(words_sent, blocks_sent)

    def _communication_phase_faulty(
        self, y_locals: List[np.ndarray], step: int
    ) -> Tuple[List[np.ndarray], ExchangeRecord]:
        """The exchange under fault injection: checksum + retransmit.

        Same data flow as the clean phase, but every directed block runs
        a small reliability protocol: the sender computes a CRC-32 over
        the payload; the injector may drop the block (detected by the
        receiver's timeout against the static schedule — it knows what
        it is owed), flip a bit in flight (detected by the checksum), or
        deliver it twice (deduplicated by sequence id, i.e. applied
        once).  Failed deliveries are retransmitted from the sender's
        still-intact partial, so the summed result is bit-identical to
        the fault-free exchange whenever recovery succeeds.
        """
        p = self.num_parts
        words_sent = np.zeros(p, dtype=np.int64)
        blocks_sent = np.zeros(p, dtype=np.int64)
        stats = FaultStats()
        sends: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for a, b, ia, ib in self._pairs:
            dof_a = (3 * ia[:, None] + np.arange(3)).ravel()
            dof_b = (3 * ib[:, None] + np.arange(3)).ravel()
            buf_ab = y_locals[a][dof_a].copy()  # a -> b
            buf_ba = y_locals[b][dof_b].copy()  # b -> a
            for src, dst, dof_dst, clean in (
                (a, b, dof_b, buf_ab),
                (b, a, dof_a, buf_ba),
            ):
                payload = self._transmit(
                    src, dst, clean, step, stats, words_sent, blocks_sent
                )
                sends.append((dst, dof_dst, payload))
        for dst, dof, buf in sends:
            y_locals[dst][dof] += buf
        return y_locals, ExchangeRecord(words_sent, blocks_sent, faults=stats)

    def _transmit(
        self,
        src: int,
        dst: int,
        clean: np.ndarray,
        step: int,
        stats: FaultStats,
        words_sent: np.ndarray,
        blocks_sent: np.ndarray,
    ) -> np.ndarray:
        """Deliver one directed block through the injector, with retries.

        Returns the payload as received (always equal to ``clean`` on
        success — corrupted attempts never survive the checksum).
        """
        injector = self.injector
        checksum = block_checksum(clean)
        max_attempts = injector.config.max_retries + 1
        for attempt in range(max_attempts):
            if attempt > 0:
                stats.retransmits += 1
                stats.words_retransmitted += clean.size
            payload = clean.copy()
            words_sent[src] += payload.size
            blocks_sent[src] += 1
            fault = injector.block_fault(src, dst, step, attempt)
            if fault is BlockFault.DROP:
                stats.injected_drops += 1
                stats.detected_missing += 1  # receiver's timeout fires
                continue
            if fault is BlockFault.BITFLIP:
                stats.injected_corruptions += 1
                injector.corrupt(payload, src, dst, step, attempt)
            elif fault is BlockFault.DUPLICATE:
                stats.injected_duplicates += 1
                stats.duplicates_ignored += 1
                # The redundant copy is real traffic, applied zero times.
                words_sent[src] += payload.size
                blocks_sent[src] += 1
            if not verify_block(payload, checksum):
                stats.detected_corrupt += 1
                continue
            return payload
        raise ExchangeFaultError(
            f"block {src}->{dst} (superstep {step}) failed "
            f"{max_attempts} transmission attempts; raise max_retries or "
            "lower the fault rates"
        )

    def gather(self, y_locals: List[np.ndarray]) -> np.ndarray:
        """Collect the (now globally summed) y into one global vector."""
        out = np.zeros((self.mesh.num_nodes, 3))
        for part in range(self.num_parts):
            nodes = self.local_nodes[part]
            mine = self._owner[nodes] == part
            out[nodes[mine]] = y_locals[part].reshape(-1, 3)[mine]
        return out.ravel()

    def multiply(self, x_global: np.ndarray) -> np.ndarray:
        """The full distributed SMVP: scatter, compute, exchange, gather."""
        x_locals = self.scatter(x_global)
        y_locals = self.compute_phase(x_locals)
        y_locals, _record = self.communication_phase(y_locals)
        return self.gather(y_locals)

    __call__ = multiply

    def verify_against_global(
        self, global_stiffness: sp.spmatrix, rng_seed: int = 0
    ) -> float:
        """Max relative error of the distributed product vs the global one.

        Used by tests and by ``examples/quickstart.py`` to demonstrate
        correctness end to end.
        """
        rng = np.random.default_rng(rng_seed)
        x = rng.standard_normal(3 * self.mesh.num_nodes)
        y_dist = self.multiply(x)
        y_ref = global_stiffness @ x
        scale = float(np.abs(y_ref).max()) or 1.0
        return float(np.abs(y_dist - y_ref).max() / scale)
