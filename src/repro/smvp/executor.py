"""The distributed SMVP executor.

This is a faithful in-process execution of the paper's parallel SMVP
(Section 2.3): each PE holds a local stiffness matrix assembled from
its own elements over its own (replicated-shared) node set, computes a
local product, and then exchanges-and-sums partial y values with every
PE it shares nodes with.  The result is directly comparable to the
global product — tests assert the distributed product equals the
global sparse product to floating-point tolerance.

The executor is the integration point of the superstep engine's four
layers, each swappable on its own:

* **kernel** (:mod:`repro.smvp.kernels`) — the local storage format;
  prepared once at setup, applied per product.
* **backend** (:mod:`repro.smvp.backends`) — where the per-PE products
  run: ``serial`` (historical semantics, bit-identical), ``threaded``
  (thread pool; scipy matvec releases the GIL), or ``shared-memory``
  (process pool).
* **exchange** (:mod:`repro.smvp.exchange`) — the pairwise
  exchange-and-sum; the fault protocol from :mod:`repro.faults` is
  middleware on the transport, not a forked loop.
* **trace** (:mod:`repro.smvp.trace`) — optional per-superstep
  instrumentation: attach a ``trace_sink`` and every ``multiply``
  emits a :class:`~repro.smvp.trace.SuperstepTrace`.

The executor doubles as the ground truth for the performance model:
its per-PE flop counts and the communication schedule's word/block
counts are exactly the F, C_i, and B_i the model consumes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.contracts import (
    check_csr_contract,
    check_schedule_contract,
)
from repro.faults.injector import FaultInjector
from repro.fem.assembly import assemble_subdomain_stiffness
from repro.fem.material import ElementMaterials
from repro.mesh.core import TetMesh
from repro.partition.base import Partition
from repro.smvp.backends import make_backend
from repro.smvp.distribution import DataDistribution
from repro.smvp.exchange import ExchangeRecord, make_transport, run_exchange
from repro.smvp.kernels import get_kernel
from repro.smvp.schedule import CommSchedule
from repro.smvp.trace import SuperstepTrace, TraceSink
from repro.telemetry.registry import count, get_registry
from repro.util.clock import now

__all__ = ["DistributedSMVP", "ExchangeRecord"]


class DistributedSMVP:
    """A p-PE distributed ``y = K x`` over a partitioned mesh.

    Parameters
    ----------
    mesh, partition, materials:
        The global problem.
    kernel:
        Local kernel name from the registry in
        :mod:`repro.smvp.kernels` (``get_kernel``).
    injector:
        Optional :class:`~repro.faults.FaultInjector`.  When enabled,
        the exchange phase runs through the checksummed, retransmitting
        :class:`~repro.smvp.exchange.FaultMiddleware`: injected
        drops/corruptions are detected (timeout / CRC mismatch) and
        recovered by resending from the sender's partial, duplicates
        are delivered once, and the per-exchange ``FaultStats`` are
        attached to the :class:`ExchangeRecord`.  With no injector (or
        a disabled one) the exchange takes the clean transport, bit for
        bit the original fault-free path.
    backend:
        Execution-backend name (``serial`` / ``threaded`` /
        ``shared-memory``) or an
        :class:`~repro.smvp.backends.ExecutionBackend` instance.  The
        backend decides where the compute phase's per-PE products run;
        results are bit-identical across backends.
    trace_sink:
        Optional callable receiving a
        :class:`~repro.smvp.trace.SuperstepTrace` after every
        ``multiply`` (per-phase wall times, per-PE traffic, fault
        stats).  ``None`` (default) keeps the hot path clock-free.
    """

    def __init__(
        self,
        mesh: TetMesh,
        partition: Partition,
        materials: ElementMaterials,
        kernel: str = "csr",
        injector: Optional[FaultInjector] = None,
        backend: str = "serial",
        trace_sink: Optional[TraceSink] = None,
    ) -> None:
        self.kernel = get_kernel(kernel) if isinstance(kernel, str) else kernel
        self.kernel_name = self.kernel.name
        self.injector = injector
        self.trace_sink = trace_sink
        self._superstep = 0  # exchange counter; keys the fault streams
        self._quarantined: frozenset = frozenset()
        self.mesh = mesh
        self.partition = partition
        self.materials = materials
        self.distribution = DataDistribution(mesh, partition)
        self.schedule = CommSchedule(self.distribution)
        fmt = self.kernel.preferred_format

        self.local_nodes: List[np.ndarray] = []
        self.local_matrices: List[sp.spmatrix] = []
        for part in range(partition.num_parts):
            nodes = self.distribution.local_nodes(part)
            self.local_nodes.append(nodes)
            local_k = assemble_subdomain_stiffness(
                mesh,
                materials,
                self.distribution.local_elements(part),
                nodes,
                fmt=fmt,
            )
            check_csr_contract(local_k, context=f"PE {part} local stiffness")
            self.local_matrices.append(local_k)
        check_schedule_contract(self.schedule, self.distribution)

        self.backend = make_backend(backend)
        self.backend_name = self.backend.name
        self.backend.setup(self.kernel, self.local_matrices)

        reg = get_registry()
        if reg is not None:
            reg.counter(
                "repro_smvp_setups_total", "executor constructions"
            ).inc(kernel=self.kernel_name, backend=self.backend_name)
            reg.gauge("repro_smvp_num_pes", "PE count").set(
                partition.num_parts
            )
            reg.gauge("repro_smvp_c_max_words", "schedule C_max").set(
                self.schedule.c_max
            )
            reg.gauge("repro_smvp_b_max_blocks", "schedule B_max").set(
                self.schedule.b_max
            )

        # Per unordered pair: (part_a, part_b, local indices on a, on b).
        self._pairs: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        for (a, b), shared in self.distribution.pair_shared_nodes.items():
            ia = self.distribution.global_to_local(a, shared)
            ib = self.distribution.global_to_local(b, shared)
            self._pairs.append((a, b, ia, ib))

        # Owner of each global node for the gather step: lowest PE.
        csr = self.distribution.node_parts.tocsr()
        if np.any(np.diff(csr.indptr) == 0):
            raise ValueError(
                "mesh has nodes unused by any element; compact it first"
            )
        self._owner = csr.indices[csr.indptr[:-1]].astype(np.int64)

        # Per-PE owned-dof index arrays: gather writes straight through
        # these (no dense scratch allocation, no per-call masking).
        # Ownership partitions the nodes, so the destinations cover
        # every global dof exactly once.
        dof3 = np.arange(3)
        self._gather_src: List[np.ndarray] = []
        self._gather_dst: List[np.ndarray] = []
        for part in range(partition.num_parts):
            nodes = self.local_nodes[part]
            mine = np.flatnonzero(self._owner[nodes] == part)
            self._gather_src.append((3 * mine[:, None] + dof3).ravel())
            self._gather_dst.append(
                (3 * nodes[mine][:, None] + dof3).ravel()
            )

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    def close(self) -> None:
        """Release backend resources (thread/process pools)."""
        self.backend.close()

    def __enter__(self) -> "DistributedSMVP":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def reset_superstep(self, step: int = 0) -> None:
        """Rewind the exchange counter (reproducible fault histories)."""
        self._superstep = step

    # -- resilience hooks --------------------------------------------------

    @property
    def quarantined(self) -> frozenset:
        """PEs whose links are currently circuit-broken."""
        return self._quarantined

    def quarantine(self, pe: int) -> None:
        """Circuit-break one PE's links: its exchange blocks take the
        verified slow path (no fault draws) from the next superstep on.

        Numerically a no-op — the same clean payloads are summed in the
        same order — so quarantine never perturbs the bit-level result.
        """
        if not 0 <= pe < self.num_parts:
            raise ValueError(f"PE {pe} out of range")
        self._quarantined = self._quarantined | {pe}

    def unquarantine(self, pe: int) -> None:
        """Restore a quarantined PE's links to the normal wire."""
        self._quarantined = self._quarantined - {pe}

    def reconfigure_without(self, dead_pe: int):
        """Build the P-1 executor that continues after ``dead_pe`` dies.

        Redistributes the dead PE's elements onto the survivors
        (:func:`~repro.smvp.distribution.redistribute_after_eviction`),
        reassembles local matrices, and rebuilds the schedule, exchange
        pairs, and gather maps for the compacted ``0 .. P-2`` numbering.
        The new executor keeps this one's kernel, backend kind,
        injector, and trace sink, inherits the superstep counter (the
        fault history keeps evolving, not restarting), and carries the
        quarantine set remapped through the survivor map.

        Returns ``(new_executor, redistribution)``; the caller owns
        closing both executors.
        """
        from repro.smvp.distribution import redistribute_after_eviction

        new_partition, redistribution = redistribute_after_eviction(
            self.mesh, self.partition, dead_pe
        )
        new = DistributedSMVP(
            self.mesh,
            new_partition,
            self.materials,
            kernel=self.kernel,
            injector=self.injector,
            backend=self.backend_name,
            trace_sink=self.trace_sink,
        )
        new._superstep = self._superstep
        new._quarantined = frozenset(
            redistribution.survivor_map[pe]
            for pe in self._quarantined
            if pe in redistribution.survivor_map
        )
        count("repro_smvp_reconfigurations_total", dead_pe=dead_pe)
        return new, redistribution

    def flops_per_pe(self) -> np.ndarray:
        """Actual F_i = 2 * nnz of each PE's local matrix."""
        return np.array([2 * k.nnz for k in self.local_matrices], dtype=np.int64)

    # -- phases -----------------------------------------------------------

    def scatter(self, x_global: np.ndarray) -> List[np.ndarray]:
        """Distribute a global vector (3n,) to per-PE local vectors."""
        x_global = np.asarray(x_global, dtype=np.float64)
        if x_global.shape != (3 * self.mesh.num_nodes,):
            raise ValueError("x must have length 3 * num_nodes")
        blocks = x_global.reshape(-1, 3)
        return [blocks[nodes].ravel() for nodes in self.local_nodes]

    def compute_phase(self, x_locals: List[np.ndarray]) -> List[np.ndarray]:
        """Local SMVPs on every PE (the computation phase)."""
        return self.backend.compute(x_locals)

    def communication_phase(
        self, y_locals: List[np.ndarray], step: Optional[int] = None
    ) -> Tuple[List[np.ndarray], ExchangeRecord]:
        """Pairwise exchange-and-sum of shared partial y values.

        Send buffers are built from the pre-exchange partials (as real
        message passing would), then all contributions are summed —
        nodes shared by three or more PEs receive every other owner's
        partial exactly once.  The fault protocol, when an injector is
        enabled, rides along as transport middleware (see
        :mod:`repro.smvp.exchange`).

        ``step`` keys the fault injector's per-superstep streams; it
        defaults to an internal counter so repeated SMVPs (time
        stepping) see an evolving fault history.
        """
        if step is None:
            step = self._superstep
        self._superstep = step + 1
        transport = make_transport(self.injector, self._quarantined)
        return run_exchange(
            y_locals, self._pairs, transport, step, self.num_parts
        )

    def gather(self, y_locals: List[np.ndarray]) -> np.ndarray:
        """Collect the (now globally summed) y into one global vector."""
        out = np.empty(3 * self.mesh.num_nodes, dtype=np.float64)
        for part in range(self.num_parts):
            out[self._gather_dst[part]] = y_locals[part][self._gather_src[part]]
        return out

    def multiply(self, x_global: np.ndarray) -> np.ndarray:
        """The full distributed SMVP: scatter, compute, exchange, gather.

        With a ``trace_sink`` attached, emits one
        :class:`~repro.smvp.trace.SuperstepTrace` per call; without
        one, the path reads no clock at all.
        """
        count(
            "repro_smvp_supersteps_total",
            kernel=self.kernel_name,
            backend=self.backend_name,
        )
        sink = self.trace_sink
        if sink is None:
            x_locals = self.scatter(x_global)
            y_locals = self.compute_phase(x_locals)
            y_locals, _record = self.communication_phase(y_locals)
            return self.gather(y_locals)

        step = self._superstep
        t0 = now()
        x_locals = self.scatter(x_global)
        t1 = now()
        y_locals = self.compute_phase(x_locals)
        t2 = now()
        y_locals, record = self.communication_phase(y_locals)
        t3 = now()
        y_global = self.gather(y_locals)
        t4 = now()
        sink(
            SuperstepTrace(
                t_comp=t2 - t1,
                t_comm=t3 - t2,
                t_smvp=t4 - t0,
                step=step,
                kernel=self.kernel_name,
                backend=self.backend_name,
                t_scatter=t1 - t0,
                t_gather=t4 - t3,
                words_sent=record.words_sent,
                blocks_sent=record.blocks_sent,
                faults=record.faults,
            )
        )
        return y_global

    __call__ = multiply

    def verify_against_global(
        self, global_stiffness: sp.spmatrix, rng_seed: int = 0
    ) -> float:
        """Max relative error of the distributed product vs the global one.

        Used by tests and by ``examples/quickstart.py`` to demonstrate
        correctness end to end.
        """
        rng = np.random.default_rng(rng_seed)
        x = rng.standard_normal(3 * self.mesh.num_nodes)
        y_dist = self.multiply(x)
        y_ref = global_stiffness @ x
        scale = float(np.abs(y_ref).max()) or 1.0
        return float(np.abs(y_dist - y_ref).max() / scale)
