"""A Spark98-style kernel suite.

The paper's postscript points to Spark98, "a collection of 10 portable
sequential and parallel SMVP kernels" distilled from the Quake codes.
This module is our equivalent: a registry of named end-to-end SMVP
configurations — storage format x execution style — each runnable on
any named instance, used by the T_f measurement bench and by the
``repro-measure`` CLI.

Kernel naming loosely follows Spark98 (``smv`` sequential matrix-
vector, ``lmv`` local/partitioned, ``mmv`` message-passing style):

========  =============================================================
name       meaning
========  =============================================================
smv0       sequential, CSR storage
smv1       sequential, 3x3 BSR storage
smv2       sequential, symmetric upper-triangle storage
rmv        sequential, pure-Python reference (interpreter bound)
lmv        partitioned local products only (no exchange) — the
           computation phase in isolation
mmv        full distributed SMVP with pairwise exchange (the paper's
           parallel kernel, executed in-process)
========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.fem.assembly import assemble_stiffness
from repro.fem.material import materials_from_model
from repro.mesh.core import TetMesh
from repro.mesh.instances import QuakeInstance, get_instance
from repro.partition.base import partition_mesh
from repro.smvp.executor import DistributedSMVP
from repro.telemetry.registry import count, set_gauge
from repro.util.clock import now
from repro.smvp.kernels import get_kernel


@dataclass(frozen=True)
class KernelRun:
    """Timing result for one Spark98-style kernel execution."""

    kernel: str
    instance: str
    num_parts: int
    flops: int
    seconds_per_smvp: float
    backend: str = "serial"  # execution backend (partitioned kernels)
    rhs: int = 1  # right-hand-side columns per (block) SMVP

    @property
    def tf_ns(self) -> float:
        """Amortized ns per flop (the paper's T_f).

        ``flops`` already counts every column of a block run, so tf_ns
        stays per-flop-per-column and comparable to the paper's tables
        at any ``rhs``.
        """
        return 1e9 * self.seconds_per_smvp / self.flops if self.flops else 0.0

    @property
    def mflops(self) -> float:
        return 1e3 / self.tf_ns if self.tf_ns > 0 else float("inf")


#: Sequential kernel names -> local-kernel registry names.
_SEQUENTIAL = {
    "smv0": "csr",
    "smv1": "bsr3x3",
    "smv2": "symmetric-upper",
    "rmv": "python-csr",
}

#: All suite kernel names in canonical order.
SUITE = ("smv0", "smv1", "smv2", "rmv", "lmv", "mmv")


def run_kernel(
    kernel: str,
    instance: str = "sf10e",
    num_parts: int = 8,
    repetitions: int = 3,
    partition_method: str = "rcb",
    seed: int = 0,
    backend: str = "serial",
    rhs: int = 1,
    trace_sink=None,
    profile: bool = False,
) -> KernelRun:
    """Build the instance, assemble, and time one suite kernel.

    ``num_parts`` and ``backend`` only affect the partitioned kernels
    (lmv/mmv).  Flop accounting follows the paper: 2 flops per stored
    nonzero, summed over PEs for the partitioned kernels (replicated
    shared blocks genuinely cost extra flops, as they do in the real
    codes), times ``rhs`` columns for block runs.  Kernel states are
    prepared once, before the timed loop — the measurement covers
    products, never format conversion.

    ``trace_sink`` / ``profile`` attach the superstep tracer (and the
    critical-path profiler's per-PE spans) to the ``mmv`` kernel's
    executor; the sequential and ``lmv`` kernels have no supersteps to
    trace and ignore both.
    """
    if kernel not in SUITE:
        raise ValueError(f"unknown kernel {kernel!r}; options: {SUITE}")
    if rhs < 1:
        raise ValueError("rhs must be >= 1")
    count("repro_spark98_runs_total", kernel=kernel, instance=instance)
    inst: QuakeInstance = get_instance(instance)
    mesh, _ = inst.build()
    materials = materials_from_model(mesh, inst.model())
    rng = np.random.default_rng(seed)

    if kernel in _SEQUENTIAL:
        matrix = assemble_stiffness(
            mesh, materials, fmt="bsr" if kernel == "smv1" else "csr"
        )
        k = get_kernel(_SEQUENTIAL[kernel])
        state = k.prepare(matrix)
        if rhs > 1:
            x = rng.standard_normal((matrix.shape[1], rhs))
            apply = k.apply_block
        else:
            x = rng.standard_normal(matrix.shape[1])
            apply = k.apply
        apply(state, x)  # warmup
        t0 = now()
        for _ in range(repetitions):
            apply(state, x)
        elapsed = (now() - t0) / repetitions
        set_gauge(
            "repro_spark98_seconds_per_smvp", elapsed, kernel=kernel
        )
        return KernelRun(
            kernel=kernel,
            instance=instance,
            num_parts=1,
            flops=2 * matrix.nnz * rhs,
            seconds_per_smvp=elapsed,
            rhs=rhs,
        )

    partition = partition_mesh(mesh, num_parts, method=partition_method, seed=seed)
    dist_smvp = DistributedSMVP(
        mesh,
        partition,
        materials,
        backend=backend,
        trace_sink=trace_sink if kernel == "mmv" else None,
        profile=profile,
    )
    try:
        if rhs > 1:
            x = rng.standard_normal((3 * mesh.num_nodes, rhs))
        else:
            x = rng.standard_normal(3 * mesh.num_nodes)
        x_locals = dist_smvp.scatter(x)
        flops = int(dist_smvp.flops_per_pe().sum()) * rhs
        if kernel == "lmv":
            dist_smvp.compute_phase(x_locals)  # warmup
            t0 = now()
            for _ in range(repetitions):
                dist_smvp.compute_phase(x_locals)
            elapsed = (now() - t0) / repetitions
        else:  # mmv
            dist_smvp.multiply(x)  # warmup
            t0 = now()
            for _ in range(repetitions):
                dist_smvp.multiply(x)
            elapsed = (now() - t0) / repetitions
    finally:
        dist_smvp.close()
    set_gauge("repro_spark98_seconds_per_smvp", elapsed, kernel=kernel)
    return KernelRun(
        kernel=kernel,
        instance=instance,
        num_parts=num_parts,
        flops=flops,
        seconds_per_smvp=elapsed,
        backend=dist_smvp.backend_name,
        rhs=rhs,
    )


def run_suite(
    instance: str = "sf10e",
    num_parts: int = 8,
    repetitions: int = 3,
    kernels=SUITE,
    backend: str = "serial",
    rhs: int = 1,
    trace_sink=None,
    profile: bool = False,
) -> Dict[str, KernelRun]:
    """Run several suite kernels and return their timing records."""
    return {
        k: run_kernel(
            k,
            instance=instance,
            num_parts=num_parts,
            repetitions=repetitions,
            backend=backend,
            rhs=rhs,
            trace_sink=trace_sink,
            profile=profile,
        )
        for k in kernels
    }
