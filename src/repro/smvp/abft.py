"""Algorithm-based fault tolerance (ABFT) for the superstep engine.

The exchange middleware's CRC-32 protects blocks *in flight*; a bit
that flips in a PE's local memory or arithmetic — the input vector x,
the kernel product y, or the assembled stiffness block K — is invisible
to it.  This module adds the classic Huang-Abraham checksum defense,
adapted to the paper's replicated-shared-node SMVP:

* At setup, for each PE precompute the **checksum row**
  ``w_i = c^T K_i`` with ``c = 1`` (the column sums of the local block)
  and its absolute companion ``w_abs_i = c^T |K_i|``.  Both are
  O(nnz_i), once.
* Every superstep, the invariant ``c^T y_i = w_i . x_i`` is checked in
  O(n_i): two dot products against work that cost O(nnz_i).  A
  mismatch localizes the corruption to *that PE's compute phase*.
* After the exchange, ``sum(y_i^post) = sum(y_i^pre) + sum(incoming
  payloads to i)`` re-checks each PE in O(n_i + words_i), localizing
  post-exchange memory corruption to *that PE's exchange phase*.

**Tolerance derivation.**  Both sides of the compute invariant are
n_i-term float64 sums, so their difference is bounded by the standard
worst-case rounding envelope ``gamma_n * S`` with ``gamma_n ≈ n *
eps`` and ``S = w_abs_i . |x_i|`` (which also bounds ``sum |y_i|``,
since ``|y_j| <= sum_k |K_jk| |x_k|``).  The checker uses

``tol_i = tol_factor * eps * (n_i + nnz_i/n_i) * (w_abs_i . |x_i|)``

— the extra ``nnz_i/n_i`` term covers the rounding already baked into
``w_i`` itself.  The injector (:meth:`repro.faults.FaultInjector.
sdc_site`) flips only exponent/sign bits of words within three decades
of the array's peak magnitude, so an injected flip perturbs the
checksum by at least ``peak / 2048`` — orders of magnitude above
``tol_i`` for any mesh this repo builds (the margin is ~75x even in
the degenerate flat-magnitude worst case; see DESIGN.md §11).  Flips
*below* the rounding envelope are numerically indistinguishable from
legitimate rounding and are excluded from the fault model by
construction.

Input (x) corruption cannot be caught by the product invariant — a
correct product of a wrong input is self-consistent — so local inputs
are guarded by an exact CRC-32 snapshot taken at scatter time and
re-verified immediately before compute; recovery is a re-scatter from
the authoritative global vector.

Matrix (K) corruption is modeled *virtually*: the executor records the
flipped word and applies the rank-1 update ``y[row] += (new - old) *
x[col]`` after every compute until the record is scrubbed.  The
authoritative assembled block is never mutated — backend-prepared
states (which may alias it, or live in worker processes) stay clean,
so all three backends observe the identical poisoned product and the
identical healed bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence

import numpy as np
import scipy.sparse as sp

#: Default multiplier on the worst-case rounding envelope.
DEFAULT_TOL_FACTOR = 4.0

#: float64 machine epsilon.
_EPS = float(np.finfo(np.float64).eps)


@dataclass(frozen=True)
class SdcEvent:
    """One observed step of an SDC's lifecycle, for blame reporting.

    ``action`` is one of ``"injected"``, ``"detected"``,
    ``"recomputed"``, ``"repaired"``, ``"escalated"``, ``"escaped"``.
    ``phase`` is ``"input"``, ``"compute"``, or ``"exchange"``.
    ``pe`` is the current slot id; ``physical_pe`` survives eviction
    renumbering and is what chaos reports blame.
    """

    step: int
    pe: int
    physical_pe: int
    phase: str
    kind: str  # "flip-x" | "flip-y" | "flip-k" | "sticky"
    action: str
    detail: str = ""

    def blame_line(self) -> str:
        return (
            f"SDC {self.action}: superstep {self.step}, "
            f"PE {self.physical_pe} ({self.phase}, {self.kind})"
            + (f" — {self.detail}" if self.detail else "")
        )


class AbftCheck(NamedTuple):
    """Outcome of one checksum comparison.

    For a block product (n x r), ``checksum`` is the per-column
    observed sum array (r,), and ``error``/``tol`` report the column
    with the worst tolerance margin — the check fails if *any* column
    fails, so a single flipped bit in an arbitrary column is caught.
    """

    ok: bool
    error: float  # |observed - expected| (worst column for blocks)
    tol: float
    checksum: float  # sum(y) observed, reused by the exchange check


def _column_sums(matrix: sp.spmatrix) -> np.ndarray:
    return np.asarray(matrix.sum(axis=0)).ravel().astype(np.float64)


def _abs_matrix(matrix: sp.spmatrix) -> sp.spmatrix:
    out = matrix.copy()
    out.data = np.abs(out.data)
    return out


class AbftChecker:
    """Per-PE checksum rows and tolerance state for one distribution.

    Built once from the executor's authoritative local matrices
    (``prepare()`` time); costs one O(nnz) pass per PE.  The checker is
    backend-agnostic: it verifies whatever products the backend
    returns against the assembled blocks the backend was prepared
    from, so detection parity across serial / threaded / shared-memory
    is structural, not incidental.
    """

    def __init__(
        self,
        local_matrices: Sequence[sp.spmatrix],
        tol_factor: float = DEFAULT_TOL_FACTOR,
    ) -> None:
        if tol_factor <= 0:
            raise ValueError("tol_factor must be positive")
        self.tol_factor = float(tol_factor)
        self.w: List[np.ndarray] = []
        self.w_abs: List[np.ndarray] = []
        self._terms: List[float] = []
        for matrix in local_matrices:
            self.w.append(_column_sums(matrix))
            self.w_abs.append(_column_sums(_abs_matrix(matrix)))
            n = max(1, matrix.shape[0])
            self._terms.append(float(n + matrix.nnz / n))

    @property
    def num_parts(self) -> int:
        return len(self.w)

    def tol(self, pe: int, x: np.ndarray) -> float:
        """The rounding envelope for this PE at this input."""
        scale = float(self.w_abs[pe] @ np.abs(x))
        return self.tol_factor * _EPS * self._terms[pe] * scale

    def check_compute(
        self, pe: int, x: np.ndarray, y: np.ndarray
    ) -> AbftCheck:
        """Verify ``c^T y = w . x`` for one PE's local product.

        For an n x r block the invariant holds per column — expected
        ``w . X`` and observed ``Y.sum(axis=0)`` are (r,) vectors with
        per-column tolerances, and every column must pass.
        """
        if y.ndim == 2:
            expected = self.w[pe] @ x
            observed = y.sum(axis=0)
            scale = self.w_abs[pe] @ np.abs(x)
            tol_cols = self.tol_factor * _EPS * self._terms[pe] * scale
            err_cols = np.abs(observed - expected)
            ok = bool(
                np.all(np.isfinite(observed)) and np.all(err_cols <= tol_cols)
            )
            worst = int(np.argmax(err_cols - tol_cols))
            return AbftCheck(
                ok=ok,
                error=float(err_cols[worst]),
                tol=float(tol_cols[worst]),
                checksum=observed,
            )
        expected = float(self.w[pe] @ x)
        observed = float(y.sum())
        tol = self.tol(pe, x)
        err = abs(observed - expected)
        ok = bool(np.isfinite(observed) and err <= tol)
        return AbftCheck(ok=ok, error=err, tol=tol, checksum=observed)

    def check_exchange(
        self,
        pe: int,
        y_post: np.ndarray,
        pre_checksum: float,
        incoming_sum: float,
        incoming_abs: float,
        incoming_terms: int,
        x: np.ndarray,
    ) -> AbftCheck:
        """Verify one PE's post-exchange partials against the incoming
        payload checksums collected by the transport.

        For blocks, ``pre_checksum``/``incoming_sum``/``incoming_abs``
        are per-column (r,) arrays and every column must pass.
        """
        if y_post.ndim == 2:
            expected = pre_checksum + incoming_sum
            observed = y_post.sum(axis=0)
            scale = self.w_abs[pe] @ np.abs(x) + np.abs(incoming_abs)
            terms = self._terms[pe] + float(incoming_terms)
            tol_cols = self.tol_factor * _EPS * terms * scale
            err_cols = np.abs(observed - expected)
            ok = bool(
                np.all(np.isfinite(observed)) and np.all(err_cols <= tol_cols)
            )
            worst = int(np.argmax(err_cols - tol_cols))
            return AbftCheck(
                ok=ok,
                error=float(err_cols[worst]),
                tol=float(tol_cols[worst]),
                checksum=observed,
            )
        expected = pre_checksum + incoming_sum
        observed = float(y_post.sum())
        scale = float(self.w_abs[pe] @ np.abs(x)) + abs(incoming_abs)
        terms = self._terms[pe] + float(incoming_terms)
        tol = self.tol_factor * _EPS * terms * scale
        err = abs(observed - expected)
        ok = bool(np.isfinite(observed) and err <= tol)
        return AbftCheck(ok=ok, error=err, tol=tol, checksum=observed)


def nnz_coords(matrix: sp.spmatrix, word: int) -> "tuple[int, int]":
    """(row, col) dof coordinates of flat data word ``word``.

    Supports the two assembled formats the kernels prefer: CSR (one
    data word per nonzero) and BSR with 3x3 blocks (nine data words
    per stored block, row-major within the block).
    """
    if sp.isspmatrix_csr(matrix):
        row = int(np.searchsorted(matrix.indptr, word, side="right") - 1)
        col = int(matrix.indices[word])
        return row, col
    if sp.isspmatrix_bsr(matrix):
        br, bc = matrix.blocksize
        block, offset = divmod(word, br * bc)
        r, c = divmod(offset, bc)
        brow = int(
            np.searchsorted(matrix.indptr, block, side="right") - 1
        )
        return brow * br + r, int(matrix.indices[block]) * bc + c
    raise TypeError(
        f"unsupported sparse format {type(matrix).__name__} for "
        "ABFT matrix-corruption bookkeeping"
    )


@dataclass
class MatrixCorruption:
    """One live (unscrubbed) bit-flip in a PE's assembled block.

    The executor applies ``y[row] += (new - old) * x[col]`` after every
    compute while the record is live, so the poisoned product is
    bit-identical across backends without mutating any prepared state.
    """

    word: int
    bit: int
    old: float
    new: float
    row: int
    col: int
    step: int  # superstep the flip was injected


def verify_flops_per_pe(
    distribution, schedule=None
) -> np.ndarray:
    """Modeled per-PE flop cost of the ABFT checks, for ``T_verify``.

    Per superstep each PE pays two O(n_i) dot products plus one
    O(n_i) magnitude pass for the compute check, one O(n_i) re-sum for
    the exchange check (~ 4 flops per local dof with 3 dofs per node),
    and ~2 flops per incoming exchange word for the payload checksums.
    """
    nodes = distribution.local_counts["nodes"].astype(np.float64)
    flops = 4.0 * 3.0 * nodes
    if schedule is not None:
        flops = flops + 2.0 * np.asarray(
            schedule.words_per_pe, dtype=np.float64
        )
    return flops
