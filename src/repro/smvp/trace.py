"""Per-superstep instrumentation records.

One superstep = one distributed SMVP: a compute phase (local products)
and a communication phase (pairwise exchange-and-sum).  Both the *real*
executor (:class:`~repro.smvp.executor.DistributedSMVP`) and the BSP
*simulator* (:class:`~repro.simulate.bsp.BspSimulator`) describe a
superstep by the same three numbers — compute time, communication
time, total — so the shared fields live here, in one dataclass, and
each side extends it with what only it knows:

* :class:`PhaseBreakdown` — the common core (t_comp / t_comm / t_smvp
  plus the paper's efficiency definition).
* :class:`SuperstepTrace` — emitted by the executor: measured wall
  times per phase (via :mod:`repro.util.clock`), per-PE traffic, fault
  stats, and which kernel/backend ran it.
* ``PhaseTimes`` (in :mod:`repro.simulate.bsp`) — the simulator's
  modeled times, extending the same core.

A *trace sink* is any callable ``(SuperstepTrace) -> None``; attach one
to the executor (``trace_sink=``) or pass it through the time stepper's
``run(..., trace_sink=...)``.  :class:`TraceLog` is the standard sink:
it collects traces and renders the per-step table / JSON behind the
``repro-trace`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.faults.detection import FaultStats
from repro.profile.spans import SuperstepSpans

#: Current trace-log JSON schema.  Version 2 added ``schema_version``
#: itself, the ``rhs`` field (PR 8), and the optional ``pe_spans``
#: profiler payload; readers accept 1 and 2 and reject anything newer
#: with a clear error.
TRACE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class PhaseBreakdown:
    """Shared timing core of one superstep (measured or modeled)."""

    t_comp: float  # computation-phase time (seconds)
    t_comm: float  # communication-phase time (seconds)
    t_smvp: float  # total superstep time (seconds)

    @property
    def efficiency(self) -> float:
        """T_comp / T_smvp, the paper's efficiency definition."""
        return self.t_comp / self.t_smvp if self.t_smvp > 0 else 1.0


@dataclass(frozen=True)
class SuperstepTrace(PhaseBreakdown):
    """Measured record of one executed superstep.

    Wall times come from :mod:`repro.util.clock`; traffic counts are
    the executor's actual words/blocks (retransmits included when a
    fault injector is active).  ``t_smvp`` covers the full scatter /
    compute / exchange / gather cycle, so ``t_smvp >= t_scatter +
    t_comp + t_comm + t_gather`` up to clock resolution.
    """

    step: int
    kernel: str
    backend: str
    t_scatter: float
    t_gather: float
    words_sent: np.ndarray  # per PE, this superstep
    blocks_sent: np.ndarray  # per PE, this superstep
    faults: Optional[FaultStats] = None  # None on the fault-free path
    t_verify: float = 0.0  # ABFT check/heal time (0.0 when disabled)
    rhs: int = 1  # right-hand-side columns per superstep (block width)
    #: Profiler span payload (``profile=True`` only); ``None`` keeps
    #: the trace byte-identical to the unprofiled schema.
    pe_spans: Optional[SuperstepSpans] = None

    @property
    def total_words(self) -> int:
        return int(self.words_sent.sum())

    @property
    def total_blocks(self) -> int:
        return int(self.blocks_sent.sum())

    def to_dict(self) -> dict:
        """JSON-ready representation (arrays become lists)."""
        out = {
            "step": self.step,
            "kernel": self.kernel,
            "backend": self.backend,
            "t_scatter": self.t_scatter,
            "t_comp": self.t_comp,
            "t_comm": self.t_comm,
            "t_gather": self.t_gather,
            "t_smvp": self.t_smvp,
            "t_verify": self.t_verify,
            "rhs": self.rhs,
            "words_sent": [int(w) for w in self.words_sent],
            "blocks_sent": [int(b) for b in self.blocks_sent],
        }
        if self.faults is not None:
            out["faults"] = {
                name: getattr(self.faults, name)
                for name in self.faults.__dataclass_fields__
            }
        if self.pe_spans is not None:
            out["pe_spans"] = self.pe_spans.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SuperstepTrace":
        """Inverse of :meth:`to_dict` (lists become arrays again)."""
        faults = None
        if "faults" in data and data["faults"] is not None:
            faults = FaultStats(**data["faults"])
        pe_spans = None
        if data.get("pe_spans") is not None:
            pe_spans = SuperstepSpans.from_dict(data["pe_spans"])
        return cls(
            step=int(data["step"]),
            kernel=data["kernel"],
            backend=data["backend"],
            t_scatter=float(data["t_scatter"]),
            t_comp=float(data["t_comp"]),
            t_comm=float(data["t_comm"]),
            t_gather=float(data["t_gather"]),
            t_smvp=float(data["t_smvp"]),
            t_verify=float(data.get("t_verify", 0.0)),
            rhs=int(data.get("rhs", 1)),
            words_sent=np.asarray(data["words_sent"], dtype=np.int64),
            blocks_sent=np.asarray(data["blocks_sent"], dtype=np.int64),
            faults=faults,
            pe_spans=pe_spans,
        )


#: Anything that accepts a trace is a sink.
TraceSink = Callable[[SuperstepTrace], None]


class TraceLog:
    """The standard trace sink: collect, summarize, render.

    >>> log = TraceLog()
    >>> smvp = DistributedSMVP(..., trace_sink=log)
    >>> stepper.run(100)
    >>> print(log.render_table())
    """

    def __init__(self) -> None:
        self.traces: List[SuperstepTrace] = []

    def __call__(self, trace: SuperstepTrace) -> None:
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    def summary(self) -> dict:
        """Aggregate totals over all recorded supersteps."""
        n = len(self.traces)
        if n == 0:
            return {"steps": 0}
        faults = None
        for t in self.traces:
            if t.faults is not None:
                faults = t.faults if faults is None else faults.merge(t.faults)
        out = {
            "steps": n,
            "kernel": self.traces[-1].kernel,
            "backend": self.traces[-1].backend,
            "t_comp_total": float(sum(t.t_comp for t in self.traces)),
            "t_comm_total": float(sum(t.t_comm for t in self.traces)),
            "t_smvp_total": float(sum(t.t_smvp for t in self.traces)),
            "t_verify_total": float(sum(t.t_verify for t in self.traces)),
            "words_total": sum(t.total_words for t in self.traces),
            "blocks_total": sum(t.total_blocks for t in self.traces),
        }
        if faults is not None:
            out["faults"] = {
                name: getattr(faults, name)
                for name in faults.__dataclass_fields__
            }
        return out

    def render_table(self) -> str:
        """Fixed-width per-step table plus a totals row."""
        header = (
            f"{'step':>5} {'backend':<13} {'kernel':<16} "
            f"{'t_comp ms':>10} {'t_comm ms':>10} {'t_smvp ms':>10} "
            f"{'eff':>5} {'words':>9} {'blocks':>7} {'faults':>7}"
        )
        lines = [header, "-" * len(header)]
        for t in self.traces:
            n_faults = (
                "-"
                if t.faults is None
                else str(
                    t.faults.injected_drops
                    + t.faults.injected_corruptions
                    + t.faults.injected_duplicates
                )
            )
            lines.append(
                f"{t.step:>5} {t.backend:<13} {t.kernel:<16} "
                f"{1e3 * t.t_comp:>10.3f} {1e3 * t.t_comm:>10.3f} "
                f"{1e3 * t.t_smvp:>10.3f} {t.efficiency:>5.2f} "
                f"{t.total_words:>9} {t.total_blocks:>7} {n_faults:>7}"
            )
        s = self.summary()
        if self.traces:
            lines.append("-" * len(header))
            lines.append(
                f"{'total':>5} {s['backend']:<13} {s['kernel']:<16} "
                f"{1e3 * s['t_comp_total']:>10.3f} "
                f"{1e3 * s['t_comm_total']:>10.3f} "
                f"{1e3 * s['t_smvp_total']:>10.3f} {'':>5} "
                f"{s['words_total']:>9} {s['blocks_total']:>7}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report: per-step records plus the summary."""
        return json.dumps(
            {
                "version": 1,
                "schema_version": TRACE_SCHEMA_VERSION,
                "summary": self.summary(),
                "supersteps": [t.to_dict() for t in self.traces],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TraceLog":
        """Rebuild a log from :meth:`render_json` output.

        Accepts ``schema_version`` 1 and 2; payloads without one fall
        back to the legacy ``version`` key (which was always 1).
        Anything newer is rejected — a future writer's fields would be
        silently dropped otherwise.
        """
        payload = json.loads(text)
        schema = payload.get("schema_version")
        if schema is not None:
            if schema not in (1, TRACE_SCHEMA_VERSION):
                raise ValueError(
                    f"unsupported trace log version {schema!r} "
                    f"(expected <= {TRACE_SCHEMA_VERSION})"
                )
        else:
            version = payload.get("version")
            if version != 1:
                raise ValueError(
                    f"unsupported trace log version {version!r} "
                    f"(expected 1)"
                )
        log = cls()
        for record in payload.get("supersteps", []):
            log(SuperstepTrace.from_dict(record))
        return log
