"""Communication schedule for the SMVP exchange phase.

Once per SMVP, every pair of PEs sharing mesh nodes exchanges one
message each way carrying the partial y values for the shared nodes
(3 words — the x, y, z degrees of freedom — per node, 64-bit words).
The paper's per-PE model quantities fall straight out of the schedule:

* ``C_i`` — words transferred (sent plus received) by PE i,
* ``B_i`` — blocks (messages sent plus received) by PE i,
* ``C_max``, ``B_max`` — their maxima over PEs,
* ``M_avg`` — total volume over total messages (the paper's average
  message size),
* the (p, p) word matrix ``m_ij`` used for bisection volume.

Every message from i to j is matched by one from j to i of equal
length, so all ``C_i`` are even, and divisible by 3 (three degrees of
freedom) — the invariants the paper points out under Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.smvp.distribution import DataDistribution

#: Degrees of freedom (vector words) per mesh node.
WORDS_PER_NODE = 3

#: Bytes per 64-bit communication word.
BYTES_PER_WORD = 8


@dataclass(frozen=True)
class Message:
    """One directed block transfer in the exchange phase."""

    src: int
    dst: int
    nodes: int  # shared node count carried

    @property
    def words(self) -> int:
        return WORDS_PER_NODE * self.nodes

    @property
    def bytes(self) -> int:
        return BYTES_PER_WORD * self.words


class CommSchedule:
    """Per-SMVP communication schedule and its summary statistics."""

    def __init__(self, distribution: DataDistribution) -> None:
        self.distribution = distribution

    @property
    def num_parts(self) -> int:
        return self.distribution.num_parts

    @cached_property
    def messages(self) -> List[Message]:
        """All directed messages, both directions of every sharing pair."""
        out = []
        for (a, b), nodes in self.distribution.pair_shared_nodes.items():
            count = len(nodes)
            out.append(Message(src=a, dst=b, nodes=count))
            out.append(Message(src=b, dst=a, nodes=count))
        return out

    @cached_property
    def word_matrix(self) -> np.ndarray:
        """(p, p) dense array: words sent from PE i to PE j.

        Symmetric by construction; zero diagonal.  This is the matrix
        ``m`` of the paper's Section 4.2 bisection computation.
        """
        p = self.num_parts
        mat = np.zeros((p, p), dtype=np.int64)
        for msg in self.messages:
            mat[msg.src, msg.dst] = msg.words
        return mat

    @cached_property
    def words_per_pe(self) -> np.ndarray:
        """C_i: words sent plus received by each PE."""
        mat = self.word_matrix
        return mat.sum(axis=0) + mat.sum(axis=1)

    @cached_property
    def blocks_per_pe(self) -> np.ndarray:
        """B_i: messages sent plus received by each PE (maximal blocks)."""
        mat = self.word_matrix
        nonzero = mat > 0
        return (nonzero.sum(axis=0) + nonzero.sum(axis=1)).astype(np.int64)

    @cached_property
    def incoming_per_pe(self) -> np.ndarray:
        """Messages *received* by each PE per exchange (its queue depth).

        Every partial-sum block targeting a PE lands around the same
        time, so this is the depth of the receive queue each incoming
        message must be matched against — the quantity the queue-search
        contention model of Bienz, Gropp & Olson charges for.  Equal to
        half of ``blocks_per_pe`` (every pair exchanges both ways).
        """
        return (self.word_matrix > 0).sum(axis=0).astype(np.int64)

    @property
    def q_max(self) -> int:
        """Maximum incoming messages queued at any PE per exchange."""
        return int(self.incoming_per_pe.max()) if self.num_parts else 0

    @property
    def c_max(self) -> int:
        """Maximum words communicated by any PE."""
        return int(self.words_per_pe.max()) if self.num_parts else 0

    @property
    def b_max(self) -> int:
        """Maximum blocks communicated by any PE."""
        return int(self.blocks_per_pe.max()) if self.num_parts else 0

    @property
    def total_words(self) -> int:
        """Total words crossing the network per SMVP (all PEs)."""
        return int(self.word_matrix.sum())

    @property
    def total_blocks(self) -> int:
        """Total messages per SMVP."""
        return len(self.messages)

    @property
    def m_avg(self) -> float:
        """Average message size in words (total volume / total messages)."""
        blocks = self.total_blocks
        return self.total_words / blocks if blocks else 0.0

    def neighbors_of(self, part: int) -> np.ndarray:
        """PEs that exchange messages with ``part``, ascending."""
        mat = self.word_matrix
        return np.flatnonzero(mat[part] > 0)

    def exchange_rounds(self) -> List[List[Tuple[int, int]]]:
        """BSP-safe round structure: a greedy edge coloring of the pairs.

        Returns a list of rounds, each a list of unordered PE pairs
        ``(a, b)`` with ``a < b``; within a round every PE takes part
        in at most one exchange, so the blocking sendrecv pattern is
        deadlock-free by construction.  Pairs are placed first-fit in
        sorted order, which makes the round assignment deterministic —
        the property the ``schedule-invariant`` checker and the
        ``REPRO_CONTRACTS=1`` runtime contract verify.
        """
        pairs = sorted(self.distribution.pair_shared_nodes)
        rounds: List[List[Tuple[int, int]]] = []
        busy: List[set] = []
        for a, b in pairs:
            for index, members in enumerate(busy):
                if a not in members and b not in members:
                    rounds[index].append((a, b))
                    members.update((a, b))
                    break
            else:
                rounds.append([(a, b)])
                busy.append({a, b})
        return rounds

    def bisection_words(self, boundary: int = -1) -> int:
        """Words crossing the PE-number bisection per SMVP.

        Counts both directions between PEs ``< boundary`` and PEs ``>=
        boundary`` (default: p/2).  Because the recursive partitioners
        number parts by bisection, the default boundary corresponds to
        the top-level geometric cut — the paper's Section 4.2 measure.
        """
        p = self.num_parts
        if boundary < 0:
            boundary = p // 2
        if not 0 <= boundary <= p:
            raise ValueError("boundary out of range")
        mat = self.word_matrix
        return int(
            mat[:boundary, boundary:].sum() + mat[boundary:, :boundary].sum()
        )


@dataclass(frozen=True)
class ScheduleDelta:
    """How the exchange schedule's model quantities moved across a
    reconfiguration (a PE eviction or an elastic PE addition).

    Evicting a PE concentrates its rows and its shared-node traffic on
    the survivors, so ``C_max``/``B_max`` typically *rise* even though
    a PE left — the delta quantifies that against Eq. (2) and the β
    bound of :mod:`repro.stats.beta`.  ``pairs_removed`` and
    ``pairs_added`` count the communicating PE pairs that disappeared
    and appeared (in the *after* numbering, via the caller's id map) —
    both directions of the asymmetry, so a growth reconfiguration is
    reported as faithfully as an eviction.
    """

    num_parts_before: int
    num_parts_after: int
    c_max_before: int
    c_max_after: int
    b_max_before: int
    b_max_after: int
    total_words_before: int
    total_words_after: int
    beta_before: float
    beta_after: float
    q_max_before: int = 0
    q_max_after: int = 0
    pairs_removed: int = 0
    pairs_added: int = 0


def schedule_delta(
    before: CommSchedule,
    after: CommSchedule,
    id_map: Optional[Dict[int, int]] = None,
) -> ScheduleDelta:
    """Summarize the model-quantity shift between two schedules.

    ``id_map`` maps *before* PE ids to *after* ids (an eviction's
    survivor map; identity for a growth, where numbering is stable).
    Pairs with an endpoint absent from the map (the dead PE's links)
    count as removed; pairs present only in the after schedule (regrown
    adjacency, or the new PE's links) count as added.  ``None`` means
    the identity map over the before ids.
    """
    # Local import: stats builds on smvp's schedule quantities, so the
    # module-level direction must stay smvp <- stats.
    from repro.stats.beta import beta_bound

    if id_map is None:
        id_map = {pe: pe for pe in range(before.num_parts)}
    mapped_before = set()
    for a, b in before.distribution.pair_shared_nodes:
        if a in id_map and b in id_map:
            na, nb = id_map[a], id_map[b]
            mapped_before.add((min(na, nb), max(na, nb)))
    dropped = sum(
        1
        for a, b in before.distribution.pair_shared_nodes
        if a not in id_map or b not in id_map
    )
    after_pairs = set(after.distribution.pair_shared_nodes)
    return ScheduleDelta(
        num_parts_before=before.num_parts,
        num_parts_after=after.num_parts,
        c_max_before=before.c_max,
        c_max_after=after.c_max,
        b_max_before=before.b_max,
        b_max_after=after.b_max,
        total_words_before=before.total_words,
        total_words_after=after.total_words,
        beta_before=beta_bound(before.words_per_pe, before.blocks_per_pe),
        beta_after=beta_bound(after.words_per_pe, after.blocks_per_pe),
        q_max_before=before.q_max,
        q_max_after=after.q_max,
        pairs_removed=dropped + len(mapped_before - after_pairs),
        pairs_added=len(after_pairs - mapped_before),
    )
