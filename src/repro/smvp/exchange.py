"""The pairwise exchange-and-sum, as composable steps.

The paper's communication phase (Section 2.3) is one fixed data flow:
for every PE pair sharing nodes, each side sends its partial y values
for the shared nodes and adds what it receives.  This module breaks
that flow into three explicit steps so the fault protocol composes as
*middleware* instead of forking the loop:

1. :func:`build_sends` — snapshot the pre-exchange partials into
   directed send buffers (as real message passing would);
2. a *transport* delivers each directed block: :class:`CleanTransport`
   is a lossless wire, :class:`FaultMiddleware` wraps the same
   delivery in the checksum + retransmit protocol driven by a
   :class:`~repro.faults.FaultInjector`;
3. :func:`apply_sends` — sum every delivered payload into the
   receiver's partial, in deterministic (pair, direction) order.

:func:`run_exchange` composes the three.  With the clean transport the
resulting bits are identical to the historical in-executor loop — the
send construction order, payload copies, and summation order are all
preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.ownership import exchange_phase, reads_ghosts
from repro.faults.detection import FaultStats, block_checksum, verify_block
from repro.faults.errors import ExchangeFaultError
from repro.faults.injector import BlockFault, FaultInjector
from repro.telemetry.registry import get_registry, record_fault_stats


@dataclass(frozen=True)
class ExchangeRecord:
    """Observed traffic for one executed SMVP (sanity-checkable against
    the static schedule).

    With fault injection active, ``words_sent``/``blocks_sent`` count
    every transmission that actually happened — retransmits and
    duplicates included — so they can exceed the static schedule; the
    ``faults`` tally explains exactly by how much and why.
    """

    words_sent: np.ndarray  # per PE
    blocks_sent: np.ndarray  # per PE
    faults: Optional[FaultStats] = None  # None on the fault-free path


@dataclass(frozen=True)
class BlockSend:
    """One directed block: PE ``src`` owes PE ``dst`` these partials.

    ``dof_dst`` are the destination-local dof indices the payload sums
    into; ``payload`` is a snapshot of the sender's partials (its own
    copy — later mutation of the sender's vector cannot leak in).
    """

    src: int
    dst: int
    dof_dst: np.ndarray
    payload: np.ndarray


#: One shared-node pair: (part_a, part_b, local node indices on a, on b).
PairTable = Sequence[Tuple[int, int, np.ndarray, np.ndarray]]


@reads_ghosts("y_locals")
def build_sends(y_locals: List[np.ndarray], pairs: PairTable) -> List[BlockSend]:
    """Snapshot the directed send buffers for every sharing pair.

    Order is deterministic and load-bearing: for each pair ``(a, b)``
    the a→b block precedes the b→a block, and pairs appear in table
    order — the summation order downstream reproduces the historical
    executor loop bit for bit.
    """
    sends: List[BlockSend] = []
    for a, b, ia, ib in pairs:
        dof_a = (3 * ia[:, None] + np.arange(3)).ravel()
        dof_b = (3 * ib[:, None] + np.arange(3)).ravel()
        sends.append(BlockSend(a, b, dof_b, y_locals[a][dof_a].copy()))
        sends.append(BlockSend(b, a, dof_a, y_locals[b][dof_b].copy()))
    return sends


@exchange_phase("y_locals")
def apply_sends(
    y_locals: List[np.ndarray], delivered: Sequence[Tuple[BlockSend, np.ndarray]]
) -> List[np.ndarray]:
    """Sum every delivered payload into its receiver, in order."""
    for send, payload in delivered:
        y_locals[send.dst][send.dof_dst] += payload
    return y_locals


class CleanTransport:
    """Lossless delivery: every block arrives intact on the first try."""

    def transmit(
        self,
        send: BlockSend,
        step: int,
        stats: Optional[FaultStats],
        words_sent: np.ndarray,
        blocks_sent: np.ndarray,
    ) -> np.ndarray:
        words_sent[send.src] += send.payload.size
        blocks_sent[send.src] += 1
        return send.payload

    def make_stats(self) -> Optional[FaultStats]:
        """Per-exchange stats object (clean wire keeps none)."""
        return None


class FaultMiddleware:
    """Checksum + retransmit protocol around an injected-fault wire.

    Every directed block runs a small reliability protocol: the sender
    computes a CRC-32 over the payload; the injector may drop the block
    (detected by the receiver's timeout against the static schedule —
    it knows what it is owed), flip a bit in flight (detected by the
    checksum), or deliver it twice (deduplicated by sequence id, i.e.
    applied once).  Failed deliveries are retransmitted from the
    sender's still-intact partial, so the summed result is bit-identical
    to the clean transport whenever recovery succeeds.

    ``quarantined`` PEs have their links circuit-broken: blocks
    touching one are routed over the verified control channel instead
    of the flaky wire (no fault draws, one clean transmission), the
    resilience supervisor's intermediate escalation between
    retry-with-backoff and eviction.
    """

    def __init__(
        self,
        injector: FaultInjector,
        quarantined: Optional[frozenset] = None,
    ) -> None:
        self.injector = injector
        self.quarantined = frozenset(quarantined or ())

    def make_stats(self) -> FaultStats:
        return FaultStats()

    def transmit(
        self,
        send: BlockSend,
        step: int,
        stats: FaultStats,
        words_sent: np.ndarray,
        blocks_sent: np.ndarray,
    ) -> np.ndarray:
        injector = self.injector
        src, dst, clean = send.src, send.dst, send.payload
        if src in self.quarantined or dst in self.quarantined:
            stats.quarantined_blocks += 1
            words_sent[src] += clean.size
            blocks_sent[src] += 1
            return clean.copy()
        checksum = block_checksum(clean)
        max_attempts = injector.config.max_retries + 1
        for attempt in range(max_attempts):
            if attempt > 0:
                stats.retransmits += 1
                stats.words_retransmitted += clean.size
            payload = clean.copy()
            words_sent[src] += payload.size
            blocks_sent[src] += 1
            fault = injector.block_fault(src, dst, step, attempt)
            if fault is BlockFault.DROP:
                stats.injected_drops += 1
                stats.detected_missing += 1  # receiver's timeout fires
                continue
            if fault is BlockFault.BITFLIP:
                stats.injected_corruptions += 1
                injector.corrupt(payload, src, dst, step, attempt)
            elif fault is BlockFault.DUPLICATE:
                stats.injected_duplicates += 1
                stats.duplicates_ignored += 1
                # The redundant copy is real traffic, applied zero times.
                words_sent[src] += payload.size
                blocks_sent[src] += 1
            if not verify_block(payload, checksum):
                stats.detected_corrupt += 1
                continue
            return payload
        raise ExchangeFaultError(
            f"block {src}->{dst} (superstep {step}) failed "
            f"{max_attempts} transmission attempts; raise max_retries or "
            "lower the fault rates",
            src=src,
            dst=dst,
            step=step,
        )


def make_transport(
    injector: Optional[FaultInjector],
    quarantined: Optional[frozenset] = None,
):
    """The transport an executor should use for its current injector.

    ``quarantined`` PEs (if any) get the circuit-broken verified path
    through the :class:`FaultMiddleware`; with no enabled injector the
    clean transport already never faults, so quarantine is moot.  Only
    *communication* faults (drops / in-flight bit-flips / duplicates)
    route through the middleware — an injector that only corrupts
    memory or compute (SDC) keeps the clean wire: those faults happen
    before or after the exchange, and the executor's ABFT checks, not
    the transport CRC, are the defense.
    """
    if injector is not None and injector.comm_enabled:
        return FaultMiddleware(injector, quarantined)
    return CleanTransport()


def run_exchange(
    y_locals: List[np.ndarray],
    pairs: PairTable,
    transport,
    step: int,
    num_parts: int,
    collector: Optional[List[Tuple[BlockSend, np.ndarray]]] = None,
) -> Tuple[List[np.ndarray], ExchangeRecord]:
    """Build buffers, deliver each block through the transport, sum.

    Buffers are snapshotted *before* any summation (as real message
    passing would), so nodes shared by three or more PEs receive every
    other owner's pre-exchange partial exactly once.

    ``collector``, if given, receives every delivered ``(send,
    payload)`` in application order — the executor's ABFT exchange
    check needs the incoming payloads per receiver (for checksums and
    for replaying one PE's summation during inline recovery).
    """
    words_sent = np.zeros(num_parts, dtype=np.int64)
    blocks_sent = np.zeros(num_parts, dtype=np.int64)
    stats = transport.make_stats()
    delivered = [
        (send, transport.transmit(send, step, stats, words_sent, blocks_sent))
        for send in build_sends(y_locals, pairs)
    ]
    if collector is not None:
        collector.extend(delivered)
    y_locals = apply_sends(y_locals, delivered)
    record = ExchangeRecord(words_sent, blocks_sent, faults=stats)
    if get_registry() is not None:
        _record_exchange_metrics(record)
    return y_locals, record


def _record_exchange_metrics(record: ExchangeRecord) -> None:
    """Fold one exchange's observed traffic into the installed registry."""
    reg = get_registry()
    reg.counter(
        "repro_exchange_rounds_total", "completed exchange phases"
    ).inc()
    words = reg.counter(
        "repro_exchange_words_total",
        "words sent per PE (retransmits and duplicates included)",
    )
    blocks = reg.counter(
        "repro_exchange_blocks_total",
        "blocks sent per PE (retransmits and duplicates included)",
    )
    for pe in range(len(record.words_sent)):
        words.inc(int(record.words_sent[pe]), pe=pe)
        blocks.inc(int(record.blocks_sent[pe]), pe=pe)
    if record.faults is not None:
        record_fault_stats(record.faults, "exchange")
