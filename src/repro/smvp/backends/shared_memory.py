"""The shared-memory backend: per-PE products on a process pool.

Each worker process holds its own copy of the prepared kernel states
(installed once, at pool start), so a compute phase ships only the x
vectors to the workers and the y vectors back — the closest in-process
analogue to PEs with private memories.  Float64 arrays round-trip
through pickle exactly, so results are bit-identical to ``serial``.

The pool prefers the ``fork`` start method (states are inherited for
free); where ``fork`` is unavailable the states are pickled to each
worker once at startup instead.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.smvp.backends.base import ExecutionBackend
from repro.smvp.kernels import Kernel
from repro.telemetry.registry import count
from repro.util.clock import now

#: Per-worker (kernel, states), installed by the pool initializer.
_WORKER_STATE: Optional[Tuple[Kernel, list]] = None


def _init_worker(kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (kernel, [kernel.prepare(m) for m in matrices])


def _apply_one(task: Tuple[int, np.ndarray]) -> np.ndarray:
    part, x = task
    kernel, states = _WORKER_STATE
    return kernel.apply(states[part], x)


def _apply_one_timed(
    task: Tuple[int, np.ndarray, bool]
) -> Tuple[np.ndarray, float, float]:
    """One timed product, clocked *inside* the worker process.

    ``perf_counter`` is CLOCK_MONOTONIC system-wide on Linux, so the
    worker's readings share the parent's timebase; the profiler's
    analyzer additionally clamps spans into their host window, so a
    platform with per-process timebases degrades gracefully instead of
    corrupting the attribution.
    """
    part, x, block = task
    kernel, states = _WORKER_STATE
    apply = kernel.apply_block if block else kernel.apply
    t_start = now()
    y = apply(states[part], x)
    return y, t_start, now()


def _apply_one_block(task: Tuple[int, np.ndarray]) -> np.ndarray:
    part, X = task
    kernel, states = _WORKER_STATE
    return kernel.apply_block(states[part], X)


def default_workers(num_parts: int) -> int:
    """Worker count: one per PE, capped by host cores."""
    return max(1, min(num_parts, os.cpu_count() or 1))


class SharedMemoryBackend(ExecutionBackend):
    """Per-PE products on a :class:`multiprocessing.pool.Pool`."""

    name = "shared-memory"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        self._requested_workers = workers
        self._pool = None

    def setup(self, kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
        super().setup(kernel, matrices)
        self.matrices = list(matrices)
        self.workers = self._requested_workers or default_workers(
            len(matrices)
        )

    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.kernel, self.matrices),
            )
        return self._pool

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        return pool.map(_apply_one, list(enumerate(x_locals)))

    def compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        # Ship the single product to a worker: the recompute runs on
        # the same per-worker prepared states as the full phase, and
        # float64 pickling is exact, so the bits match `compute`.
        pool = self._ensure_pool()
        return pool.apply(_apply_one, ((pe, x),))

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        return pool.map(_apply_one_block, list(enumerate(X_locals)))

    def compute_one_block(self, pe: int, X: np.ndarray) -> np.ndarray:
        pool = self._ensure_pool()
        return pool.apply(_apply_one_block, ((pe, X),))

    def compute_timed(self, x_locals, clock):
        """Pooled compute with spans clocked in the worker processes.

        ``clock`` is ignored: a closure cannot be shipped to a process
        pool, so the workers read the same audited shim
        (:func:`repro.util.clock.now`) directly.  The products come off
        the identical ``pool.map`` path as :meth:`compute` (float64
        pickling is exact), so the results are bit-identical.
        """
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        is_block = bool(x_locals) and getattr(x_locals[0], "ndim", 1) == 2
        results = pool.map(
            _apply_one_timed,
            [(pe, x, is_block) for pe, x in enumerate(x_locals)],
        )
        outs = [y for y, _, _ in results]
        windows = [(t_start, t_end) for _, t_start, t_end in results]
        return outs, windows

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
