"""The overlap backend: boundary rows first, interior rows in flight.

The paper's footnote-1 modification (and the "vector mode + overlap"
hybrid of Schubert et al.) reorders the superstep so communication and
computation overlap: each PE computes the rows of its *boundary* nodes
(shared with another PE) first, launches the exchange of those partial
sums, then computes its *interior* rows while the blocks are in
flight.  Interior rows by definition carry no shared dofs, so the
reordering cannot change any value — and because scipy's CSR/BSR
products accumulate each output row independently, a row-sliced
product is bit-identical to the corresponding rows of the full
product.  The backend therefore stays bit-identical to ``serial``
per column while exposing the split the executor needs to hide
exchange latency behind interior flops.

``setup`` prepares *both* the full per-PE states (so the standard
``compute``/``compute_block`` phases — used under ABFT, the sanitizer,
and for recovery — behave exactly like ``serial``) and, once the
executor installs the dof split via :meth:`set_row_split`, row-sliced
boundary/interior states.  Kernels whose prepared state derives from
the full matrix (``supports_row_split = False``, e.g.
``symmetric-upper``) are rejected at setup.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.smvp.backends.base import ExecutionBackend
from repro.smvp.kernels import Kernel
from repro.telemetry.registry import count


class OverlapBackend(ExecutionBackend):
    """Serial per-PE products with a boundary/interior row split."""

    name = "overlap"
    #: The executor checks this flag to route multiplies through its
    #: overlapped orchestration (boundary compute -> exchange launch ->
    #: interior compute -> join).
    supports_overlap = True

    def __init__(self) -> None:
        super().__init__()
        self.boundary_dofs: Optional[List[np.ndarray]] = None
        self.interior_dofs: Optional[List[np.ndarray]] = None
        self._boundary_states: Optional[list] = None
        self._interior_states: Optional[list] = None
        # Persistent per-PE output buffers for the split products.  A
        # fresh (n, r) allocation is mmap'd and pays first-touch page
        # faults on every superstep; reusing warm buffers removes that
        # cost from the timed path.  Reallocated only when the trailing
        # shape (vector vs r columns) changes.
        self._bbufs: Optional[List[np.ndarray]] = None
        self._ibufs: Optional[List[np.ndarray]] = None
        self._buf_tail: Optional[tuple] = None

    def setup(self, kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
        if not kernel.supports_row_split:
            raise ValueError(
                f"kernel {kernel.name!r} does not support row splitting; "
                "the overlap backend needs row-sliced boundary/interior "
                "products (use a row-major kernel such as csr or bsr3x3)"
            )
        super().setup(kernel, matrices)
        self.states = [kernel.prepare(m) for m in matrices]
        self._csr = [
            m if sp.isspmatrix_csr(m) else m.tocsr() for m in matrices
        ]

    def set_row_split(
        self,
        boundary_dofs: Sequence[np.ndarray],
        interior_dofs: Sequence[np.ndarray],
    ) -> None:
        """Install per-PE dof-row splits and build row-sliced states.

        ``boundary_dofs[p]`` / ``interior_dofs[p]`` are sorted local dof
        row indices (three per node, node-aligned so 3x3 block formats
        stay valid).  Called once by the executor at construction.
        """
        if len(boundary_dofs) != self.num_parts:
            raise ValueError("row split does not match PE count")
        self.boundary_dofs = [
            np.asarray(d, dtype=np.int64) for d in boundary_dofs
        ]
        self.interior_dofs = [
            np.asarray(d, dtype=np.int64) for d in interior_dofs
        ]
        prepare = self.kernel.prepare
        self._boundary_states = [
            prepare(csr[d]) for csr, d in zip(self._csr, self.boundary_dofs)
        ]
        self._interior_states = [
            prepare(csr[d]) for csr, d in zip(self._csr, self.interior_dofs)
        ]

    @property
    def has_row_split(self) -> bool:
        return self._boundary_states is not None

    # -- standard phases (bit-identical to serial) --------------------------

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        apply = self.kernel.apply
        return [apply(state, x) for state, x in zip(self.states, x_locals)]

    def compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        return self.kernel.apply(self.states[pe], x)

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        apply_block = self.kernel.apply_block
        return [
            apply_block(state, X) for state, X in zip(self.states, X_locals)
        ]

    def compute_one_block(self, pe: int, X: np.ndarray) -> np.ndarray:
        return self.kernel.apply_block(self.states[pe], X)

    # -- split phases (used by the executor's overlapped orchestration) -----

    def _ensure_buffers(self, tail: tuple) -> None:
        if self._buf_tail != tail:
            self._bbufs = [
                np.empty((d.size,) + tail) for d in self.boundary_dofs
            ]
            self._ibufs = [
                np.empty((d.size,) + tail) for d in self.interior_dofs
            ]
            self._buf_tail = tail

    def compute_boundary_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        """One PE's boundary rows (vector or block x).

        The returned array is a persistent backend-owned buffer — valid
        (and free for the caller to accumulate exchange deliveries
        into) until the next boundary compute for the same PE, which
        overwrites it.
        """
        self._ensure_buffers(x.shape[1:])
        state = self._boundary_states[pe]
        out = self._bbufs[pe]
        if x.ndim == 2:
            return self.kernel.apply_block_into(state, x, out)
        return self.kernel.apply_into(state, x, out)

    def compute_interior_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        """One PE's interior rows (vector or block x).

        Returns a persistent backend-owned buffer, like
        :meth:`compute_boundary_one`.
        """
        self._ensure_buffers(x.shape[1:])
        state = self._interior_states[pe]
        out = self._ibufs[pe]
        if x.ndim == 2:
            return self.kernel.apply_block_into(state, x, out)
        return self.kernel.apply_into(state, x, out)
