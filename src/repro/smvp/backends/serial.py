"""The serial backend: the historical in-process loop, bit for bit."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import scipy.sparse as sp

from repro.smvp.backends.base import ExecutionBackend
from repro.smvp.kernels import Kernel
from repro.telemetry.registry import count


class SerialBackend(ExecutionBackend):
    """Per-PE products one after another in the calling thread."""

    name = "serial"

    def setup(self, kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
        super().setup(kernel, matrices)
        self.states = [kernel.prepare(m) for m in matrices]

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        apply = self.kernel.apply
        return [apply(state, x) for state, x in zip(self.states, x_locals)]

    def compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        return self.kernel.apply(self.states[pe], x)

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        apply_block = self.kernel.apply_block
        return [
            apply_block(state, X) for state, X in zip(self.states, X_locals)
        ]

    def compute_one_block(self, pe: int, X: np.ndarray) -> np.ndarray:
        return self.kernel.apply_block(self.states[pe], X)
