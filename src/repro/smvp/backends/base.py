"""The execution-backend interface."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.smvp.kernels import Kernel
from repro.telemetry.registry import count


class ExecutionBackend:
    """Runs the compute phase: per-PE local products, one strategy.

    Lifecycle: ``setup`` once with the kernel and the per-PE local
    matrices (this is where ``Kernel.prepare`` runs — exactly once per
    PE, outside any timed region), then ``compute`` per superstep,
    then ``close``.  ``compute`` must return the per-PE products in PE
    order, bit-identical to ``[kernel.apply(state_i, x_i)]`` — backends
    change *where* the products run, never their values.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.kernel: Kernel = None  # type: ignore[assignment]
        self.num_parts = 0

    def setup(self, kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
        """Prepare per-PE kernel states (format conversion happens here)."""
        self.kernel = kernel
        self.num_parts = len(matrices)

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        """One compute phase: the per-PE products, in PE order."""
        raise NotImplementedError

    def compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        """Recompute a single PE's product (ABFT inline recovery).

        Must be bit-identical to the ``pe``-th entry of
        :meth:`compute` — same prepared state, same kernel code — so a
        recomputed superstep heals a transient corruption exactly.
        """
        raise NotImplementedError

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        """One compute phase over per-PE n x r blocks, in PE order.

        Column j of each product must be bit-identical to the
        corresponding entry of :meth:`compute` on the j-th columns —
        backends batch the traversal, never change the values.
        """
        raise NotImplementedError

    def compute_one_block(self, pe: int, X: np.ndarray) -> np.ndarray:
        """Recompute a single PE's block product (ABFT block recovery)."""
        raise NotImplementedError

    def compute_timed(
        self,
        x_locals: Sequence[np.ndarray],
        clock: Callable[[], float],
    ) -> Tuple[List[np.ndarray], List[Tuple[float, float]]]:
        """One compute phase plus per-PE ``(t_start, t_end)`` windows.

        The profiler's hook: products must be bit-identical to
        :meth:`compute` / :meth:`compute_block` (same prepared states,
        same kernel code) with each PE's span read from ``clock``
        around its own product.  This default runs the per-PE products
        sequentially in the calling thread — correct for serially
        executing backends; pooled backends override it so spans are
        read inside the worker and genuinely overlap.
        """
        count("repro_backend_compute_phases_total", backend=self.name)
        is_block = bool(x_locals) and getattr(x_locals[0], "ndim", 1) == 2
        one = self.compute_one_block if is_block else self.compute_one
        outs: List[np.ndarray] = []
        windows: List[Tuple[float, float]] = []
        for pe, x in enumerate(x_locals):
            t_start = clock()
            outs.append(one(pe, x))
            windows.append((t_start, clock()))
        return outs, windows

    def close(self) -> None:
        """Release any pools; the backend may not be used afterwards."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
