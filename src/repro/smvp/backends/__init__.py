"""Execution backends for the compute phase.

The compute phase of a superstep is an embarrassingly parallel list of
per-PE local products ``y_i = K_i @ x_i``.  How those products actually
run on the host is a *backend* decision, orthogonal to the storage
format (the kernel) and to the exchange protocol:

``serial``
    One product after another in the calling thread — the historical
    executor semantics, bit for bit.

``threaded``
    The per-PE products on a thread pool.  scipy's matvec releases the
    GIL, so on a multi-core host the compute phase genuinely speeds up
    (this is the intra-node half of hybrid MPI+OpenMP SMVP
    decompositions).  Results are ordered by PE index and bit-identical
    to ``serial`` — each product is the same code on the same data.

``shared-memory``
    The per-PE products on a process pool.  Each worker holds its own
    prepared kernel states (inherited at pool setup), so a compute call
    ships only the x vectors — the closest in-process analogue to PEs
    with private memories.

``overlap``
    Serial products with a boundary/interior row split: each PE's
    boundary rows (shared nodes) compute first, the exchange launches,
    and the interior rows compute while blocks are in flight — the
    paper's footnote-1 comm/comp overlap, bit-identical per column
    because interior rows carry no shared dofs.

Backends implement :class:`ExecutionBackend`: ``setup(kernel,
matrices)`` prepares per-PE kernel states once (format conversion
happens here, never per product), ``compute(x_locals)`` runs one
compute phase, ``close()`` releases pools.  Select one by name through
:func:`make_backend` or ``DistributedSMVP(backend=...)``.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.smvp.backends.base import ExecutionBackend
from repro.smvp.backends.overlap import OverlapBackend
from repro.smvp.backends.serial import SerialBackend
from repro.smvp.backends.shared_memory import SharedMemoryBackend
from repro.smvp.backends.threaded import ThreadedBackend

#: Name -> backend class.  Register new execution strategies here.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadedBackend.name: ThreadedBackend,
    SharedMemoryBackend.name: SharedMemoryBackend,
    OverlapBackend.name: OverlapBackend,
}


def backend_names():
    """Sorted registered backend names."""
    return sorted(BACKENDS)


def make_backend(backend, **options) -> ExecutionBackend:
    """Resolve a backend instance from a name (or pass one through).

    ``options`` (e.g. ``workers=4``) go to the backend constructor when
    resolving by name.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; options: {backend_names()}"
        ) from None
    return cls(**options)


__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "OverlapBackend",
    "SerialBackend",
    "SharedMemoryBackend",
    "ThreadedBackend",
    "backend_names",
    "make_backend",
]
