"""The threaded backend: per-PE products on a thread pool.

scipy's sparse matvec releases the GIL for the heavy loop, so on a
multi-core host the per-PE products genuinely overlap — this is the
intra-node (OpenMP) half of the hybrid MPI+OpenMP SMVP decomposition.
Each product is the same code on the same data as the serial backend,
and results are collected by PE index, so the output is bit-identical
to ``serial`` regardless of scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.smvp.backends.base import ExecutionBackend
from repro.smvp.kernels import Kernel
from repro.telemetry.registry import count


def default_workers(num_parts: int) -> int:
    """Worker count: one per PE, capped by host cores (min 2 so the
    concurrent path is exercised even on one-core hosts)."""
    return max(2, min(num_parts, os.cpu_count() or 1))


class ThreadedBackend(ExecutionBackend):
    """Per-PE products on a :class:`ThreadPoolExecutor`."""

    name = "threaded"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        self._requested_workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def setup(self, kernel: Kernel, matrices: Sequence[sp.spmatrix]) -> None:
        super().setup(kernel, matrices)
        self.states = [kernel.prepare(m) for m in matrices]
        self.workers = self._requested_workers or default_workers(
            len(matrices)
        )

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-smvp",
            )
        return self._pool

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        apply = self.kernel.apply
        return list(pool.map(apply, self.states, x_locals))

    def compute_one(self, pe: int, x: np.ndarray) -> np.ndarray:
        # Same prepared state and kernel code as the pooled path, so
        # the recomputed product is bit-identical by construction.
        return self.kernel.apply(self.states[pe], x)

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        apply_block = self.kernel.apply_block
        return list(pool.map(apply_block, self.states, X_locals))

    def compute_one_block(self, pe: int, X: np.ndarray) -> np.ndarray:
        return self.kernel.apply_block(self.states[pe], X)

    def compute_timed(self, x_locals, clock):
        """Pooled compute with per-PE spans read *inside* the workers.

        Same `pool.map` fan-out (and the same kernel code on the same
        states) as :meth:`compute`, so the products are bit-identical;
        only the clock reads around each product are new.  Reading the
        clock in the worker thread means the recorded spans genuinely
        overlap when the products do — that concurrency is exactly
        what the profiler's imbalance attribution measures.
        """
        count("repro_backend_compute_phases_total", backend=self.name)
        pool = self._ensure_pool()
        is_block = bool(x_locals) and getattr(x_locals[0], "ndim", 1) == 2
        apply = self.kernel.apply_block if is_block else self.kernel.apply

        def timed(state, x):
            t_start = clock()
            y = apply(state, x)
            return y, t_start, clock()

        results = list(pool.map(timed, self.states, x_locals))
        outs = [y for y, _, _ in results]
        windows = [(t_start, t_end) for _, t_start, t_end in results]
        return outs, windows

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
