"""Local SMVP kernels and T_f measurement.

The paper measures the *amortized time per flop* ``T_f`` of the local
SMVP on real machines (30 ns on a Cray T3D, 14 ns on a T3E) and feeds
it into the performance model.  This module provides several local
kernel implementations — the same product, different storage formats —
plus :func:`measure_tf`, which measures ``T_f`` for any of them on the
host, exactly the way the paper's Section 3.1 defines it:
``T_f = elapsed / F`` with ``F = 2 * nnz`` (one multiply and one add
per stored nonzero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np
import scipy.sparse as sp

from repro.util.clock import now

#: Signature of a local SMVP kernel: (matrix, x) -> y.
LocalKernel = Callable[[sp.spmatrix, np.ndarray], np.ndarray]


def csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Compressed sparse row product (scipy's native matvec)."""
    if not sp.isspmatrix_csr(matrix):
        matrix = matrix.tocsr()
    return matrix @ x


def bsr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Block sparse row product with 3x3 blocks.

    This mirrors the natural storage for the Quake stiffness matrix (a
    3x3 submatrix per node pair); block storage improves locality the
    same way it did on the machines the paper measured.
    """
    if not sp.isspmatrix_bsr(matrix) or matrix.blocksize != (3, 3):
        matrix = sp.bsr_matrix(matrix, blocksize=(3, 3))
    return matrix @ x


def python_csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Pure-Python CSR product (reference / worst-case interpreter T_f).

    Orders of magnitude slower than the scipy kernels; useful as a
    ground-truth oracle in tests and to demonstrate how far T_f can
    stretch on the same hardware.
    """
    if not sp.isspmatrix_csr(matrix):
        matrix = matrix.tocsr()
    indptr = matrix.indptr
    indices = matrix.indices
    data = matrix.data
    y = np.zeros(matrix.shape[0], dtype=np.float64)
    for row in range(matrix.shape[0]):
        acc = 0.0
        for k in range(indptr[row], indptr[row + 1]):
            acc += data[k] * x[indices[k]]
        y[row] = acc
    return y


def symmetric_upper_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Product using only the upper triangle of a symmetric matrix.

    Stiffness matrices are symmetric; storing one triangle halves the
    memory but performs the same 2 * nnz(full) flops.  ``matrix`` is
    the full symmetric matrix — the kernel extracts (and caches, so
    repeated timed calls measure the product, not the conversion) the
    triangular factors itself, keeping one calling convention across
    kernels.
    """
    parts = getattr(matrix, "_repro_symmetric_parts", None)
    if parts is None:
        csr = matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()
        upper = sp.triu(csr, k=0).tocsr()
        strict_lower = sp.triu(csr, k=1).T.tocsr()
        parts = (upper, strict_lower)
        try:
            matrix._repro_symmetric_parts = parts
        except AttributeError:  # some sparse types forbid attributes
            pass
    upper, strict_lower = parts
    return upper @ x + strict_lower @ x


#: Named kernel registry (measurement benches iterate over this).
KERNELS: Dict[str, LocalKernel] = {
    "csr": csr_kernel,
    "bsr3x3": bsr_kernel,
    "python-csr": python_csr_kernel,
    "symmetric-upper": symmetric_upper_kernel,
}


@dataclass(frozen=True)
class TfMeasurement:
    """Result of a T_f measurement for one kernel."""

    kernel: str
    nnz: int
    flops_per_product: int
    repetitions: int
    seconds_per_product: float
    tf_ns: float  # amortized time per flop, nanoseconds

    @property
    def mflops(self) -> float:
        """Sustained MFLOPS, the paper's headline local rate."""
        return 1e3 / self.tf_ns if self.tf_ns > 0 else float("inf")


def measure_tf(
    matrix: sp.spmatrix,
    kernel: str = "csr",
    repetitions: int = 5,
    warmup: int = 1,
    rng_seed: int = 0,
) -> TfMeasurement:
    """Measure ``T_f`` for a kernel on a given local matrix.

    The matrix should be a realistic local stiffness matrix (use
    :func:`repro.fem.assemble_stiffness`); ``F = 2 * nnz`` per product,
    following the paper's flop accounting.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; options: {sorted(KERNELS)}")
    fn = KERNELS[kernel]
    rng = np.random.default_rng(rng_seed)
    x = rng.standard_normal(matrix.shape[1])
    nnz = matrix.nnz
    flops = 2 * nnz
    for _ in range(warmup):
        fn(matrix, x)
    t0 = now()
    for _ in range(repetitions):
        fn(matrix, x)
    elapsed = now() - t0
    per_product = elapsed / repetitions
    tf_ns = 1e9 * per_product / flops if flops else float("nan")
    return TfMeasurement(
        kernel=kernel,
        nnz=nnz,
        flops_per_product=flops,
        repetitions=repetitions,
        seconds_per_product=per_product,
        tf_ns=tf_ns,
    )
