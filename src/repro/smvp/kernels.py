"""Local SMVP kernels and T_f measurement.

The paper measures the *amortized time per flop* ``T_f`` of the local
SMVP on real machines (30 ns on a Cray T3D, 14 ns on a T3E) and feeds
it into the performance model.  This module provides several local
kernel implementations — the same product, different storage formats —
plus :func:`measure_tf`, which measures ``T_f`` for any of them on the
host, exactly the way the paper's Section 3.1 defines it:
``T_f = elapsed / F`` with ``F = 2 * nnz`` (one multiply and one add
per stored nonzero).

Kernels follow a two-phase protocol (:class:`Kernel`): ``prepare``
converts/caches the matrix into the kernel's native storage once, and
``apply`` runs the product against the prepared state.  Timed regions
(``measure_tf``, the execution backends) call ``prepare`` exactly once
at setup, so what gets timed is the product — never a format
conversion.  The bare-function entry points (``csr_kernel`` & co.) and
the :data:`KERNELS` dict remain as adapters over the class kernels for
callers that want the old one-shot ``(matrix, x) -> y`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np
import scipy.sparse as sp

from repro.util.clock import now

#: Signature of a one-shot local SMVP kernel: (matrix, x) -> y.
LocalKernel = Callable[[sp.spmatrix, np.ndarray], np.ndarray]


class Kernel:
    """A local SMVP kernel: one storage format, two phases.

    ``prepare(matrix) -> state`` converts the matrix into the kernel's
    native storage (returning any opaque state object); ``apply(state,
    x) -> y`` runs the product.  ``apply`` must not convert formats,
    allocate per-call caches on the matrix, or otherwise do setup work
    — everything format-related happens in ``prepare`` so timed loops
    measure only the flops.

    ``preferred_format`` names the assembly format ("csr" or "bsr")
    that makes ``prepare`` a no-op for matrices assembled natively.
    """

    name: str = "abstract"
    preferred_format: str = "csr"

    def prepare(self, matrix: sp.spmatrix) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
        """One-shot convenience: prepare + apply (not for timed loops)."""
        return self.apply(self.prepare(matrix), x)


class CsrKernel(Kernel):
    """Compressed sparse row product (scipy's native matvec)."""

    name = "csr"
    preferred_format = "csr"

    def prepare(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()

    def apply(self, state: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        return state @ x


class Bsr3x3Kernel(Kernel):
    """Block sparse row product with 3x3 blocks.

    This mirrors the natural storage for the Quake stiffness matrix (a
    3x3 submatrix per node pair); block storage improves locality the
    same way it did on the machines the paper measured.
    """

    name = "bsr3x3"
    preferred_format = "bsr"

    def prepare(self, matrix: sp.spmatrix) -> sp.bsr_matrix:
        if sp.isspmatrix_bsr(matrix) and matrix.blocksize == (3, 3):
            return matrix
        return sp.bsr_matrix(matrix, blocksize=(3, 3))

    def apply(self, state: sp.bsr_matrix, x: np.ndarray) -> np.ndarray:
        return state @ x


class PythonCsrKernel(Kernel):
    """Pure-Python CSR product (reference / worst-case interpreter T_f).

    Orders of magnitude slower than the scipy kernels; useful as a
    ground-truth oracle in tests and to demonstrate how far T_f can
    stretch on the same hardware.
    """

    name = "python-csr"
    preferred_format = "csr"

    def prepare(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()

    def apply(self, state: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        indptr = state.indptr
        indices = state.indices
        data = state.data
        y = np.zeros(state.shape[0], dtype=np.float64)
        for row in range(state.shape[0]):
            acc = 0.0
            for k in range(indptr[row], indptr[row + 1]):
                acc += data[k] * x[indices[k]]
            y[row] = acc
        return y


class SymmetricUpperKernel(Kernel):
    """Product using only the upper triangle of a symmetric matrix.

    Stiffness matrices are symmetric; storing one triangle halves the
    memory but performs the same 2 * nnz(full) flops.  ``prepare``
    extracts the triangular factors fresh every time it runs — state
    never outlives a matrix mutation, unlike the old on-matrix
    attribute cache.
    """

    name = "symmetric-upper"
    preferred_format = "csr"

    def prepare(self, matrix: sp.spmatrix):
        csr = matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()
        upper = sp.triu(csr, k=0).tocsr()
        strict_lower = sp.triu(csr, k=1).T.tocsr()
        return (upper, strict_lower)

    def apply(self, state, x: np.ndarray) -> np.ndarray:
        upper, strict_lower = state
        return upper @ x + strict_lower @ x


#: Named kernel registry.  Register new storage formats here (or via
#: :func:`register_kernel`); every consumer — the executor, the
#: Spark98 suite, ``measure_tf``, the CLI — resolves names through
#: :func:`get_kernel`, never by poking at a dict.
KERNEL_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel) -> Kernel:
    """Add a kernel instance to the registry (name collisions rejected)."""
    if kernel.name in KERNEL_REGISTRY:
        raise ValueError(f"duplicate kernel name {kernel.name!r}")
    KERNEL_REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    """Resolve a kernel by registry name."""
    try:
        return KERNEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; options: {kernel_names()}"
        ) from None


def kernel_names():
    """Sorted registered kernel names."""
    return sorted(KERNEL_REGISTRY)


for _kernel in (
    CsrKernel(),
    Bsr3x3Kernel(),
    PythonCsrKernel(),
    SymmetricUpperKernel(),
):
    register_kernel(_kernel)
del _kernel


# -- legacy one-shot adapters -------------------------------------------------


def csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Compressed sparse row product (one-shot adapter)."""
    return KERNEL_REGISTRY["csr"](matrix, x)


def bsr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Block sparse row product with 3x3 blocks (one-shot adapter)."""
    return KERNEL_REGISTRY["bsr3x3"](matrix, x)


def python_csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Pure-Python CSR product (one-shot adapter)."""
    return KERNEL_REGISTRY["python-csr"](matrix, x)


def symmetric_upper_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Symmetric upper-triangle product (one-shot adapter with caching).

    Repeated calls on the *same, unmutated* matrix reuse the extracted
    triangular factors.  The cache is keyed on the identity of the
    matrix's data buffer plus a strided value probe, so both rebinding
    ``matrix.data`` and mutating it in place invalidate the cache — the
    stale-parts hazard of the old unconditional attribute cache.
    """
    kernel = KERNEL_REGISTRY["symmetric-upper"]
    cached = getattr(matrix, "_repro_symmetric_cache", None)
    data = getattr(matrix, "data", None)
    if data is not None and isinstance(data, np.ndarray):
        stride = max(1, data.shape[0] // 32)
        probe = data[::stride].copy()
        key = (id(data), matrix.nnz)
        if (
            cached is not None
            and cached[0] == key
            and np.array_equal(cached[1], probe)
        ):
            return kernel.apply(cached[2], x)
        state = kernel.prepare(matrix)
        try:
            matrix._repro_symmetric_cache = (key, probe, state)
        except AttributeError:  # some sparse types forbid attributes
            pass
        return kernel.apply(state, x)
    return kernel(matrix, x)


#: Named one-shot kernel registry (kept for backward compatibility;
#: prefer :func:`get_kernel` and the prepare/apply protocol).
KERNELS: Dict[str, LocalKernel] = {
    "csr": csr_kernel,
    "bsr3x3": bsr_kernel,
    "python-csr": python_csr_kernel,
    "symmetric-upper": symmetric_upper_kernel,
}


@dataclass(frozen=True)
class TfMeasurement:
    """Result of a T_f measurement for one kernel."""

    kernel: str
    nnz: int
    flops_per_product: int
    repetitions: int
    seconds_per_product: float
    tf_ns: float  # amortized time per flop, nanoseconds

    @property
    def mflops(self) -> float:
        """Sustained MFLOPS, the paper's headline local rate."""
        return 1e3 / self.tf_ns if self.tf_ns > 0 else float("inf")


def measure_tf(
    matrix: sp.spmatrix,
    kernel: str = "csr",
    repetitions: int = 5,
    warmup: int = 1,
    rng_seed: int = 0,
) -> TfMeasurement:
    """Measure ``T_f`` for a kernel on a given local matrix.

    The matrix should be a realistic local stiffness matrix (use
    :func:`repro.fem.assemble_stiffness`); ``F = 2 * nnz`` per product,
    following the paper's flop accounting.  ``prepare`` runs once,
    outside the timed region — the measurement covers the product only,
    for every kernel.
    """
    k = get_kernel(kernel)
    state = k.prepare(matrix)
    rng = np.random.default_rng(rng_seed)
    x = rng.standard_normal(matrix.shape[1])
    nnz = matrix.nnz
    flops = 2 * nnz
    for _ in range(warmup):
        k.apply(state, x)
    t0 = now()
    for _ in range(repetitions):
        k.apply(state, x)
    elapsed = now() - t0
    per_product = elapsed / repetitions
    tf_ns = 1e9 * per_product / flops if flops else float("nan")
    return TfMeasurement(
        kernel=kernel,
        nnz=nnz,
        flops_per_product=flops,
        repetitions=repetitions,
        seconds_per_product=per_product,
        tf_ns=tf_ns,
    )
