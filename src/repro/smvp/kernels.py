"""Local SMVP kernels and T_f measurement.

The paper measures the *amortized time per flop* ``T_f`` of the local
SMVP on real machines (30 ns on a Cray T3D, 14 ns on a T3E) and feeds
it into the performance model.  This module provides several local
kernel implementations — the same product, different storage formats —
plus :func:`measure_tf`, which measures ``T_f`` for any of them on the
host, exactly the way the paper's Section 3.1 defines it:
``T_f = elapsed / F`` with ``F = 2 * nnz`` (one multiply and one add
per stored nonzero).

Kernels follow a two-phase protocol (:class:`Kernel`): ``prepare``
converts/caches the matrix into the kernel's native storage once, and
``apply`` runs the product against the prepared state.  Timed regions
(``measure_tf``, the execution backends) call ``prepare`` exactly once
at setup, so what gets timed is the product — never a format
conversion.  The bare-function entry points (``csr_kernel`` & co.) and
the :data:`KERNELS` dict remain as adapters over the class kernels for
callers that want the old one-shot ``(matrix, x) -> y`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np
import scipy.sparse as sp
from scipy.sparse import _sparsetools

from repro.util.clock import now

#: Signature of a one-shot local SMVP kernel: (matrix, x) -> y.
LocalKernel = Callable[[sp.spmatrix, np.ndarray], np.ndarray]


class Kernel:
    """A local SMVP kernel: one storage format, two phases.

    ``prepare(matrix) -> state`` converts the matrix into the kernel's
    native storage (returning any opaque state object); ``apply(state,
    x) -> y`` runs the product.  ``apply`` must not convert formats,
    allocate per-call caches on the matrix, or otherwise do setup work
    — everything format-related happens in ``prepare`` so timed loops
    measure only the flops.

    ``preferred_format`` names the assembly format ("csr" or "bsr")
    that makes ``prepare`` a no-op for matrices assembled natively.

    Kernels may also accept an n x r *block* of right-hand sides
    (``apply_block``), amortizing one matrix traversal over r columns.
    ``supports_block`` declares that the kernel has a native block
    product whose column j is bit-identical to ``apply(state, X[:,
    j])``; the base-class fallback loops over columns, which guarantees
    the same property for any kernel.  ``supports_row_split`` declares
    that ``prepare`` on a row-sliced submatrix yields exactly the
    corresponding rows of the full product (true for row-major formats,
    false for kernels whose state derives from the full matrix shape,
    e.g. triangular splits) — the overlap backend needs it to compute
    boundary and interior rows separately.
    """

    name: str = "abstract"
    preferred_format: str = "csr"
    supports_block: bool = False
    supports_row_split: bool = True

    def prepare(self, matrix: sp.spmatrix) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def apply_block(self, state: Any, X: np.ndarray) -> np.ndarray:
        """Product against an n x r block of right-hand sides.

        Column j of the result is bit-identical to ``apply(state, X[:,
        j])`` — block-capable kernels override this with a native block
        product that has the same property; this fallback computes the
        columns one by one.
        """
        Y = np.empty((state_rows(state), X.shape[1]), dtype=np.float64)
        for j in range(X.shape[1]):
            Y[:, j] = self.apply(state, X[:, j])
        return Y

    def apply_into(self, state: Any, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``apply`` into a caller-owned buffer (bit-identical result).

        Buffer-reusing callers (the overlap backend's persistent split
        buffers) pass the same ``out`` every superstep, so the output
        pages stay resident instead of being faulted in fresh on every
        allocation.  The fallback computes normally and copies.
        """
        out[...] = self.apply(state, x)
        return out

    def apply_block_into(
        self, state: Any, X: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``apply_block`` into a caller-owned buffer (bit-identical)."""
        out[...] = self.apply_block(state, X)
        return out

    def __call__(self, matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
        """One-shot convenience: prepare + apply (not for timed loops)."""
        return self.apply(self.prepare(matrix), x)


def state_rows(state: Any) -> int:
    """Output row count of a prepared kernel state."""
    if isinstance(state, tuple):  # e.g. (upper, strict_lower)
        return state[0].shape[0]
    return state.shape[0]


class CsrKernel(Kernel):
    """Compressed sparse row product (scipy's native matvec)."""

    name = "csr"
    preferred_format = "csr"
    supports_block = True

    def prepare(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()

    def apply(self, state: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        return state @ x

    def apply_block(self, state: sp.csr_matrix, X: np.ndarray) -> np.ndarray:
        # scipy's CSR SpMM accumulates each output entry in row-major
        # order, exactly like its matvec, so columns are bit-identical
        # to per-column apply.
        return state @ X

    def apply_into(
        self, state: sp.csr_matrix, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        # csr_matvec accumulates into out, so zero it first; the
        # per-row summation order is exactly what `state @ x` runs.
        if not x.flags.c_contiguous:
            return super().apply_into(state, x, out)
        out.fill(0.0)
        n_row, n_col = state.shape
        _sparsetools.csr_matvec(
            n_row, n_col, state.indptr, state.indices, state.data, x, out
        )
        return out

    def apply_block_into(
        self, state: sp.csr_matrix, X: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        # Same SpMM loop scipy runs for `state @ X`, minus the fresh
        # output allocation (first-touch page faults dominate the r=16
        # product on large instances).  csr_matvecs accumulates into
        # out, so zero it first — the axpy order per output entry is
        # unchanged, keeping columns bit-identical to apply_block.
        if not X.flags.c_contiguous:
            return super().apply_block_into(state, X, out)
        out.fill(0.0)
        n_row, n_col = state.shape
        _sparsetools.csr_matvecs(
            n_row,
            n_col,
            X.shape[1],
            state.indptr,
            state.indices,
            state.data,
            X.ravel(),
            out.ravel(),
        )
        return out


class Bsr3x3Kernel(Kernel):
    """Block sparse row product with 3x3 blocks.

    This mirrors the natural storage for the Quake stiffness matrix (a
    3x3 submatrix per node pair); block storage improves locality the
    same way it did on the machines the paper measured.
    """

    name = "bsr3x3"
    preferred_format = "bsr"
    supports_block = True

    def prepare(self, matrix: sp.spmatrix) -> sp.bsr_matrix:
        if sp.isspmatrix_bsr(matrix) and matrix.blocksize == (3, 3):
            return matrix
        return sp.bsr_matrix(matrix, blocksize=(3, 3))

    def apply(self, state: sp.bsr_matrix, x: np.ndarray) -> np.ndarray:
        return state @ x

    def apply_block(self, state: sp.bsr_matrix, X: np.ndarray) -> np.ndarray:
        return state @ X


class PythonCsrKernel(Kernel):
    """Pure-Python CSR product (reference / worst-case interpreter T_f).

    Orders of magnitude slower than the scipy kernels; useful as a
    ground-truth oracle in tests and to demonstrate how far T_f can
    stretch on the same hardware.
    """

    name = "python-csr"
    preferred_format = "csr"

    def prepare(self, matrix: sp.spmatrix) -> sp.csr_matrix:
        return matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()

    def apply(self, state: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        indptr = state.indptr
        indices = state.indices
        data = state.data
        y = np.zeros(state.shape[0], dtype=np.float64)
        for row in range(state.shape[0]):
            acc = 0.0
            for k in range(indptr[row], indptr[row + 1]):
                acc += data[k] * x[indices[k]]
            y[row] = acc
        return y


class SymmetricUpperKernel(Kernel):
    """Product using only the upper triangle of a symmetric matrix.

    Stiffness matrices are symmetric; storing one triangle halves the
    memory but performs the same 2 * nnz(full) flops.  ``prepare``
    extracts the triangular factors fresh every time it runs — state
    never outlives a matrix mutation, unlike the old on-matrix
    attribute cache.
    """

    name = "symmetric-upper"
    preferred_format = "csr"
    supports_block = True
    # The prepared state is a triangular split of the *full* local
    # matrix; preparing a row-sliced submatrix takes the triangle of
    # the slice instead, which is a different product entirely.
    supports_row_split = False

    def prepare(self, matrix: sp.spmatrix):
        csr = matrix if sp.isspmatrix_csr(matrix) else matrix.tocsr()
        upper = sp.triu(csr, k=0).tocsr()
        strict_lower = sp.triu(csr, k=1).T.tocsr()
        return (upper, strict_lower)

    def apply(self, state, x: np.ndarray) -> np.ndarray:
        upper, strict_lower = state
        return upper @ x + strict_lower @ x

    def apply_block(self, state, X: np.ndarray) -> np.ndarray:
        upper, strict_lower = state
        return upper @ X + strict_lower @ X


#: Named kernel registry.  Register new storage formats here (or via
#: :func:`register_kernel`); every consumer — the executor, the
#: Spark98 suite, ``measure_tf``, the CLI — resolves names through
#: :func:`get_kernel`, never by poking at a dict.
KERNEL_REGISTRY: Dict[str, Kernel] = {}


def register_kernel(kernel: Kernel) -> Kernel:
    """Add a kernel instance to the registry (name collisions rejected)."""
    if kernel.name in KERNEL_REGISTRY:
        raise ValueError(f"duplicate kernel name {kernel.name!r}")
    KERNEL_REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    """Resolve a kernel by registry name."""
    try:
        return KERNEL_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; options: {kernel_names()}"
        ) from None


def kernel_names():
    """Sorted registered kernel names."""
    return sorted(KERNEL_REGISTRY)


for _kernel in (
    CsrKernel(),
    Bsr3x3Kernel(),
    PythonCsrKernel(),
    SymmetricUpperKernel(),
):
    register_kernel(_kernel)
del _kernel


# -- legacy one-shot adapters -------------------------------------------------


def csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Compressed sparse row product (one-shot adapter)."""
    return KERNEL_REGISTRY["csr"](matrix, x)


def bsr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Block sparse row product with 3x3 blocks (one-shot adapter)."""
    return KERNEL_REGISTRY["bsr3x3"](matrix, x)


def python_csr_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Pure-Python CSR product (one-shot adapter)."""
    return KERNEL_REGISTRY["python-csr"](matrix, x)


def symmetric_upper_kernel(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Symmetric upper-triangle product (one-shot adapter with caching).

    Repeated calls on the *same, unmutated* matrix reuse the extracted
    triangular factors.  The cache is keyed on the identity of the
    matrix's data buffer plus a strided value probe, so both rebinding
    ``matrix.data`` and mutating it in place invalidate the cache — the
    stale-parts hazard of the old unconditional attribute cache.
    """
    kernel = KERNEL_REGISTRY["symmetric-upper"]
    cached = getattr(matrix, "_repro_symmetric_cache", None)
    data = getattr(matrix, "data", None)
    if data is not None and isinstance(data, np.ndarray):
        stride = max(1, data.shape[0] // 32)
        probe = data[::stride].copy()
        key = (id(data), matrix.nnz)
        if (
            cached is not None
            and cached[0] == key
            and np.array_equal(cached[1], probe)
        ):
            return kernel.apply(cached[2], x)
        state = kernel.prepare(matrix)
        try:
            matrix._repro_symmetric_cache = (key, probe, state)
        except AttributeError:  # some sparse types forbid attributes
            pass
        return kernel.apply(state, x)
    return kernel(matrix, x)


#: Named one-shot kernel registry (kept for backward compatibility;
#: prefer :func:`get_kernel` and the prepare/apply protocol).
KERNELS: Dict[str, LocalKernel] = {
    "csr": csr_kernel,
    "bsr3x3": bsr_kernel,
    "python-csr": python_csr_kernel,
    "symmetric-upper": symmetric_upper_kernel,
}


@dataclass(frozen=True)
class TfMeasurement:
    """Result of a T_f measurement for one kernel."""

    kernel: str
    nnz: int
    flops_per_product: int
    repetitions: int
    seconds_per_product: float
    tf_ns: float  # amortized time per flop, nanoseconds

    @property
    def mflops(self) -> float:
        """Sustained MFLOPS, the paper's headline local rate."""
        return 1e3 / self.tf_ns if self.tf_ns > 0 else float("inf")


def measure_tf(
    matrix: sp.spmatrix,
    kernel: str = "csr",
    repetitions: int = 5,
    warmup: int = 1,
    rng_seed: int = 0,
    rhs: int = 1,
) -> TfMeasurement:
    """Measure ``T_f`` for a kernel on a given local matrix.

    The matrix should be a realistic local stiffness matrix (use
    :func:`repro.fem.assemble_stiffness`); ``F = 2 * nnz`` per product,
    following the paper's flop accounting.  ``prepare`` runs once,
    outside the timed region — the measurement covers the product only,
    for every kernel.

    With ``rhs > 1`` the timed product is the block product over an
    n x rhs block and the flop count scales to ``2 * nnz * rhs`` — one
    matrix traversal performs ``rhs`` columns' worth of flops, so
    ``tf_ns`` stays the amortized time per flop *per column* and remains
    directly comparable to the paper's single-vector tables (a batched
    kernel simply shows a smaller T_f).
    """
    if rhs < 1:
        raise ValueError(f"rhs must be >= 1, got {rhs}")
    k = get_kernel(kernel)
    state = k.prepare(matrix)
    rng = np.random.default_rng(rng_seed)
    nnz = matrix.nnz
    flops = 2 * nnz * rhs
    if rhs == 1:
        x = rng.standard_normal(matrix.shape[1])
        product = k.apply
    else:
        x = rng.standard_normal((matrix.shape[1], rhs))
        product = k.apply_block
    for _ in range(warmup):
        product(state, x)
    t0 = now()
    for _ in range(repetitions):
        product(state, x)
    elapsed = now() - t0
    per_product = elapsed / repetitions
    tf_ns = 1e9 * per_product / flops if flops else float("nan")
    return TfMeasurement(
        kernel=kernel,
        nnz=nnz,
        flops_per_product=flops,
        repetitions=repetitions,
        seconds_per_product=per_product,
        tf_ns=tf_ns,
    )
