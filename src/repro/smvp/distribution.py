"""Data distribution for the parallel SMVP.

Implements the storage scheme of the paper's Section 2.3 / Figure 3:

* every element belongs to exactly one PE (the partition);
* a node resides on every PE owning an element that touches it; nodes
  touched by several PEs are *shared* and their vector entries are
  replicated;
* the stiffness block ``K_ij`` resides on every PE where nodes i and j
  both reside — concretely, each PE assembles its local matrix from its
  own elements only, so shared blocks hold partial sums that the
  communication phase completes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.analysis.contracts import check_partition_cover_contract
from repro.mesh.core import TetMesh
from repro.mesh.topology import unique_edges
from repro.partition.base import Partition
from repro.partition.metrics import node_part_incidence


class DataDistribution:
    """Residency maps induced by an element partition.

    Parameters
    ----------
    mesh:
        The global mesh.
    partition:
        Element-to-PE assignment with ``num_parts`` PEs.
    """

    def __init__(self, mesh: TetMesh, partition: Partition) -> None:
        if partition.num_elements != mesh.num_elements:
            raise ValueError("partition does not match mesh")
        check_partition_cover_contract(partition, mesh)
        self.mesh = mesh
        self.partition = partition

    @property
    def num_parts(self) -> int:
        return self.partition.num_parts

    # -- residency ---------------------------------------------------------

    @cached_property
    def node_parts(self) -> sp.csr_matrix:
        """Boolean (num_nodes, num_parts) residency matrix."""
        return node_part_incidence(self.mesh, self.partition)

    @cached_property
    def node_residency(self) -> np.ndarray:
        """Number of PEs each node resides on (>= 1)."""
        return np.asarray(self.node_parts.sum(axis=1)).ravel().astype(np.int64)

    @cached_property
    def shared_nodes(self) -> np.ndarray:
        """Global indices of nodes residing on two or more PEs."""
        return np.flatnonzero(self.node_residency >= 2)

    @cached_property
    def exclusive_nodes(self) -> List[np.ndarray]:
        """Per-PE sorted global indices of nodes residing *only* there.

        These are the rows whose vector state is unrecoverable from
        other PEs when a PE dies — the rows the resilience layer's
        shadow store (or a checkpoint) must cover.
        """
        single = self.node_residency == 1
        return [
            nodes[single[nodes]] for nodes in self._part_nodes
        ]

    @cached_property
    def ownership_hash(self) -> int:
        """CRC-32 fingerprint of (num_parts, per-node owner).

        The owner of a node is its lowest resident PE — the same rule
        the executor's gather uses.  Checkpoints embed this hash so a
        restore onto a different distribution (different PE count, or
        the same count with different row ownership, e.g. after an
        eviction) is detected instead of silently mis-splicing.
        """
        csr = self.node_parts.tocsr()
        counts = np.diff(csr.indptr)
        owner = np.full(self.mesh.num_nodes, -1, dtype=np.int64)
        resident = counts > 0
        owner[resident] = csr.indices[csr.indptr[:-1][resident]]
        return zlib.crc32(
            np.int64(self.num_parts).tobytes() + owner.tobytes()
        )

    def local_elements(self, part: int) -> np.ndarray:
        """Element indices owned by one PE."""
        return self.partition.elements_of(part)

    @cached_property
    def _part_nodes(self) -> List[np.ndarray]:
        """Per-PE sorted global node index arrays."""
        csc = self.node_parts.tocsc()
        out = []
        for part in range(self.num_parts):
            nodes = csc.indices[csc.indptr[part] : csc.indptr[part + 1]]
            out.append(np.sort(nodes.astype(np.int64)))
        return out

    def local_nodes(self, part: int) -> np.ndarray:
        """Sorted global indices of the nodes residing on one PE."""
        return self._part_nodes[part]

    def global_to_local(self, part: int, global_nodes: np.ndarray) -> np.ndarray:
        """Map global node indices to a PE's local numbering.

        The local numbering is the position within the sorted
        ``local_nodes(part)`` array.  Raises if a node does not reside
        on the PE.
        """
        local = self._part_nodes[part]
        pos = np.searchsorted(local, global_nodes)
        if np.any(pos >= len(local)) or np.any(local[np.minimum(pos, len(local) - 1)] != global_nodes):
            raise ValueError(f"node not resident on PE {part}")
        return pos

    # -- per-PE structural counts -------------------------------------------

    @cached_property
    def local_counts(self) -> Dict[str, np.ndarray]:
        """Per-PE structural sizes: nodes, edges, elements, nonzeros, flops.

        ``nonzeros[p]`` is the nonzero count of PE p's local 3n x 3n
        stiffness matrix: 9 * (local_nodes + 2 * local_edges) (one 3x3
        block per node and per edge direction).  ``flops[p] = 2 *
        nonzeros[p]`` — one multiply and one add per nonzero, the
        paper's F.
        """
        p = self.num_parts
        nodes = np.zeros(p, dtype=np.int64)
        edges = np.zeros(p, dtype=np.int64)
        elements = np.zeros(p, dtype=np.int64)
        tets = self.mesh.tets
        for part in range(p):
            elem_ids = self.local_elements(part)
            elements[part] = len(elem_ids)
            nodes[part] = len(self._part_nodes[part])
            edges[part] = len(unique_edges(tets[elem_ids]))
        nonzeros = 9 * (nodes + 2 * edges)
        return {
            "nodes": nodes,
            "edges": edges,
            "elements": elements,
            "nonzeros": nonzeros,
            "flops": 2 * nonzeros,
        }

    @cached_property
    def boundary_flops(self) -> np.ndarray:
        """Per-PE flops on matrix rows of *shared* nodes, exactly.

        These are the flops that must complete before the exchange
        phase can start when overlapping communication with interior
        computation (the paper's footnote-1 modification; consumed by
        the BSP simulator's overlap mode).  A shared local node's three
        rows hold ``9 * (1 + local_degree)`` nonzeros; flops are twice
        that.
        """
        p = self.num_parts
        shared_mask = self.node_residency >= 2
        tets = self.mesh.tets
        out = np.zeros(p, dtype=np.int64)
        for part in range(p):
            elem_ids = self.local_elements(part)
            edges = unique_edges(tets[elem_ids])
            local_nodes = self._part_nodes[part]
            shared_local = shared_mask[local_nodes].sum()
            # An edge (i, j) contributes one off-diagonal block to row i
            # and one to row j; blocks landing in shared rows are the
            # (edge, shared-endpoint) incidences.
            blocks_in_shared_rows = int(shared_mask[edges].sum())
            nnz_shared = 9 * (shared_local + blocks_in_shared_rows)
            out[part] = 2 * nnz_shared
        return out

    @cached_property
    def boundary_local_nodes(self) -> List[np.ndarray]:
        """Per-PE sorted *local* node indices whose node is shared.

        A PE's boundary rows are the rows of nodes residing on two or
        more PEs — exactly the rows whose partial sums the exchange
        phase completes, and therefore the rows an overlap-capable
        backend must compute *before* launching the exchange.  Indices
        are positions into ``local_nodes(part)``; the dof rows of local
        node ``m`` are ``3m .. 3m+2``.
        """
        shared_mask = self.node_residency >= 2
        return [
            np.flatnonzero(shared_mask[nodes]).astype(np.int64)
            for nodes in self._part_nodes
        ]

    @cached_property
    def interior_local_nodes(self) -> List[np.ndarray]:
        """Per-PE sorted local node indices resident only on that PE.

        The complement of :attr:`boundary_local_nodes`: rows with no
        shared dofs, whose computation can proceed while the exchange
        is in flight.
        """
        shared_mask = self.node_residency >= 2
        return [
            np.flatnonzero(~shared_mask[nodes]).astype(np.int64)
            for nodes in self._part_nodes
        ]

    @cached_property
    def pair_shared_counts(self) -> sp.csr_matrix:
        """(p, p) matrix: entry (i, j) = number of nodes shared by PEs i, j.

        The diagonal holds each PE's resident node count.
        """
        inc = self.node_parts.astype(np.int64)
        return (inc.T @ inc).tocsr()

    @cached_property
    def pair_shared_nodes(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Sorted global node lists for each unordered PE pair (i < j).

        Only pairs that actually share nodes appear.  Both PEs of a pair
        use the same (sorted) list, which is what lets the exchange
        phase match send and receive buffers entry by entry.
        """
        csr = self.node_parts.tocsr()
        indptr, indices = csr.indptr, csr.indices
        out: Dict[Tuple[int, int], List[int]] = {}
        for node in self.shared_nodes:
            parts = indices[indptr[node] : indptr[node + 1]]
            for a in range(len(parts)):
                for b in range(a + 1, len(parts)):
                    key = (int(parts[a]), int(parts[b]))
                    out.setdefault(key, []).append(int(node))
        return {
            key: np.array(nodes, dtype=np.int64)
            for key, nodes in sorted(out.items())
        }


@dataclass(frozen=True)
class EvictionRedistribution:
    """How a dead PE's elements were regrown onto the survivors.

    ``survivor_map`` maps old PE ids to the compacted P-1 numbering;
    ``affinity_flops`` counts the (node, candidate-part) affinity
    additions the regrowth performed — the work term of the
    reconfiguration cost model.
    """

    dead_pe: int
    orphan_elements: int
    waves: int
    affinity_flops: int
    reseeded_islands: int
    survivor_map: Dict[int, int]


def redistribute_after_eviction(
    mesh: TetMesh, partition: Partition, dead_pe: int
) -> Tuple[Partition, EvictionRedistribution]:
    """Rebuild a P-1 partition after a permanent PE failure.

    The survivors keep every element they already own — their local
    matrices, kernel states, and checkpointed rows stay valid — and
    the dead PE's elements are regrown onto them in deterministic BFS
    waves: each wave assigns every orphan element that touches surviving
    territory to the survivor sharing the most of its nodes (ties to
    the lighter, then lower-numbered, PE), exactly the greedy-growing
    idiom of :mod:`repro.partition.growing` seeded from the survivor
    layout instead of from scratch.  Orphan islands with no surviving
    contact (a PE dead in the mesh interior) are reseeded on the
    least-loaded survivor.  Part numbers are then compacted to
    ``0 .. P-2`` preserving survivor order.
    """
    p = partition.num_parts
    if not 0 <= dead_pe < p:
        raise ValueError(f"dead PE {dead_pe} out of range for {p} parts")
    if p < 2:
        raise ValueError("cannot evict the last surviving PE")
    parts = partition.parts.astype(np.int64)
    orphans = np.flatnonzero(parts == dead_pe)
    parts = parts.copy()
    tets = mesh.tets
    # Node -> part coverage of the *current* assignment, survivors only;
    # dense (num_nodes, p) bool is fine at eviction frequency.
    inc = node_part_incidence(mesh, partition).toarray().astype(bool)
    inc[:, dead_pe] = False
    loads = np.bincount(parts[parts != dead_pe], minlength=p)
    survivors = np.array(
        [q for q in range(p) if q != dead_pe], dtype=np.int64
    )

    remaining = [int(e) for e in orphans]
    waves = 0
    flops = 0
    islands = 0
    while remaining:
        waves += 1
        assigned: List[Tuple[int, int]] = []
        next_remaining: List[int] = []
        for e in remaining:
            nodes = tets[e]
            affinity = inc[nodes].sum(axis=0)
            flops += 4 * p
            best = int(affinity.max())
            if best == 0:
                next_remaining.append(e)
                continue
            cand = np.flatnonzero(affinity == best)
            # Ties: lighter survivor first, then lower PE number.
            chosen = int(cand[np.lexsort((cand, loads[cand]))[0]])
            assigned.append((e, chosen))
        if not assigned:
            # A disconnected orphan island: reseed its lowest-numbered
            # element on the least-loaded survivor and keep growing.
            islands += 1
            e = next_remaining.pop(0)
            chosen = int(
                survivors[np.lexsort((survivors, loads[survivors]))[0]]
            )
            assigned.append((e, chosen))
        # Frontier semantics: updates land after the wave, so the
        # result does not depend on within-wave iteration order.
        for e, chosen in assigned:
            parts[e] = chosen
            loads[chosen] += 1
            inc[tets[e], chosen] = True
        remaining = next_remaining

    remap = np.full(p, -1, dtype=np.int64)
    remap[survivors] = np.arange(p - 1)
    new_partition = Partition(
        remap[parts].astype(np.int32),
        p - 1,
        method=f"{partition.method}-evict{dead_pe}",
    )
    return new_partition, EvictionRedistribution(
        dead_pe=dead_pe,
        orphan_elements=int(len(orphans)),
        waves=waves,
        affinity_flops=flops,
        reseeded_islands=islands,
        survivor_map={int(q): int(remap[q]) for q in survivors},
    )


@dataclass(frozen=True)
class AdditionRedistribution:
    """How a fresh PE's region was peeled off the heaviest donors.

    The inverse record of :class:`EvictionRedistribution`: ``new_pe``
    is the added part id (always the old ``num_parts`` — existing ids
    are stable, so no survivor map is needed), ``donor_counts`` maps
    each donor PE to the elements it ceded, and ``affinity_flops``
    counts the (element, frontier) affinity additions — the work term
    of the reconfiguration cost model.
    """

    new_pe: int
    moved_elements: int
    waves: int
    affinity_flops: int
    target_size: int
    donor_counts: Dict[int, int]


def redistribute_after_addition(
    mesh: TetMesh, partition: Partition, target_size: Optional[int] = None
) -> Tuple[Partition, AdditionRedistribution]:
    """Grow a P+1 partition online by peeling a region for a new PE.

    The mirror image of :func:`redistribute_after_eviction`: every
    existing PE keeps its id (so quarantine sets, health records, and
    kernel state need no renumbering) and keeps every element it does
    not cede, and the new PE ``P`` is grown in deterministic BFS-
    affinity waves seeded on the heaviest donor.  Each wave considers
    the elements adjacent to the new PE's territory whose owner is
    still above the post-growth ideal load, assigns the highest-
    affinity candidates first (ties to the lower element id), and
    expands the frontier only between waves — the same greedy-growing
    idiom, run in reverse.  When the connected wave stalls (every
    adjacent donor at the floor) it re-seeds on the heaviest remaining
    donor, so growth reaches ``target_size`` (default: the post-growth
    ideal ``E // (P+1)``) whenever the donors collectively have that
    much surplus above the ideal.
    """
    p = partition.num_parts
    parts = partition.parts.astype(np.int64).copy()
    total = parts.size
    ideal = total // (p + 1)
    if target_size is None:
        target_size = ideal
    if target_size < 1:
        raise ValueError(
            f"cannot grow: {total} elements across {p + 1} PEs leaves "
            "no room for a new region"
        )
    if target_size > total - p:
        raise ValueError(
            f"target_size {target_size} would empty a donor "
            f"({total} elements on {p} PEs)"
        )
    loads = np.bincount(parts, minlength=p + 1).astype(np.int64)
    floor = max(ideal, 1)
    tets = mesh.tets
    order_key = np.lexsort((np.arange(p), -loads[:p]))
    heaviest = int(order_key[0])
    if loads[heaviest] <= floor:
        raise ValueError(
            "partition too small to peel a new PE: every donor is "
            f"already at or below the post-growth ideal of {floor} "
            "elements"
        )
    new_pe = p
    # Seed: the heaviest donor's lowest-numbered element.
    seed = int(partition.elements_of(heaviest)[0])
    in_new = np.zeros(mesh.num_nodes, dtype=bool)
    parts[seed] = new_pe
    loads[heaviest] -= 1
    loads[new_pe] += 1
    in_new[tets[seed]] = True
    donor_counts: Dict[int, int] = {heaviest: 1}
    moved = 1
    waves = 0
    flops = 0
    while moved < target_size:
        waves += 1
        # Frontier: elements touching the new territory, owned by a
        # donor that can still cede without dropping below the ideal.
        affinity = in_new[tets].sum(axis=1)
        flops += 4 * int(total)
        eligible = np.flatnonzero(
            (affinity > 0) & (parts != new_pe) & (loads[parts] > floor)
        )
        if eligible.size == 0:
            # The connected wave stalled: every donor adjacent to the
            # new territory is at the floor.  Re-seed on the heaviest
            # donor that still has surplus (ties to the lower PE id,
            # lowest element id within it) — the new region may become
            # more than one component, but the floor guarantee holds
            # and the target is still reached deterministically.
            surplus = np.flatnonzero(loads[:p] > floor)
            if surplus.size == 0:
                break
            donor = int(
                surplus[np.lexsort((surplus, -loads[surplus]))[0]]
            )
            reseed = int(np.flatnonzero(parts == donor)[0])
            parts[reseed] = new_pe
            loads[donor] -= 1
            loads[new_pe] += 1
            donor_counts[donor] = donor_counts.get(donor, 0) + 1
            in_new[tets[reseed]] = True
            moved += 1
            continue
        # Highest affinity first, ties to the lower element id;
        # frontier (``in_new``) expands only after the wave, donor
        # loads update live so the floor is never crossed.
        order = eligible[np.lexsort((eligible, -affinity[eligible]))]
        taken: List[int] = []
        for e in order:
            if moved >= target_size:
                break
            owner = int(parts[e])
            if loads[owner] <= floor:
                continue
            parts[e] = new_pe
            loads[owner] -= 1
            loads[new_pe] += 1
            donor_counts[owner] = donor_counts.get(owner, 0) + 1
            taken.append(int(e))
            moved += 1
        if not taken:
            break
        for e in taken:
            in_new[tets[e]] = True
    new_partition = Partition(
        parts.astype(np.int32),
        p + 1,
        method=f"{partition.method}+grow{new_pe}",
    )
    return new_partition, AdditionRedistribution(
        new_pe=new_pe,
        moved_elements=moved,
        waves=waves,
        affinity_flops=flops,
        target_size=int(target_size),
        donor_counts={
            int(pe): int(n) for pe, n in sorted(donor_counts.items())
        },
    )
