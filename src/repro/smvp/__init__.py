"""The parallel sparse matrix-vector product (SMVP).

This subpackage implements the paper's Section 2.3: the data
distribution induced by an element partition, the pairwise
exchange-and-sum communication schedule for shared nodes, the local
SMVP kernels, and a distributed executor that runs the whole global
SMVP ``y = K x`` the way ``p`` PEs would — verifiably equal to the
sequential product.

* :mod:`~repro.smvp.distribution` — node/element residency: which nodes
  live on which PEs, with replicated storage for shared nodes.
* :mod:`~repro.smvp.schedule` — the communication schedule: one message
  per ordered neighbor pair carrying 3 words (x/y/z displacement) per
  shared node; per-PE word and block counts (the C_i and B_i of the
  paper's model).
* :mod:`~repro.smvp.kernels` — local SMVP kernels behind the
  prepare/apply :class:`~repro.smvp.kernels.Kernel` protocol (scipy
  CSR, 3x3 BSR, symmetric upper-triangle, a pure-Python reference) and
  T_f measurement.
* :mod:`~repro.smvp.backends` — execution backends for the compute
  phase: ``serial``, ``threaded``, ``shared-memory``.
* :mod:`~repro.smvp.exchange` — the exchange-and-sum as composable
  steps, with the fault protocol as transport middleware.
* :mod:`~repro.smvp.trace` — per-superstep instrumentation records and
  trace sinks.
* :mod:`~repro.smvp.abft` — algorithm-based fault tolerance: checksum
  rows that verify every PE's product and exchange in O(n_i), catching
  the silent memory/compute corruption the wire CRCs never see.
* :mod:`~repro.smvp.executor` — the two-phase bulk-synchronous
  distributed SMVP tying the layers together.
* :mod:`~repro.smvp.spark98` — a Spark98-style named kernel suite.
"""

from repro.smvp.distribution import DataDistribution
from repro.smvp.schedule import CommSchedule, Message
from repro.smvp.kernels import (
    KERNELS,
    Kernel,
    LocalKernel,
    csr_kernel,
    bsr_kernel,
    get_kernel,
    kernel_names,
    python_csr_kernel,
    register_kernel,
    symmetric_upper_kernel,
    measure_tf,
)
from repro.smvp.backends import (
    BACKENDS,
    ExecutionBackend,
    backend_names,
    make_backend,
)
from repro.smvp.exchange import ExchangeRecord
from repro.smvp.trace import PhaseBreakdown, SuperstepTrace, TraceLog
from repro.smvp.abft import (
    AbftCheck,
    AbftChecker,
    MatrixCorruption,
    SdcEvent,
    verify_flops_per_pe,
)
from repro.smvp.executor import DistributedSMVP

__all__ = [
    "DataDistribution",
    "CommSchedule",
    "Message",
    "KERNELS",
    "Kernel",
    "LocalKernel",
    "csr_kernel",
    "bsr_kernel",
    "python_csr_kernel",
    "symmetric_upper_kernel",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "measure_tf",
    "BACKENDS",
    "ExecutionBackend",
    "backend_names",
    "make_backend",
    "ExchangeRecord",
    "PhaseBreakdown",
    "SuperstepTrace",
    "TraceLog",
    "AbftCheck",
    "AbftChecker",
    "MatrixCorruption",
    "SdcEvent",
    "verify_flops_per_pe",
    "DistributedSMVP",
]
