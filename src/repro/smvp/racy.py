"""Seeded race-injection fixtures: the sanitizer's proving ground.

A race detector that has never seen a race is an assertion, not a
tool.  This module builds *deliberately racy* variants of the engine —
a backend that scribbles on a neighbour's input, output slots aliased
into one buffer, an exchange that drops (or invents) a scheduled
message, a gather that reads ghost dofs — each injection seeded,
recorded with exact ``(pe, step, phase, dof)`` coordinates, and
checkable against the sanitizer's findings with
:func:`verify_detection`.  The CI ``race`` job runs these and requires
every injected race to be blamed exactly.

Nothing here registers with the backend table — racy variants are
reachable only by explicit construction (:func:`make_racy` or the
``repro-san --racy`` CLI), never by configuration accident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitizer import SanFinding
from repro.smvp.backends.threaded import ThreadedBackend
from repro.smvp.executor import DistributedSMVP

__all__ = [
    "RACE_MODES",
    "InjectedRace",
    "RacySMVP",
    "RacyThreadedBackend",
    "make_racy",
    "verify_detection",
]

#: mode -> (sanitizer finding kind, phase) it must provoke.
RACE_MODES: Dict[str, Tuple[str, str]] = {
    "input-mutation": ("input-mutation", "compute"),
    "aliased-output": ("racy-write-write", "compute"),
    "ghost-gather": ("ghost-read", "gather"),
    "skip-exchange": ("stale-ghost", "exchange"),
    "unscheduled-exchange": ("unscheduled-exchange-write", "exchange"),
}


@dataclass(frozen=True)
class InjectedRace:
    """Ground truth for one injected race (what must be blamed)."""

    mode: str
    step: int
    pe: int
    phase: str
    dofs: Tuple[int, ...]


class RacyThreadedBackend(ThreadedBackend):
    """The threaded backend with a seeded saboteur in the pool.

    ``input-mutation``
        Before dispatch, one worker's-eye write lands on a *different*
        PE's input slot — the classic shared-memory bug the private
        per-PE x copies are supposed to preclude.

    ``aliased-output``
        The per-PE products are repacked as overlapping views of one
        scratch buffer; the second PE's tail write clobbers the first
        PE's — last-writer-wins, exactly what aliased output slots do
        under concurrency.

    The executor syncs ``race_step`` before each compute so the
    recorded :class:`InjectedRace` coordinates match the sanitizer's
    superstep numbering.
    """

    name = "racy-threaded"

    def __init__(
        self, mode: str, seed: int = 0, workers: Optional[int] = None
    ) -> None:
        super().__init__(workers=workers)
        if mode not in ("input-mutation", "aliased-output"):
            raise ValueError(f"not a backend race mode: {mode!r}")
        self.mode = mode
        self.rng = np.random.default_rng(seed)
        self.injected: List[InjectedRace] = []
        self.race_step = 0

    def _inject_input_mutation(self, x_locals: Sequence[np.ndarray]) -> None:
        victim = int(self.rng.integers(len(x_locals)))
        dof = int(self.rng.integers(x_locals[victim].shape[0]))
        # The write below IS the injected race the fixture exists for.
        # On a block slot it lands on every column of the dof's row —
        # still exactly one mutated dof.
        x_locals[victim][dof] += 1e-9  # repro-lint: ignore[bsp-ownership]
        self.injected.append(
            InjectedRace(self.mode, self.race_step, victim, "compute", (dof,))
        )

    def _inject_aliased_output(
        self, y: List[np.ndarray]
    ) -> List[np.ndarray]:
        a, b = sorted(
            int(i)
            for i in self.rng.choice(len(y), size=2, replace=False)
        )
        na, nb = y[a].shape[0], y[b].shape[0]
        overlap = int(min(3, na, nb))
        buf = np.empty((na + nb - overlap,) + y[a].shape[1:], dtype=np.float64)
        buf[:na] = y[a]
        buf[na - overlap :] = y[b]  # last writer wins: clobbers y[a]'s tail
        y[a] = buf[:na]
        y[b] = buf[na - overlap :]
        self.injected.append(
            InjectedRace(
                self.mode,
                self.race_step,
                a,
                "compute",
                tuple(range(na - overlap, na)),
            )
        )
        return y

    def compute(self, x_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        if self.mode == "input-mutation":
            self._inject_input_mutation(x_locals)
            return super().compute(x_locals)
        return self._inject_aliased_output(super().compute(x_locals))

    def compute_block(self, X_locals: Sequence[np.ndarray]) -> List[np.ndarray]:
        if self.mode == "input-mutation":
            self._inject_input_mutation(X_locals)
            return super().compute_block(X_locals)
        return self._inject_aliased_output(super().compute_block(X_locals))


class RacySMVP(DistributedSMVP):
    """An executor with one seeded BSP-discipline violation built in.

    Executor-level modes tamper with the engine's own maps — the bug
    classes a refactor of the exchange or gather path could introduce:

    ``skip-exchange``
        One scheduled shared-node pair is dropped from the pair table;
        both endpoints keep stale partial sums on their shared dofs.

    ``unscheduled-exchange``
        A bogus pair between two PEs that share no nodes is appended;
        the transport delivers writes the schedule never authorized.

    ``ghost-gather``
        One PE's gather map is extended with ghost dofs it does not
        own — the committed global values now depend on exchange
        completeness and double-write ordering.

    Backend-level modes (``input-mutation``, ``aliased-output``)
    delegate to :class:`RacyThreadedBackend`.  All modes run with the
    sanitizer forced on; :attr:`injected` holds the ground truth.
    """

    def __init__(
        self,
        mesh,
        partition,
        materials,
        mode: str,
        seed: int = 0,
        kernel: str = "csr",
        backend: str = "threaded",
        strict: bool = True,
    ) -> None:
        if mode not in RACE_MODES:
            raise ValueError(
                f"unknown race mode {mode!r}; options: {sorted(RACE_MODES)}"
            )
        self.mode = mode
        self._race_rng = np.random.default_rng(seed)
        self._executor_injected: List[InjectedRace] = []
        if mode in ("input-mutation", "aliased-output"):
            backend = RacyThreadedBackend(mode, seed=seed)
        super().__init__(
            mesh,
            partition,
            materials,
            kernel=kernel,
            backend=backend,
            sanitizer=True,
        )
        self.sanitizer.strict = strict
        if mode == "skip-exchange":
            self._install_skip_exchange()
        elif mode == "unscheduled-exchange":
            self._install_unscheduled_exchange()
        elif mode == "ghost-gather":
            self._install_ghost_gather()

    # -- executor-level injections ----------------------------------------

    def _install_skip_exchange(self) -> None:
        drop = int(self._race_rng.integers(len(self._pairs)))
        a, b, ia, ib = self._pairs.pop(drop)
        dof3 = np.arange(3)
        self._skip_blame = [
            (b, tuple(int(d) for d in (3 * ib[:, None] + dof3).ravel())),
            (a, tuple(int(d) for d in (3 * ia[:, None] + dof3).ravel())),
        ]

    def _install_unscheduled_exchange(self) -> None:
        shared = set(self.distribution.pair_shared_nodes)
        bogus = None
        for a in range(self.num_parts):
            for b in range(a + 1, self.num_parts):
                if (a, b) not in shared and (b, a) not in shared:
                    bogus = (a, b)
                    break
            if bogus:
                break
        if bogus is None:
            raise ValueError(
                "unscheduled-exchange needs two PEs sharing no nodes; "
                "use a larger PE count"
            )
        a, b = bogus
        idx = np.array([0], dtype=np.int64)
        self._pairs.append((a, b, idx, idx))
        self._bogus_blame = [
            (a, (0, 1, 2)),  # a->b delivery, blamed on the writer a
            (b, (0, 1, 2)),  # b->a delivery
        ]

    def _install_ghost_gather(self) -> None:
        victim = int(self._race_rng.integers(self.num_parts))
        n_local = 3 * len(self.local_nodes[victim])
        ghosts = np.setdiff1d(
            np.arange(n_local, dtype=np.int64), self._gather_src[victim]
        )
        if ghosts.size == 0:  # pragma: no cover - shared nodes always exist
            raise ValueError(f"PE {victim} owns every local dof")
        pick = ghosts[
            np.sort(
                self._race_rng.choice(
                    ghosts.size, size=min(3, ghosts.size), replace=False
                )
            )
        ]
        nodes = self.local_nodes[victim][pick // 3]
        self._gather_src[victim] = np.concatenate(
            [self._gather_src[victim], pick]
        )
        self._gather_dst[victim] = np.concatenate(
            [self._gather_dst[victim], 3 * nodes + pick % 3]
        )
        self._ghost_blame = (victim, tuple(int(d) for d in pick))

    # -- ground-truth bookkeeping ------------------------------------------

    @property
    def injected(self) -> List[InjectedRace]:
        """All injections so far, executor- and backend-level."""
        out = list(self._executor_injected)
        if isinstance(self.backend, RacyThreadedBackend):
            out.extend(self.backend.injected)
        return sorted(out, key=lambda r: (r.step, r.pe, r.phase))

    def multiply(self, x_global: np.ndarray) -> np.ndarray:
        step = self._superstep
        if isinstance(self.backend, RacyThreadedBackend):
            self.backend.race_step = step
        elif self.mode == "skip-exchange":
            for pe, dofs in self._skip_blame:
                self._executor_injected.append(
                    InjectedRace(self.mode, step, pe, "exchange", dofs)
                )
        elif self.mode == "unscheduled-exchange":
            for pe, dofs in self._bogus_blame:
                self._executor_injected.append(
                    InjectedRace(self.mode, step, pe, "exchange", dofs)
                )
        elif self.mode == "ghost-gather":
            pe, dofs = self._ghost_blame
            self._executor_injected.append(
                InjectedRace(self.mode, step, pe, "gather", dofs)
            )
        return super().multiply(x_global)

    __call__ = multiply


def make_racy(
    mesh,
    partition,
    materials,
    mode: str,
    seed: int = 0,
    kernel: str = "csr",
    backend: str = "threaded",
    strict: bool = True,
) -> RacySMVP:
    """Build a seeded racy executor (sanitizer on, ground truth kept)."""
    return RacySMVP(
        mesh,
        partition,
        materials,
        mode,
        seed=seed,
        kernel=kernel,
        backend=backend,
        strict=strict,
    )


def verify_detection(
    injected: Sequence[InjectedRace], findings: Sequence[SanFinding]
) -> List[InjectedRace]:
    """Injected races the findings do *not* blame exactly (empty = all
    caught): a finding matches when its kind/phase fit the mode, its
    (pe, step) equal the injection's, and its dof set covers the
    injected dofs."""
    missed: List[InjectedRace] = []
    for race in injected:
        kind, phase = RACE_MODES[race.mode]
        hit = any(
            f.kind == kind
            and f.phase == phase
            and f.pe == race.pe
            and f.step == race.step
            and set(race.dofs) <= set(f.dofs)
            for f in findings
        )
        if not hit:
            missed.append(race)
    return missed
