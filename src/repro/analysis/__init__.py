"""Static analysis & runtime contracts for the reproduction.

Two layers keep the codebase honest about the properties the paper's
argument rests on:

* **``repro-lint``** (:mod:`repro.analysis.core` + the rule modules) —
  AST-level determinism and dimensional-consistency checks over
  ``src/``, plus golden-schedule verification for ``*schedule*.json``
  files.  Run ``repro-lint src/`` (or ``--json`` for tooling); suppress
  intentional findings with ``# repro-lint: ignore[rule]``.

* **runtime contracts** (:mod:`repro.analysis.contracts`) — the same
  BSP invariants (pairwise symmetry, deadlock-freedom, shared-node
  coverage) plus CSR-structure and partition-cover checks, enforced on
  live data when ``REPRO_CONTRACTS=1``.

See DESIGN.md section 7 for the rule catalog.
"""

from repro.analysis.contracts import (
    ContractViolation,
    check_csr_contract,
    check_partition_cover_contract,
    check_schedule_contract,
    contracts_enabled,
)
from repro.analysis.core import (
    ALL_RULES,
    Finding,
    lint_file,
    lint_paths,
    render_json,
    render_text,
)
from repro.analysis.schedule_check import (
    ScheduleReport,
    ScheduleViolation,
    check_coverage,
    check_messages,
    check_parity,
    check_payload,
    check_rounds,
    check_schedule,
)

__all__ = [
    "ALL_RULES",
    "ContractViolation",
    "Finding",
    "ScheduleReport",
    "ScheduleViolation",
    "check_coverage",
    "check_csr_contract",
    "check_messages",
    "check_parity",
    "check_partition_cover_contract",
    "check_payload",
    "check_rounds",
    "check_schedule",
    "check_schedule_contract",
    "contracts_enabled",
    "lint_file",
    "lint_paths",
    "render_json",
    "render_text",
]
