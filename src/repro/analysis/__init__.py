"""Static analysis & runtime contracts for the reproduction.

Two layers keep the codebase honest about the properties the paper's
argument rests on:

* **``repro-lint``** (:mod:`repro.analysis.core` + the rule modules) —
  AST-level determinism and dimensional-consistency checks over
  ``src/``, plus golden-schedule verification for ``*schedule*.json``
  files.  Run ``repro-lint src/`` (or ``--json`` for tooling); suppress
  intentional findings with ``# repro-lint: ignore[rule]``.

* **runtime contracts** (:mod:`repro.analysis.contracts`) — the same
  BSP invariants (pairwise symmetry, deadlock-freedom, shared-node
  coverage) plus CSR-structure and partition-cover checks, enforced on
  live data when ``REPRO_CONTRACTS=1``.

* **the superstep sanitizer** (:mod:`repro.analysis.sanitizer`) —
  dynamic BSP race detection when ``REPRO_SAN=1``: tracked per-PE
  arrays record every (PE, superstep, phase) read/write dof set, and
  each phase is checked against the ownership map and the exchange
  schedule's happens-before order, with exact (pe, step, phase, dof)
  blame.  The static half (ownership rules + the ``@owns`` /
  ``@exchange_phase`` / ``@reads_ghosts`` vocabulary) lives in
  :mod:`repro.analysis.ownership`.

See DESIGN.md sections 7 and 12 for the rule catalog and the
ownership/happens-before model.
"""

from repro.analysis.contracts import (
    ContractViolation,
    check_csr_contract,
    check_partition_cover_contract,
    check_schedule_contract,
    contracts_enabled,
)
from repro.analysis.core import (
    ALL_RULES,
    Finding,
    lint_file,
    lint_paths,
    pragma_report,
    render_json,
    render_pragma_report,
    render_text,
)
from repro.analysis.ownership import exchange_phase, owns, reads_ghosts
from repro.analysis.sanitizer import (
    SanFinding,
    SanitizerError,
    SuperstepSanitizer,
    TrackedArray,
    sanitizer_enabled,
)
from repro.analysis.schedule_check import (
    ScheduleReport,
    ScheduleViolation,
    check_coverage,
    check_messages,
    check_parity,
    check_payload,
    check_rounds,
    check_schedule,
)

__all__ = [
    "ALL_RULES",
    "ContractViolation",
    "Finding",
    "SanFinding",
    "SanitizerError",
    "ScheduleReport",
    "ScheduleViolation",
    "SuperstepSanitizer",
    "TrackedArray",
    "check_coverage",
    "check_csr_contract",
    "check_messages",
    "check_parity",
    "check_partition_cover_contract",
    "check_payload",
    "check_rounds",
    "check_schedule",
    "check_schedule_contract",
    "contracts_enabled",
    "exchange_phase",
    "lint_file",
    "lint_paths",
    "owns",
    "pragma_report",
    "reads_ghosts",
    "render_json",
    "render_pragma_report",
    "render_text",
    "sanitizer_enabled",
]
