"""API-boundary lint rules.

``kernel-registry``
    Two kernel-protocol disciplines.  First: direct subscript access to
    the kernel dictionaries (``KERNELS[...]`` or ``KERNEL_REGISTRY[...]``)
    outside :mod:`repro.smvp.kernels`.  Dict pokes bypass the registry's
    validation and its error message listing the available kernels, and
    they freeze callers onto the legacy one-shot convention — resolve
    names through ``repro.smvp.kernels.get_kernel`` instead, which hands
    back a :class:`~repro.smvp.kernels.Kernel` with the prepare/apply
    split that keeps format conversion out of timed regions.  Second: a
    class that overrides ``apply_block`` (a native block product) must
    declare ``supports_block`` at class level — dispatchers select the
    block path off the flag, not off ``hasattr``, so a silent override
    without the declaration is a block capability the engine will never
    use (or, worse, a flag inherited as ``True`` from a parent whose
    product the override no longer matches).

``prepare-purity``
    In-place mutation of a ``Kernel.prepare`` result outside an
    ``apply``/``prepare`` method.  Prepared states are shared across
    supersteps and (in the threaded backend) across worker threads, so
    any post-``prepare`` mutation is both a cache-poisoning and a race
    hazard.  Complements the runtime cache-invalidation contract:
    this rule catches the write sites statically.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Rule, register

#: Module-level kernel dicts that only the kernel module may index.
_KERNEL_DICTS = frozenset({"KERNELS", "KERNEL_REGISTRY"})

#: The one module allowed to poke the dicts directly.
_KERNEL_MODULE_SUFFIX = os.path.join("smvp", "kernels.py")


def _imported_kernel_dicts(tree: ast.AST) -> Set[str]:
    """Local names bound to the kernel dicts by a from-import."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "repro.smvp",
            "repro.smvp.kernels",
        ):
            for alias in node.names:
                if alias.name in _KERNEL_DICTS:
                    names.add(alias.asname or alias.name)
    return names


def _declares_supports_block(cls: ast.ClassDef) -> bool:
    """Whether a class body assigns ``supports_block`` at class level."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "supports_block":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "supports_block":
                return True
    return False


@register
class KernelRegistryAccessRule(Rule):
    name = "kernel-registry"
    description = (
        "direct KERNELS[...] dict access outside the kernel module, or "
        "an apply_block override without a class-level supports_block "
        "declaration; resolve kernels via get_kernel(name) and declare "
        "block capability explicitly"
    )

    def check_python(self, path, source, tree):
        if os.path.normpath(path).endswith(_KERNEL_MODULE_SUFFIX):
            return
        local_names = _imported_kernel_dicts(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Subscript):
                continue
            value = node.value
            dict_name = None
            if isinstance(value, ast.Name) and value.id in local_names:
                dict_name = value.id
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in _KERNEL_DICTS
            ):
                dict_name = value.attr
            if dict_name is None:
                continue
            yield Finding(
                rule=self.name,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct `{dict_name}[...]` access; use "
                    "`repro.smvp.kernels.get_kernel(name)` so lookups "
                    "are validated and kernels keep the prepare/apply "
                    "split"
                ),
            )
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _declares_supports_block(node):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == "apply_block"
                ):
                    yield Finding(
                        rule=self.name,
                        path=path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"class `{node.name}` overrides apply_block "
                            "without declaring `supports_block` at class "
                            "level; the engine dispatches block products "
                            "off the flag, so declare it (True for a "
                            "native block product, False to force the "
                            "per-column fallback)"
                        ),
                    )


#: Methods allowed to touch prepared state (the prepare/apply split).
_PURE_EXEMPT_METHODS = frozenset({"apply", "prepare"})

#: In-place mutators that poison a shared prepared state.
_STATE_MUTATORS = frozenset(
    {
        "fill",
        "sort",
        "sort_indices",
        "setdiag",
        "resize",
        "eliminate_zeros",
        "sum_duplicates",
        "prune",
        "setflags",
        "put",
        "partition",
    }
)


def _is_prepare_expr(node: ast.AST) -> bool:
    """Whether an expression's value originates from ``*.prepare(...)``."""
    if isinstance(node, ast.Call):
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "prepare"
        )
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return _is_prepare_expr(node.elt)
    if isinstance(node, (ast.List, ast.Tuple)):
        return any(_is_prepare_expr(elt) for elt in node.elts)
    if isinstance(node, ast.Starred):
        return _is_prepare_expr(node.value)
    return False


def _root_chain(node: ast.AST) -> Tuple[Optional[str], bool, int]:
    """Resolve a store/mutation target to its root.

    Returns ``(root, via_self, depth)`` where ``root`` is the base name
    (or the attribute name for ``self.<attr>...``), ``via_self`` marks
    the latter form, and ``depth`` counts subscript/attribute hops
    below the root (0 = plain rebinding, which is always legal).
    """
    depth = 0
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr, True, depth
        depth += 1
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, False, depth
    return None, False, depth


def _function_defs(tree: ast.AST) -> Iterable[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_body(fn: ast.AST) -> Iterable[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class PreparePurityRule(Rule):
    name = "prepare-purity"
    description = (
        "Kernel.prepare results mutated outside apply/prepare; "
        "prepared states are shared and must stay immutable"
    )

    def _prepared_roots(self, tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        """Names/attrs anywhere in the file bound to prepare results."""
        names: Set[str] = set()
        self_attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if not _is_prepare_expr(node.value):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self_attrs.add(target.attr)
        return names, self_attrs

    def check_python(self, path, source, tree):
        names, self_attrs = self._prepared_roots(tree)
        if not names and not self_attrs:
            return
        for fn in _function_defs(tree):
            if fn.name in _PURE_EXEMPT_METHODS:
                continue
            for node in _own_body(fn):
                suspects: List[Tuple[ast.AST, str, bool]] = []
                if isinstance(node, ast.Assign):
                    suspects = [
                        (t, "store into", False) for t in node.targets
                    ]
                elif isinstance(node, ast.AugAssign):
                    suspects = [(node.target, "augmented store into", False)]
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _STATE_MUTATORS
                ):
                    suspects = [
                        (node.func.value, f"{node.func.attr}() on", True)
                    ]
                for target, verb, is_call in suspects:
                    root, via_self, depth = _root_chain(target)
                    # A plain rebinding (depth 0) is legal; an in-place
                    # mutator call is a mutation at any depth.
                    if root is None or (depth == 0 and not is_call):
                        continue
                    tracked = (
                        root in self_attrs if via_self else root in names
                    )
                    if not tracked:
                        continue
                    shown = f"self.{root}" if via_self else root
                    yield Finding(
                        rule=self.name,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{verb} `{shown}`, a Kernel.prepare "
                            "result; prepared states are shared across "
                            "supersteps and threads — mutate only "
                            "inside apply/prepare, or re-prepare"
                        ),
                    )
