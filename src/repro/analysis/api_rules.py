"""API-boundary lint rules.

``kernel-registry``
    Direct subscript access to the kernel dictionaries (``KERNELS[...]``
    or ``KERNEL_REGISTRY[...]``) outside :mod:`repro.smvp.kernels`.
    Dict pokes bypass the registry's validation and its error message
    listing the available kernels, and they freeze callers onto the
    legacy one-shot convention — resolve names through
    ``repro.smvp.kernels.get_kernel`` instead, which hands back a
    :class:`~repro.smvp.kernels.Kernel` with the prepare/apply split
    that keeps format conversion out of timed regions.
"""

from __future__ import annotations

import ast
import os
from typing import Set

from repro.analysis.core import Finding, Rule, register

#: Module-level kernel dicts that only the kernel module may index.
_KERNEL_DICTS = frozenset({"KERNELS", "KERNEL_REGISTRY"})

#: The one module allowed to poke the dicts directly.
_KERNEL_MODULE_SUFFIX = os.path.join("smvp", "kernels.py")


def _imported_kernel_dicts(tree: ast.AST) -> Set[str]:
    """Local names bound to the kernel dicts by a from-import."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "repro.smvp",
            "repro.smvp.kernels",
        ):
            for alias in node.names:
                if alias.name in _KERNEL_DICTS:
                    names.add(alias.asname or alias.name)
    return names


@register
class KernelRegistryAccessRule(Rule):
    name = "kernel-registry"
    description = (
        "direct KERNELS[...] dict access outside the kernel module; "
        "resolve kernels via repro.smvp.kernels.get_kernel(name)"
    )

    def check_python(self, path, source, tree):
        if os.path.normpath(path).endswith(_KERNEL_MODULE_SUFFIX):
            return
        local_names = _imported_kernel_dicts(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Subscript):
                continue
            value = node.value
            dict_name = None
            if isinstance(value, ast.Name) and value.id in local_names:
                dict_name = value.id
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in _KERNEL_DICTS
            ):
                dict_name = value.attr
            if dict_name is None:
                continue
            yield Finding(
                rule=self.name,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct `{dict_name}[...]` access; use "
                    "`repro.smvp.kernels.get_kernel(name)` so lookups "
                    "are validated and kernels keep the prepare/apply "
                    "split"
                ),
            )
